#include "apps/coloring.hpp"

#include <gtest/gtest.h>

#include "apps/checkers.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace dsnd {
namespace {

DecompositionRun decompose(const Graph& g, std::uint64_t seed) {
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = seed;
  return elkin_neiman_decomposition(g, options);
}

TEST(Checkers, ProperColoringBasics) {
  const Graph g = make_path(4);
  EXPECT_TRUE(is_proper_vertex_coloring(g, {0, 1, 0, 1}));
  EXPECT_FALSE(is_proper_vertex_coloring(g, {0, 0, 1, 0}));
  EXPECT_FALSE(is_proper_vertex_coloring(g, {0, -1, 0, 1}));  // uncolored
  EXPECT_EQ(num_colors_used({0, 1, 0, 1}), 2);
  EXPECT_EQ(num_colors_used({}), 0);
}

TEST(ColoringByDecomposition, ProperAndWithinDeltaPlusOne) {
  for (const char* family :
       {"grid", "gnp-sparse", "gnp-dense", "cycle", "random-tree",
        "ring-of-cliques"}) {
    const Graph g = family_by_name(family).make(128, 5);
    const DecompositionRun run = decompose(g, 5);
    const ColoringResult result =
        coloring_by_decomposition(g, run.clustering());
    EXPECT_TRUE(is_proper_vertex_coloring(g, result.colors)) << family;
    EXPECT_LE(result.colors_used, max_degree(g) + 1) << family;
    EXPECT_EQ(result.colors_used, num_colors_used(result.colors)) << family;
  }
}

TEST(ColoringByDecomposition, BipartiteStaysCheap) {
  // First-fit on a path/grid never needs more than a few colors.
  const Graph g = make_grid2d(10, 10);
  const DecompositionRun run = decompose(g, 2);
  const ColoringResult result =
      coloring_by_decomposition(g, run.clustering());
  EXPECT_LE(result.colors_used, 5);  // Delta+1 again
}

TEST(ColoringByDecomposition, CompleteGraphNeedsN) {
  const Graph g = make_complete(12);
  const DecompositionRun run = decompose(g, 4);
  const ColoringResult result =
      coloring_by_decomposition(g, run.clustering());
  EXPECT_EQ(result.colors_used, 12);
}

TEST(ColoringByDecomposition, CostFieldsPopulated) {
  const Graph g = make_gnp(100, 0.06, 6);
  const DecompositionRun run = decompose(g, 6);
  const ColoringResult result =
      coloring_by_decomposition(g, run.clustering());
  EXPECT_GT(result.cost.rounds, 0);
  EXPECT_LE(result.cost.color_classes, run.clustering().num_colors());
  EXPECT_GT(result.cost.color_classes, 0);
}

}  // namespace
}  // namespace dsnd
