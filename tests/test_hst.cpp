#include "decomposition/hst.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"

namespace dsnd {
namespace {

TEST(Hst, LeavesExistForEveryVertex) {
  const Graph g = make_grid2d(5, 5);
  const HstTree tree = build_hst(g, {.c = 4.0, .seed = 1});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(tree.leaf_of(v), 0);
    EXPECT_LT(tree.leaf_of(v), tree.num_nodes());
  }
  EXPECT_EQ(tree.num_vertices(), 25);
}

TEST(Hst, DistanceIsAMetricOnLeaves) {
  const Graph g = make_cycle(12);
  const HstTree tree = build_hst(g, {.c = 4.0, .seed = 2});
  for (VertexId u = 0; u < 12; ++u) {
    EXPECT_DOUBLE_EQ(tree.distance(u, u), 0.0);
    for (VertexId v = 0; v < 12; ++v) {
      EXPECT_DOUBLE_EQ(tree.distance(u, v), tree.distance(v, u));
      if (u != v) {
        EXPECT_GT(tree.distance(u, v), 0.0);
      }
    }
  }
  // Triangle inequality on a few triples (tree metrics satisfy it).
  for (VertexId a = 0; a < 10; ++a) {
    EXPECT_LE(tree.distance(a, a + 2),
              tree.distance(a, a + 1) + tree.distance(a + 1, a + 2) + 1e-9);
  }
}

TEST(Hst, DominatesGraphDistanceEverywhere) {
  // The construction guarantee: d_T >= d_G for every pair, every seed.
  for (const char* family : {"path", "cycle", "grid", "gnp-sparse"}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const Graph g = family_by_name(family).make(48, seed);
      const HstTree tree = build_hst(g, {.c = 4.0, .seed = seed});
      const auto all = all_pairs_distances(g);
      for (VertexId u = 0; u < g.num_vertices(); ++u) {
        for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
          const std::int32_t dg =
              all[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
          const double dt = tree.distance(u, v);
          if (dg == kUnreachable) {
            EXPECT_LT(dt, 0.0) << family;  // cross-component: infinite
          } else {
            EXPECT_GE(dt + 1e-9, static_cast<double>(dg))
                << family << " seed=" << seed << " u=" << u << " v=" << v;
          }
        }
      }
    }
  }
}

TEST(Hst, DisconnectedComponentsAreInfinitelyFar) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const HstTree tree = build_hst(g, {.c = 4.0, .seed = 5});
  EXPECT_LT(tree.distance(0, 3), 0.0);
  EXPECT_GE(tree.distance(0, 2), 2.0);
}

TEST(Hst, DeterministicInSeed) {
  const Graph g = make_gnp(60, 0.08, 7);
  const HstTree a = build_hst(g, {.c = 4.0, .seed = 11});
  const HstTree b = build_hst(g, {.c = 4.0, .seed = 11});
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(a.distance(u, v), b.distance(u, v));
    }
  }
}

TEST(Hst, StretchReportShapes) {
  const Graph g = make_torus2d(8, 8);
  const HstTree tree = build_hst(g, {.c = 4.0, .seed = 3});
  const StretchReport report = measure_hst_stretch(g, tree, 200, 3);
  EXPECT_TRUE(report.dominating);
  EXPECT_GE(report.mean, 1.0);
  EXPECT_GE(report.max, report.mean);
  EXPECT_GT(report.pairs, 0);
  // Bartal-style bound with a generous constant: O(log^2 n).
  const double log_n = std::log2(64.0);
  EXPECT_LE(report.mean, 8.0 * log_n * log_n);
}

TEST(Hst, SingleVertexGraph) {
  const Graph g = make_path(1);
  const HstTree tree = build_hst(g, {.c = 4.0, .seed = 1});
  EXPECT_DOUBLE_EQ(tree.distance(0, 0), 0.0);
  EXPECT_EQ(tree.num_nodes(), 1);
}

TEST(Hst, RejectsBadInput) {
  EXPECT_THROW(build_hst(Graph(), HstOptions{}), std::invalid_argument);
  HstOptions bad;
  bad.c = 0.0;
  EXPECT_THROW(build_hst(make_path(3), bad), std::invalid_argument);
  const HstTree tree = build_hst(make_path(3), HstOptions{});
  EXPECT_THROW(tree.distance(0, 7), std::invalid_argument);
  EXPECT_THROW(measure_hst_stretch(make_path(3), tree, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
