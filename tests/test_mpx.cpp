#include "decomposition/mpx.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "support/stats.hpp"

namespace dsnd {
namespace {

TEST(Mpx, CompletePartition) {
  const Graph g = make_grid2d(10, 10);
  const MpxResult result = mpx_partition(g, {.beta = 0.3, .seed = 1});
  EXPECT_TRUE(result.clustering.is_complete());
}

TEST(Mpx, ClustersAreConnected) {
  // The MPX strong-diameter property: every cluster is connected in its
  // induced subgraph (each vertex reaches its center along vertices of
  // the same cluster).
  for (const char* family :
       {"grid", "gnp-sparse", "cycle", "random-tree", "small-world"}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const Graph g = family_by_name(family).make(150, seed);
      const MpxResult result = mpx_partition(g, {.beta = 0.4, .seed = seed});
      const auto members = result.clustering.members();
      for (ClusterId c = 0; c < result.clustering.num_clusters(); ++c) {
        const InducedSubgraph sub =
            induced_subgraph(g, members[static_cast<std::size_t>(c)]);
        EXPECT_TRUE(is_connected(sub.graph))
            << family << " seed=" << seed << " cluster=" << c;
      }
    }
  }
}

TEST(Mpx, CutFractionTracksBeta) {
  // Expected cut fraction is O(beta); with slack 3x it is a robust test.
  const Graph g = make_torus2d(20, 20);
  for (double beta : {0.1, 0.2, 0.4}) {
    Summary cut;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      cut.add(mpx_partition(g, {.beta = beta, .seed = seed}).cut_fraction);
    }
    EXPECT_LE(cut.mean(), 3.0 * beta) << "beta=" << beta;
  }
}

TEST(Mpx, SmallerBetaCutsFewerEdges) {
  const Graph g = make_gnp(300, 0.03, 4);
  Summary small_beta, large_beta;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    small_beta.add(
        mpx_partition(g, {.beta = 0.05, .seed = seed}).cut_fraction);
    large_beta.add(
        mpx_partition(g, {.beta = 0.8, .seed = seed}).cut_fraction);
  }
  EXPECT_LT(small_beta.mean(), large_beta.mean());
}

TEST(Mpx, DiameterScalesWithLogNOverBeta) {
  // Strong diameter O(log n / beta) w.h.p.; check with constant 6.
  const Graph g = make_grid2d(16, 16);
  const double beta = 0.25;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const MpxResult result = mpx_partition(g, {.beta = beta, .seed = seed});
    const DecompositionReport report = validate_decomposition(
        g, result.clustering, /*compute_weak=*/false);
    ASSERT_NE(report.max_strong_diameter, kInfiniteDiameter);
    EXPECT_LE(report.max_strong_diameter,
              6.0 * std::log(256.0) / beta);
  }
}

TEST(Mpx, DeterministicInSeed) {
  const Graph g = make_gnp(100, 0.06, 8);
  const MpxResult a = mpx_partition(g, {.beta = 0.3, .seed = 42});
  const MpxResult b = mpx_partition(g, {.beta = 0.3, .seed = 42});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(a.clustering.cluster_of(v), b.clustering.cluster_of(v));
  }
  EXPECT_EQ(a.cut_edges, b.cut_edges);
}

TEST(Mpx, TinyBetaGivesOneClusterPerComponent) {
  // beta -> 0 means enormous shifts: one vertex's shifted value dominates
  // everywhere, producing a single cluster per connected component
  // (almost surely). Use a very small beta to make this overwhelming.
  const Graph g = make_cycle(30);
  const MpxResult result = mpx_partition(g, {.beta = 1e-4, .seed = 3});
  EXPECT_EQ(result.clustering.num_clusters(), 1);
  EXPECT_EQ(result.cut_edges, 0);
}

TEST(Mpx, CountsCutEdgesExactly) {
  const Graph g = make_path(50);
  const MpxResult result = mpx_partition(g, {.beta = 0.5, .seed = 5});
  // Recount by hand.
  std::int64_t cuts = 0;
  g.for_each_edge([&](VertexId u, VertexId v) {
    if (result.clustering.cluster_of(u) != result.clustering.cluster_of(v)) {
      ++cuts;
    }
  });
  EXPECT_EQ(result.cut_edges, cuts);
  EXPECT_DOUBLE_EQ(result.cut_fraction,
                   static_cast<double>(cuts) / 49.0);
}

TEST(Mpx, RejectsBadParameters) {
  EXPECT_THROW(mpx_partition(Graph(), {.beta = 0.5, .seed = 1}),
               std::invalid_argument);
  EXPECT_THROW(mpx_partition(make_path(4), {.beta = 0.0, .seed = 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
