// The transport seam's acceptance tests.
//
// Two invariants anchor everything:
//   1. Refactor fidelity — an explicit ReliableTransport, and a
//      FaultyTransport with every rate at zero, reproduce the engine's
//      default exchange bit-for-bit across theorems, graph families,
//      and thread counts (the pre-seam results, pinned).
//   2. Deterministic chaos — a nonzero FaultPlan injects the SAME
//      faults and yields the SAME outcome for every thread/shard count,
//      because decisions are keyed on (seed, round, edge, occurrence)
//      and delivery order is defined in shard-invariant terms.
// Plus targeted unit tests for each fault type, the wake-calendar-
// under-loss regression, and the named round-budget status.
#include "simulator/transport.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "decomposition/elkin_neiman_distributed.hpp"
#include "graph/generators.hpp"
#include "simulator/engine.hpp"

namespace dsnd {
namespace {

Graph make_family(const std::string& family, VertexId n,
                  std::uint64_t seed) {
  if (family == "gnp") return make_gnp(n, 6.0 / std::max(n - 1, 1), seed);
  if (family == "ring") return make_cycle(n);
  return make_hyperbolic(n, 6.0, 2.7, seed);
}

DistributedRun run_theorem(int theorem, const Graph& g, std::uint64_t seed,
                           const EngineOptions& engine) {
  if (theorem == 1) {
    ElkinNeimanOptions options;
    options.k = 4;
    options.seed = seed;
    return elkin_neiman_distributed(g, options, engine);
  }
  if (theorem == 2) {
    MultistageOptions options;
    options.k = 3;
    options.seed = seed;
    return multistage_distributed(g, options, engine);
  }
  HighRadiusOptions options;
  options.lambda = 3;
  options.seed = seed;
  return high_radius_distributed(g, options, engine);
}

void expect_identical(const DistributedRun& a, const DistributedRun& b,
                      const std::string& label) {
  ASSERT_EQ(a.run.carve.phases_used, b.run.carve.phases_used) << label;
  ASSERT_EQ(a.run.carve.retries, b.run.carve.retries) << label;
  ASSERT_EQ(a.run.carve.rounds, b.run.carve.rounds) << label;
  EXPECT_EQ(a.run.carve.status, b.run.carve.status) << label;
  const Clustering& ca = a.run.clustering();
  const Clustering& cb = b.run.clustering();
  ASSERT_EQ(ca.num_clusters(), cb.num_clusters()) << label;
  for (VertexId v = 0; v < ca.num_vertices(); ++v) {
    ASSERT_EQ(ca.cluster_of(v), cb.cluster_of(v)) << label << " v=" << v;
  }
  EXPECT_EQ(a.sim.messages, b.sim.messages) << label;
  EXPECT_EQ(a.sim.words, b.sim.words) << label;
  EXPECT_EQ(a.sim.messages_per_round, b.sim.messages_per_round) << label;
  EXPECT_EQ(a.sim.vertex_activations, b.sim.vertex_activations) << label;
}

TEST(Transport, ReliableExplicitMatchesDefault) {
  const Graph g = make_family("gnp", 96, 11);
  const DistributedRun baseline = run_theorem(1, g, 17, EngineOptions{});
  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    ReliableTransport transport;
    EngineOptions engine;
    engine.threads = threads;
    engine.transport = &transport;
    expect_identical(run_theorem(1, g, 17, engine), baseline,
                     "explicit reliable, threads=" + std::to_string(threads));
  }
}

TEST(Transport, ZeroFaultFaultyMatrixBitIdentical) {
  // The refactor-fidelity matrix: a FaultyTransport whose plan cannot
  // perturb anything must reproduce the default engine exchange exactly
  // — for every theorem, family, and thread count, including shard
  // widths that do not divide the vertex count (threads=7).
  for (const int theorem : {1, 2, 3}) {
    for (const char* family : {"gnp", "ring", "hyperbolic"}) {
      const Graph g = make_family(family, 96, 5);
      const std::uint64_t seed = 41 * static_cast<std::uint64_t>(theorem);
      const DistributedRun baseline =
          run_theorem(theorem, g, seed, EngineOptions{});
      EXPECT_EQ(baseline.run.carve.status, CarveStatus::kOk);
      EXPECT_EQ(baseline.run.carve.run_retries, 0);
      EXPECT_EQ(baseline.run.carve.faults.total(), 0u);
      for (const unsigned threads : {1u, 2u, 4u, 7u}) {
        FaultyTransport transport(FaultPlan{});
        ASSERT_FALSE(transport.lossy());
        EngineOptions engine;
        engine.threads = threads;
        engine.transport = &transport;
        expect_identical(run_theorem(theorem, g, seed, engine), baseline,
                         std::string("T") + std::to_string(theorem) + " " +
                             family + " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(Transport, ChaosDeterministicAcrossThreadCounts) {
  // The chaos twin of the shard-invariance matrix: with a mixed fault
  // plan active, outcome, clustering, retry count, message totals, and
  // the fault counters themselves must be identical for every thread
  // count.
  const Graph g = make_family("gnp", 96, 5);
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_rate = 0.02;
  plan.duplicate_rate = 0.01;
  plan.delay_rate = 0.01;
  plan.max_delay_rounds = 2;
  plan.reorder_rate = 0.05;
  plan.crashes.push_back(CrashSpan{90, 96, 40});

  struct Outcome {
    DistributedRun run;
    FaultCounters faults;
  };
  std::vector<Outcome> outcomes;
  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    FaultyTransport transport(plan);
    ASSERT_TRUE(transport.lossy());
    EngineOptions engine;
    engine.threads = threads;
    engine.transport = &transport;
    outcomes.push_back(Outcome{run_theorem(1, g, 23, engine), {}});
    outcomes.back().faults = outcomes.back().run.run.carve.faults;
  }
  const Outcome& first = outcomes.front();
  // The run must have actually seen faults, or the matrix proves nothing.
  EXPECT_GT(first.faults.total(), 0u);
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    const std::string label = "chaos outcome " + std::to_string(i);
    EXPECT_EQ(outcomes[i].faults.dropped, first.faults.dropped) << label;
    EXPECT_EQ(outcomes[i].faults.delayed, first.faults.delayed) << label;
    EXPECT_EQ(outcomes[i].faults.duplicated, first.faults.duplicated)
        << label;
    EXPECT_EQ(outcomes[i].faults.crashed, first.faults.crashed) << label;
    EXPECT_EQ(outcomes[i].run.run.carve.run_retries,
              first.run.run.carve.run_retries)
        << label;
    expect_identical(outcomes[i].run, first.run, label);
  }
}

/// Satellite-2 regression harness: vertex 0 sends one message to vertex
/// 1 in round 0, and every vertex schedules a self-wake for round 2.
/// Under a targeted drop of that one message, vertex 1 must still run at
/// its scheduled wake — self-wakes are local timers, not network traffic.
class WakeUnderLoss final : public Protocol {
 public:
  void begin(const Graph& g) override {
    executed_.assign(static_cast<std::size_t>(g.num_vertices()), {});
    inbox_sizes_.assign(static_cast<std::size_t>(g.num_vertices()), {});
  }
  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    executed_[static_cast<std::size_t>(v)].push_back(round);
    inbox_sizes_[static_cast<std::size_t>(v)].push_back(inbox.size());
    if (round == 0) {
      if (v == 0) out.send(1, {std::uint64_t{7}});
      out.wake_self_in(2);
    }
  }
  bool finished() const override { return false; }

  std::vector<std::vector<std::size_t>> executed_;
  std::vector<std::vector<std::size_t>> inbox_sizes_;
};

TEST(Transport, TargetedDropLeavesWakeCalendarIntact) {
  const Graph g = make_path(2);
  FaultPlan plan;
  plan.targeted_drops.push_back(EdgeDrop{0, 0, 1});
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  WakeUnderLoss protocol;
  SyncEngine sim(g, engine);
  const SimMetrics metrics = sim.run(protocol, 10);

  EXPECT_EQ(metrics.faults.dropped, 1u);
  EXPECT_EQ(metrics.messages, 0u);
  // Vertex 1 never received the message...
  ASSERT_EQ(protocol.executed_[1],
            (std::vector<std::size_t>{0, 2}));  // round 0 + the round-2 wake
  EXPECT_EQ(protocol.inbox_sizes_[1], (std::vector<std::size_t>{0, 0}));
  // ...but its scheduled self-wake fired on time regardless, and the
  // run then went quiescent instead of hanging.
  EXPECT_EQ(metrics.status, RunStatus::kQuiescent);
}

/// Records, per vertex, the round of every message arrival and the
/// sender order within each round. Vertex 0 sends one fixed message to
/// each neighbor in round 0 (or every round when `chatty`).
class ArrivalRecorder final : public Protocol {
 public:
  explicit ArrivalRecorder(bool chatty = false) : chatty_(chatty) {}
  void begin(const Graph& g) override {
    arrivals_.assign(static_cast<std::size_t>(g.num_vertices()), {});
  }
  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    for (const MessageView& msg : inbox) {
      arrivals_[static_cast<std::size_t>(v)].emplace_back(round, msg.from);
    }
    if (v == 0 && (round == 0 || chatty_)) {
      out.send_to_all_neighbors({std::uint64_t{1}});
      if (chatty_) out.wake_self_in(1);
    }
  }
  bool finished() const override { return false; }

  bool chatty_;
  std::vector<std::vector<std::pair<std::size_t, VertexId>>> arrivals_;
};

TEST(Transport, DelayArrivesExactlyKRoundsLate) {
  const Graph g = make_path(2);
  FaultPlan plan;
  plan.delay_rate = 1.0;  // every message delayed...
  plan.max_delay_rounds = 1;  // ...by exactly one round
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  ArrivalRecorder protocol;
  SyncEngine sim(g, engine);
  const SimMetrics metrics = sim.run(protocol, 10);

  // Reliable delivery would arrive at round 1; the delayed copy lands at
  // round 2 — which also proves the quiescence check respects
  // Transport::pending(): at round 1 nothing is active and no wake is
  // pending, only the in-flight message keeps the run alive.
  ASSERT_EQ(protocol.arrivals_[1].size(), 1u);
  EXPECT_EQ(protocol.arrivals_[1][0],
            (std::pair<std::size_t, VertexId>{2, 0}));
  EXPECT_EQ(metrics.faults.delayed, 1u);
  EXPECT_EQ(metrics.status, RunStatus::kQuiescent);
  EXPECT_EQ(metrics.rounds, 3u);
}

TEST(Transport, DuplicateDeliversTwoCopies) {
  const Graph g = make_path(2);
  FaultPlan plan;
  plan.duplicate_rate = 1.0;
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  ArrivalRecorder protocol;
  SyncEngine sim(g, engine);
  const SimMetrics metrics = sim.run(protocol, 10);

  ASSERT_EQ(protocol.arrivals_[1].size(), 2u);
  EXPECT_EQ(protocol.arrivals_[1][0],
            (std::pair<std::size_t, VertexId>{1, 0}));
  EXPECT_EQ(protocol.arrivals_[1][1],
            (std::pair<std::size_t, VertexId>{1, 0}));
  EXPECT_EQ(metrics.faults.duplicated, 1u);
  // `messages` counts what was DELIVERED: both copies.
  EXPECT_EQ(metrics.messages, 2u);
}

TEST(Transport, CrashSpanSilencesFromRound) {
  const Graph g = make_path(2);
  FaultPlan plan;
  plan.crashes.push_back(CrashSpan{0, 1, 1});  // vertex 0 dies at round 1
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  ArrivalRecorder protocol(/*chatty=*/true);
  SyncEngine sim(g, engine);
  const SimMetrics metrics = sim.run(protocol, 4);

  // Only the round-0 send escaped; rounds 1-3 were suppressed.
  ASSERT_EQ(protocol.arrivals_[1].size(), 1u);
  EXPECT_EQ(protocol.arrivals_[1][0],
            (std::pair<std::size_t, VertexId>{1, 0}));
  EXPECT_EQ(metrics.faults.crashed, 3u);
}

TEST(Transport, CrashRecoverySpanSuppressesSenderOnlyDuringWindow) {
  // Crash-RECOVERY span: vertex 0 is down for rounds [1, 3) and then
  // rejoins. Its round-0 send lands normally; the rounds-1 and -2 sends
  // vanish; from round 3 onward traffic flows again — exactly one
  // rejoin billed when the window closes.
  const Graph g = make_path(2);
  FaultPlan plan;
  plan.crashes.push_back(
      CrashSpan{0, 1, std::uint64_t{1}, std::uint64_t{3}});
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  ArrivalRecorder protocol(/*chatty=*/true);
  SyncEngine sim(g, engine);
  const SimMetrics metrics = sim.run(protocol, 6);

  std::vector<std::size_t> rounds_seen;
  for (const auto& [round, from] : protocol.arrivals_[1]) {
    EXPECT_EQ(from, 0);
    rounds_seen.push_back(round);
  }
  EXPECT_EQ(rounds_seen, (std::vector<std::size_t>{1, 4, 5}));
  EXPECT_EQ(metrics.faults.crashed, 2u);
  EXPECT_EQ(metrics.faults.rejoined, 1u);
}

TEST(Transport, CrashRecoverySpanSuppressesInboundWhileDown) {
  // Same window on the RECEIVER: a recovery-mode outage is two-sided,
  // so sends staged while vertex 1 is down (rounds 1 and 2) never reach
  // it, while the legacy crash-stop regime below stays outbound-only.
  const Graph g = make_path(2);
  FaultPlan plan;
  plan.crashes.push_back(
      CrashSpan{1, 2, std::uint64_t{1}, std::uint64_t{3}});
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  ArrivalRecorder protocol(/*chatty=*/true);
  SyncEngine sim(g, engine);
  const SimMetrics metrics = sim.run(protocol, 6);

  std::vector<std::size_t> rounds_seen;
  for (const auto& [round, from] : protocol.arrivals_[1]) {
    rounds_seen.push_back(round);
  }
  EXPECT_EQ(rounds_seen, (std::vector<std::size_t>{1, 4, 5}));
  EXPECT_EQ(metrics.faults.crashed, 2u);
  EXPECT_EQ(metrics.faults.rejoined, 1u);
}

TEST(Transport, LegacyCrashStopReceiverStillReceives) {
  // Regression pin for the legacy regime: a CrashSpan WITHOUT a rejoin
  // round silences only the vertex's outbound sends. Vertex 1 never
  // sends here, so nothing is suppressed and every round's message
  // arrives — existing crash-stop fault plans are untouched by the
  // recovery model.
  const Graph g = make_path(2);
  FaultPlan plan;
  plan.crashes.push_back(CrashSpan{1, 2, std::uint64_t{1}});
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  ArrivalRecorder protocol(/*chatty=*/true);
  SyncEngine sim(g, engine);
  const SimMetrics metrics = sim.run(protocol, 6);

  std::vector<std::size_t> rounds_seen;
  for (const auto& [round, from] : protocol.arrivals_[1]) {
    rounds_seen.push_back(round);
  }
  EXPECT_EQ(rounds_seen, (std::vector<std::size_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(metrics.faults.crashed, 0u);
  EXPECT_EQ(metrics.faults.rejoined, 0u);
}

TEST(Transport, NestedFaultyTransportPropagatesPendingAndLossy) {
  // A zero-fault FaultyTransport wrapping a delaying inner transport:
  // the outer layer must surface the inner calendar through pending()
  // (else quiescence/elision fires while a message is in flight in the
  // INNER calendar and the delivery is lost) and report lossy() from
  // the inner plan (else the carve loop skips validation).
  const Graph g = make_path(2);
  FaultPlan inner_plan;
  inner_plan.delay_rate = 1.0;
  inner_plan.max_delay_rounds = 1;
  FaultyTransport inner(inner_plan);
  FaultyTransport outer(FaultPlan{}, &inner);
  EXPECT_TRUE(outer.lossy());

  EngineOptions engine;
  engine.transport = &outer;
  ArrivalRecorder protocol;
  SyncEngine sim(g, engine);
  const SimMetrics metrics = sim.run(protocol, 10);

  // Same schedule as DelayArrivesExactlyKRoundsLate: the delayed copy
  // must land at round 2 even though it was parked one layer down.
  ASSERT_EQ(protocol.arrivals_[1].size(), 1u);
  EXPECT_EQ(protocol.arrivals_[1][0],
            (std::pair<std::size_t, VertexId>{2, 0}));
  EXPECT_EQ(metrics.faults.delayed, 1u);
  EXPECT_EQ(metrics.status, RunStatus::kQuiescent);
  EXPECT_EQ(metrics.rounds, 3u);
}

TEST(Transport, ReorderIsDeterministicAndAPermutation) {
  // Complete graph: every vertex sends its id to all others in round 0,
  // so each receiver sees 5 senders in ascending order on a reliable
  // run. Reorder marks sink stably to the back — the multiset is
  // preserved, the order changes, and the result is identical for every
  // thread count.
  const Graph g = make_gnp(6, 1.0, 1);
  class Broadcast final : public Protocol {
   public:
    void begin(const Graph& gr) override {
      order_.assign(static_cast<std::size_t>(gr.num_vertices()), {});
    }
    void on_round(VertexId v, std::size_t round,
                  std::span<const MessageView> inbox, Outbox& out) override {
      for (const MessageView& msg : inbox) {
        order_[static_cast<std::size_t>(v)].push_back(msg.from);
      }
      if (round == 0) {
        out.send_to_all_neighbors({static_cast<std::uint64_t>(v)});
      }
    }
    bool finished() const override { return false; }
    std::vector<std::vector<VertexId>> order_;
  };

  FaultPlan plan;
  plan.seed = 3;
  plan.reorder_rate = 0.5;
  std::vector<std::vector<std::vector<VertexId>>> per_thread_orders;
  for (const unsigned threads : {1u, 2u, 4u}) {
    FaultyTransport transport(plan);
    EngineOptions engine;
    engine.threads = threads;
    engine.transport = &transport;
    Broadcast protocol;
    SyncEngine sim(g, engine);
    sim.run(protocol, 5);
    per_thread_orders.push_back(protocol.order_);
  }
  bool any_reordered = false;
  for (VertexId v = 0; v < 6; ++v) {
    const std::vector<VertexId>& order =
        per_thread_orders[0][static_cast<std::size_t>(v)];
    ASSERT_EQ(order.size(), 5u) << "v=" << v;
    std::vector<VertexId> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    // Every sender delivered exactly once (a permutation, not a loss)...
    std::vector<VertexId> expected;
    for (VertexId u = 0; u < 6; ++u) {
      if (u != v) expected.push_back(u);
    }
    EXPECT_EQ(sorted, expected) << "v=" << v;
    if (order != expected) any_reordered = true;
    // ...in the same order under every thread count.
    for (std::size_t i = 1; i < per_thread_orders.size(); ++i) {
      EXPECT_EQ(per_thread_orders[i][static_cast<std::size_t>(v)], order)
          << "v=" << v << " threads index " << i;
    }
  }
  // The chosen seed must actually exercise the reorder path.
  EXPECT_TRUE(any_reordered);
}

/// Never finishes and runs every vertex every round: the protocol shape
/// that would spin forever without a round budget.
class SpinForever final : public Protocol {
 public:
  void begin(const Graph&) override {}
  void on_round(VertexId, std::size_t, std::span<const MessageView>,
                Outbox&) override {}
  bool finished() const override { return false; }
  bool needs_spontaneous_rounds() const override { return true; }
};

TEST(Transport, RoundBudgetExhaustedIsNamed) {
  const Graph g = make_path(4);
  SpinForever protocol;
  {
    // EngineOptions::max_rounds caps below the run() argument.
    EngineOptions engine;
    engine.max_rounds = 5;
    SyncEngine sim(g, engine);
    const SimMetrics metrics = sim.run(protocol, 1000);
    EXPECT_EQ(metrics.rounds, 5u);
    EXPECT_EQ(metrics.status, RunStatus::kRoundBudgetExhausted);
  }
  {
    // The run() argument still applies when the option is unset.
    SyncEngine sim(g);
    const SimMetrics metrics = sim.run(protocol, 7);
    EXPECT_EQ(metrics.rounds, 7u);
    EXPECT_EQ(metrics.status, RunStatus::kRoundBudgetExhausted);
  }
  {
    // A protocol that merely goes quiet is named kQuiescent...
    ArrivalRecorder quiet;
    SyncEngine sim(g);
    const SimMetrics metrics = sim.run(quiet, 100);
    EXPECT_EQ(metrics.status, RunStatus::kQuiescent);
  }
  {
    // ...and one whose predicate fires is kFinished.
    class OneRound final : public Protocol {
     public:
      void begin(const Graph&) override {}
      void on_round(VertexId, std::size_t, std::span<const MessageView>,
                    Outbox&) override {
        done_ = true;
      }
      bool finished() const override { return done_; }
      bool done_ = false;
    };
    OneRound finishing;
    SyncEngine sim(g);
    const SimMetrics metrics = sim.run(finishing, 100);
    EXPECT_EQ(metrics.status, RunStatus::kFinished);
  }
}

TEST(Transport, StatusNamesAvoidTheInvalidKeyword) {
  // CI greps bench JSON for "INVALID" to catch silent contract
  // violations; named failure statuses must never trip that grep.
  for (const RunStatus status :
       {RunStatus::kFinished, RunStatus::kQuiescent,
        RunStatus::kRoundBudgetExhausted}) {
    EXPECT_EQ(std::string(run_status_name(status)).find("INVALID"),
              std::string::npos);
  }
  for (const CarveStatus status :
       {CarveStatus::kOk, CarveStatus::kRoundBudgetExhausted,
        CarveStatus::kStalled, CarveStatus::kRejected}) {
    EXPECT_EQ(std::string(carve_status_name(status)).find("INVALID"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dsnd
