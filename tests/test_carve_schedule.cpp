// The schedule abstraction itself: the theorem factories are the single
// source of truth for betas/bounds, the wrappers are thin instantiations
// of run_schedule, and the schedule totals match the paper's formulas.
#include "decomposition/carve_schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "decomposition/elkin_neiman.hpp"
#include "decomposition/high_radius.hpp"
#include "decomposition/multistage.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(CarveSchedule, Theorem1FactoryMatchesFormulas) {
  const VertexId n = 256;
  const std::int32_t k = 4;
  const double c = 4.0;
  const CarveSchedule s = theorem1_schedule(n, k, c);
  EXPECT_EQ(s.target_phases(), elkin_neiman_target_phases(n, k, c));
  for (const double beta : s.betas) {
    EXPECT_DOUBLE_EQ(beta, elkin_neiman_beta(n, k, c));
  }
  EXPECT_EQ(s.phase_rounds, k);
  EXPECT_DOUBLE_EQ(s.radius_overflow_at, k + 1.0);
  EXPECT_DOUBLE_EQ(s.k, static_cast<double>(k));
  EXPECT_DOUBLE_EQ(s.bounds.strong_diameter, 2.0 * k - 2.0);
  EXPECT_DOUBLE_EQ(s.bounds.colors, static_cast<double>(s.target_phases()));
  EXPECT_DOUBLE_EQ(s.bounds.rounds, k * s.bounds.colors);
  EXPECT_DOUBLE_EQ(s.bounds.success_probability, 1.0 - 3.0 / c);
}

TEST(CarveSchedule, Theorem1AutoKSelectsCeilLogN) {
  const CarveSchedule s = theorem1_schedule(1024, 0, 4.0);
  EXPECT_DOUBLE_EQ(s.k, std::ceil(std::log(1024.0)));
  EXPECT_EQ(s.phase_rounds, static_cast<std::int32_t>(s.k));
}

TEST(CarveSchedule, Theorem2TotalsMatchBetaSchedule) {
  const VertexId n = 256;
  const std::int32_t k = 4;
  const double c = 6.0;
  const CarveSchedule s = theorem2_schedule(n, k, c);
  const auto betas = multistage_beta_schedule(n, k, c);
  ASSERT_EQ(s.betas.size(), betas.size());
  for (std::size_t t = 0; t < betas.size(); ++t) {
    EXPECT_DOUBLE_EQ(s.betas[t], betas[t]) << "phase " << t;
  }
  // Total scheduled phases stay within the theorem's 4k(cn)^{1/k} color
  // budget plus per-stage rounding slack.
  const double cn = c * static_cast<double>(n);
  EXPECT_DOUBLE_EQ(s.bounds.colors, 4.0 * k * std::pow(cn, 1.0 / k));
  EXPECT_LE(static_cast<double>(s.target_phases()),
            s.bounds.colors + std::log(static_cast<double>(n)) + 2.0);
  EXPECT_DOUBLE_EQ(s.bounds.success_probability, 1.0 - 5.0 / c);
  // Stage-decaying: betas never increase across the schedule.
  for (std::size_t t = 1; t < s.betas.size(); ++t) {
    EXPECT_LE(s.betas[t], s.betas[t - 1]);
  }
}

TEST(CarveSchedule, Theorem3RealKRounds) {
  const VertexId n = 100;
  const std::int32_t lambda = 2;
  const double c = 4.0;
  const CarveSchedule s = theorem3_schedule(n, lambda, c);
  const double k = high_radius_k(n, lambda, c);
  // The real-valued k shows up as ceil(k) broadcast rounds per phase and
  // exactly lambda scheduled phases at beta = ln(cn)/k = (cn)^{-1/lambda}.
  EXPECT_DOUBLE_EQ(s.k, k);
  EXPECT_EQ(s.phase_rounds, static_cast<std::int32_t>(std::ceil(k)));
  EXPECT_EQ(s.target_phases(), lambda);
  const double cn = c * static_cast<double>(n);
  for (const double beta : s.betas) {
    EXPECT_NEAR(beta, std::pow(cn, -1.0 / lambda), 1e-12);
  }
  EXPECT_DOUBLE_EQ(s.radius_overflow_at, k + 1.0);
  EXPECT_DOUBLE_EQ(s.bounds.strong_diameter, 2.0 * k);
  EXPECT_DOUBLE_EQ(s.bounds.colors, static_cast<double>(lambda));
  EXPECT_DOUBLE_EQ(s.bounds.rounds, lambda * k);
}

TEST(CarveSchedule, ParamsLowersScheduleVerbatim) {
  const CarveSchedule s = theorem2_schedule(128, 3, 6.0);
  const CarveParams p = s.params(/*seed=*/77, /*run_to_completion=*/false,
                                 /*margin=*/0.5);
  EXPECT_EQ(p.betas, s.betas);
  EXPECT_EQ(p.phase_rounds, s.phase_rounds);
  EXPECT_DOUBLE_EQ(p.radius_overflow_at, s.radius_overflow_at);
  EXPECT_EQ(p.seed, 77u);
  EXPECT_FALSE(p.run_to_completion);
  EXPECT_DOUBLE_EQ(p.margin, 0.5);
}

TEST(CarveSchedule, WrappersAreThinScheduleInstantiations) {
  // The options-struct entry points must behave exactly like building
  // the schedule and calling run_schedule — no second derivation path.
  const Graph g = make_gnp(120, 0.06, 9);
  const std::uint64_t seed = 31;
  {
    ElkinNeimanOptions options;
    options.k = 4;
    options.seed = seed;
    const DecompositionRun a = elkin_neiman_decomposition(g, options);
    const DecompositionRun b = run_schedule(
        g, theorem1_schedule(g.num_vertices(), 4, options.c), seed);
    EXPECT_EQ(a.carve.phases_used, b.carve.phases_used);
    EXPECT_DOUBLE_EQ(a.bounds.colors, b.bounds.colors);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(a.clustering().cluster_of(v), b.clustering().cluster_of(v));
    }
  }
  {
    MultistageOptions options;
    options.k = 3;
    options.seed = seed;
    const DecompositionRun a = multistage_decomposition(g, options);
    const DecompositionRun b = run_schedule(
        g, theorem2_schedule(g.num_vertices(), 3, options.c), seed);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(a.clustering().cluster_of(v), b.clustering().cluster_of(v));
    }
  }
  {
    HighRadiusOptions options;
    options.lambda = 3;
    options.seed = seed;
    const DecompositionRun a = high_radius_decomposition(g, options);
    const DecompositionRun b = run_schedule(
        g, theorem3_schedule(g.num_vertices(), 3, options.c), seed);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(a.clustering().cluster_of(v), b.clustering().cluster_of(v));
    }
  }
}

TEST(CarveSchedule, RunScheduleAttachesBounds) {
  const Graph g = make_path(60);
  const CarveSchedule s = theorem1_schedule(60, 3, 4.0);
  const DecompositionRun run = run_schedule(g, s, 5);
  EXPECT_DOUBLE_EQ(run.bounds.strong_diameter, s.bounds.strong_diameter);
  EXPECT_DOUBLE_EQ(run.bounds.colors, s.bounds.colors);
  EXPECT_DOUBLE_EQ(run.k, s.k);
  EXPECT_DOUBLE_EQ(run.c, s.c);
  EXPECT_EQ(run.carve.target_phases, s.target_phases());
}

TEST(CarveSchedule, RejectsBadParameters) {
  EXPECT_THROW(theorem1_schedule(0, 3, 4.0), std::invalid_argument);
  EXPECT_THROW(theorem1_schedule(100, -1, 4.0), std::invalid_argument);
  EXPECT_THROW(theorem2_schedule(100, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(theorem3_schedule(100, 0, 4.0), std::invalid_argument);
  CarveSchedule empty;
  EXPECT_THROW(empty.params(1), std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
