// Verifies the arena engine's zero-per-message-allocation guarantee:
// once the engine's buffers are warm (first run), a full run making
// hundreds of thousands of sends performs only a small constant number
// of heap allocations (the metrics snapshot returned at the end) —
// none per message, per inbox, or per round.
//
// The global operator new/delete are replaced with counting versions.
// Each test brackets its own measurement window with before/after
// counter reads, so gtest bookkeeping between tests never pollutes a
// window.
#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "decomposition/carving_protocol.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/generators.hpp"
#include "service/decomposition_service.hpp"
#include "simulator/engine.hpp"
#include "simulator/transport.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dsnd {
namespace {

/// Every vertex broadcasts a fixed-width message to all neighbors every
/// round — the allocation-heavy worst case for the old per-message
/// std::vector engine, allocation-free on the arena engine.
class BroadcastStorm final : public Protocol {
 public:
  void begin(const Graph&) override {}
  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView>, Outbox& out) override {
    out.send_to_all_neighbors({static_cast<std::uint64_t>(v), round});
  }
  bool finished() const override { return false; }
  // Spontaneous by design: keeps every vertex sending every round so the
  // message volume is maximal.
  bool needs_spontaneous_rounds() const override { return true; }
};

TEST(EngineAllocations, SteadyStateRoundsAllocateNothingPerMessage) {
  const Graph g = make_gnp(500, 8.0 / 499.0, 5);
  BroadcastStorm protocol;
  SyncEngine engine(g);

  // Warm-up run: grows every engine buffer to its steady-state capacity.
  engine.run(protocol, 50);

  const std::size_t before = g_allocations.load();
  const SimMetrics metrics = engine.run(protocol, 50);
  const std::size_t during = g_allocations.load() - before;

  // ~2 messages per edge per round for 50 rounds: a lot of traffic.
  EXPECT_GT(metrics.messages, 100000u);
  // The only allocations permitted are the O(1) end-of-run metrics
  // snapshot — nothing proportional to messages or rounds.
  EXPECT_LE(during, 16u);
}

// The warm path end to end: a reusable CarveContext whose engine, pool,
// and protocol arrays were warmed by a cold run must execute further
// full carves — salted Lemma 1 recarves included — allocating only for
// the returned result (clustering, metrics series), nothing per
// message, per round, or per retry.
TEST(EngineAllocations, WarmCarveContextRunsAllocateOnlyTheResult) {
  const VertexId n = 20000;
  const Graph g = make_gnp(n, 8.0 / (n - 1), 1);
  // The overflow-smoke configuration: a threshold low enough that the
  // recarve loop fires on this seed, so the measured warm runs cover the
  // salted resampling path too.
  CarveSchedule schedule = theorem1_schedule(n, 0, 4.0);
  schedule.radius_overflow_at = 8.5;
  schedule.max_retries_per_phase = 64;

  CarveContext context(g);
  const DistributedRun cold = run_schedule_distributed(context, schedule, 42);
  ASSERT_GT(cold.run.carve.retries, 0);

  const std::size_t before_a = g_allocations.load();
  const DistributedRun warm_a =
      run_schedule_distributed(context, schedule, 42);
  const std::size_t allocs_a = g_allocations.load() - before_a;

  const std::size_t before_b = g_allocations.load();
  const DistributedRun warm_b =
      run_schedule_distributed(context, schedule, 42);
  const std::size_t allocs_b = g_allocations.load() - before_b;

  EXPECT_GT(warm_a.sim.messages, 50000u);
  EXPECT_GT(static_cast<std::uint64_t>(warm_a.sim.rounds), 100u);
  EXPECT_GT(warm_a.run.carve.retries, 0);
  EXPECT_EQ(warm_b.sim.messages, warm_a.sim.messages);
  // Later warm runs never allocate more than earlier ones (all buffer
  // capacity is retained), and the absolute count stays result-sized:
  // orders of magnitude below the message/round volume above.
  EXPECT_LE(allocs_b, allocs_a);
  EXPECT_LE(allocs_b, 4096u);
}

// The warm guarantee through the service layer: after the first
// submission for a graph has built its pooled context, further
// cache-bypassing submissions run on that warm context and allocate
// only result-sized state (response, clustering, validation scratch) —
// the service adds scheduling and accounting, never a per-request
// engine rebuild.
TEST(EngineAllocations, WarmServiceSubmissionsAllocateOnlyTheResult) {
  const VertexId n = 20000;
  const Graph g = make_gnp(n, 8.0 / (n - 1), 1);
  ServiceOptions options;
  options.cache_capacity = 0;  // every submission must really carve
  DecompositionService service(options);
  service.register_graph_view("g", g);
  ServiceRequest request;
  request.graph_id = "g";
  request.schedule = theorem1_schedule(n, 0, 4.0);
  request.seed = 42;
  const ServiceResponse cold = service.submit(request);
  ASSERT_EQ(cold.status, "ok");

  const std::size_t before_a = g_allocations.load();
  const ServiceResponse warm_a = service.submit(request);
  const std::size_t allocs_a = g_allocations.load() - before_a;

  const std::size_t before_b = g_allocations.load();
  const ServiceResponse warm_b = service.submit(request);
  const std::size_t allocs_b = g_allocations.load() - before_b;

  EXPECT_GT(warm_a.result->run.sim.messages, 50000u);
  EXPECT_EQ(warm_b.result->run.sim.messages,
            warm_a.result->run.sim.messages);
  EXPECT_EQ(service.stats().contexts_created, 1u);
  EXPECT_LE(allocs_b, allocs_a);
  EXPECT_LE(allocs_b, 4096u);
}

// The same warm guarantee under recovery: a faulted context whose first
// run exercised checkpoint capture, rollback restore, and replay has
// sized the RecoveryArena's buffers — further faulted carves (same
// rollbacks, same replays) stay result-sized, allocating nothing per
// checkpoint, per rollback, or per validated phase.
TEST(EngineAllocations, WarmFaultedContextRecoveryAllocatesOnlyTheResult) {
  const VertexId n = 128;
  const Graph g = make_gnp(n, 0.05, 1);
  const CarveSchedule schedule = theorem1_schedule(n, 4, 4.0);
  FaultPlan plan;
  plan.seed = 8;
  plan.drop_rate = 0.05;
  plan.crashes.push_back(
      CrashSpan{100, 110, std::uint64_t{8}, std::uint64_t{20}});
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;

  CarveContext context(g, engine);
  const DistributedRun cold = run_schedule_distributed(context, schedule, 1);
  // The measurement below must cover the recovery machinery, not a
  // clean first-attempt pass.
  ASSERT_GT(cold.run.carve.rollbacks, 0);

  const std::size_t before_a = g_allocations.load();
  const DistributedRun warm_a = run_schedule_distributed(context, schedule, 3);
  const std::size_t allocs_a = g_allocations.load() - before_a;

  const std::size_t before_b = g_allocations.load();
  const DistributedRun warm_b = run_schedule_distributed(context, schedule, 3);
  const std::size_t allocs_b = g_allocations.load() - before_b;

  EXPECT_EQ(warm_a.run.carve.rollbacks, cold.run.carve.rollbacks);
  EXPECT_EQ(warm_a.run.carve.replayed_phases, cold.run.carve.replayed_phases);
  EXPECT_EQ(warm_b.sim.messages, warm_a.sim.messages);
  EXPECT_LE(allocs_b, allocs_a);
  EXPECT_LE(allocs_b, 4096u);
}

}  // namespace
}  // namespace dsnd
