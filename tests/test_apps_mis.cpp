#include "apps/mis.hpp"

#include <gtest/gtest.h>

#include "apps/checkers.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

DecompositionRun decompose(const Graph& g, std::uint64_t seed) {
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = seed;
  return elkin_neiman_decomposition(g, options);
}

TEST(Checkers, IndependentSetBasics) {
  const Graph g = make_path(4);
  EXPECT_TRUE(is_independent_set(g, {1, 0, 1, 0}));
  EXPECT_FALSE(is_independent_set(g, {1, 1, 0, 0}));
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 0, 1, 0}));
  // {0} alone is independent but not maximal: vertex 2 could be added.
  EXPECT_FALSE(is_maximal_independent_set(g, {1, 0, 0, 0}));
}

TEST(MisByDecomposition, ValidOnFamilies) {
  for (const char* family :
       {"grid", "gnp-sparse", "gnp-dense", "cycle", "random-tree",
        "ring-of-cliques", "small-world"}) {
    const Graph g = family_by_name(family).make(128, 3);
    const DecompositionRun run = decompose(g, 3);
    const MisResult result = mis_by_decomposition(g, run.clustering());
    EXPECT_TRUE(is_maximal_independent_set(g, result.in_mis)) << family;
  }
}

TEST(MisByDecomposition, RoundCostMatchesDChiShape) {
  const Graph g = make_gnp(150, 0.05, 7);
  const DecompositionRun run = decompose(g, 7);
  const MisResult result = mis_by_decomposition(g, run.clustering());
  // rounds <= (2D + 2) * chi with D the max cluster diameter.
  const std::int64_t upper =
      (2 * static_cast<std::int64_t>(result.cost.max_cluster_diameter) + 2) *
      result.cost.color_classes;
  EXPECT_LE(result.cost.rounds, upper);
  EXPECT_GT(result.cost.rounds, 0);
  // color_classes counts non-empty classes; phases that carved nothing
  // consume a color index but no pipeline time.
  EXPECT_LE(result.cost.color_classes, run.clustering().num_colors());
  EXPECT_GT(result.cost.color_classes, 0);
}

TEST(MisByDecomposition, CompleteGraphPicksExactlyOne) {
  const Graph g = make_complete(20);
  const DecompositionRun run = decompose(g, 5);
  const MisResult result = mis_by_decomposition(g, run.clustering());
  int count = 0;
  for (char b : result.in_mis) count += b;
  EXPECT_EQ(count, 1);
}

TEST(MisByDecomposition, EmptyEdgeSetTakesAll) {
  const Graph g = Graph::from_edges(10, {});
  const DecompositionRun run = decompose(g, 1);
  const MisResult result = mis_by_decomposition(g, run.clustering());
  for (char b : result.in_mis) EXPECT_EQ(b, 1);
}

TEST(GreedyMis, IsValidOracle) {
  for (const char* family : {"grid", "gnp-dense", "cycle"}) {
    const Graph g = family_by_name(family).make(100, 9);
    EXPECT_TRUE(is_maximal_independent_set(g, greedy_mis(g))) << family;
  }
}

TEST(MisByDecomposition, SizeComparableToGreedy) {
  // Both are maximal; sizes should be in the same ballpark (within 3x).
  const Graph g = make_gnp(200, 0.04, 11);
  const DecompositionRun run = decompose(g, 11);
  const MisResult result = mis_by_decomposition(g, run.clustering());
  int dec_size = 0, greedy_size = 0;
  const auto greedy = greedy_mis(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    dec_size += result.in_mis[static_cast<std::size_t>(v)];
    greedy_size += greedy[static_cast<std::size_t>(v)];
  }
  EXPECT_GT(dec_size * 3, greedy_size);
  EXPECT_GT(greedy_size * 3, dec_size);
}

}  // namespace
}  // namespace dsnd
