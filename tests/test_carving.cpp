#include "decomposition/carving.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "support/rng.hpp"

namespace dsnd {
namespace {

TEST(CarveEntry, ValueIsShiftedRadius) {
  const CarveEntry e{5.5, 2, 7};
  EXPECT_DOUBLE_EQ(e.value(), 3.5);
}

TEST(CarveEntry, BeatsByValueThenCenter) {
  const CarveEntry high{5.0, 0, 3};
  const CarveEntry low{4.0, 0, 1};
  EXPECT_TRUE(high.beats(low));
  EXPECT_FALSE(low.beats(high));
  // Tie: smaller center id wins.
  const CarveEntry tie_small{4.0, 0, 1};
  const CarveEntry tie_large{5.0, 1, 2};  // same value 4.0
  EXPECT_TRUE(tie_small.beats(tie_large));
  EXPECT_FALSE(tie_large.beats(tie_small));
}

TEST(CarveEntry, InvalidNeverBeats) {
  const CarveEntry invalid{};
  const CarveEntry valid{1.0, 0, 0};
  EXPECT_FALSE(invalid.beats(valid));
  EXPECT_TRUE(valid.beats(invalid));
  EXPECT_FALSE(invalid.valid());
}

TEST(RadiusSample, DeterministicPerPhaseAndVertex) {
  const double a = carve_radius_sample(7, 0, 3, 1.0);
  const double b = carve_radius_sample(7, 0, 3, 1.0);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(carve_radius_sample(7, 1, 3, 1.0), a);
  EXPECT_NE(carve_radius_sample(7, 0, 4, 1.0), a);
  EXPECT_NE(carve_radius_sample(8, 0, 3, 1.0), a);
}

TEST(JoinDecision, PaperRule) {
  // m1 - m2 > 1 joins; m2 defaults to 0 without a second broadcast.
  const CarveEntry best{2.5, 0, 0};   // m1 = 2.5
  const CarveEntry second{1.2, 0, 1}; // m2 = 1.2
  EXPECT_TRUE(phase_join_decision(best, second, 1.0));     // 1.3 > 1
  const CarveEntry close{1.6, 0, 1};
  EXPECT_FALSE(phase_join_decision(best, close, 1.0));     // 0.9 < 1
  EXPECT_TRUE(phase_join_decision(best, CarveEntry{}, 1.0));   // 2.5 > 1
  const CarveEntry small{0.9, 0, 0};
  EXPECT_FALSE(phase_join_decision(small, CarveEntry{}, 1.0)); // 0.9 < 1
  EXPECT_FALSE(phase_join_decision(CarveEntry{}, CarveEntry{}, 1.0));
}

// --- Ground truth cross-check of the top-2 relaxation -------------------

/// Brute-force per-vertex top-2: for every center v with d(y,v) <= ⌊r_v⌋
/// (distances in the alive-induced subgraph, paths within `max_hops`),
/// collect r_v - d and keep the best two under the same tie-break.
struct Truth {
  CarveEntry best;
  CarveEntry second;
};

std::vector<Truth> brute_force_top2(const Graph& g,
                                    const std::vector<char>& alive,
                                    const std::vector<double>& radii,
                                    std::int32_t max_hops) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<Truth> truth(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    const auto dist =
        bfs_distances_filtered(g, static_cast<VertexId>(v), alive);
    for (std::size_t y = 0; y < n; ++y) {
      if (!alive[y] || dist[y] == kUnreachable) continue;
      if (dist[y] > static_cast<std::int32_t>(std::floor(radii[v]))) {
        continue;
      }
      if (dist[y] > max_hops) continue;
      const CarveEntry entry{radii[v], dist[y], static_cast<VertexId>(v)};
      Truth& t = truth[y];
      if (entry.beats(t.best)) {
        t.second = t.best;
        t.best = entry;
      } else if (entry.beats(t.second)) {
        t.second = entry;
      }
    }
  }
  return truth;
}

void expect_matches_truth(const Graph& g, const std::vector<char>& alive,
                          const std::vector<double>& radii,
                          std::int32_t rounds) {
  const PhaseState state = run_phase_broadcast(g, alive, radii, rounds);
  const auto truth = brute_force_top2(g, alive, radii, rounds);
  for (std::size_t y = 0; y < alive.size(); ++y) {
    if (!alive[y]) continue;
    ASSERT_EQ(state.best[y].center, truth[y].best.center) << "y=" << y;
    ASSERT_EQ(state.best[y].dist, truth[y].best.dist) << "y=" << y;
    ASSERT_EQ(state.second[y].center, truth[y].second.center) << "y=" << y;
    if (truth[y].second.valid()) {
      ASSERT_EQ(state.second[y].dist, truth[y].second.dist) << "y=" << y;
    }
  }
}

TEST(PhaseBroadcast, MatchesBruteForceOnFamilies) {
  // The top-2 forwarding optimization (the CONGEST trick from the paper)
  // must compute exactly the same top-2 shifted values as full knowledge.
  for (const auto& [name, n] :
       std::vector<std::pair<std::string, VertexId>>{
           {"cycle", 24}, {"grid", 25}, {"random-tree", 30},
           {"gnp-sparse", 40}, {"ring-of-cliques", 32}}) {
    const Graph g = family_by_name(name).make(n, 11);
    const auto nn = static_cast<std::size_t>(g.num_vertices());
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      std::vector<char> alive(nn, 1);
      std::vector<double> radii(nn);
      for (std::size_t v = 0; v < nn; ++v) {
        radii[v] = carve_radius_sample(seed, 0, static_cast<VertexId>(v),
                                       0.8);
      }
      expect_matches_truth(g, alive, radii, 8);
    }
  }
}

TEST(PhaseBroadcast, MatchesBruteForceWithDeadVertices) {
  const Graph g = make_grid2d(5, 5);
  const auto nn = static_cast<std::size_t>(g.num_vertices());
  std::vector<char> alive(nn, 1);
  // Kill a column, splitting the alive graph.
  for (int r = 0; r < 5; ++r) alive[static_cast<std::size_t>(r * 5 + 2)] = 0;
  std::vector<double> radii(nn, 0.0);
  for (std::size_t v = 0; v < nn; ++v) {
    radii[v] = carve_radius_sample(3, 0, static_cast<VertexId>(v), 0.7);
  }
  expect_matches_truth(g, alive, radii, 6);
}

TEST(PhaseBroadcast, TruncationLimitsReach) {
  // A huge radius at vertex 0 of a path, one broadcast round only: vertex
  // 2 must not have heard vertex 0.
  const Graph g = make_path(5);
  std::vector<char> alive(5, 1);
  std::vector<double> radii = {10.0, 0.1, 0.1, 0.1, 0.1};
  const PhaseState state = run_phase_broadcast(g, alive, radii, 1);
  EXPECT_EQ(state.best[1].center, 0);  // one hop: reached
  EXPECT_EQ(state.best[2].center, 2);  // two hops: not reached in 1 round
}

TEST(PhaseBroadcast, SelfEntryAlwaysPresent) {
  const Graph g = make_path(3);
  std::vector<char> alive(3, 1);
  std::vector<double> radii = {0.0, 0.0, 0.0};
  const PhaseState state = run_phase_broadcast(g, alive, radii, 3);
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(state.best[v].center, static_cast<VertexId>(v));
    EXPECT_EQ(state.best[v].dist, 0);
    EXPECT_FALSE(state.second[v].valid());  // radius 0 travels nowhere
  }
}

TEST(PhaseBroadcast, RangeBoundaryIsFloor) {
  // r = 2.9 -> reaches exactly 2 hops.
  const Graph g = make_path(5);
  std::vector<char> alive(5, 1);
  std::vector<double> radii = {2.9, 0.0, 0.0, 0.0, 0.0};
  const PhaseState state = run_phase_broadcast(g, alive, radii, 5);
  EXPECT_EQ(state.best[2].center, 0);  // value 0.9 beats own 0.0
  EXPECT_EQ(state.best[3].center, 3);  // 3 hops: out of range
}

// --- Full carving --------------------------------------------------------

TEST(Carve, ProducesCompletePartition) {
  const Graph g = make_grid2d(6, 6);
  CarveParams params;
  params.betas.assign(16, 0.9);
  params.phase_rounds = 4;
  params.radius_overflow_at = 5.0;
  params.seed = 5;
  const CarveResult result = carve_decomposition(g, params);
  EXPECT_TRUE(result.clustering.is_complete());
  EXPECT_EQ(result.carved_per_phase.size(),
            static_cast<std::size_t>(result.phases_used));
  // Rounds = one phase length per executed phase plus one per Las Vegas
  // recarve retry (phase_rounds + 1 = 5 here).
  EXPECT_EQ(result.extra_rounds,
            static_cast<std::int64_t>(result.retries) * 5);
  EXPECT_EQ(result.rounds,
            static_cast<std::int64_t>(result.phases_used) * 5 +
                result.extra_rounds);
  EXPECT_FALSE(result.radius_overflow);  // kRetry recovers every event
}

TEST(Carve, DeterministicInSeed) {
  const Graph g = make_gnp(60, 0.08, 2);
  CarveParams params;
  params.betas.assign(32, 1.0);
  params.phase_rounds = 4;
  params.radius_overflow_at = 5.0;
  params.seed = 42;
  const CarveResult a = carve_decomposition(g, params);
  const CarveResult b = carve_decomposition(g, params);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(a.clustering.cluster_of(v), b.clustering.cluster_of(v));
  }
  EXPECT_EQ(a.phases_used, b.phases_used);

  params.seed = 43;
  const CarveResult c = carve_decomposition(g, params);
  bool any_diff = false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (a.clustering.cluster_of(v) != c.clustering.cluster_of(v)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Carve, SingleVertexGraph) {
  const Graph g = make_path(1);
  CarveParams params;
  params.betas.assign(4, 1.0);
  params.phase_rounds = 1;
  params.seed = 1;
  const CarveResult result = carve_decomposition(g, params);
  EXPECT_TRUE(result.clustering.is_complete());
  EXPECT_EQ(result.clustering.num_clusters(), 1);
  EXPECT_EQ(result.clustering.center_of(0), 0);
}

TEST(Carve, RunToCompletionFalseMayLeaveVertices) {
  const Graph g = make_complete(40);
  CarveParams params;
  params.betas.assign(1, 8.0);  // tiny radii: almost nobody joins
  params.phase_rounds = 2;
  params.run_to_completion = false;
  params.seed = 3;
  const CarveResult result = carve_decomposition(g, params);
  EXPECT_LE(result.phases_used, 1);
  // Not asserting incompleteness (random), but the structure must hold:
  EXPECT_EQ(result.clustering.num_unassigned() +
                [&] {
                  VertexId assigned = 0;
                  for (VertexId v = 0; v < g.num_vertices(); ++v) {
                    if (result.clustering.cluster_of(v) != kNoCluster) {
                      ++assigned;
                    }
                  }
                  return assigned;
                }(),
            g.num_vertices());
}

TEST(Carve, RejectsBadParams) {
  const Graph g = make_path(4);
  CarveParams params;
  EXPECT_THROW(carve_decomposition(g, params), std::invalid_argument);
  params.betas = {0.0};
  EXPECT_THROW(carve_decomposition(g, params), std::invalid_argument);
  params.betas = {1.0};
  params.phase_rounds = 0;
  EXPECT_THROW(carve_decomposition(g, params), std::invalid_argument);
}

TEST(PhaseBroadcast, Top1ForwardingIsInexact) {
  // The paper's CONGEST rule forwards the top-2 values because the
  // second-largest participates in every join decision. Forwarding only
  // the best must eventually produce a different (stale-m2) phase state
  // somewhere — demonstrating the top-2 rule is necessary, not a luxury.
  bool divergence_found = false;
  for (std::uint64_t seed = 1; seed <= 20 && !divergence_found; ++seed) {
    const Graph g = make_gnp(60, 0.08, seed);
    const auto n = static_cast<std::size_t>(g.num_vertices());
    std::vector<char> alive(n, 1);
    std::vector<double> radii(n);
    for (std::size_t v = 0; v < n; ++v) {
      radii[v] = carve_radius_sample(seed, 0, static_cast<VertexId>(v),
                                     0.7);
    }
    const PhaseState exact =
        run_phase_broadcast(g, alive, radii, 8, ForwardPolicy::kTop2);
    const PhaseState pruned =
        run_phase_broadcast(g, alive, radii, 8, ForwardPolicy::kTop1);
    for (std::size_t v = 0; v < n; ++v) {
      const bool exact_join =
          phase_join_decision(exact.best[v], exact.second[v], 1.0);
      const bool pruned_join =
          phase_join_decision(pruned.best[v], pruned.second[v], 1.0);
      if (exact_join != pruned_join ||
          exact.best[v].center != pruned.best[v].center) {
        divergence_found = true;
      }
    }
  }
  EXPECT_TRUE(divergence_found)
      << "top-1 forwarding never diverged from top-2 in 20 runs "
         "(statistically implausible)";
}

TEST(PhaseBroadcast, Top1BestValueNeverBetterThanExact) {
  // Pruning can only lose information: the best value seen under top-1
  // forwarding is at most the exact best value.
  const Graph g = make_grid2d(7, 7);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<char> alive(n, 1);
  std::vector<double> radii(n);
  for (std::size_t v = 0; v < n; ++v) {
    radii[v] = carve_radius_sample(5, 0, static_cast<VertexId>(v), 0.6);
  }
  const PhaseState exact =
      run_phase_broadcast(g, alive, radii, 10, ForwardPolicy::kTop2);
  const PhaseState pruned =
      run_phase_broadcast(g, alive, radii, 10, ForwardPolicy::kTop1);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_LE(pruned.best[v].value(), exact.best[v].value() + 1e-12);
  }
}

TEST(Carve, OverflowFlagTracksLargeRadii) {
  const Graph g = make_path(8);
  CarveParams params;
  params.betas.assign(64, 2.0);
  params.phase_rounds = 2;
  params.radius_overflow_at = 1e9;  // never reached
  params.seed = 9;
  const CarveResult result = carve_decomposition(g, params);
  EXPECT_FALSE(result.radius_overflow);

  params.radius_overflow_at = 0.0;  // always "reached"
  const CarveResult result2 = carve_decomposition(g, params);
  EXPECT_TRUE(result2.radius_overflow);
  EXPECT_GE(result2.max_sampled_radius, 0.0);
}

}  // namespace
}  // namespace dsnd
