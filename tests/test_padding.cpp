#include "decomposition/padding.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "decomposition/mpx.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "support/stats.hpp"

namespace dsnd {
namespace {

Clustering split_path(VertexId n, VertexId cut) {
  // Path 0..n-1; cluster A = [0, cut), cluster B = [cut, n).
  Clustering c(n);
  const ClusterId a = c.add_cluster(0, 0);
  const ClusterId b = c.add_cluster(cut, 1);
  for (VertexId v = 0; v < n; ++v) c.assign(v, v < cut ? a : b);
  return c;
}

TEST(Padding, PathSplitDistances) {
  const Graph g = make_path(6);
  const auto pad = padding_distances(g, split_path(6, 3));
  // Boundary edge 2-3: pad(2) = pad(3) = 1; grows inward.
  EXPECT_EQ(pad[2], 1);
  EXPECT_EQ(pad[3], 1);
  EXPECT_EQ(pad[1], 2);
  EXPECT_EQ(pad[4], 2);
  EXPECT_EQ(pad[0], 3);
  EXPECT_EQ(pad[5], 3);
}

TEST(Padding, SingleClusterIsInfinite) {
  const Graph g = make_cycle(8);
  Clustering c(8);
  const ClusterId a = c.add_cluster(0, 0);
  for (VertexId v = 0; v < 8; ++v) c.assign(v, a);
  const auto pad = padding_distances(g, c);
  for (const std::int32_t p : pad) EXPECT_EQ(p, kInfinitePadding);
}

TEST(Padding, MatchesBruteForce) {
  const Graph g = make_gnp(60, 0.08, 5);
  const MpxResult mpx = mpx_partition(g, {.beta = 0.5, .seed = 5});
  const auto pad = padding_distances(g, mpx.clustering);
  const auto all = all_pairs_distances(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::int32_t expected = kInfinitePadding;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      if (mpx.clustering.cluster_of(u) == mpx.clustering.cluster_of(v)) {
        continue;
      }
      const std::int32_t d =
          all[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)];
      if (d == kUnreachable) continue;
      if (expected == kInfinitePadding || d < expected) expected = d;
    }
    EXPECT_EQ(pad[static_cast<std::size_t>(v)], expected) << "v=" << v;
  }
}

TEST(Padding, RequiresCompletePartition) {
  const Graph g = make_path(4);
  Clustering c(4);
  const ClusterId a = c.add_cluster(0, 0);
  c.assign(0, a);
  EXPECT_THROW(padding_distances(g, c), std::invalid_argument);
}

TEST(PaddingReport, SurvivalIsMonotone) {
  const Graph g = make_torus2d(12, 12);
  const MpxResult mpx = mpx_partition(g, {.beta = 0.3, .seed = 7});
  const PaddingReport report = analyze_padding(g, mpx.clustering);
  EXPECT_GE(report.min, 1);
  for (std::size_t t = 1; t < report.survival.size(); ++t) {
    EXPECT_LE(report.survival[t], report.survival[t - 1]);
  }
  // Everyone has pad >= 1 by definition.
  if (!report.survival.empty()) {
    EXPECT_DOUBLE_EQ(report.survival[0], 1.0);
  }
}

TEST(PaddingReport, MpxPaddingTracksBeta) {
  // MPX: Pr[pad(v) >= t] >= 1 - O(beta * t). Check at t = 2 with a
  // generous constant across seeds.
  const Graph g = make_torus2d(16, 16);
  const double beta = 0.15;
  Summary survival_at_2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const MpxResult mpx = mpx_partition(g, {.beta = beta, .seed = seed});
    const PaddingReport report = analyze_padding(g, mpx.clustering);
    survival_at_2.add(report.survival.size() >= 2 ? report.survival[1]
                                                  : 1.0);
  }
  EXPECT_GE(survival_at_2.mean(), 1.0 - 4.0 * beta * 2);
}

}  // namespace
}  // namespace dsnd
