#include "simulator/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "decomposition/elkin_neiman_distributed.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

/// Floods a token from vertex 0; records the round each vertex first saw
/// it. Verifies synchronous one-hop-per-round semantics. Fully
/// message-driven, so it works under active scheduling: round 0 runs
/// every vertex (seeding the flood) and afterwards only reached vertices
/// execute.
class FloodProtocol final : public Protocol {
 public:
  void begin(const Graph& g) override {
    seen_round_.assign(static_cast<std::size_t>(g.num_vertices()), -1);
    pending_.assign(static_cast<std::size_t>(g.num_vertices()), 0);
    unseen_ = g.num_vertices();
    if (g.num_vertices() > 0) {
      seen_round_[0] = 0;
      pending_[0] = 1;
      --unseen_;
    }
  }

  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    const auto vi = static_cast<std::size_t>(v);
    if (seen_round_[vi] == -1 && !inbox.empty()) {
      seen_round_[vi] = static_cast<std::int32_t>(round);
      pending_[vi] = 1;
      --unseen_;
    }
    if (pending_[vi]) {
      out.send_to_all_neighbors({1});
      pending_[vi] = 0;
    }
  }

  bool finished() const override { return unseen_ == 0; }

  const std::vector<std::int32_t>& seen_round() const { return seen_round_; }

 private:
  std::vector<std::int32_t> seen_round_;
  std::vector<char> pending_;
  VertexId unseen_ = 0;
};

TEST(Simulator, FloodTakesDistanceRounds) {
  const Graph g = make_path(6);
  FloodProtocol protocol;
  SyncEngine engine(g);
  engine.run(protocol, 100);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(protocol.seen_round()[static_cast<std::size_t>(v)], v);
  }
}

TEST(Simulator, MetricsCountMessages) {
  const Graph g = make_path(3);  // edges: 0-1, 1-2
  FloodProtocol protocol;
  SyncEngine engine(g);
  const SimMetrics metrics = engine.run(protocol, 100);
  // Round 0: v0 sends 1. Round 1: v1 sends 2. Round 2: v2 sends 1, and the
  // finished() predicate fires after that round.
  EXPECT_EQ(metrics.rounds, 3u);
  EXPECT_EQ(metrics.messages, 4u);
  EXPECT_EQ(metrics.words, 4u);
  EXPECT_EQ(metrics.max_message_words, 1u);
  EXPECT_EQ(metrics.messages_per_round.size(), metrics.rounds);
}

TEST(Simulator, RoundCapStopsRun) {
  const Graph g = make_path(50);
  FloodProtocol protocol;
  SyncEngine engine(g);
  const SimMetrics metrics = engine.run(protocol, 5);
  EXPECT_EQ(metrics.rounds, 5u);
  EXPECT_EQ(protocol.seen_round()[10], -1);  // flood did not get there
}

/// A protocol that tries to message a non-neighbor.
class IllegalSendProtocol final : public Protocol {
 public:
  void begin(const Graph&) override {}
  void on_round(VertexId v, std::size_t, std::span<const MessageView>,
                Outbox& out) override {
    if (v == 0) out.send(2, {42});  // 0 and 2 are not adjacent in a path
  }
  bool finished() const override { return false; }
};

TEST(Simulator, RejectsSendToNonNeighbor) {
  const Graph g = make_path(3);
  IllegalSendProtocol protocol;
  SyncEngine engine(g);
  EXPECT_THROW(engine.run(protocol, 2), std::invalid_argument);
}

/// Sends to neighbors in non-monotone order: exercises the Outbox's
/// binary-search fallback behind the in-order cursor fast path.
class OutOfOrderSendProtocol final : public Protocol {
 public:
  void begin(const Graph&) override { received_ = 0; }
  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    if (v == 0 && round == 0) {
      out.send(3, {3});
      out.send(1, {1});  // backwards: cursor must repark
      out.send(1, {10});  // repeat to the same neighbor
      out.send(2, {2});
      EXPECT_THROW(out.send(0, {0}), std::invalid_argument);  // self
    }
    received_ += inbox.size();
  }
  bool finished() const override { return false; }
  std::size_t received() const { return received_; }

 private:
  std::size_t received_ = 0;
};

TEST(Simulator, OutOfOrderSendsAreValidatedAndDelivered) {
  const Graph g = make_star(4);  // hub 0, leaves 1..3
  OutOfOrderSendProtocol protocol;
  SyncEngine engine(g);
  const SimMetrics metrics = engine.run(protocol, 2);
  EXPECT_EQ(metrics.messages, 4u);
  EXPECT_EQ(protocol.received(), 4u);
}

/// Ping-pong between two vertices; checks delivery latency of exactly one
/// round and that from-fields are correct.
class PingPongProtocol final : public Protocol {
 public:
  void begin(const Graph&) override {
    received_.clear();
    sent_first_ = false;
  }

  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    if (v == 0 && round == 0 && !sent_first_) {
      out.send(1, {100});
      sent_first_ = true;
    }
    for (const MessageView& m : inbox) {
      received_.push_back({v, static_cast<VertexId>(m.from),
                           static_cast<std::int64_t>(round), m.words[0]});
      if (m.words[0] < 103) out.send(m.from, {m.words[0] + 1});
    }
  }

  bool finished() const override { return received_.size() >= 4; }

  struct Event {
    VertexId at;
    VertexId from;
    std::int64_t round;
    std::uint64_t value;
  };
  const std::vector<Event>& received() const { return received_; }

 private:
  std::vector<Event> received_;
  bool sent_first_ = false;
};

TEST(Simulator, PingPongAlternates) {
  const Graph g = make_path(2);
  PingPongProtocol protocol;
  SyncEngine engine(g);
  engine.run(protocol, 20);
  const auto& events = protocol.received();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].at, 1);
  EXPECT_EQ(events[0].from, 0);
  EXPECT_EQ(events[0].round, 1);
  EXPECT_EQ(events[0].value, 100u);
  EXPECT_EQ(events[1].at, 0);
  EXPECT_EQ(events[1].value, 101u);
  EXPECT_EQ(events[3].value, 103u);
}

/// Vertex 0 emits a pulse every kPeriod rounds via self-wakes; everyone
/// else only forwards pulses one hop when one arrives. Long quiet
/// phases: most vertices are idle in most rounds.
class PulseProtocol final : public Protocol {
 public:
  static constexpr std::size_t kPeriod = 8;

  void begin(const Graph& g) override {
    n_ = g.num_vertices();
    forwarded_.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  }

  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    if (v == 0) {
      if (round % kPeriod == 0) {
        out.send(1, {round});
        out.wake_self_in(kPeriod);
      }
      return;
    }
    for (const MessageView& m : inbox) {
      if (m.from == v - 1 && v + 1 < n_) {
        out.send(v + 1, {m.words[0]});
      }
      ++forwarded_[static_cast<std::size_t>(v)];
    }
  }

  bool finished() const override { return false; }

  std::uint64_t total_forwarded() const {
    std::uint64_t sum = 0;
    for (const char c : forwarded_) sum += static_cast<std::uint64_t>(c);
    return sum;
  }

 private:
  VertexId n_ = 0;
  std::vector<char> forwarded_;
};

TEST(Simulator, ActiveSchedulingSkipsQuietVertices) {
  const Graph g = make_path(64);
  const std::size_t rounds = 40;

  PulseProtocol scheduled;
  SyncEngine scheduled_engine(g);  // active scheduling is the default
  const SimMetrics on = scheduled_engine.run(scheduled, rounds);

  PulseProtocol unscheduled;
  EngineOptions off_options;
  off_options.active_scheduling = false;
  SyncEngine unscheduled_engine(g, off_options);
  const SimMetrics off = unscheduled_engine.run(unscheduled, rounds);

  // Identical protocol behavior...
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.messages, off.messages);
  EXPECT_EQ(on.messages_per_round, off.messages_per_round);
  EXPECT_EQ(scheduled.total_forwarded(), unscheduled.total_forwarded());
  // ...but the scheduled engine only ran the vertices that had work.
  EXPECT_EQ(off.vertex_activations, 64u * rounds);
  EXPECT_LT(on.vertex_activations, off.vertex_activations / 4);
}

TEST(Simulator, QuiescenceStopsScheduledRunEarly) {
  // One message at round 0, then silence with no wakes pending: the
  // scheduled engine stops once nothing can ever change again, while the
  // unscheduled engine runs to the cap. Both report exact per-round
  // message counts with quiet rounds as explicit zeros.
  class OneShot final : public Protocol {
   public:
    void begin(const Graph&) override {}
    void on_round(VertexId v, std::size_t round,
                  std::span<const MessageView>, Outbox& out) override {
      if (v == 0 && round == 0) out.send(1, {7});
    }
    bool finished() const override { return false; }
  };
  const Graph g = make_path(3);

  OneShot scheduled;
  SyncEngine scheduled_engine(g);
  const SimMetrics on = scheduled_engine.run(scheduled, 6);
  // Round 0 sends, round 1 delivers, then quiescence.
  EXPECT_EQ(on.rounds, 2u);
  EXPECT_EQ(on.messages_per_round,
            (std::vector<std::uint64_t>{1, 0}));

  OneShot unscheduled;
  EngineOptions off_options;
  off_options.active_scheduling = false;
  SyncEngine unscheduled_engine(g, off_options);
  const SimMetrics off = unscheduled_engine.run(unscheduled, 6);
  EXPECT_EQ(off.rounds, 6u);
  EXPECT_EQ(off.messages_per_round,
            (std::vector<std::uint64_t>{1, 0, 0, 0, 0, 0}));
  EXPECT_EQ(off.messages_per_round.size(), off.rounds);
}

TEST(Simulator, WakeSelfRequiresPositiveDelay) {
  class BadWake final : public Protocol {
   public:
    void begin(const Graph&) override {}
    void on_round(VertexId v, std::size_t, std::span<const MessageView>,
                  Outbox& out) override {
      if (v == 0) out.wake_self_in(0);
    }
    bool finished() const override { return false; }
  };
  const Graph g = make_path(2);
  BadWake protocol;
  SyncEngine engine(g);
  EXPECT_THROW(engine.run(protocol, 2), std::invalid_argument);
}

/// Same seed must give a bit-identical clustering and identical message
/// metrics for every engine configuration: scheduling on/off, one
/// worker or many. This is the contract that makes the scheduling and
/// parallelism pure optimizations.
TEST(Simulator, DeterministicAcrossSchedulingAndThreads) {
  const Graph g = make_gnp(400, 8.0 / 399.0, 11);
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = 99;

  EngineOptions baseline;  // scheduled, serial
  const DistributedRun reference =
      elkin_neiman_distributed(g, options, baseline);

  std::vector<EngineOptions> variants;
  EngineOptions unscheduled;
  unscheduled.active_scheduling = false;
  variants.push_back(unscheduled);
  EngineOptions two_threads;
  two_threads.threads = 2;
  variants.push_back(two_threads);
  EngineOptions hardware_threads;
  hardware_threads.threads = 0;
  variants.push_back(hardware_threads);
  EngineOptions seven_threads;  // does not divide n: uneven shards
  seven_threads.threads = 7;
  variants.push_back(seven_threads);
  EngineOptions unscheduled_parallel;
  unscheduled_parallel.active_scheduling = false;
  unscheduled_parallel.threads = 3;
  variants.push_back(unscheduled_parallel);

  for (const EngineOptions& variant : variants) {
    const DistributedRun run = elkin_neiman_distributed(g, options, variant);
    EXPECT_EQ(run.sim.rounds, reference.sim.rounds);
    EXPECT_EQ(run.sim.messages, reference.sim.messages);
    EXPECT_EQ(run.sim.words, reference.sim.words);
    EXPECT_EQ(run.sim.max_message_words, reference.sim.max_message_words);
    EXPECT_EQ(run.sim.messages_per_round, reference.sim.messages_per_round);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(run.run.clustering().cluster_of(v),
                reference.run.clustering().cluster_of(v));
    }
  }

  // Scheduling is the whole point: the default configuration must do
  // strictly less vertex work than run-every-vertex mode.
  const DistributedRun every_vertex =
      elkin_neiman_distributed(g, options, unscheduled);
  EXPECT_LT(reference.sim.vertex_activations,
            every_vertex.sim.vertex_activations);
}

/// Every vertex checks that its worker index stays inside the count the
/// engine announced via begin_workers, and that vertices are executed by
/// the worker owning their shard (contiguous ranges) whenever the round
/// runs parallel.
class WorkerIndexProtocol final : public Protocol {
 public:
  void begin(const Graph& g) override {
    n_ = g.num_vertices();
    announced_ = 0;
  }
  void begin_workers(unsigned workers) override { announced_ = workers; }
  void on_round(VertexId v, std::size_t, std::span<const MessageView>,
                Outbox& out) override {
    // Recorded, not EXPECTed: on_round may run on pool threads and gtest
    // assertions are only thread-safe on the main thread.
    if (announced_ == 0 || out.worker() >= announced_) {
      violation_.store(true, std::memory_order_relaxed);
    }
    out.send_to_all_neighbors({static_cast<std::uint64_t>(v)});
  }
  bool finished() const override { return false; }
  bool needs_spontaneous_rounds() const override { return true; }
  unsigned announced() const { return announced_; }
  bool violated() const { return violation_.load(); }

 private:
  VertexId n_ = 0;
  unsigned announced_ = 0;
  std::atomic<bool> violation_{false};
};

TEST(Simulator, BeginWorkersAnnouncesResolvedCount) {
  const Graph g = make_path(40);
  for (const unsigned threads : {1u, 3u, 7u}) {
    WorkerIndexProtocol protocol;
    EngineOptions options;
    options.threads = threads;
    SyncEngine engine(g, options);
    engine.run(protocol, 4);
    EXPECT_EQ(protocol.announced(), threads);
    EXPECT_EQ(engine.workers(), threads);
    EXPECT_FALSE(protocol.violated());
  }
  // More threads than vertices: the engine clamps the shard count.
  WorkerIndexProtocol protocol;
  EngineOptions options;
  options.threads = 64;
  const Graph tiny = make_path(5);
  SyncEngine engine(tiny, options);
  engine.run(protocol, 2);
  EXPECT_EQ(protocol.announced(), 5u);
  EXPECT_FALSE(protocol.violated());
}

TEST(Simulator, FloodIdenticalAcrossShardCounts) {
  const Graph g = make_gnp(300, 6.0 / 299.0, 17);
  FloodProtocol reference;
  SyncEngine serial(g);
  const SimMetrics base = serial.run(reference, 100);
  for (const unsigned threads : {2u, 5u, 8u}) {
    FloodProtocol protocol;
    EngineOptions options;
    options.threads = threads;
    SyncEngine engine(g, options);
    const SimMetrics metrics = engine.run(protocol, 100);
    EXPECT_EQ(metrics.rounds, base.rounds);
    EXPECT_EQ(metrics.messages, base.messages);
    EXPECT_EQ(metrics.messages_per_round, base.messages_per_round);
    EXPECT_EQ(protocol.seen_round(), reference.seen_round());
  }
}

TEST(SimMetrics, AveragesAndFormatting) {
  SimMetrics metrics;
  metrics.rounds = 3;
  metrics.messages = 3;
  metrics.words = 9;
  metrics.max_message_words = 5;
  metrics.messages_per_round = {2, 0, 1};
  EXPECT_DOUBLE_EQ(metrics.avg_messages_per_round(), 1.0);
  EXPECT_NE(metrics.to_string().find("messages=3"), std::string::npos);
  EXPECT_EQ(SimMetrics{}.avg_messages_per_round(), 0.0);
}

}  // namespace
}  // namespace dsnd
