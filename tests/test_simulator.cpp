#include "simulator/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"

namespace dsnd {
namespace {

/// Floods a token from vertex 0; records the round each vertex first saw
/// it. Verifies synchronous one-hop-per-round semantics.
class FloodProtocol final : public Protocol {
 public:
  void begin(const Graph& g) override {
    seen_round_.assign(static_cast<std::size_t>(g.num_vertices()), -1);
    pending_.assign(static_cast<std::size_t>(g.num_vertices()), 0);
    if (g.num_vertices() > 0) {
      seen_round_[0] = 0;
      pending_[0] = 1;
    }
    done_ = false;
  }

  void on_round(VertexId v, std::size_t round,
                std::span<const Message> inbox, Outbox& out) override {
    const auto vi = static_cast<std::size_t>(v);
    if (seen_round_[vi] == -1 && !inbox.empty()) {
      seen_round_[vi] = static_cast<std::int32_t>(round);
      pending_[vi] = 1;
    }
    if (pending_[vi]) {
      const std::uint64_t token[] = {1};
      out.send_to_all_neighbors(token);
      pending_[vi] = 0;
    }
    if (v == 0) {
      done_ = true;
      for (const std::int32_t r : seen_round_) {
        if (r == -1) done_ = false;
      }
    }
  }

  bool finished() const override { return done_; }

  const std::vector<std::int32_t>& seen_round() const { return seen_round_; }

 private:
  std::vector<std::int32_t> seen_round_;
  std::vector<char> pending_;
  bool done_ = false;
};

TEST(Simulator, FloodTakesDistanceRounds) {
  const Graph g = make_path(6);
  FloodProtocol protocol;
  SyncEngine engine(g);
  engine.run(protocol, 100);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(protocol.seen_round()[static_cast<std::size_t>(v)], v);
  }
}

TEST(Simulator, MetricsCountMessages) {
  const Graph g = make_path(3);  // edges: 0-1, 1-2
  FloodProtocol protocol;
  SyncEngine engine(g);
  const SimMetrics metrics = engine.run(protocol, 100);
  // Round 0: v0 sends 1. Round 1: v1 sends 2. Round 2: v2 sends 1, and the
  // finished() predicate fires after that round.
  EXPECT_EQ(metrics.messages, 4u);
  EXPECT_EQ(metrics.words, 4u);
  EXPECT_EQ(metrics.max_message_words, 1u);
  EXPECT_EQ(metrics.messages_per_round.size(), metrics.rounds);
}

TEST(Simulator, RoundCapStopsRun) {
  const Graph g = make_path(50);
  FloodProtocol protocol;
  SyncEngine engine(g);
  const SimMetrics metrics = engine.run(protocol, 5);
  EXPECT_EQ(metrics.rounds, 5u);
  EXPECT_EQ(protocol.seen_round()[10], -1);  // flood did not get there
}

/// A protocol that tries to message a non-neighbor.
class IllegalSendProtocol final : public Protocol {
 public:
  void begin(const Graph&) override {}
  void on_round(VertexId v, std::size_t, std::span<const Message>,
                Outbox& out) override {
    if (v == 0) out.send(2, {42});  // 0 and 2 are not adjacent in a path
  }
  bool finished() const override { return false; }
};

TEST(Simulator, RejectsSendToNonNeighbor) {
  const Graph g = make_path(3);
  IllegalSendProtocol protocol;
  SyncEngine engine(g);
  EXPECT_THROW(engine.run(protocol, 2), std::invalid_argument);
}

/// Ping-pong between two vertices; checks delivery latency of exactly one
/// round and that from-fields are correct.
class PingPongProtocol final : public Protocol {
 public:
  void begin(const Graph&) override {
    received_.clear();
    sent_first_ = false;
  }

  void on_round(VertexId v, std::size_t round, std::span<const Message> inbox,
                Outbox& out) override {
    if (v == 0 && round == 0 && !sent_first_) {
      out.send(1, {100});
      sent_first_ = true;
    }
    for (const Message& m : inbox) {
      received_.push_back({v, static_cast<VertexId>(m.from),
                           static_cast<std::int64_t>(round), m.words[0]});
      if (m.words[0] < 103) out.send(m.from, {m.words[0] + 1});
    }
  }

  bool finished() const override { return received_.size() >= 4; }

  struct Event {
    VertexId at;
    VertexId from;
    std::int64_t round;
    std::uint64_t value;
  };
  const std::vector<Event>& received() const { return received_; }

 private:
  std::vector<Event> received_;
  bool sent_first_ = false;
};

TEST(Simulator, PingPongAlternates) {
  const Graph g = make_path(2);
  PingPongProtocol protocol;
  SyncEngine engine(g);
  engine.run(protocol, 20);
  const auto& events = protocol.received();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].at, 1);
  EXPECT_EQ(events[0].from, 0);
  EXPECT_EQ(events[0].round, 1);
  EXPECT_EQ(events[0].value, 100u);
  EXPECT_EQ(events[1].at, 0);
  EXPECT_EQ(events[1].value, 101u);
  EXPECT_EQ(events[3].value, 103u);
}

TEST(SimMetrics, RecordsWidthAndPerRound) {
  SimMetrics metrics;
  metrics.record_message(0, 3);
  metrics.record_message(0, 5);
  metrics.record_message(2, 1);
  metrics.rounds = 3;
  EXPECT_EQ(metrics.messages, 3u);
  EXPECT_EQ(metrics.words, 9u);
  EXPECT_EQ(metrics.max_message_words, 5u);
  ASSERT_EQ(metrics.messages_per_round.size(), 3u);
  EXPECT_EQ(metrics.messages_per_round[0], 2u);
  EXPECT_EQ(metrics.messages_per_round[1], 0u);
  EXPECT_EQ(metrics.messages_per_round[2], 1u);
  EXPECT_DOUBLE_EQ(metrics.avg_messages_per_round(), 1.0);
  EXPECT_NE(metrics.to_string().find("messages=3"), std::string::npos);
}

}  // namespace
}  // namespace dsnd
