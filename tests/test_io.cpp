#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(Io, EdgeListRoundTrip) {
  const Graph g = make_grid2d(4, 5);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(g, back);
}

TEST(Io, EdgeListEmptyGraph) {
  const Graph g = Graph::from_edges(3, {});
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.num_vertices(), 3);
  EXPECT_EQ(back.num_edges(), 0);
}

TEST(Io, EdgeListRejectsTruncated) {
  std::stringstream buffer("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(buffer), std::runtime_error);
}

TEST(Io, EdgeListRejectsMissingHeader) {
  std::stringstream buffer("");
  EXPECT_THROW(read_edge_list(buffer), std::runtime_error);
}

TEST(Io, DimacsRoundTrip) {
  const Graph g = make_cycle(8);
  std::stringstream buffer;
  write_dimacs(buffer, g);
  const Graph back = read_dimacs(buffer);
  EXPECT_EQ(g, back);
}

TEST(Io, DimacsSkipsComments) {
  std::stringstream buffer("c a comment\np edge 3 1\nc more\ne 1 2\n");
  const Graph g = read_dimacs(buffer);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Io, DimacsRejectsCountMismatch) {
  std::stringstream buffer("p edge 3 2\ne 1 2\n");
  EXPECT_THROW(read_dimacs(buffer), std::runtime_error);
}

TEST(Io, DimacsRejectsUnknownTag) {
  std::stringstream buffer("p edge 2 0\nx nonsense\n");
  EXPECT_THROW(read_dimacs(buffer), std::runtime_error);
}

TEST(Io, FileRoundTrip) {
  const Graph g = make_gnp(30, 0.2, 4);
  const std::string path = testing::TempDir() + "dsnd_io_test.txt";
  save_edge_list(path, g);
  const Graph back = load_edge_list(path);
  EXPECT_EQ(g, back);
  std::remove(path.c_str());
}

TEST(Io, LoadMissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/definitely/missing.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace dsnd
