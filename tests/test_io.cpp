#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(Io, EdgeListRoundTrip) {
  const Graph g = make_grid2d(4, 5);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(g, back);
}

TEST(Io, EdgeListEmptyGraph) {
  const Graph g = Graph::from_edges(3, {});
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.num_vertices(), 3);
  EXPECT_EQ(back.num_edges(), 0);
}

TEST(Io, EdgeListRejectsTruncated) {
  std::stringstream buffer("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(buffer), std::runtime_error);
}

TEST(Io, EdgeListRejectsMissingHeader) {
  std::stringstream buffer("");
  EXPECT_THROW(read_edge_list(buffer), std::runtime_error);
}

TEST(Io, DimacsRoundTrip) {
  const Graph g = make_cycle(8);
  std::stringstream buffer;
  write_dimacs(buffer, g);
  const Graph back = read_dimacs(buffer);
  EXPECT_EQ(g, back);
}

TEST(Io, DimacsSkipsComments) {
  std::stringstream buffer("c a comment\np edge 3 1\nc more\ne 1 2\n");
  const Graph g = read_dimacs(buffer);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Io, DimacsRejectsCountMismatch) {
  std::stringstream buffer("p edge 3 2\ne 1 2\n");
  EXPECT_THROW(read_dimacs(buffer), std::runtime_error);
}

TEST(Io, DimacsRejectsUnknownTag) {
  std::stringstream buffer("p edge 2 0\nx nonsense\n");
  EXPECT_THROW(read_dimacs(buffer), std::runtime_error);
}

TEST(Io, FileRoundTrip) {
  const Graph g = make_gnp(30, 0.2, 4);
  const std::string path = testing::TempDir() + "dsnd_io_test.txt";
  save_edge_list(path, g);
  const Graph back = load_edge_list(path);
  EXPECT_EQ(g, back);
  std::remove(path.c_str());
}

TEST(Io, LoadMissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/definitely/missing.txt"),
               std::runtime_error);
}

/// Expects `reader` to throw and the message to contain `needle` — the
/// diagnostics contract: every rejection names the offending location.
template <typename Fn>
void expect_rejection(Fn&& reader, const std::string& needle) {
  try {
    reader();
    FAIL() << "expected a rejection mentioning \"" << needle << "\"";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "message was: " << error.what();
  }
}

TEST(Io, MetisRoundTrip) {
  const Graph g = make_grid2d(5, 4);
  std::stringstream buffer;
  write_metis(buffer, g);
  const Graph back = read_metis(buffer);
  EXPECT_EQ(g, back);
}

TEST(Io, MetisSkipsComments) {
  std::stringstream buffer("% header comment\n3 2\n2 3\n1\n1\n");
  const Graph g = read_metis(buffer);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Io, MetisRejectsTruncatedRows) {
  std::stringstream buffer("3 2\n2 3\n1\n");  // row for vertex 3 missing
  expect_rejection([&] { read_metis(buffer); }, "truncated");
}

TEST(Io, MetisRejectsOutOfRangeNeighbor) {
  std::stringstream buffer("3 2\n2 9\n1\n\n");
  expect_rejection([&] { read_metis(buffer); }, "out of range");
}

TEST(Io, MetisRejectsAsymmetricRows) {
  // Vertex 1 lists 2 but vertex 2's row lists 3 instead of 1: the
  // dropped reverse edge must be called out by name.
  std::stringstream buffer("3 1\n2\n3\n\n");
  expect_rejection([&] { read_metis(buffer); }, "not vice versa");
}

TEST(Io, MetisRejectsSelfLoopAndDuplicate) {
  std::stringstream self_loop("2 1\n1 2\n1\n");
  expect_rejection([&] { read_metis(self_loop); }, "self-loop");
  std::stringstream duplicate("2 2\n2 2\n1 1\n");
  expect_rejection([&] { read_metis(duplicate); }, "duplicate");
}

TEST(Io, MetisRejectsWeightedHeaders) {
  std::stringstream buffer("2 1 011\n2\n1\n");
  expect_rejection([&] { read_metis(buffer); }, "header flags");
}

TEST(Io, EdgeListRejectsOutOfRangeEndpointWithEdgeIndex) {
  std::stringstream buffer("3 2\n0 1\n1 7\n");
  expect_rejection([&] { read_edge_list(buffer); }, "edge 2 of 2");
}

TEST(Io, EdgeListRejectsSelfLoop) {
  std::stringstream buffer("3 1\n2 2\n");
  expect_rejection([&] { read_edge_list(buffer); }, "self-loop");
}

TEST(Io, EdgeListRejectsNegativeHeader) {
  std::stringstream negative_n("-3 1\n0 1\n");
  EXPECT_THROW(read_edge_list(negative_n), std::runtime_error);
  std::stringstream negative_m("3 -1\n");
  EXPECT_THROW(read_edge_list(negative_m), std::runtime_error);
}

TEST(Io, AllGeneratorFamiliesRoundTripThroughBothFormats) {
  // Every registered family — including the scale-free ones — must
  // survive write -> read bit-identically in both on-disk formats.
  for (const GraphFamily& family : standard_families()) {
    const Graph g = family.make(200, 11);
    {
      std::stringstream buffer;
      write_edge_list(buffer, g);
      EXPECT_EQ(read_edge_list(buffer), g) << family.name << " edge list";
    }
    {
      std::stringstream buffer;
      write_metis(buffer, g);
      EXPECT_EQ(read_metis(buffer), g) << family.name << " metis";
    }
  }
}

TEST(Io, LoadGraphDispatchesOnExtension) {
  const Graph g = make_hyperbolic(300, 8.0, 2.8, 3);
  const std::string metis_path = testing::TempDir() + "dsnd_io_test.graph";
  const std::string edge_path = testing::TempDir() + "dsnd_io_test.el";
  save_metis(metis_path, g);
  save_edge_list(edge_path, g);
  EXPECT_EQ(load_graph(metis_path), g);
  EXPECT_EQ(load_graph(edge_path), g);
  std::remove(metis_path.c_str());
  std::remove(edge_path.c_str());
}

}  // namespace
}  // namespace dsnd
