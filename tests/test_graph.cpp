#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dsnd {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, FromEdgesBasic) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(Graph, NeighborsSorted) {
  const Graph g = Graph::from_edges(5, {{3, 0}, {3, 4}, {3, 1}, {3, 2}});
  const auto row = g.neighbors(3);
  ASSERT_EQ(row.size(), 4u);
  for (std::size_t i = 1; i < row.size(); ++i) {
    EXPECT_LT(row[i - 1], row[i]);
  }
}

TEST(Graph, EdgesCanonicalOrder) {
  const Graph g = Graph::from_edges(3, {{2, 1}, {1, 0}});
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{1, 2}));
}

TEST(Graph, ForEachEdgeVisitsOncePerEdge) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  int count = 0;
  g.for_each_edge([&](VertexId u, VertexId v) {
    EXPECT_LT(u, v);
    ++count;
  });
  EXPECT_EQ(count, 3);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {1, 0}}),
               std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(Graph::from_edges(2, {{-1, 0}}), std::invalid_argument);
}

TEST(Graph, NormalizeDropsLoopsAndDuplicates) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}, {2, 2}, {1, 2}},
                                    /*normalize=*/true);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Graph, VertexRangeChecked) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  EXPECT_THROW(g.degree(2), std::invalid_argument);
  EXPECT_THROW(g.neighbors(-1), std::invalid_argument);
  EXPECT_THROW(g.has_edge(0, 5), std::invalid_argument);
}

TEST(Graph, EqualityIsStructural) {
  const Graph a = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const Graph b = Graph::from_edges(3, {{1, 2}, {0, 1}});
  const Graph c = Graph::from_edges(3, {{0, 1}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(GraphBuilder, MergesAndIgnoresLoops) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 0);
  builder.add_edge(2, 2);  // ignored
  builder.add_edge(3, 2);
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder builder(2);
  EXPECT_THROW(builder.add_edge(0, 2), std::invalid_argument);
}

TEST(Graph, IsolatedVerticesHaveDegreeZero) {
  const Graph g = Graph::from_edges(5, {{0, 1}});
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_EQ(g.degree(3), 0);
  EXPECT_TRUE(g.neighbors(4).empty());
}

}  // namespace
}  // namespace dsnd
