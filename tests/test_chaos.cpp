// The never-silently-invalid contract, soaked.
//
// Under ANY injected fault schedule a distributed run must end in one of
// exactly two ways: a clustering that passes validate_decomposition_fast
// (status kOk), or a named failure status with nonzero fault counters.
// A run that claims kOk with an invalid clustering — the silent-invalid
// outcome — is the one thing that must never happen, at any drop rate,
// on any family, for any seed. These tests soak that contract across
// the drop-rate matrix, pin the verify-and-recover loop's retry
// machinery (run-salted reseeds, aggregated fault accounting), and cover
// the layout-graph path, whose faulted attempts must be validated
// against the ORIGINAL graph.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "decomposition/carving_protocol.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/relabel.hpp"
#include "simulator/transport.hpp"

namespace dsnd {
namespace {

Graph make_family(const std::string& family, VertexId n,
                  std::uint64_t seed) {
  if (family == "gnp") return make_gnp(n, 6.0 / std::max(n - 1, 1), seed);
  if (family == "ring") return make_cycle(n);
  return make_hyperbolic(n, 6.0, 2.7, seed);
}

bool fast_valid(const Graph& g, const Clustering& clustering) {
  const FastDecompositionReport report =
      validate_decomposition_fast(g, clustering);
  return report.complete && report.proper_phase_coloring &&
         report.all_clusters_connected;
}

TEST(Chaos, SoakMatrixValidOrNamedNeverSilentInvalid) {
  int recovered_runs = 0;  // runs that needed >= 1 whole-run retry and won
  for (const char* family : {"gnp", "ring", "hyperbolic"}) {
    const Graph g = make_family(family, 128, 7);
    const CarveSchedule schedule = theorem1_schedule(g.num_vertices(), 4, 4);
    for (const double drop_rate : {0.001, 0.01, 0.1}) {
      for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        FaultPlan plan;
        plan.seed = seed * 1000003;
        plan.drop_rate = drop_rate;
        FaultyTransport transport(plan);
        EngineOptions engine;
        engine.transport = &transport;
        const DistributedRun run =
            run_schedule_distributed(g, schedule, seed, engine);
        const std::string label = std::string(family) +
                                  " drop=" + std::to_string(drop_rate) +
                                  " seed=" + std::to_string(seed);
        if (run.run.carve.status == CarveStatus::kOk) {
          // kOk is a CLAIM of validity — re-check it independently here.
          EXPECT_TRUE(fast_valid(g, run.run.clustering())) << label;
          EXPECT_FALSE(run.run.carve.radius_overflow) << label;
          if (run.run.carve.run_retries > 0) ++recovered_runs;
        } else {
          // A named failure must carry the evidence: the transport
          // actually injected faults.
          EXPECT_GT(run.run.carve.faults.total(), 0u) << label;
        }
      }
    }
  }
  // The soak must exercise the recovery path, not just clean first
  // attempts: at drop rate 0.1 first attempts routinely produce
  // improper colorings, so some run must have recovered via a salted
  // whole-run retry.
  EXPECT_GT(recovered_runs, 0);
}

TEST(Chaos, RunRetryUsesSaltedSeedAndAggregatesFaults) {
  // Find a run that retried at least once, then pin the accounting: the
  // aggregated fault counters must cover every attempt (>= the final
  // attempt's own counters, which `sim` reports).
  const Graph g = make_family("gnp", 128, 7);
  const CarveSchedule schedule = theorem1_schedule(g.num_vertices(), 4, 4);
  bool found_retry = false;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    FaultPlan plan;
    plan.seed = 77;
    plan.drop_rate = 0.1;
    FaultyTransport transport(plan);
    EngineOptions engine;
    engine.transport = &transport;
    const DistributedRun run =
        run_schedule_distributed(g, schedule, seed, engine);
    EXPECT_GE(run.run.carve.faults.total(), run.sim.faults.total());
    if (run.run.carve.run_retries > 0 &&
        run.run.carve.status == CarveStatus::kOk) {
      found_retry = true;
      // Retried attempts saw different traffic (salted seed), so the
      // aggregate is strictly more than the final attempt alone.
      EXPECT_GT(run.run.carve.faults.total(), run.sim.faults.total());
    }
  }
  EXPECT_TRUE(found_retry);
}

TEST(Chaos, BlownRunRetryBudgetIsNamedNotSilent) {
  // Drop 90% of all traffic and allow zero whole-run retries: the single
  // attempt either stalls, blows the round budget, or completes with a
  // clustering that validation rejects. Whatever happens, the status is
  // a named failure and the counters show why — never a silent pass.
  const Graph g = make_family("gnp", 64, 3);
  CarveSchedule schedule = theorem1_schedule(g.num_vertices(), 4, 4);
  schedule.max_run_retries = 0;
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_rate = 0.9;
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  const DistributedRun run = run_schedule_distributed(g, schedule, 3, engine);
  EXPECT_NE(run.run.carve.status, CarveStatus::kOk);
  EXPECT_GT(run.run.carve.faults.total(), 0u);
  EXPECT_EQ(run.run.carve.run_retries, 0);
  EXPECT_NE(std::string(carve_status_name(run.run.carve.status)), "ok");
}

TEST(Chaos, ZeroPlanThroughScheduleDriverMatchesReliable) {
  // A zero-rate FaultyTransport must not trigger the verify-and-recover
  // loop at all: same clustering, zero run retries, zero fault counters,
  // status kOk — indistinguishable from the reliable path end to end.
  const Graph g = make_family("gnp", 96, 11);
  const CarveSchedule schedule = theorem1_schedule(g.num_vertices(), 4, 4);
  const DistributedRun reliable = run_schedule_distributed(g, schedule, 9);
  FaultyTransport transport((FaultPlan()));
  EngineOptions engine;
  engine.transport = &transport;
  const DistributedRun faulty = run_schedule_distributed(g, schedule, 9,
                                                         engine);
  EXPECT_EQ(faulty.run.carve.status, CarveStatus::kOk);
  EXPECT_EQ(faulty.run.carve.run_retries, 0);
  EXPECT_EQ(faulty.run.carve.faults.total(), 0u);
  EXPECT_EQ(faulty.sim.messages, reliable.sim.messages);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(faulty.run.clustering().cluster_of(v),
              reliable.run.clustering().cluster_of(v));
  }
}

TEST(Chaos, LayoutRunValidatesAgainstOriginalGraph) {
  // The layout overload carves the RELABELED graph but emits a
  // clustering keyed to original ids; its verify-and-recover loop must
  // therefore validate against the original topology. A kOk result here
  // must hold up against the original graph recomputed independently.
  const Graph g = make_family("gnp", 128, 13);
  const LayoutGraph lg = make_layout_graph(g, bfs_layout(g));
  const CarveSchedule schedule = theorem1_schedule(g.num_vertices(), 4, 4);

  // Zero-plan fidelity through the layout path first.
  const DistributedRun reliable = run_schedule_distributed(lg, schedule, 21);
  FaultyTransport clean((FaultPlan()));
  EngineOptions clean_engine;
  clean_engine.transport = &clean;
  const DistributedRun zero =
      run_schedule_distributed(lg, schedule, 21, clean_engine);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(zero.run.clustering().cluster_of(v),
              reliable.run.clustering().cluster_of(v));
  }

  bool saw_ok = false;
  for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
    FaultPlan plan;
    plan.seed = 31 * seed;
    plan.drop_rate = 0.05;
    FaultyTransport transport(plan);
    EngineOptions engine;
    engine.transport = &transport;
    const DistributedRun run =
        run_schedule_distributed(lg, schedule, seed, engine);
    if (run.run.carve.status == CarveStatus::kOk) {
      saw_ok = true;
      EXPECT_TRUE(fast_valid(g, run.run.clustering()))
          << "layout seed=" << seed;
    } else {
      EXPECT_GT(run.run.carve.faults.total(), 0u) << "layout seed=" << seed;
    }
  }
  // At 5% drop with the retry loop engaged, at least one of three seeds
  // must recover to a validated decomposition.
  EXPECT_TRUE(saw_ok);
}

}  // namespace
}  // namespace dsnd
