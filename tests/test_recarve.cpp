// Lemma 1 recovery (the Las Vegas recarve loop): when a live vertex
// samples r_v >= radius_overflow_at, both backends must abort the phase
// before joining, resample with a fresh per-retry salt, and replay —
// so the output is valid unconditionally, the whp guarantee upgraded to
// Las Vegas. These tests pin the deterministic seeds found for PR 5:
// a small-graph reproduction of the 10M-vertex seed-42 bench event
// where OverflowPolicy::kTruncate (the pre-PR-5 behavior) returns a
// flagged, disconnected cluster and the default kRetry returns a valid
// decomposition, bit-identical across backends and thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "decomposition/carving_protocol.hpp"
#include "decomposition/elkin_neiman_distributed.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

/// The reproduction instance: sparse gnp with long-tailed radii and a
/// two-round broadcast budget. Seed 1 overflows (some r >= 3) in several
/// phases; truncated it disconnects a cluster, recarved it stays valid.
Graph repro_graph() { return make_gnp(64, 3.0 / 63.0, 1); }

CarveParams repro_params(OverflowPolicy policy) {
  CarveParams params;
  params.betas.assign(32, 1.4);
  params.phase_rounds = 2;
  params.radius_overflow_at = 3.0;
  params.overflow_policy = policy;
  params.seed = 1;
  return params;
}

bool fast_valid(const Graph& g, const Clustering& clustering) {
  const FastDecompositionReport report =
      validate_decomposition_fast(g, clustering);
  return report.complete && report.proper_phase_coloring &&
         report.all_clusters_connected;
}

void expect_same_run(const CarveResult& a, const CarveResult& b) {
  ASSERT_EQ(a.phases_used, b.phases_used);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.extra_rounds, b.extra_rounds);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.radius_overflow, b.radius_overflow);
  EXPECT_DOUBLE_EQ(a.max_sampled_radius, b.max_sampled_radius);
  EXPECT_EQ(a.carved_per_phase, b.carved_per_phase);
  ASSERT_EQ(a.clustering.num_clusters(), b.clustering.num_clusters());
  for (VertexId v = 0; v < a.clustering.num_vertices(); ++v) {
    ASSERT_EQ(a.clustering.cluster_of(v), b.clustering.cluster_of(v))
        << "v=" << v;
  }
  for (ClusterId c = 0; c < a.clustering.num_clusters(); ++c) {
    ASSERT_EQ(a.clustering.center_of(c), b.clustering.center_of(c));
    ASSERT_EQ(a.clustering.color_of(c), b.clustering.color_of(c));
  }
}

TEST(Recarve, TruncatePinsLegacyFlaggedInvalidBehavior) {
  // The ablation escape hatch: the pre-PR-5 flag-and-proceed discipline,
  // including its failure mode — the run is flagged and the validator
  // catches a disconnected cluster, exactly like the 10M seed-42 bench
  // record this PR fixes.
  const Graph g = repro_graph();
  const CarveResult result =
      carve_decomposition(g, repro_params(OverflowPolicy::kTruncate));
  EXPECT_TRUE(result.radius_overflow);
  EXPECT_EQ(result.retries, 0);
  EXPECT_EQ(result.extra_rounds, 0);
  EXPECT_EQ(result.rounds,
            static_cast<std::int64_t>(result.phases_used) * 3);
  EXPECT_GE(result.max_sampled_radius, 3.0);
  const FastDecompositionReport report =
      validate_decomposition_fast(g, result.clustering);
  EXPECT_GE(report.disconnected_clusters, 1);
  EXPECT_FALSE(fast_valid(g, result.clustering));
}

TEST(Recarve, RetryRecoversThePreviouslyDisconnectedRun) {
  // Same graph, same seed, default policy: Lemma 1's event fires (the
  // reported max shows it), the recarve loop replays the overflowed
  // phases, and the output is valid unconditionally with the cost
  // accounted.
  const Graph g = repro_graph();
  const CarveResult result =
      carve_decomposition(g, repro_params(OverflowPolicy::kRetry));
  EXPECT_FALSE(result.radius_overflow);
  EXPECT_GE(result.retries, 1);
  EXPECT_EQ(result.extra_rounds,
            static_cast<std::int64_t>(result.retries) * 3);
  EXPECT_EQ(result.rounds,
            static_cast<std::int64_t>(result.phases_used) * 3 +
                result.extra_rounds);
  // The discarded attempts' samples stay visible in the log field.
  EXPECT_GE(result.max_sampled_radius, 3.0);
  EXPECT_TRUE(result.clustering.is_complete());
  EXPECT_TRUE(fast_valid(g, result.clustering));
}

TEST(Recarve, BackendsAgreeBitForBitAcrossThreadCounts) {
  // The acceptance matrix of the recarve loop: centralized vs CONGEST
  // under forced retries, for shard counts 1, 2, 4, and 7 (7 does not
  // divide 64 — unequal shards), including the retry/round accounting.
  const Graph g = repro_graph();
  for (const OverflowPolicy policy :
       {OverflowPolicy::kRetry, OverflowPolicy::kTruncate}) {
    const CarveParams params = repro_params(policy);
    const CarveResult central = carve_decomposition(g, params);
    for (const unsigned threads : {1u, 2u, 4u, 7u}) {
      EngineOptions engine;
      engine.threads = threads;
      const DistributedCarveResult dist =
          carve_decomposition_distributed(g, params, engine);
      SCOPED_TRACE(std::string("threads=") + std::to_string(threads));
      expect_same_run(central, dist.carve);
      // The simulator really ran the replayed attempts: its round count
      // is the carve accounting (quiescence may trim the trailing
      // announce round, never more).
      EXPECT_GE(static_cast<std::int64_t>(dist.sim.rounds),
                central.rounds - 1);
    }
  }
}

TEST(Recarve, TheoremEntryPointsThreadThePolicy) {
  // The options-level knobs reach the schedule in both backends: a
  // lowered threshold forces retries through the Theorem 1 wrappers.
  const Graph g = make_gnp(96, 6.0 / 95.0, 5);
  CarveSchedule schedule = theorem1_schedule(96, 4, 4.0);
  schedule.radius_overflow_at = 3.0;
  const DecompositionRun central = run_schedule(g, schedule, 1);
  const DistributedRun dist = run_schedule_distributed(g, schedule, 1);
  EXPECT_GE(central.carve.retries, 1);
  EXPECT_FALSE(central.carve.radius_overflow);
  expect_same_run(central.carve, dist.run.carve);
  EXPECT_TRUE(fast_valid(g, central.clustering()));
  // The honest round claim: measured rounds decompose exactly into the
  // executed phases plus the billed recovery cost, and on the success
  // event they must stay within the whp bound plus that cost (modulo
  // the per-phase announcement round k * lambda does not count) — the
  // comparison benches and docs prescribe via rounds_with_retries.
  const std::int64_t phase_len = schedule.phase_rounds + 1;
  EXPECT_EQ(central.carve.rounds,
            static_cast<std::int64_t>(central.carve.phases_used) * phase_len +
                central.carve.extra_rounds);
  if (central.carve.exhausted_within_target) {
    EXPECT_LE(
        static_cast<double>(central.carve.rounds),
        central.bounds.rounds_with_retries(central.carve.extra_rounds) +
            static_cast<double>(central.carve.phases_used));
  }
}

TEST(Recarve, ExhaustedBudgetFallsBackToTruncation) {
  // radius_overflow_at = 0 makes every attempt overflow: the loop burns
  // exactly max_retries_per_phase retries per phase, then accepts the
  // truncated samples and reports the flag — in both backends alike.
  const Graph g = make_path(12);
  CarveParams params;
  params.betas.assign(16, 1.0);
  params.phase_rounds = 2;
  params.radius_overflow_at = 0.0;
  params.max_retries_per_phase = 2;
  params.seed = 7;
  const CarveResult central = carve_decomposition(g, params);
  EXPECT_TRUE(central.radius_overflow);
  EXPECT_EQ(central.retries, central.phases_used * 2);
  const DistributedCarveResult dist =
      carve_decomposition_distributed(g, params);
  expect_same_run(central, dist.carve);
}

TEST(Recarve, BothBackendsRejectNegativeRetryBudgets) {
  const Graph g = make_path(4);
  CarveParams params;
  params.betas = {1.0};
  params.phase_rounds = 1;
  params.max_retries_per_phase = -1;
  EXPECT_THROW(carve_decomposition(g, params), std::invalid_argument);
  EXPECT_THROW(carve_decomposition_distributed(g, params),
               std::invalid_argument);
}

TEST(Recarve, RetrySaltYieldsIndependentDeterministicStreams) {
  const double beta = 1.2;
  // Retry 0 is the historical stream (the default argument).
  EXPECT_DOUBLE_EQ(carve_radius_sample(9, 3, 17, beta),
                   carve_radius_sample(9, 3, 17, beta, 0));
  // Salted retries differ from the aborted attempt and from each other,
  // and are themselves deterministic.
  const double r0 = carve_radius_sample(9, 3, 17, beta, 0);
  const double r1 = carve_radius_sample(9, 3, 17, beta, 1);
  const double r2 = carve_radius_sample(9, 3, 17, beta, 2);
  EXPECT_NE(r0, r1);
  EXPECT_NE(r1, r2);
  EXPECT_DOUBLE_EQ(r1, carve_radius_sample(9, 3, 17, beta, 1));
  // The salt must not collide with other phases' unsalted streams.
  EXPECT_NE(r1, carve_radius_sample(9, 4, 17, beta, 0));
}

}  // namespace
}  // namespace dsnd
