#include "decomposition/supergraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/checkers.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace dsnd {
namespace {

Clustering two_cluster_path() {
  // Path 0-1-2-3; clusters {0,1} and {2,3}.
  Clustering c(4);
  const ClusterId a = c.add_cluster(0, 0);
  const ClusterId b = c.add_cluster(2, 1);
  c.assign(0, a);
  c.assign(1, a);
  c.assign(2, b);
  c.assign(3, b);
  return c;
}

TEST(Supergraph, ContractsToSingleEdge) {
  const Graph g = make_path(4);
  const Graph super = build_supergraph(g, two_cluster_path());
  EXPECT_EQ(super.num_vertices(), 2);
  EXPECT_EQ(super.num_edges(), 1);
  EXPECT_TRUE(super.has_edge(0, 1));
}

TEST(Supergraph, ParallelEdgesMerged) {
  // 4-cycle split into two opposite pairs: two original edges between the
  // clusters collapse to one supergraph edge.
  const Graph g = make_cycle(4);
  Clustering c(4);
  const ClusterId a = c.add_cluster(0, 0);
  const ClusterId b = c.add_cluster(2, 1);
  c.assign(0, a);
  c.assign(1, a);
  c.assign(2, b);
  c.assign(3, b);
  const Graph super = build_supergraph(g, c);
  EXPECT_EQ(super.num_edges(), 1);
}

TEST(Supergraph, RequiresCompletePartition) {
  const Graph g = make_path(3);
  Clustering c(3);
  const ClusterId a = c.add_cluster(0, 0);
  c.assign(0, a);
  EXPECT_THROW(build_supergraph(g, c), std::invalid_argument);
}

TEST(Supergraph, PhaseColoringProperDetectsViolation) {
  const Graph g = make_path(4);
  // Same color on two adjacent clusters.
  Clustering c(4);
  const ClusterId a = c.add_cluster(0, 0);
  const ClusterId b = c.add_cluster(2, 0);
  c.assign(0, a);
  c.assign(1, a);
  c.assign(2, b);
  c.assign(3, b);
  EXPECT_FALSE(phase_coloring_is_proper(g, c));
  EXPECT_TRUE(phase_coloring_is_proper(g, two_cluster_path()));
}

TEST(Supergraph, PhaseColoringIgnoresUnassigned) {
  const Graph g = make_path(3);
  Clustering c(3);
  const ClusterId a = c.add_cluster(0, 0);
  c.assign(0, a);
  // Vertices 1, 2 unassigned: no violation can be attributed.
  EXPECT_TRUE(phase_coloring_is_proper(g, c));
}

TEST(GreedyColoring, ProperOnFamilies) {
  for (const char* family : {"grid", "gnp-dense", "cycle", "small-world"}) {
    const Graph g = family_by_name(family).make(100, 2);
    const auto colors = greedy_coloring(g);
    EXPECT_TRUE(is_proper_vertex_coloring(g, colors)) << family;
    EXPECT_LE(num_colors_used(colors), max_degree(g) + 1) << family;
  }
}

TEST(GreedyColoring, PathUsesTwoColors) {
  const auto colors = greedy_coloring(make_path(10));
  EXPECT_EQ(num_colors_used(colors), 2);
}

TEST(GreedyColoring, CompleteUsesAllColors) {
  const auto colors = greedy_coloring(make_complete(7));
  EXPECT_EQ(num_colors_used(colors), 7);
}

TEST(GreedyRecoloring, NeverWorseThanPhaseCount) {
  const Graph g = make_gnp(150, 0.05, 3);
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = 3;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  const std::int32_t greedy = greedy_supergraph_colors(g, run.clustering());
  EXPECT_LE(greedy, run.clustering().num_colors());
  EXPECT_GE(greedy, 1);
}

}  // namespace
}  // namespace dsnd
