#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace dsnd {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, WelfordStableUnderLargeOffset) {
  Summary s;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) s.add(offset + x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.quantile(0.9), 90.0, 1.0);
}

TEST(SampleSet, QuantileAfterInterleavedAdds) {
  SampleSet s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleSet, ThrowsOnEmpty) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), std::invalid_argument);
  EXPECT_THROW(s.min(), std::invalid_argument);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(9.5);    // bucket 4
  h.add(-3.0);   // clamped to bucket 0
  h.add(100.0);  // clamped to bucket 4
  h.add(5.0);    // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHasHighR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LinearFit, RejectsMismatchedSizes) {
  EXPECT_THROW(fit_linear({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1.0}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
