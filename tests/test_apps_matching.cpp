#include "apps/matching.hpp"

#include <gtest/gtest.h>

#include "apps/checkers.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

DecompositionRun decompose(const Graph& g, std::uint64_t seed) {
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = seed;
  return elkin_neiman_decomposition(g, options);
}

TEST(Checkers, MatchingBasics) {
  const Graph g = make_path(4);
  EXPECT_TRUE(is_matching(g, {1, 0, 3, 2}));
  EXPECT_TRUE(is_maximal_matching(g, {1, 0, 3, 2}));
  EXPECT_TRUE(is_matching(g, {-1, -1, -1, -1}));
  EXPECT_FALSE(is_maximal_matching(g, {-1, -1, -1, -1}));
  // Asymmetric mate is invalid.
  EXPECT_FALSE(is_matching(g, {1, -1, -1, -1}));
  // Non-edge pairing is invalid.
  EXPECT_FALSE(is_matching(g, {2, -1, 0, -1}));
  // Self-pairing is invalid.
  EXPECT_FALSE(is_matching(g, {0, -1, -1, -1}));
}

TEST(MatchingByDecomposition, MaximalOnFamilies) {
  for (const char* family :
       {"grid", "gnp-sparse", "gnp-dense", "cycle", "random-tree",
        "ring-of-cliques", "small-world"}) {
    const Graph g = family_by_name(family).make(128, 7);
    const DecompositionRun run = decompose(g, 7);
    const MatchingResult result =
        matching_by_decomposition(g, run.clustering());
    EXPECT_TRUE(is_maximal_matching(g, result.mate)) << family;
  }
}

TEST(MatchingByDecomposition, CountsMatchedEdges) {
  const Graph g = make_path(6);
  const DecompositionRun run = decompose(g, 2);
  const MatchingResult result =
      matching_by_decomposition(g, run.clustering());
  VertexId matched_vertices = 0;
  for (const VertexId m : result.mate) {
    if (m != -1) ++matched_vertices;
  }
  EXPECT_EQ(matched_vertices, 2 * result.matched_edges);
}

TEST(MatchingByDecomposition, PerfectOnCompleteEven) {
  const Graph g = make_complete(16);
  const DecompositionRun run = decompose(g, 3);
  const MatchingResult result =
      matching_by_decomposition(g, run.clustering());
  EXPECT_EQ(result.matched_edges, 8);  // maximal = perfect on K_16
}

TEST(MatchingByDecomposition, EdgelessGraphMatchesNothing) {
  const Graph g = Graph::from_edges(8, {});
  const DecompositionRun run = decompose(g, 1);
  const MatchingResult result =
      matching_by_decomposition(g, run.clustering());
  EXPECT_EQ(result.matched_edges, 0);
  EXPECT_TRUE(is_maximal_matching(g, result.mate));
}

TEST(MatchingByDecomposition, StarMatchesExactlyOneEdge) {
  const Graph g = make_star(9);
  const DecompositionRun run = decompose(g, 4);
  const MatchingResult result =
      matching_by_decomposition(g, run.clustering());
  EXPECT_EQ(result.matched_edges, 1);
  EXPECT_TRUE(is_maximal_matching(g, result.mate));
}

}  // namespace
}  // namespace dsnd
