// The standalone validator against seeded corruptions: every corruption
// class must come back as its named issue kind (the contract the CLI's
// exit status and the CI ingestion smoke grep rely on), and clean
// graphs from every registered family must pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "graph/validator.hpp"

namespace dsnd {
namespace {

/// A mutable copy of a graph's CSR to corrupt.
struct RawCsr {
  std::vector<std::int64_t> offsets;
  std::vector<VertexId> adjacency;

  explicit RawCsr(const Graph& g)
      : offsets(g.csr_offsets().begin(), g.csr_offsets().end()),
        adjacency(g.csr_adjacency().begin(), g.csr_adjacency().end()) {}

  GraphCheckReport check() const { return check_csr(offsets, adjacency); }
};

Graph seed_graph() { return make_gnp(64, 0.12, 9); }

TEST(Chkgraph, CleanGraphsFromEveryFamilyPass) {
  for (const GraphFamily& family : standard_families()) {
    const GraphCheckReport report = check_graph(family.make(300, 7));
    EXPECT_TRUE(report.ok()) << family.name << ":\n"
                             << format_report(report);
    EXPECT_EQ(report.total_issues, 0) << family.name;
  }
}

TEST(Chkgraph, InjectedSelfLoopIsCaught) {
  const Graph g = seed_graph();
  RawCsr csr(g);
  // Overwrite the first entry of the first non-empty row with the row's
  // own vertex.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto begin = csr.offsets[static_cast<std::size_t>(v)];
    if (begin < csr.offsets[static_cast<std::size_t>(v) + 1]) {
      csr.adjacency[static_cast<std::size_t>(begin)] = v;
      break;
    }
  }
  const GraphCheckReport report = csr.check();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(GraphIssueKind::kSelfLoop))
      << format_report(report);
}

TEST(Chkgraph, DroppedReverseEdgeIsCaught) {
  const Graph g = seed_graph();
  RawCsr csr(g);
  // Remove the last entry of the last non-empty row — its reverse
  // direction survives, so exactly one asymmetry must be reported.
  for (VertexId v = g.num_vertices() - 1; v >= 0; --v) {
    const auto vu = static_cast<std::size_t>(v);
    if (csr.offsets[vu] < csr.offsets[vu + 1]) {
      csr.adjacency.erase(csr.adjacency.begin() +
                          static_cast<std::ptrdiff_t>(csr.offsets[vu + 1]) -
                          1);
      for (std::size_t i = vu + 1; i < csr.offsets.size(); ++i) {
        --csr.offsets[i];
      }
      break;
    }
  }
  const GraphCheckReport report = csr.check();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(GraphIssueKind::kAsymmetric))
      << format_report(report);
  EXPECT_EQ(report.total_issues, 1) << format_report(report);
}

TEST(Chkgraph, DuplicateEdgeIsCaught) {
  const Graph g = seed_graph();
  RawCsr csr(g);
  // Duplicate the first entry of the first row with degree >= 2 by
  // overwriting its second entry (keeps the row sorted).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto vu = static_cast<std::size_t>(v);
    if (csr.offsets[vu + 1] - csr.offsets[vu] >= 2) {
      const auto begin = static_cast<std::size_t>(csr.offsets[vu]);
      csr.adjacency[begin + 1] = csr.adjacency[begin];
      break;
    }
  }
  const GraphCheckReport report = csr.check();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(GraphIssueKind::kDuplicateEdge))
      << format_report(report);
}

TEST(Chkgraph, OutOfRangeNeighborIsCaught) {
  const Graph g = seed_graph();
  RawCsr csr(g);
  csr.adjacency.back() = g.num_vertices() + 5;
  const GraphCheckReport report = csr.check();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(GraphIssueKind::kOutOfRange))
      << format_report(report);
}

TEST(Chkgraph, UnsortedRowIsCaught) {
  const Graph g = seed_graph();
  RawCsr csr(g);
  // Swap the first two entries of a row with two distinct neighbors.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto vu = static_cast<std::size_t>(v);
    if (csr.offsets[vu + 1] - csr.offsets[vu] >= 2) {
      const auto begin = static_cast<std::size_t>(csr.offsets[vu]);
      std::swap(csr.adjacency[begin], csr.adjacency[begin + 1]);
      break;
    }
  }
  const GraphCheckReport report = csr.check();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(GraphIssueKind::kUnsortedRow))
      << format_report(report);
  // The symmetry pass must still find reverse edges in the unsorted row
  // (it falls back to a linear scan), so no spurious asymmetry.
  EXPECT_FALSE(report.has(GraphIssueKind::kAsymmetric))
      << format_report(report);
}

TEST(Chkgraph, BadOffsetsAreCaughtWithoutCascading) {
  const Graph g = seed_graph();
  {
    RawCsr csr(g);
    csr.offsets[3] = csr.offsets[5] + 1;  // non-monotone interior offset
    const GraphCheckReport report = csr.check();
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(GraphIssueKind::kBadOffsets))
        << format_report(report);
  }
  {
    RawCsr csr(g);
    csr.offsets.back() =
        static_cast<std::int64_t>(csr.adjacency.size()) + 10;
    const GraphCheckReport report = csr.check();
    EXPECT_TRUE(report.has(GraphIssueKind::kBadOffsets))
        << format_report(report);
  }
  {
    const GraphCheckReport report = check_csr({}, {});
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(GraphIssueKind::kBadOffsets));
  }
}

TEST(Chkgraph, IssueCapKeepsCounting) {
  // A fully self-looped "graph": n issues with a cap of 4 — the list is
  // capped, the total is not.
  const VertexId n = 32;
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1);
  std::vector<VertexId> adjacency(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    offsets[static_cast<std::size_t>(v)] = v;
    adjacency[static_cast<std::size_t>(v)] = v;
  }
  offsets[static_cast<std::size_t>(n)] = n;
  const GraphCheckReport report = check_csr(offsets, adjacency, 4);
  EXPECT_EQ(report.issues.size(), 4u);
  EXPECT_EQ(report.total_issues, n);
}

TEST(Chkgraph, DegreeStatsSummarizeTheDistribution) {
  // A star: one hub of degree n-1, n-1 leaves of degree 1.
  const VertexId n = 100;
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) edges.push_back({0, v});
  const Graph star = Graph::from_edges(n, std::move(edges));
  const DegreeStats stats = degree_stats(star);
  EXPECT_EQ(stats.min_degree, 1);
  EXPECT_EQ(stats.max_degree, n - 1);
  EXPECT_EQ(stats.isolated_vertices, 0);
  EXPECT_NEAR(stats.mean_degree, 2.0 * (n - 1) / n, 1e-9);
  EXPECT_EQ(stats.p90_degree, 1);
  // Histogram: bucket 1 holds the degree-1 leaves, the top bucket the hub.
  ASSERT_GE(stats.histogram.size(), 2u);
  EXPECT_EQ(stats.histogram[0], 0);
  EXPECT_EQ(stats.histogram[1], n - 1);
  EXPECT_EQ(stats.histogram.back(), 1);
}

TEST(Chkgraph, IssueKindNamesAreStable) {
  EXPECT_STREQ(to_string(GraphIssueKind::kBadOffsets), "bad-offsets");
  EXPECT_STREQ(to_string(GraphIssueKind::kOutOfRange), "out-of-range");
  EXPECT_STREQ(to_string(GraphIssueKind::kSelfLoop), "self-loop");
  EXPECT_STREQ(to_string(GraphIssueKind::kUnsortedRow), "unsorted-row");
  EXPECT_STREQ(to_string(GraphIssueKind::kDuplicateEdge), "duplicate-edge");
  EXPECT_STREQ(to_string(GraphIssueKind::kAsymmetric), "asymmetric");
}

}  // namespace
}  // namespace dsnd
