#include "support/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dsnd {
namespace {

TEST(Exponential, InverseCdfMatchesClosedForm) {
  // F^{-1}(u) = -ln(1-u)/beta.
  EXPECT_DOUBLE_EQ(exponential_inverse_cdf(0.0, 2.0), 0.0);
  EXPECT_NEAR(exponential_inverse_cdf(0.5, 1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(exponential_inverse_cdf(0.9, 0.5), -std::log(0.1) / 0.5,
              1e-12);
}

TEST(Exponential, RejectsBadParameters) {
  EXPECT_THROW(exponential_inverse_cdf(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(exponential_inverse_cdf(0.5, -1.0), std::invalid_argument);
  EXPECT_THROW(exponential_inverse_cdf(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(exponential_inverse_cdf(-0.1, 1.0), std::invalid_argument);
}

TEST(Exponential, SampleMeanIsOneOverBeta) {
  for (double beta : {0.5, 1.0, 3.0}) {
    Xoshiro256ss rng(42);
    double sum = 0.0;
    const int samples = 200000;
    for (int i = 0; i < samples; ++i) sum += sample_exponential(rng, beta);
    EXPECT_NEAR(sum / samples, 1.0 / beta, 0.02 / beta);
  }
}

TEST(Exponential, SamplesAreNonnegative) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(sample_exponential(rng, 2.0), 0.0);
  }
}

TEST(Exponential, TailProbabilityMatchesTheory) {
  // Pr[X >= t] = e^{-beta t}; this drives Lemma 1 of the paper.
  const double beta = 1.0;
  const double t = 2.0;
  Xoshiro256ss rng(3);
  int over = 0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    if (sample_exponential(rng, beta) >= t) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / samples, std::exp(-beta * t),
              0.005);
}

TEST(TruncatedGeometric, SurvivalIsPowersOfP) {
  // Pr[r >= j] = p^j for j <= max_radius.
  const double p = 0.5;
  const int max_radius = 6;
  Xoshiro256ss rng(17);
  const int samples = 200000;
  std::vector<int> at_least(max_radius + 1, 0);
  for (int i = 0; i < samples; ++i) {
    const int r = sample_truncated_geometric(rng, p, max_radius);
    ASSERT_GE(r, 0);
    ASSERT_LE(r, max_radius);
    for (int j = 0; j <= r; ++j) ++at_least[j];
  }
  for (int j = 0; j <= max_radius; ++j) {
    EXPECT_NEAR(static_cast<double>(at_least[j]) / samples, std::pow(p, j),
                0.01)
        << "j=" << j;
  }
}

TEST(TruncatedGeometric, CapIsRespected) {
  Xoshiro256ss rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(sample_truncated_geometric(rng, 0.9, 3), 3);
  }
}

TEST(TruncatedGeometric, ZeroCapAlwaysZero) {
  Xoshiro256ss rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_truncated_geometric(rng, 0.5, 0), 0);
  }
}

TEST(TruncatedGeometric, RejectsBadParameters) {
  Xoshiro256ss rng(1);
  EXPECT_THROW(sample_truncated_geometric(rng, 0.0, 3),
               std::invalid_argument);
  EXPECT_THROW(sample_truncated_geometric(rng, 1.0, 3),
               std::invalid_argument);
  EXPECT_THROW(sample_truncated_geometric(rng, 0.5, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
