#include "decomposition/linial_saks.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "decomposition/supergraph.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"

namespace dsnd {
namespace {

TEST(LinialSaks, PFormula) {
  EXPECT_NEAR(linial_saks_p(16, 4), std::pow(16.0, -0.25), 1e-12);
  EXPECT_NEAR(linial_saks_p(100, 1), 0.01, 1e-12);
}

TEST(LinialSaks, CompletePartitionAndProperColoring) {
  for (const char* family : {"grid", "gnp-sparse", "cycle", "random-tree"}) {
    const Graph g = family_by_name(family).make(128, 3);
    LinialSaksOptions options;
    options.k = 4;
    options.seed = 3;
    const DecompositionRun run = linial_saks_decomposition(g, options);
    EXPECT_TRUE(run.clustering().is_complete()) << family;
    EXPECT_TRUE(phase_coloring_is_proper(g, run.clustering())) << family;
  }
}

TEST(LinialSaks, WeakDiameterWithinBound) {
  // LS93's guarantee is deterministic given the radii cap: every member
  // is within r_v <= k-1 hops of its center in G_t, hence any two members
  // are within 2k-2 in G.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = make_gnp(120, 0.05, seed);
    LinialSaksOptions options;
    options.k = 4;
    options.seed = seed;
    const DecompositionRun run = linial_saks_decomposition(g, options);
    const DecompositionReport report =
        validate_decomposition(g, run.clustering());
    ASSERT_NE(report.max_weak_diameter, kInfiniteDiameter);
    EXPECT_LE(report.max_weak_diameter, 2 * 4 - 2) << "seed=" << seed;
  }
}

TEST(LinialSaks, StrongDiameterCanExceedWeakBound) {
  // The gap the paper closes: across seeds and graphs, LS93 sooner or
  // later produces a cluster that is disconnected in its induced graph or
  // has strong diameter above 2k-2. (Each individual run may be lucky, so
  // we scan until the gap shows.)
  bool gap_found = false;
  for (std::uint64_t seed = 1; seed <= 40 && !gap_found; ++seed) {
    const Graph g = make_gnp(200, 0.03, seed);
    LinialSaksOptions options;
    options.k = 4;
    options.seed = seed;
    const DecompositionRun run = linial_saks_decomposition(g, options);
    const DecompositionReport report =
        validate_decomposition(g, run.clustering());
    if (report.max_strong_diameter == kInfiniteDiameter ||
        report.max_strong_diameter > 2 * 4 - 2) {
      gap_found = true;
    }
  }
  EXPECT_TRUE(gap_found)
      << "LS93 never violated the strong-diameter bound across 40 runs "
         "(statistically implausible)";
}

TEST(LinialSaks, RadiiRespectCap) {
  const Graph g = make_gnp(100, 0.05, 7);
  LinialSaksOptions options;
  options.k = 3;
  options.seed = 7;
  const DecompositionRun run = linial_saks_decomposition(g, options);
  EXPECT_LE(run.carve.max_sampled_radius, 3 - 1);
}

TEST(LinialSaks, DeterministicInSeed) {
  const Graph g = make_gnp(80, 0.08, 9);
  LinialSaksOptions options;
  options.k = 4;
  options.seed = 55;
  const DecompositionRun a = linial_saks_decomposition(g, options);
  const DecompositionRun b = linial_saks_decomposition(g, options);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(a.clustering().cluster_of(v), b.clustering().cluster_of(v));
  }
}

TEST(LinialSaks, MembersNearTheirCenterInG) {
  // Retention requires d_{G_t}(y, center) < r <= k-1, and distances in G
  // only shrink relative to G_t, so every member is within k-2 hops of
  // its center in G. (Note the center itself need not be a member — it
  // may have joined a smaller-id center's cluster.)
  const Graph g = make_grid2d(8, 8);
  LinialSaksOptions options;
  options.k = 4;
  options.seed = 12;
  const DecompositionRun run = linial_saks_decomposition(g, options);
  const auto members = run.clustering().members();
  for (ClusterId c = 0; c < run.clustering().num_clusters(); ++c) {
    const VertexId center = run.clustering().center_of(c);
    const auto dist = bfs_distances(g, center);
    for (const VertexId v : members[static_cast<std::size_t>(c)]) {
      ASSERT_NE(dist[static_cast<std::size_t>(v)], kUnreachable);
      EXPECT_LE(dist[static_cast<std::size_t>(v)], 4 - 2)
          << "cluster " << c << " member " << v;
    }
  }
}

TEST(LinialSaks, SingleVertexAndRejects) {
  const Graph g = make_path(1);
  const DecompositionRun run =
      linial_saks_decomposition(g, LinialSaksOptions{});
  EXPECT_TRUE(run.clustering().is_complete());
  EXPECT_THROW(linial_saks_decomposition(Graph(), LinialSaksOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
