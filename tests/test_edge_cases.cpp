// Cross-cutting edge cases: degenerate graphs, extreme parameters, and
// adversarial structures that the per-module tests do not reach.
#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/checkers.hpp"
#include "apps/luby.hpp"
#include "apps/mis.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/elkin_neiman_distributed.hpp"
#include "decomposition/linial_saks.hpp"
#include "decomposition/mpx.hpp"
#include "decomposition/supergraph.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "simulator/engine.hpp"

namespace dsnd {
namespace {

TEST(EdgeCases, ElkinNeimanKLargerThanLogN) {
  // k beyond ln n is allowed (it just wastes radius); the guarantees
  // still hold.
  const Graph g = make_cycle(32);
  ElkinNeimanOptions options;
  options.k = 12;  // ln 32 ~ 3.5
  options.seed = 3;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
  if (!run.carve.radius_overflow) {
    const DecompositionReport report =
        validate_decomposition(g, run.clustering());
    EXPECT_LE(report.max_strong_diameter, 2 * 12 - 2);
  }
}

TEST(EdgeCases, ElkinNeimanHugeCRarelyOverflows) {
  // c = 1000: overflow probability <= 2/c = 0.002; with 20 seeds we
  // should see none (probability of a false failure ~4%... use 10).
  int overflows = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = make_gnp(100, 0.06, seed);
    ElkinNeimanOptions options;
    options.k = 4;
    options.c = 1000.0;
    options.seed = seed;
    const DecompositionRun run = elkin_neiman_decomposition(g, options);
    if (run.carve.radius_overflow) ++overflows;
    EXPECT_TRUE(run.clustering().is_complete());
  }
  EXPECT_EQ(overflows, 0);
}

TEST(EdgeCases, ElkinNeimanTinyCStillCompletes) {
  // c < 3 voids the success probability statement but not correctness
  // of the outputs (run_to_completion).
  const Graph g = make_grid2d(8, 8);
  ElkinNeimanOptions options;
  options.k = 3;
  options.c = 0.5;
  options.seed = 2;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
}

TEST(EdgeCases, StarGraphDecomposition) {
  // Star: the hub dominates every broadcast comparison.
  const Graph g = make_star(50);
  ElkinNeimanOptions options;
  options.k = 3;
  options.seed = 5;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
  EXPECT_TRUE(phase_coloring_is_proper(g, run.clustering()) ||
              run.carve.radius_overflow);
}

TEST(EdgeCases, BarbellBridgesSurviveCarving) {
  // Barbell stresses the case where one long path separates two dense
  // blobs; clusters must never span the bridge beyond their radius.
  const Graph g = make_barbell(12, 9);
  ElkinNeimanOptions options;
  options.k = 3;
  options.seed = 7;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
  if (!run.carve.radius_overflow) {
    const DecompositionReport report =
        validate_decomposition(g, run.clustering());
    EXPECT_LE(report.max_strong_diameter, 4);
    EXPECT_TRUE(report.all_clusters_connected);
  }
}

TEST(EdgeCases, DistributedOnCompleteGraph) {
  // Dense worst case for message counts; equivalence must still hold.
  const Graph g = make_complete(40);
  ElkinNeimanOptions options;
  options.k = 2;
  options.seed = 9;
  const DistributedRun dist = elkin_neiman_distributed(g, options);
  const DecompositionRun central = elkin_neiman_decomposition(g, options);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(dist.run.clustering().cluster_of(v),
              central.clustering().cluster_of(v));
  }
}

TEST(EdgeCases, EdgelessGraphEverywhere) {
  const Graph g = Graph::from_edges(16, {});
  ElkinNeimanOptions en;
  en.k = 3;
  const DecompositionRun run = elkin_neiman_decomposition(g, en);
  EXPECT_TRUE(run.clustering().is_complete());
  // Every vertex is its own component, so all clusters are singletons.
  // Note an isolated vertex still joins only when r_v > 1 (m2 = 0 by
  // definition — the parenthetical in the paper's Claim 6), so
  // exhaustion takes ~(cn)^{1/k} ln(cn) phases even with no contention.
  EXPECT_EQ(run.clustering().num_clusters(), 16);
  EXPECT_GE(run.carve.phases_used, 1);
  for (const VertexId size : run.clustering().cluster_sizes()) {
    EXPECT_EQ(size, 1);
  }

  const MpxResult mpx = mpx_partition(g, {.beta = 0.5, .seed = 1});
  EXPECT_EQ(mpx.clustering.num_clusters(), 16);
  EXPECT_EQ(mpx.cut_edges, 0);

  const LubyResult luby = luby_mis(g, 1);
  EXPECT_TRUE(is_maximal_independent_set(g, luby.in_mis));
}

TEST(EdgeCases, SupergraphOfMpxPartition) {
  // MPX is a partition (all color 0); contraction still works and greedy
  // coloring of the supergraph yields a proper coloring.
  const Graph g = make_torus2d(8, 8);
  const MpxResult mpx = mpx_partition(g, {.beta = 0.4, .seed = 6});
  const Graph super = build_supergraph(g, mpx.clustering);
  const auto colors = greedy_coloring(super);
  EXPECT_TRUE(is_proper_vertex_coloring(super, colors));
}

TEST(EdgeCases, CompleteBipartiteDecomposition) {
  const Graph g = make_complete_bipartite(20, 20);
  ElkinNeimanOptions options;
  options.k = 2;
  options.seed = 11;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
  const MisResult mis = mis_by_decomposition(g, run.clustering());
  EXPECT_TRUE(is_maximal_independent_set(g, mis.in_mis));
  // The MIS of K_{a,b} is one full side.
  VertexId size = 0;
  for (const char b : mis.in_mis) size += b;
  EXPECT_EQ(size, 20);
}

TEST(EdgeCases, LinialSaksOnDisconnectedGraph) {
  GraphBuilder builder(30);
  for (VertexId v = 0; v + 1 < 15; ++v) builder.add_edge(v, v + 1);
  for (VertexId v = 15; v + 1 < 30; ++v) builder.add_edge(v, v + 1);
  const Graph g = std::move(builder).build();
  LinialSaksOptions options;
  options.k = 3;
  options.seed = 13;
  const DecompositionRun run = linial_saks_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
  EXPECT_TRUE(phase_coloring_is_proper(g, run.clustering()));
}

TEST(EdgeCases, SeedZeroIsValid) {
  const Graph g = make_gnp(50, 0.1, 0);
  ElkinNeimanOptions options;
  options.k = 3;
  options.seed = 0;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
}

/// Protocol that sends multiple messages to the same neighbor in one
/// round — the engine must deliver all of them.
class MultiSendProtocol final : public Protocol {
 public:
  void begin(const Graph&) override { received_ = 0; }
  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    if (v == 0 && round == 0) {
      out.send(1, {1});
      out.send(1, {2});
      out.send(1, {3});
    }
    if (v == 1) received_ += inbox.size();
  }
  bool finished() const override { return received_ >= 3; }
  std::size_t received() const { return received_; }

 private:
  std::size_t received_ = 0;
};

TEST(EdgeCases, EngineDeliversMultipleMessagesPerEdge) {
  const Graph g = make_path(2);
  MultiSendProtocol protocol;
  SyncEngine engine(g);
  const SimMetrics metrics = engine.run(protocol, 5);
  EXPECT_EQ(protocol.received(), 3u);
  EXPECT_EQ(metrics.messages, 3u);
}

TEST(EdgeCases, EngineRejectsSelfSend) {
  // has_edge(v, v) is false, so self-sends violate the model.
  class SelfSend final : public Protocol {
   public:
    void begin(const Graph&) override {}
    void on_round(VertexId v, std::size_t, std::span<const MessageView>,
                  Outbox& out) override {
      if (v == 0) out.send(0, {1});
    }
    bool finished() const override { return false; }
  };
  const Graph g = make_path(3);
  SelfSend protocol;
  SyncEngine engine(g);
  EXPECT_THROW(engine.run(protocol, 2), std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
