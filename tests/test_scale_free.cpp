// The property/determinism layer for the scale-free generators: the
// stream-split RNG contract (bit-identical output for every chunk
// count, including "hardware concurrency"), agreement with a brute
// force O(n^2) reference for the hyperbolic bucketing, heavy-tail
// shape checks via the degree-stats summary, and — matrix style, like
// test_distributed_parity — engine-thread invariance and
// centralized/distributed parity of carves on the new families.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>

#include "decomposition/elkin_neiman_distributed.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/validator.hpp"

namespace dsnd {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 7, 42};
// 7 does not divide typical sizes — uneven chunks; 0 = hardware
// concurrency, whatever it is on the test machine.
constexpr unsigned kChunkCounts[] = {2, 4, 7, 0};

TEST(ScaleFree, HyperbolicBitIdenticalAcrossChunkCounts) {
  for (const std::uint64_t seed : kSeeds) {
    const HyperbolicGraph base =
        make_hyperbolic_geometric(3000, 8.0, 2.8, seed, 1);
    for (const unsigned threads : kChunkCounts) {
      const HyperbolicGraph other =
          make_hyperbolic_geometric(3000, 8.0, 2.8, seed, threads);
      const std::string label =
          "seed=" + std::to_string(seed) + " threads=" +
          std::to_string(threads);
      EXPECT_TRUE(other.graph == base.graph) << label;
      EXPECT_EQ(other.radius, base.radius) << label;
      EXPECT_EQ(other.angle, base.angle) << label;
      EXPECT_EQ(other.disk_radius, base.disk_radius) << label;
    }
  }
}

TEST(ScaleFree, KroneckerBitIdenticalAcrossChunkCounts) {
  for (const std::uint64_t seed : kSeeds) {
    const Graph base = make_kronecker(11, 8, seed, 1);
    for (const unsigned threads : kChunkCounts) {
      EXPECT_TRUE(make_kronecker(11, 8, seed, threads) == base)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ScaleFree, BarabasiAlbertBitIdenticalAcrossChunkCounts) {
  for (const std::uint64_t seed : kSeeds) {
    const Graph base = make_barabasi_albert(4000, 4, seed, 1);
    for (const unsigned threads : kChunkCounts) {
      EXPECT_TRUE(make_barabasi_albert(4000, 4, seed, threads) == base)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ScaleFree, BarabasiAlbertShapeAndTail) {
  const Graph g = make_barabasi_albert(20000, 4, 1, 4);
  EXPECT_EQ(g.num_vertices(), 20000);
  // nm slots minus self-attachments and duplicate picks: just under nm
  // undirected edges.
  EXPECT_GT(g.num_edges(), 20000 * 3);
  EXPECT_LE(g.num_edges(), 20000 * 4);
  const DegreeStats stats = degree_stats(g);
  // Preferential attachment's signature: hubs far above the ~2m mean
  // and the textbook alpha ~= 3 tail exponent.
  EXPECT_GT(stats.max_degree, static_cast<VertexId>(20 * stats.mean_degree));
  EXPECT_GT(stats.powerlaw_alpha, 2.2);
  EXPECT_LT(stats.powerlaw_alpha, 3.8);
}

TEST(ScaleFree, BarabasiAlbertIsAlwaysConnected) {
  // The first-slot self-draw fallback guarantees every vertex an edge
  // to an earlier one — the connectivity property of the classic
  // sequential construction, which downstream callers rely on.
  for (const std::uint64_t seed : kSeeds) {
    EXPECT_TRUE(is_connected(make_barabasi_albert(3000, 4, seed, 4)))
        << "seed=" << seed;
    EXPECT_TRUE(is_connected(make_barabasi_albert(500, 1, seed, 2)))
        << "m=1 seed=" << seed;
  }
}

TEST(ScaleFree, GeneratorsAreSeedSensitive) {
  EXPECT_FALSE(make_hyperbolic(2000, 8.0, 2.8, 1) ==
               make_hyperbolic(2000, 8.0, 2.8, 2));
  EXPECT_FALSE(make_kronecker(10, 8, 1) == make_kronecker(10, 8, 2));
  EXPECT_FALSE(make_barabasi_albert(2000, 4, 1) ==
               make_barabasi_albert(2000, 4, 2));
}

TEST(ScaleFree, HyperbolicMatchesBruteForceNeighborhoods) {
  // The annulus-bucketed edge scan must reproduce the O(n^2) threshold
  // rule exactly: {i, j} is an edge iff the hyperbolic distance is at
  // most the disk radius.
  for (const std::uint64_t seed : {3ULL, 9ULL}) {
    const HyperbolicGraph h =
        make_hyperbolic_geometric(600, 8.0, 2.8, seed, 4);
    const double cosh_disk = std::cosh(h.disk_radius);
    std::set<std::pair<VertexId, VertexId>> expected;
    for (VertexId i = 0; i < 600; ++i) {
      for (VertexId j = i + 1; j < 600; ++j) {
        const auto iu = static_cast<std::size_t>(i);
        const auto ju = static_cast<std::size_t>(j);
        const double cosh_d =
            std::cosh(h.radius[iu]) * std::cosh(h.radius[ju]) -
            std::sinh(h.radius[iu]) * std::sinh(h.radius[ju]) *
                std::cos(h.angle[iu] - h.angle[ju]);
        if (cosh_d <= cosh_disk) expected.insert({i, j});
      }
    }
    std::set<std::pair<VertexId, VertexId>> actual;
    h.graph.for_each_edge(
        [&actual](VertexId u, VertexId v) { actual.insert({u, v}); });
    EXPECT_EQ(actual, expected) << "seed=" << seed;
  }
}

TEST(ScaleFree, HyperbolicDegreeDistributionIsHeavyTailed) {
  const Graph g = make_hyperbolic(20000, 8.0, 2.8, 1, 4);
  const DegreeStats stats = degree_stats(g);
  // Mean degree lands near the target (the GPP asymptotics are only
  // asymptotic, so the window is generous).
  EXPECT_GT(stats.mean_degree, 4.0);
  EXPECT_LT(stats.mean_degree, 16.0);
  // Power-law tail: hub degrees far above the mean, and the MLE
  // exponent in the plausible window around the configured gamma = 2.8.
  EXPECT_GT(stats.max_degree, static_cast<VertexId>(20 * stats.mean_degree));
  EXPECT_GT(stats.powerlaw_alpha, 2.0);
  EXPECT_LT(stats.powerlaw_alpha, 3.6);
}

TEST(ScaleFree, KroneckerShapeAndTail) {
  const Graph g = make_kronecker(13, 8, 1, 4);
  EXPECT_EQ(g.num_vertices(), 8192);
  // Sampling 8n directed edges, minus self-loops and duplicates, keeps
  // the undirected count well below 8n but of that order.
  EXPECT_GT(g.num_edges(), 8192 * 3);
  EXPECT_LE(g.num_edges(), 8192 * 8);
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max_degree, static_cast<VertexId>(10 * stats.mean_degree));
  // The R-MAT initiator leaves a large cold corner of the id space.
  EXPECT_GT(stats.isolated_vertices, 0);
}

TEST(ScaleFree, GeneratorsRejectInvalidParameters) {
  EXPECT_THROW(make_hyperbolic(1, 8.0, 2.8, 1), std::invalid_argument);
  EXPECT_THROW(make_hyperbolic(100, 0.0, 2.8, 1), std::invalid_argument);
  EXPECT_THROW(make_hyperbolic(100, 8.0, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(make_kronecker(0, 8, 1), std::invalid_argument);
  EXPECT_THROW(make_kronecker(31, 8, 1), std::invalid_argument);
  EXPECT_THROW(make_kronecker(10, 0, 1), std::invalid_argument);
}

TEST(ScaleFree, RegisteredFamiliesProduceValidGraphs) {
  for (const char* family : {"hyperbolic", "kronecker", "ba"}) {
    const Graph g = family_by_name(family).make(2048, 9);
    const GraphCheckReport report = check_graph(g);
    EXPECT_TRUE(report.ok())
        << family << ":\n" << format_report(report);
  }
}

TEST(ScaleFree, CarvesAreEngineThreadInvariant) {
  // Matrix in the style of test_distributed_parity's shard-invariance
  // acceptance: theorem x scale-free family x engine thread count must
  // reproduce the serial run bit-for-bit — hub-heavy inboxes are
  // exactly where a sharded delivery bug would show first.
  for (const int theorem : {1, 2, 3}) {
    for (const char* family : {"hyperbolic", "kronecker"}) {
      const Graph g = family_by_name(family).make(1024, 5);
      const std::uint64_t seed = 17 * static_cast<std::uint64_t>(theorem);
      DistributedRun runs[4];
      const unsigned thread_counts[] = {1, 2, 4, 7};
      for (std::size_t i = 0; i < 4; ++i) {
        EngineOptions engine;
        engine.threads = thread_counts[i];
        if (theorem == 1) {
          ElkinNeimanOptions options;
          options.k = 4;
          options.seed = seed;
          runs[i] = elkin_neiman_distributed(g, options, engine);
        } else if (theorem == 2) {
          MultistageOptions options;
          options.k = 3;
          options.seed = seed;
          runs[i] = multistage_distributed(g, options, engine);
        } else {
          HighRadiusOptions options;
          options.lambda = 3;
          options.seed = seed;
          runs[i] = high_radius_distributed(g, options, engine);
        }
      }
      for (std::size_t i = 1; i < 4; ++i) {
        const std::string label = std::string("T") +
                                  std::to_string(theorem) + " " + family +
                                  " threads=" +
                                  std::to_string(thread_counts[i]);
        ASSERT_EQ(runs[i].run.carve.phases_used,
                  runs[0].run.carve.phases_used)
            << label;
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          ASSERT_EQ(runs[i].run.clustering().cluster_of(v),
                    runs[0].run.clustering().cluster_of(v))
              << label << " v=" << v;
        }
        EXPECT_EQ(runs[i].sim.messages, runs[0].sim.messages) << label;
        EXPECT_EQ(runs[i].sim.words, runs[0].sim.words) << label;
      }
    }
  }
}

TEST(ScaleFree, DistributedMatchesCentralizedOnScaleFreeFamilies) {
  for (const char* family : {"hyperbolic", "kronecker"}) {
    for (const std::uint64_t seed : kSeeds) {
      const Graph g = family_by_name(family).make(1024, seed);
      ElkinNeimanOptions options;
      options.k = 4;
      options.seed = seed * 613 + 11;
      const DecompositionRun central =
          elkin_neiman_decomposition(g, options);
      const DistributedRun dist = elkin_neiman_distributed(g, options);
      const std::string label =
          std::string(family) + " seed=" + std::to_string(seed);
      ASSERT_EQ(dist.run.carve.phases_used, central.carve.phases_used)
          << label;
      ASSERT_EQ(dist.run.carve.rounds, central.carve.rounds) << label;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(dist.run.clustering().cluster_of(v),
                  central.clustering().cluster_of(v))
            << label << " v=" << v;
      }
      EXPECT_LE(dist.sim.max_message_words, kMaxProtocolMessageWords)
          << label;
    }
  }
}

}  // namespace
}  // namespace dsnd
