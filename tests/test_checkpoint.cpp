// Phase-boundary checkpointing and rollback-and-replay recovery.
//
// The recovery policy under test (decomposition/checkpoint.hpp): every
// validated phase boundary captures a checkpoint into the context's
// retained arena; a failed attempt — invalid phase caught incrementally,
// rejected whole-run validation, or a named engine failure — restores
// the last checkpoint and replays only the suffix phases on the a = 2
// salt channel, falling back to whole-run retries (a = 1) when the
// rollback budget is exhausted. The anchors:
//   1. Never silently invalid — unchanged from PR 7: every run ends
//      validated-ok or named-failed, now with rollbacks preferred.
//   2. Bit-identity — rollback-recovering runs (including crash-recovery
//      fault plans) are identical for every thread/shard count.
//   3. Strictly cheaper — on the same fault plan, rollback recovery
//      replays fewer phases than the whole-run-retry baseline.
#include "decomposition/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "decomposition/carving_protocol.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "simulator/transport.hpp"

namespace dsnd {
namespace {

bool fast_valid(const Graph& g, const Clustering& clustering) {
  const FastDecompositionReport report =
      validate_decomposition_fast(g, clustering);
  return report.complete && report.proper_phase_coloring &&
         report.all_clusters_connected;
}

/// Full bit-identity: metrics, carve accounting (including the recovery
/// counters this PR adds), and the clustering itself.
void expect_identical(const DistributedRun& a, const DistributedRun& b,
                      const std::string& label) {
  ASSERT_EQ(a.sim.rounds, b.sim.rounds) << label;
  EXPECT_EQ(a.sim.messages, b.sim.messages) << label;
  EXPECT_EQ(a.sim.words, b.sim.words) << label;
  EXPECT_EQ(a.sim.vertex_activations, b.sim.vertex_activations) << label;
  EXPECT_EQ(a.sim.messages_per_round, b.sim.messages_per_round) << label;
  EXPECT_EQ(a.run.carve.status, b.run.carve.status) << label;
  EXPECT_EQ(a.run.carve.phases_used, b.run.carve.phases_used) << label;
  EXPECT_EQ(a.run.carve.retries, b.run.carve.retries) << label;
  EXPECT_EQ(a.run.carve.run_retries, b.run.carve.run_retries) << label;
  EXPECT_EQ(a.run.carve.rollbacks, b.run.carve.rollbacks) << label;
  EXPECT_EQ(a.run.carve.replayed_phases, b.run.carve.replayed_phases)
      << label;
  EXPECT_EQ(a.run.carve.rejoins, b.run.carve.rejoins) << label;
  EXPECT_EQ(a.run.carve.faults.total(), b.run.carve.faults.total()) << label;
  EXPECT_EQ(a.run.carve.carved_per_phase, b.run.carve.carved_per_phase)
      << label;
  const Clustering& ca = a.run.clustering();
  const Clustering& cb = b.run.clustering();
  ASSERT_EQ(ca.num_clusters(), cb.num_clusters()) << label;
  for (VertexId v = 0; v < ca.num_vertices(); ++v) {
    ASSERT_EQ(ca.cluster_of(v), cb.cluster_of(v)) << label << " v=" << v;
  }
  for (ClusterId c = 0; c < ca.num_clusters(); ++c) {
    ASSERT_EQ(ca.center_of(c), cb.center_of(c)) << label << " c=" << c;
    ASSERT_EQ(ca.color_of(c), cb.color_of(c)) << label << " c=" << c;
  }
}

// ---------------------------------------------------------------------------
// PhaseValidator units
// ---------------------------------------------------------------------------

TEST(PhaseValidator, AcceptsConnectedProperlyColoredPhase) {
  // Path 0-1-2-3-4: phase 0 carves {0, 1} around center 0 and {3, 4}
  // around center 3; vertex 2 is still live. Proper (the two clusters
  // are not adjacent) and connected.
  const Graph g = make_path(5);
  const std::vector<VertexId> joiners{0, 1, 3, 4};
  const std::vector<VertexId> center_of{0, 0, -1, 3, 3};
  const std::vector<std::int32_t> phase_of{0, 0, -1, 0, 0};
  PhaseValidator validator;
  EXPECT_TRUE(validator.validate_phase(g, joiners, center_of, phase_of, 0));
}

TEST(PhaseValidator, RejectsAdjacentSamePhaseDifferentClusters) {
  // Vertices 1 and 2 are adjacent, both phase 0, different centers: the
  // coloring violation the full validator would flag, caught at the
  // boundary.
  const Graph g = make_path(4);
  const std::vector<VertexId> joiners{0, 1, 2, 3};
  const std::vector<VertexId> center_of{0, 0, 3, 3};
  const std::vector<std::int32_t> phase_of{0, 0, 0, 0};
  PhaseValidator validator;
  EXPECT_FALSE(validator.validate_phase(g, joiners, center_of, phase_of, 0));
}

TEST(PhaseValidator, RejectsDisconnectedCluster) {
  // Cluster (phase 0, center 0) = {0, 4} with live vertices between:
  // two components of one cluster.
  const Graph g = make_path(5);
  const std::vector<VertexId> joiners{0, 4};
  const std::vector<VertexId> center_of{0, -1, -1, -1, 0};
  const std::vector<std::int32_t> phase_of{0, -1, -1, -1, 0};
  PhaseValidator validator;
  EXPECT_FALSE(validator.validate_phase(g, joiners, center_of, phase_of, 0));
}

TEST(PhaseValidator, IgnoresOtherPhases) {
  // The incremental check is phase-local: a phase-1 vertex adjacent to a
  // phase-0 cluster in a different cluster is legal (colors are phases),
  // and must not leak into phase 0's validation.
  const Graph g = make_path(4);
  const std::vector<VertexId> joiners{0, 1};
  const std::vector<VertexId> center_of{0, 0, 2, 2};
  const std::vector<std::int32_t> phase_of{0, 0, 1, 1};
  const std::vector<VertexId> later_joiners{2, 3};
  PhaseValidator validator;
  EXPECT_TRUE(validator.validate_phase(g, joiners, center_of, phase_of, 0));
  EXPECT_TRUE(
      validator.validate_phase(g, later_joiners, center_of, phase_of, 1));
}

// ---------------------------------------------------------------------------
// Rollback recovery, end to end
// ---------------------------------------------------------------------------

TEST(Checkpoint, RollbackRescuesRunsTheRetryBudgetCannot) {
  // Deterministic configs where the whole-run-retry baseline exhausts
  // its budget and ends rejected, while rollback recovery restores the
  // validated prefix and wins — replaying strictly fewer phases.
  std::int64_t retry_replayed = 0, rollback_replayed = 0;
  int rollback_recoveries = 0;
  for (const auto& [drop, seed] : std::vector<std::pair<double, std::uint64_t>>{
           {0.05, 1}, {0.1, 1}, {0.1, 3}}) {
    const Graph g = make_gnp(128, 0.05, seed);
    FaultPlan plan;
    plan.seed = seed * 7 + 1;
    plan.drop_rate = drop;
    const std::string label =
        "drop=" + std::to_string(drop) + " seed=" + std::to_string(seed);

    CarveSchedule retry_only = theorem1_schedule(128, 4, 4);
    retry_only.max_rollbacks = 0;
    FaultyTransport retry_transport(plan);
    EngineOptions retry_engine;
    retry_engine.transport = &retry_transport;
    const DistributedRun retry =
        run_schedule_distributed(g, retry_only, seed, retry_engine);
    EXPECT_EQ(retry.run.carve.rollbacks, 0) << label;
    retry_replayed += retry.run.carve.replayed_phases;

    const CarveSchedule schedule = theorem1_schedule(128, 4, 4);
    FaultyTransport transport(plan);
    EngineOptions engine;
    engine.transport = &transport;
    const DistributedRun run =
        run_schedule_distributed(g, schedule, seed, engine);
    rollback_replayed += run.run.carve.replayed_phases;
    if (run.run.carve.status == CarveStatus::kOk) {
      EXPECT_TRUE(fast_valid(g, run.run.clustering())) << label;
      if (run.run.carve.rollbacks > 0) ++rollback_recoveries;
    } else {
      EXPECT_GT(run.run.carve.faults.total(), 0u) << label;
    }
  }
  // The recovery path must actually fire, and must be strictly cheaper
  // in replayed phases than the baseline on the same fault plans.
  EXPECT_GT(rollback_recoveries, 0);
  EXPECT_GT(retry_replayed, 0);
  EXPECT_LT(rollback_replayed, retry_replayed);
}

TEST(Checkpoint, SoakMatrixValidOrNamedWithRollbacks) {
  // The PR 7 soak contract, re-soaked with rollback recovery enabled
  // (the default): families x drops x seeds, every run validated-ok or
  // named-failed, and the rollback machinery exercised somewhere in the
  // matrix.
  std::int64_t total_rollbacks = 0;
  for (const char* family : {"gnp", "ring", "hyperbolic"}) {
    const Graph g = family == std::string("gnp")
                        ? make_gnp(128, 0.05, 7)
                        : family == std::string("ring")
                              ? make_cycle(128)
                              : make_hyperbolic(128, 6.0, 2.7, 7);
    const CarveSchedule schedule = theorem1_schedule(g.num_vertices(), 4, 4);
    for (const double drop : {0.01, 0.05, 0.1}) {
      for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        FaultPlan plan;
        plan.seed = seed * 7 + 1;
        plan.drop_rate = drop;
        FaultyTransport transport(plan);
        EngineOptions engine;
        engine.transport = &transport;
        const DistributedRun run =
            run_schedule_distributed(g, schedule, seed, engine);
        const std::string label = std::string(family) +
                                  " drop=" + std::to_string(drop) +
                                  " seed=" + std::to_string(seed);
        total_rollbacks += run.run.carve.rollbacks;
        if (run.run.carve.status == CarveStatus::kOk) {
          EXPECT_TRUE(fast_valid(g, run.run.clustering())) << label;
          EXPECT_FALSE(run.run.carve.radius_overflow) << label;
        } else {
          EXPECT_GT(run.run.carve.faults.total(), 0u) << label;
        }
      }
    }
  }
  EXPECT_GT(total_rollbacks, 0);
}

TEST(Checkpoint, RollbackRecoveryBitIdenticalAcrossThreadCounts) {
  // The acceptance matrix: a config that recovers through rollbacks AND
  // a crash-recovery span must produce identical runs — clustering,
  // metrics, and every recovery counter — for every thread/shard count,
  // including a width that does not divide n (threads = 7).
  for (const auto& [drop, seed] : std::vector<std::pair<double, std::uint64_t>>{
           {0.05, 1}, {0.1, 2}}) {
    const Graph g = make_gnp(128, 0.05, seed);
    const CarveSchedule schedule = theorem1_schedule(128, 4, 4);
    FaultPlan plan;
    plan.seed = seed * 7 + 1;
    plan.drop_rate = drop;
    plan.crashes.push_back(
        CrashSpan{100, 110, std::uint64_t{8}, std::uint64_t{20}});
    std::vector<DistributedRun> runs;
    for (const unsigned threads : {1u, 2u, 4u, 7u}) {
      FaultyTransport transport(plan);
      EngineOptions engine;
      engine.threads = threads;
      engine.transport = &transport;
      runs.push_back(run_schedule_distributed(g, schedule, seed, engine));
    }
    const std::string label =
        "drop=" + std::to_string(drop) + " seed=" + std::to_string(seed);
    // The config must exercise both new fault paths, not vacuously pass.
    EXPECT_GT(runs[0].run.carve.rollbacks, 0) << label;
    EXPECT_GT(runs[0].run.carve.rejoins, 0u) << label;
    for (std::size_t i = 1; i < runs.size(); ++i) {
      expect_identical(runs[i], runs[0],
                       label + " threads-index=" + std::to_string(i));
    }
  }
}

TEST(Checkpoint, ZeroRollbackBudgetDisablesRollbacks) {
  // max_rollbacks = 0 is the PR 7 loop: recovery happens only through
  // whole-run retries, and the rollback counters stay zero.
  const Graph g = make_gnp(128, 0.05, 2);
  CarveSchedule schedule = theorem1_schedule(128, 4, 4);
  schedule.max_rollbacks = 0;
  for (const double drop : {0.01, 0.1}) {
    FaultPlan plan;
    plan.seed = 15;
    plan.drop_rate = drop;
    FaultyTransport transport(plan);
    EngineOptions engine;
    engine.transport = &transport;
    const DistributedRun run =
        run_schedule_distributed(g, schedule, 2, engine);
    EXPECT_EQ(run.run.carve.rollbacks, 0);
    if (run.run.carve.status == CarveStatus::kOk) {
      EXPECT_TRUE(fast_valid(g, run.run.clustering()));
    } else {
      EXPECT_GT(run.run.carve.faults.total(), 0u);
    }
  }
}

TEST(Checkpoint, ExhaustedBudgetsFallBackAndStayNamed) {
  // A drop rate hostile enough that both budgets blow: the loop must
  // spend the full rollback budget, fall back to the full whole-run
  // retry budget, and end in a NAMED failure — never a silent pass.
  const Graph g = make_gnp(128, 0.05, 2);
  const CarveSchedule schedule = theorem1_schedule(128, 4, 4);
  FaultPlan plan;
  plan.seed = 15;
  plan.drop_rate = 0.1;
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  const DistributedRun run = run_schedule_distributed(g, schedule, 2, engine);
  EXPECT_NE(run.run.carve.status, CarveStatus::kOk);
  EXPECT_EQ(run.run.carve.rollbacks, schedule.max_rollbacks);
  EXPECT_EQ(run.run.carve.run_retries, schedule.max_run_retries);
  EXPECT_GT(run.run.carve.faults.total(), 0u);
}

TEST(Checkpoint, ReliableRunsNeverRollBack) {
  // On a reliable transport the recovery loop is never consulted: no
  // rollbacks, no replayed phases, no rejoins — and the result matches
  // the centralized reference through the usual parity (spot-checked via
  // status and validity here; the full parity matrix lives in
  // test_distributed_parity).
  const Graph g = make_gnp(128, 0.05, 5);
  const CarveSchedule schedule = theorem1_schedule(128, 4, 4);
  const DistributedRun run =
      run_schedule_distributed(g, schedule, 5, EngineOptions{});
  EXPECT_EQ(run.run.carve.status, CarveStatus::kOk);
  EXPECT_EQ(run.run.carve.rollbacks, 0);
  EXPECT_EQ(run.run.carve.replayed_phases, 0);
  EXPECT_EQ(run.run.carve.rejoins, 0u);
  EXPECT_TRUE(fast_valid(g, run.run.clustering()));
}

// ---------------------------------------------------------------------------
// Warm contexts under faults
// ---------------------------------------------------------------------------

TEST(Checkpoint, WarmFaultedContextRunsBitIdenticalToCold) {
  // One reused CarveContext through a FaultyTransport with drops AND a
  // crash-recovery span: every warm re-run must reproduce the cold run
  // bit for bit, including the rollback/rejoin accounting — the arena's
  // retained buffers must never leak one run's recovery state into the
  // next.
  const Graph g = make_gnp(128, 0.05, 1);
  const CarveSchedule schedule = theorem1_schedule(128, 4, 4);
  FaultPlan plan;
  plan.seed = 8;
  plan.drop_rate = 0.05;
  plan.crashes.push_back(
      CrashSpan{100, 110, std::uint64_t{8}, std::uint64_t{20}});
  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  CarveContext context(g, engine);
  const DistributedRun cold = run_schedule_distributed(context, schedule, 1);
  EXPECT_GT(cold.run.carve.rollbacks, 0);
  EXPECT_GT(cold.run.carve.rejoins, 0u);
  for (int rep = 0; rep < 3; ++rep) {
    const DistributedRun warm =
        run_schedule_distributed(context, schedule, 1);
    expect_identical(warm, cold, "warm rep=" + std::to_string(rep));
  }
}

TEST(Checkpoint, WarmContextAlternatingSeedsStayIndependent) {
  // Alternating seeds on one faulted context: each seed's result must
  // equal its fresh-context twin — a checkpoint captured under seed A
  // must never be restored into a seed-B run.
  const Graph g = make_gnp(128, 0.05, 1);
  const CarveSchedule schedule = theorem1_schedule(128, 4, 4);
  FaultPlan plan;
  plan.seed = 8;
  plan.drop_rate = 0.05;
  const auto fresh = [&](std::uint64_t seed) {
    FaultyTransport transport(plan);
    EngineOptions engine;
    engine.transport = &transport;
    CarveContext context(g, engine);
    return run_schedule_distributed(context, schedule, seed);
  };
  const DistributedRun fresh_a = fresh(1);
  const DistributedRun fresh_b = fresh(9);

  FaultyTransport transport(plan);
  EngineOptions engine;
  engine.transport = &transport;
  CarveContext context(g, engine);
  for (int rep = 0; rep < 2; ++rep) {
    expect_identical(run_schedule_distributed(context, schedule, 1), fresh_a,
                     "seed 1 rep=" + std::to_string(rep));
    expect_identical(run_schedule_distributed(context, schedule, 9), fresh_b,
                     "seed 9 rep=" + std::to_string(rep));
  }
}

}  // namespace
}  // namespace dsnd
