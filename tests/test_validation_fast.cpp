// validate_decomposition_fast against the brute-force ground truth: the
// exact fields must agree on every fixture, and the fast tier's diameter
// bracket must contain the true max strong diameter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "decomposition/elkin_neiman.hpp"
#include "decomposition/high_radius.hpp"
#include "decomposition/multistage.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

void expect_agrees(const Graph& g, const Clustering& clustering,
                   const std::string& label) {
  const DecompositionReport brute = validate_decomposition(g, clustering);
  const FastDecompositionReport fast =
      validate_decomposition_fast(g, clustering);
  EXPECT_EQ(fast.complete, brute.complete) << label;
  EXPECT_EQ(fast.proper_phase_coloring, brute.proper_phase_coloring)
      << label;
  EXPECT_EQ(fast.num_clusters, brute.num_clusters) << label;
  EXPECT_EQ(fast.num_colors, brute.num_colors) << label;
  EXPECT_EQ(fast.disconnected_clusters, brute.disconnected_clusters)
      << label;
  EXPECT_EQ(fast.all_clusters_connected, brute.all_clusters_connected)
      << label;
  EXPECT_EQ(fast.max_radius_from_center, brute.max_radius_from_center)
      << label;
  EXPECT_DOUBLE_EQ(fast.avg_cluster_size, brute.avg_cluster_size) << label;
  EXPECT_EQ(fast.max_cluster_size, brute.max_cluster_size) << label;
  if (brute.max_strong_diameter == kInfiniteDiameter) {
    EXPECT_EQ(fast.strong_diameter_lower, kInfiniteDiameter) << label;
    EXPECT_EQ(fast.strong_diameter_upper, kInfiniteDiameter) << label;
  } else {
    // The bracket must contain the exact value.
    ASSERT_NE(fast.strong_diameter_lower, kInfiniteDiameter) << label;
    ASSERT_NE(fast.strong_diameter_upper, kInfiniteDiameter) << label;
    EXPECT_LE(fast.strong_diameter_lower, brute.max_strong_diameter)
        << label;
    EXPECT_GE(fast.strong_diameter_upper, brute.max_strong_diameter)
        << label;
  }
}

TEST(ValidateFast, AgreesWithBruteForceOnTheoremRuns) {
  for (const char* family :
       {"gnp-sparse", "grid", "random-tree", "cycle", "rgg"}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const Graph g = family_by_name(family).make(96, seed);
      ElkinNeimanOptions options;
      options.k = 4;
      options.seed = seed;
      const DecompositionRun run = elkin_neiman_decomposition(g, options);
      expect_agrees(g, run.clustering(),
                    std::string(family) + " seed=" + std::to_string(seed));
    }
  }
}

TEST(ValidateFast, AgreesAcrossAllThreeTheorems) {
  const Graph g = family_by_name("gnp-sparse").make(120, 5);
  {
    MultistageOptions options;
    options.k = 3;
    options.seed = 5;
    expect_agrees(g, multistage_decomposition(g, options).clustering(),
                  "theorem2");
  }
  {
    HighRadiusOptions options;
    options.lambda = 3;
    options.seed = 5;
    expect_agrees(g, high_radius_decomposition(g, options).clustering(),
                  "theorem3");
  }
}

Clustering manual_clustering(VertexId n,
                             const std::vector<std::vector<VertexId>>& sets,
                             const std::vector<std::int32_t>& colors) {
  Clustering c(n);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const ClusterId id = c.add_cluster(sets[i].front(), colors[i]);
    for (const VertexId v : sets[i]) c.assign(v, id);
  }
  return c;
}

TEST(ValidateFast, GoodDecompositionCertified) {
  const Graph g = make_path(6);
  const Clustering c =
      manual_clustering(6, {{0, 1}, {2, 3}, {4, 5}}, {0, 1, 0});
  const FastDecompositionReport report = validate_decomposition_fast(g, c);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.proper_phase_coloring);
  EXPECT_TRUE(report.all_clusters_connected);
  EXPECT_EQ(report.centerless_clusters, 0);
  EXPECT_EQ(report.strong_diameter_lower, 1);
  EXPECT_EQ(report.strong_diameter_upper, 2);  // 2 * center radius
  EXPECT_TRUE(report.is_strong_decomposition(2, 2));
  EXPECT_FALSE(report.is_strong_decomposition(2, 1));  // too many colors
}

TEST(ValidateFast, DisconnectedClusterDetected) {
  const Graph g = make_cycle(6);
  const Clustering c =
      manual_clustering(6, {{0, 3}, {1, 2}, {4, 5}}, {0, 1, 2});
  const FastDecompositionReport report = validate_decomposition_fast(g, c);
  EXPECT_EQ(report.disconnected_clusters, 1);
  EXPECT_FALSE(report.all_clusters_connected);
  EXPECT_EQ(report.strong_diameter_upper, kInfiniteDiameter);
  EXPECT_EQ(report.max_radius_from_center, kInfiniteDiameter);
  EXPECT_FALSE(report.is_strong_decomposition(100, 100));
  expect_agrees(g, c, "disconnected");
}

TEST(ValidateFast, ImproperColoringAndIncompleteDetected) {
  const Graph g = make_path(4);
  const Clustering improper =
      manual_clustering(4, {{0, 1}, {2, 3}}, {0, 0});
  EXPECT_FALSE(
      validate_decomposition_fast(g, improper).proper_phase_coloring);
  expect_agrees(g, improper, "improper");

  Clustering incomplete(4);
  const ClusterId a = incomplete.add_cluster(0, 0);
  incomplete.assign(0, a);
  incomplete.assign(1, a);
  const FastDecompositionReport report =
      validate_decomposition_fast(g, incomplete);
  EXPECT_FALSE(report.complete);
  EXPECT_FALSE(report.is_strong_decomposition(10, 10));
}

TEST(ValidateFast, CenterlessClusterFlagged) {
  // Centers outside their cluster only occur in truncated runs; the fast
  // tier must flag them rather than certify a radius.
  const Graph g = make_path(5);
  Clustering c(5);
  const ClusterId a = c.add_cluster(4, 0);  // center 4 is not a member
  c.assign(0, a);
  c.assign(1, a);
  const ClusterId b = c.add_cluster(2, 1);
  c.assign(2, b);
  c.assign(3, b);
  c.assign(4, b);
  const FastDecompositionReport report = validate_decomposition_fast(g, c);
  EXPECT_EQ(report.centerless_clusters, 1);
  EXPECT_EQ(report.max_radius_from_center, kInfiniteDiameter);
  // Connectivity and the diameter bracket still come out right.
  EXPECT_TRUE(report.all_clusters_connected);
  EXPECT_EQ(report.strong_diameter_lower, 2);
}

TEST(ValidateFast, SingletonClusters) {
  const Graph g = make_path(3);
  const Clustering c = manual_clustering(3, {{0}, {1}, {2}}, {0, 1, 2});
  const FastDecompositionReport report = validate_decomposition_fast(g, c);
  EXPECT_TRUE(report.all_clusters_connected);
  EXPECT_EQ(report.strong_diameter_lower, 0);
  EXPECT_EQ(report.strong_diameter_upper, 0);
  EXPECT_EQ(report.max_radius_from_center, 0);
  expect_agrees(g, c, "singletons");
}

TEST(ValidateFast, DoubleSweepExactOnTreeClusters) {
  // Clusters that induce trees: the double-sweep lower bound equals the
  // exact strong diameter, so the bracket pins the true value.
  const Graph g = make_random_tree(64, 7);
  ElkinNeimanOptions options;
  options.k = 3;
  options.seed = 7;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  const DecompositionReport brute =
      validate_decomposition(g, run.clustering());
  const FastDecompositionReport fast =
      validate_decomposition_fast(g, run.clustering());
  EXPECT_EQ(fast.strong_diameter_lower, brute.max_strong_diameter);
}

}  // namespace
}  // namespace dsnd
