#include "apps/mis_distributed.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/checkers.hpp"
#include "apps/mis.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

/// An Elkin–Neiman run guaranteed usable by the pipeline (no radius
/// overflow, so clusters are connected with radius <= k-1 and the phase
/// coloring is proper); scans seeds until one qualifies.
DecompositionRun usable_run(const Graph& g, std::int32_t k,
                            std::uint64_t base_seed) {
  for (std::uint64_t seed = base_seed; seed < base_seed + 50; ++seed) {
    ElkinNeimanOptions options;
    options.k = k;
    options.seed = seed;
    DecompositionRun run = elkin_neiman_decomposition(g, options);
    if (!run.carve.radius_overflow) return run;
  }
  throw std::runtime_error("no overflow-free run found");
}

TEST(MisPipeline, MatchesCentralizedPipelineExactly) {
  for (const char* family :
       {"grid", "cycle", "gnp-sparse", "random-tree", "ring-of-cliques"}) {
    const Graph g = family_by_name(family).make(96, 3);
    const std::int32_t k = 4;
    const DecompositionRun run = usable_run(g, k, 1);
    const MisResult central = mis_by_decomposition(g, run.clustering());
    const DistributedMisResult dist =
        mis_distributed_pipeline(g, run.clustering(), k);
    EXPECT_EQ(dist.in_mis, central.in_mis) << family;
    EXPECT_TRUE(is_maximal_independent_set(g, dist.in_mis)) << family;
  }
}

TEST(MisPipeline, RoundsAreClassesTimesBudget) {
  const Graph g = make_grid2d(10, 10);
  const std::int32_t k = 4;
  const DecompositionRun run = usable_run(g, k, 2);
  const DistributedMisResult dist =
      mis_distributed_pipeline(g, run.clustering(), k);
  EXPECT_EQ(dist.rounds_per_class, 3 * k + 2);
  EXPECT_EQ(dist.classes, run.clustering().num_colors());
  // The engine stops as soon as the last class decides, which happens
  // within the final class's budget.
  EXPECT_LE(dist.sim.rounds,
            static_cast<std::size_t>(dist.classes) *
                static_cast<std::size_t>(dist.rounds_per_class));
  EXPECT_GT(dist.sim.rounds,
            static_cast<std::size_t>(dist.classes - 1) *
                static_cast<std::size_t>(dist.rounds_per_class));
}

TEST(MisPipeline, LocalModelMessagesAreWide) {
  // Convergecast payloads carry whole subtree topologies: this is the
  // LOCAL model, and message widths reflect it (contrast: the carving
  // protocol's 4-word CONGEST messages).
  const Graph g = make_gnp(128, 0.08, 7);
  const std::int32_t k = 4;
  const DecompositionRun run = usable_run(g, k, 7);
  const DistributedMisResult dist =
      mis_distributed_pipeline(g, run.clustering(), k);
  EXPECT_GT(dist.sim.max_message_words, 4u);
  EXPECT_TRUE(is_maximal_independent_set(g, dist.in_mis));
}

TEST(MisPipeline, ValidAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = make_gnp(120, 0.05, seed);
    const std::int32_t k = 4;
    const DecompositionRun run = usable_run(g, k, seed);
    const DistributedMisResult dist =
        mis_distributed_pipeline(g, run.clustering(), k);
    EXPECT_TRUE(is_maximal_independent_set(g, dist.in_mis))
        << "seed=" << seed;
  }
}

TEST(MisPipeline, SingletonClustersWork) {
  // k = 1 gives all-singleton clusters; the pipeline degenerates to
  // sequential-by-color greedy.
  const Graph g = make_cycle(24);
  const DecompositionRun run = usable_run(g, 1, 4);
  const DistributedMisResult dist =
      mis_distributed_pipeline(g, run.clustering(), 1);
  EXPECT_TRUE(is_maximal_independent_set(g, dist.in_mis));
}

TEST(MisPipeline, RejectsBadInputs) {
  const Graph g = make_path(6);
  Clustering incomplete(6);
  incomplete.add_cluster(0, 0);
  EXPECT_THROW(mis_distributed_pipeline(g, incomplete, 2),
               std::invalid_argument);

  // Improper coloring: two adjacent clusters sharing a color.
  Clustering improper(6);
  const ClusterId a = improper.add_cluster(0, 0);
  const ClusterId b = improper.add_cluster(3, 0);
  for (VertexId v = 0; v < 3; ++v) improper.assign(v, a);
  for (VertexId v = 3; v < 6; ++v) improper.assign(v, b);
  EXPECT_THROW(mis_distributed_pipeline(g, improper, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
