#include "decomposition/elkin_neiman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "decomposition/supergraph.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(ElkinNeiman, ResolveKDefaultsToLogN) {
  EXPECT_EQ(resolve_k(1024, 0), 7);  // ceil(ln 1024) = ceil(6.93)
  EXPECT_EQ(resolve_k(3, 0), 2);     // ceil(ln 3) = 2
  EXPECT_EQ(resolve_k(1, 0), 1);
  EXPECT_EQ(resolve_k(1000, 5), 5);  // explicit k wins
  EXPECT_THROW(resolve_k(10, -1), std::invalid_argument);
}

TEST(ElkinNeiman, BetaAndLambdaFormulas) {
  const VertexId n = 100;
  const double c = 4.0;
  const std::int32_t k = 3;
  EXPECT_NEAR(elkin_neiman_beta(n, k, c), std::log(400.0) / 3.0, 1e-12);
  const double lambda = std::pow(400.0, 1.0 / 3.0) * std::log(400.0);
  EXPECT_EQ(elkin_neiman_target_phases(n, k, c),
            static_cast<std::int32_t>(std::ceil(lambda)));
}

TEST(ElkinNeiman, CompletePartitionAndProperColoring) {
  for (const char* family : {"grid", "gnp-sparse", "random-tree", "cycle"}) {
    const Graph g = family_by_name(family).make(128, 7);
    ElkinNeimanOptions options;
    options.k = 4;
    options.seed = 1;
    const DecompositionRun run = elkin_neiman_decomposition(g, options);
    EXPECT_TRUE(run.clustering().is_complete()) << family;
    EXPECT_TRUE(phase_coloring_is_proper(g, run.clustering())) << family;
  }
}

TEST(ElkinNeiman, StrongDiameterWithinBoundWithoutOverflow) {
  // The theorem guarantee: when Lemma 1's event did not occur, every
  // cluster is connected with strong diameter <= 2k-2.
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Graph g = make_gnp(150, 0.04, seed);
    ElkinNeimanOptions options;
    options.k = 4;
    options.seed = seed;
    const DecompositionRun run = elkin_neiman_decomposition(g, options);
    if (run.carve.radius_overflow) continue;  // conditioned out, as in paper
    ++checked;
    const DecompositionReport report =
        validate_decomposition(g, run.clustering());
    EXPECT_TRUE(report.all_clusters_connected);
    ASSERT_NE(report.max_strong_diameter, kInfiniteDiameter);
    EXPECT_LE(report.max_strong_diameter, 2 * 4 - 2);
  }
  EXPECT_GE(checked, 8);  // overflow probability is ~2/c per run, c = 4
}

TEST(ElkinNeiman, CenterRadiusWithinKMinus1) {
  // Observation 2: members lie within distance ⌊r⌋ - 1 <= k - 1 of their
  // center inside the cluster.
  const Graph g = make_grid2d(12, 12);
  ElkinNeimanOptions options;
  options.k = 5;
  options.seed = 3;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  if (!run.carve.radius_overflow) {
    const DecompositionReport report =
        validate_decomposition(g, run.clustering());
    EXPECT_LE(report.max_radius_from_center, 5 - 1);
  }
}

TEST(ElkinNeiman, DeterministicInSeed) {
  const Graph g = make_gnp(100, 0.06, 5);
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = 77;
  const DecompositionRun a = elkin_neiman_decomposition(g, options);
  const DecompositionRun b = elkin_neiman_decomposition(g, options);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(a.clustering().cluster_of(v), b.clustering().cluster_of(v));
  }
  EXPECT_EQ(a.carve.phases_used, b.carve.phases_used);
}

TEST(ElkinNeiman, KEqualsOneGivesSingletonClusters) {
  // D = 2k-2 = 0: every cluster is one vertex.
  const Graph g = make_complete(30);
  ElkinNeimanOptions options;
  options.k = 1;
  options.seed = 2;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
  if (!run.carve.radius_overflow) {
    for (const VertexId size : run.clustering().cluster_sizes()) {
      EXPECT_EQ(size, 1);
    }
  }
}

TEST(ElkinNeiman, BoundsFieldsPopulated) {
  const Graph g = make_path(64);
  ElkinNeimanOptions options;
  options.k = 3;
  options.c = 4.0;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_DOUBLE_EQ(run.bounds.strong_diameter, 4.0);
  EXPECT_DOUBLE_EQ(run.bounds.success_probability, 1.0 - 3.0 / 4.0);
  EXPECT_EQ(run.bounds.colors,
            static_cast<double>(elkin_neiman_target_phases(64, 3, 4.0)));
  EXPECT_DOUBLE_EQ(run.k, 3.0);
}

TEST(ElkinNeiman, RoundAccountingMatchesPhases) {
  const Graph g = make_cycle(80);
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = 6;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_EQ(run.carve.rounds,
            static_cast<std::int64_t>(run.carve.phases_used) * (4 + 1));
}

TEST(ElkinNeiman, HandlesDisconnectedGraphs) {
  // Two components decompose independently; the partition must cover both.
  GraphBuilder builder(40);
  for (VertexId v = 0; v + 1 < 20; ++v) builder.add_edge(v, v + 1);
  for (VertexId v = 20; v + 1 < 40; ++v) builder.add_edge(v, v + 1);
  const Graph g = std::move(builder).build();
  ElkinNeimanOptions options;
  options.k = 3;
  options.seed = 4;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
  EXPECT_TRUE(phase_coloring_is_proper(g, run.clustering()));
}

TEST(ElkinNeiman, SingleVertex) {
  const Graph g = make_path(1);
  const DecompositionRun run =
      elkin_neiman_decomposition(g, ElkinNeimanOptions{});
  EXPECT_TRUE(run.clustering().is_complete());
  EXPECT_EQ(run.clustering().num_clusters(), 1);
}

TEST(ElkinNeiman, RejectsEmptyGraphAndBadC) {
  EXPECT_THROW(elkin_neiman_decomposition(Graph(), ElkinNeimanOptions{}),
               std::invalid_argument);
  ElkinNeimanOptions options;
  options.c = 0.0;
  EXPECT_THROW(elkin_neiman_decomposition(make_path(4), options),
               std::invalid_argument);
}

TEST(ElkinNeiman, MarginZeroAblationBreaksLemma4) {
  // E9 ablation: with margin 0 the partition still completes, but Lemma 4
  // fails — adjacent vertices may choose different centers in the same
  // phase, so the per-(phase, center) clusters are no longer guaranteed
  // independent. Across seeds the violation must actually show up (this
  // is exactly what the margin of 1 buys).
  bool improper_seen = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = make_gnp(100, 0.08, seed);
    ElkinNeimanOptions options;
    options.k = 4;
    options.margin = 0.0;
    options.seed = seed;
    const DecompositionRun run = elkin_neiman_decomposition(g, options);
    EXPECT_TRUE(run.clustering().is_complete());
    if (!phase_coloring_is_proper(g, run.clustering())) improper_seen = true;
  }
  EXPECT_TRUE(improper_seen);
}

TEST(ElkinNeiman, FewerPhasesWithSmallerMargin) {
  const Graph g = make_gnp(200, 0.05, 10);
  ElkinNeimanOptions strict;
  strict.k = 4;
  strict.seed = 21;
  ElkinNeimanOptions loose = strict;
  loose.margin = 0.0;
  const auto run_strict = elkin_neiman_decomposition(g, strict);
  const auto run_loose = elkin_neiman_decomposition(g, loose);
  EXPECT_LE(run_loose.carve.phases_used, run_strict.carve.phases_used);
}

}  // namespace
}  // namespace dsnd
