// Build-substrate smoke test: the one test whose job is to prove the
// CMake wiring itself works — it links against the dsnd library target
// across all of its layers (graph generators, decomposition, validation)
// and runs elkin_neiman_decomposition end-to-end on a generator graph,
// checking the result with the brute-force validators. If the library
// target, include paths, or test registration break, this fails first.
#include "decomposition/elkin_neiman.hpp"

#include <gtest/gtest.h>

#include "decomposition/validation.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(BuildSmoke, ElkinNeimanEndToEndOnGnp) {
  const VertexId n = 512;
  const Graph g = make_gnp(n, 6.0 / (n - 1), /*seed=*/7);

  ElkinNeimanOptions options;
  options.seed = 7;
  // options.k stays 0 and resolves to ceil(ln n), the headline regime.
  const DecompositionRun run = elkin_neiman_decomposition(g, options);

  const DecompositionReport report =
      validate_decomposition(g, run.clustering());
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.all_clusters_connected);
  EXPECT_TRUE(report.proper_phase_coloring);
  EXPECT_GT(report.num_clusters, 0);

  // The theorem's strong-diameter bound 2k-2 holds whenever no sampled
  // radius overflowed; with this fixed seed the run is deterministic.
  if (!run.carve.radius_overflow) {
    const auto diameter_bound =
        static_cast<std::int32_t>(run.bounds.strong_diameter);
    EXPECT_LE(report.max_strong_diameter, diameter_bound);
  }
}

TEST(BuildSmoke, EndToEndOnStructuredGraph) {
  const Graph g = make_grid2d(16, 16);

  ElkinNeimanOptions options;
  options.k = 3;
  options.seed = 11;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);

  const DecompositionReport report =
      validate_decomposition(g, run.clustering());
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.all_clusters_connected);
  EXPECT_TRUE(report.proper_phase_coloring);
}

}  // namespace
}  // namespace dsnd
