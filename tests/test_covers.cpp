#include "decomposition/covers.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "decomposition/validation.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(Covers, PropertiesHoldOnFamilies) {
  for (const char* family : {"grid", "cycle", "random-tree", "gnp-sparse"}) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      const Graph g = family_by_name(family).make(80, seed);
      CoverOptions options;
      options.radius = 2;
      options.k = 3;
      options.seed = seed;
      const NeighborhoodCover cover = build_neighborhood_cover(g, options);
      const CoverReport report = validate_cover(g, cover);
      // Ball coverage holds unconditionally (partitions cover V).
      EXPECT_TRUE(report.all_balls_covered) << family << " seed=" << seed;
      if (!cover.base.carve.radius_overflow) {
        EXPECT_TRUE(report.color_classes_disjoint)
            << family << " seed=" << seed;
        EXPECT_TRUE(report.all_clusters_connected)
            << family << " seed=" << seed;
        // Strong diameter <= (2W+1)(2k-2) + 2W.
        const std::int32_t bound =
            (2 * options.radius + 1) * (2 * options.k - 2) +
            2 * options.radius;
        ASSERT_NE(report.max_strong_diameter, kInfiniteDiameter);
        EXPECT_LE(report.max_strong_diameter, bound)
            << family << " seed=" << seed;
        // Overlap bounded by the number of colors.
        EXPECT_LE(report.max_overlap, cover.num_colors);
      }
    }
  }
}

TEST(Covers, RadiusOneOnGrid) {
  const Graph g = make_grid2d(8, 8);
  CoverOptions options;
  options.radius = 1;
  options.k = 3;
  options.seed = 4;
  const NeighborhoodCover cover = build_neighborhood_cover(g, options);
  const CoverReport report = validate_cover(g, cover);
  EXPECT_TRUE(report.all_balls_covered);
  EXPECT_GT(cover.clusters.size(), 0u);
  EXPECT_EQ(cover.radius, 1);
}

TEST(Covers, EveryVertexInSomeCluster) {
  const Graph g = make_cycle(30);
  CoverOptions options;
  options.radius = 2;
  options.seed = 6;
  const NeighborhoodCover cover = build_neighborhood_cover(g, options);
  std::vector<char> covered(30, 0);
  for (const CoverCluster& cluster : cover.clusters) {
    for (const VertexId v : cluster.members) {
      covered[static_cast<std::size_t>(v)] = 1;
    }
  }
  for (const char c : covered) EXPECT_EQ(c, 1);
}

TEST(Covers, ExpansionContainsCore) {
  // Each cover cluster contains its center's whole W-ball.
  const Graph g = make_grid2d(6, 6);
  CoverOptions options;
  options.radius = 2;
  options.seed = 8;
  const NeighborhoodCover cover = build_neighborhood_cover(g, options);
  for (const CoverCluster& cluster : cover.clusters) {
    EXPECT_GE(cluster.members.size(), 1u);
    EXPECT_GE(cluster.color, 0);
  }
}

TEST(Covers, RejectsBadParameters) {
  EXPECT_THROW(build_neighborhood_cover(Graph(), CoverOptions{}),
               std::invalid_argument);
  CoverOptions options;
  options.radius = 0;
  EXPECT_THROW(build_neighborhood_cover(make_path(4), options),
               std::invalid_argument);
}

TEST(Covers, DeterministicInSeed) {
  const Graph g = make_gnp(50, 0.1, 2);
  CoverOptions options;
  options.radius = 1;
  options.seed = 42;
  const NeighborhoodCover a = build_neighborhood_cover(g, options);
  const NeighborhoodCover b = build_neighborhood_cover(g, options);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].members, b.clusters[i].members);
  }
}

}  // namespace
}  // namespace dsnd
