#include "apps/spanner.hpp"

#include <gtest/gtest.h>

#include "decomposition/elkin_neiman.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"

namespace dsnd {
namespace {

DecompositionRun decompose(const Graph& g, std::int32_t k,
                           std::uint64_t seed) {
  ElkinNeimanOptions options;
  options.k = k;
  options.seed = seed;
  return elkin_neiman_decomposition(g, options);
}

TEST(MeasureStretch, IdentityAndTree) {
  const Graph g = make_cycle(8);
  EXPECT_EQ(measure_stretch(g, g), 1);
  // Spanning tree of the cycle (drop one edge): stretch = n - 1.
  const Graph tree = Graph::from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}});
  EXPECT_EQ(measure_stretch(g, tree), 7);
}

TEST(MeasureStretch, DisconnectedIsInfinite) {
  const Graph g = make_path(3);
  const Graph broken = Graph::from_edges(3, {{0, 1}});
  EXPECT_EQ(measure_stretch(g, broken), kInfiniteDiameter);
}

TEST(SpannerByDecomposition, StretchWithinBound) {
  const std::int32_t k = 4;
  for (const char* family : {"grid", "gnp-sparse", "cycle", "small-world"}) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      const Graph g = family_by_name(family).make(120, seed);
      const DecompositionRun run = decompose(g, k, seed);
      if (run.carve.radius_overflow) continue;
      const SpannerResult spanner =
          spanner_by_decomposition(g, run.clustering());
      ASSERT_NE(spanner.stretch, kInfiniteDiameter)
          << family << " seed=" << seed;
      // Stretch <= 4k - 3: tree detour in both endpoint clusters plus
      // the connecting edge.
      EXPECT_LE(spanner.stretch, 4 * k - 3) << family << " seed=" << seed;
      EXPECT_LE(spanner.edges, g.num_edges());
    }
  }
}

TEST(SpannerByDecomposition, SparsifiesDenseGraphs) {
  const Graph g = make_gnp(128, 0.3, 7);
  const DecompositionRun run = decompose(g, 4, 7);
  const SpannerResult spanner = spanner_by_decomposition(g, run.clustering());
  EXPECT_LT(spanner.edges, g.num_edges() / 2);
}

TEST(SpannerFromCover, StretchBoundedByClusterDiameter) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = make_gnp(100, 0.06, seed);
    CoverOptions options;
    options.radius = 1;
    options.k = 3;
    options.seed = seed;
    const NeighborhoodCover cover = build_neighborhood_cover(g, options);
    if (cover.base.carve.radius_overflow) continue;
    const SpannerResult spanner = spanner_from_cover(g, cover);
    ASSERT_NE(spanner.stretch, kInfiniteDiameter);
    // Every edge lies inside some cover cluster whose strong diameter is
    // at most (2W+1)(2k-2)+2W = 3*(2k-2)+2.
    EXPECT_LE(spanner.stretch, 3 * (2 * 3 - 2) + 2);
    // Edge budget: at most sum of (cluster size - 1) <= chi * n.
    EXPECT_LT(spanner.edges,
              static_cast<std::int64_t>(cover.num_colors) *
                  g.num_vertices());
  }
}

TEST(SpannerFromCover, DenseGraphSparsification) {
  const Graph g = make_gnp(96, 0.4, 11);
  CoverOptions options;
  options.radius = 1;
  options.k = 3;
  options.seed = 11;
  const NeighborhoodCover cover = build_neighborhood_cover(g, options);
  const SpannerResult spanner = spanner_from_cover(g, cover);
  EXPECT_LT(spanner.edges, g.num_edges());
  EXPECT_NE(spanner.stretch, kInfiniteDiameter);
}

TEST(Spanner, PreservesConnectivity) {
  const Graph g = make_barbell(10, 4);
  const DecompositionRun run = decompose(g, 3, 5);
  const SpannerResult spanner = spanner_by_decomposition(g, run.clustering());
  EXPECT_TRUE(is_connected(spanner.spanner));
}

TEST(Spanner, EdgelessGraph) {
  const Graph g = Graph::from_edges(5, {});
  const DecompositionRun run = decompose(g, 2, 1);
  const SpannerResult spanner = spanner_by_decomposition(g, run.clustering());
  EXPECT_EQ(spanner.edges, 0);
  EXPECT_EQ(spanner.stretch, 0);
}

}  // namespace
}  // namespace dsnd
