#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"

namespace dsnd {
namespace {

TEST(Subgraph, InducedOnPathSegment) {
  const Graph g = make_path(6);
  const VertexId pick[] = {1, 2, 3};
  const InducedSubgraph sub = induced_subgraph(g, pick);
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);
  EXPECT_EQ(sub.parent_of(0), 1);
  EXPECT_EQ(sub.parent_of(2), 3);
}

TEST(Subgraph, DropsCrossEdges) {
  const Graph g = make_cycle(6);
  const VertexId pick[] = {0, 2, 4};  // pairwise non-adjacent
  const InducedSubgraph sub = induced_subgraph(g, pick);
  EXPECT_EQ(sub.graph.num_edges(), 0);
}

TEST(Subgraph, PreservesInternalStructure) {
  const Graph g = make_complete(6);
  const VertexId pick[] = {1, 3, 5};
  const InducedSubgraph sub = induced_subgraph(g, pick);
  EXPECT_EQ(sub.graph.num_edges(), 3);  // triangle
  EXPECT_EQ(exact_diameter(sub.graph), 1);
}

TEST(Subgraph, MappingIsSortedAndConsistent) {
  const Graph g = make_grid2d(3, 3);
  const VertexId pick[] = {8, 0, 4};
  const InducedSubgraph sub = induced_subgraph(g, pick);
  ASSERT_EQ(sub.to_parent.size(), 3u);
  EXPECT_EQ(sub.to_parent[0], 0);
  EXPECT_EQ(sub.to_parent[1], 4);
  EXPECT_EQ(sub.to_parent[2], 8);
}

TEST(Subgraph, EdgePreservationAgainstParent) {
  const Graph g = make_gnp(40, 0.2, 9);
  std::vector<VertexId> pick;
  for (VertexId v = 0; v < 20; ++v) pick.push_back(2 * v);
  const InducedSubgraph sub = induced_subgraph(g, pick);
  for (VertexId a = 0; a < sub.graph.num_vertices(); ++a) {
    for (VertexId b = a + 1; b < sub.graph.num_vertices(); ++b) {
      EXPECT_EQ(sub.graph.has_edge(a, b),
                g.has_edge(sub.parent_of(a), sub.parent_of(b)));
    }
  }
}

TEST(Subgraph, RejectsDuplicates) {
  const Graph g = make_path(4);
  const VertexId pick[] = {1, 1};
  EXPECT_THROW(induced_subgraph(g, pick), std::invalid_argument);
}

TEST(Subgraph, RejectsOutOfRange) {
  const Graph g = make_path(4);
  const VertexId pick[] = {0, 9};
  EXPECT_THROW(induced_subgraph(g, pick), std::invalid_argument);
}

TEST(Subgraph, EmptySelection) {
  const Graph g = make_path(4);
  const InducedSubgraph sub = induced_subgraph(g, {});
  EXPECT_EQ(sub.graph.num_vertices(), 0);
}

}  // namespace
}  // namespace dsnd
