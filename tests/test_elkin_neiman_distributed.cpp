#include "decomposition/elkin_neiman_distributed.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "decomposition/supergraph.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(Distributed, BitIdenticalToCentralizedReference) {
  // The headline fidelity property: the CONGEST protocol and the
  // centralized reference consume the same per-(phase, vertex) random
  // stream and must produce the same clustering, phase count, and round
  // count.
  for (const char* family :
       {"grid", "cycle", "gnp-sparse", "random-tree", "ring-of-cliques"}) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      const Graph g = family_by_name(family).make(96, seed);
      ElkinNeimanOptions options;
      options.k = 4;
      options.seed = seed;
      const DecompositionRun central =
          elkin_neiman_decomposition(g, options);
      const DistributedRun dist = elkin_neiman_distributed(g, options);
      ASSERT_EQ(dist.run.carve.phases_used, central.carve.phases_used)
          << family << " seed=" << seed;
      ASSERT_EQ(dist.run.carve.rounds, central.carve.rounds)
          << family << " seed=" << seed;
      EXPECT_EQ(dist.run.carve.radius_overflow,
                central.carve.radius_overflow);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(dist.run.clustering().cluster_of(v),
                  central.clustering().cluster_of(v))
            << family << " seed=" << seed << " v=" << v;
      }
      for (ClusterId c = 0; c < central.clustering().num_clusters(); ++c) {
        ASSERT_EQ(dist.run.clustering().center_of(c),
                  central.clustering().center_of(c));
        ASSERT_EQ(dist.run.clustering().color_of(c),
                  central.clustering().color_of(c));
      }
    }
  }
}

TEST(Distributed, MessagesAreCongestWidth) {
  const Graph g = make_gnp(80, 0.08, 3);
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = 3;
  const DistributedRun dist = elkin_neiman_distributed(g, options);
  EXPECT_LE(dist.sim.max_message_words, kMaxProtocolMessageWords);
  EXPECT_GT(dist.sim.messages, 0u);
}

TEST(Distributed, SimRoundsMatchAccounting) {
  const Graph g = make_grid2d(8, 8);
  ElkinNeimanOptions options;
  options.k = 3;
  options.seed = 5;
  const DistributedRun dist = elkin_neiman_distributed(g, options);
  // The engine stops in the deciding step of the last phase.
  EXPECT_EQ(static_cast<std::int64_t>(dist.sim.rounds),
            dist.run.carve.rounds);
}

TEST(Distributed, ValidStrongDecompositionWithoutOverflow) {
  const Graph g = make_torus2d(8, 8);
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = 11;
  const DistributedRun dist = elkin_neiman_distributed(g, options);
  EXPECT_TRUE(dist.run.clustering().is_complete());
  EXPECT_TRUE(phase_coloring_is_proper(g, dist.run.clustering()));
  if (!dist.run.carve.radius_overflow) {
    const DecompositionReport report =
        validate_decomposition(g, dist.run.clustering());
    EXPECT_LE(report.max_strong_diameter, 2 * 4 - 2);
    EXPECT_TRUE(report.all_clusters_connected);
  }
}

TEST(Distributed, RejectsNonUnitMargin) {
  ElkinNeimanOptions options;
  options.margin = 0.5;
  EXPECT_THROW(elkin_neiman_distributed(make_path(4), options),
               std::invalid_argument);
}

TEST(Distributed, SingleVertexTerminatesImmediately) {
  const Graph g = make_path(1);
  ElkinNeimanOptions options;
  options.k = 2;
  const DistributedRun dist = elkin_neiman_distributed(g, options);
  EXPECT_TRUE(dist.run.clustering().is_complete());
  EXPECT_EQ(dist.sim.messages, 0u);  // no neighbors to talk to
}

TEST(Distributed, MessageVolumeScalesWithPhases) {
  // Sanity bound: at most 2 entry messages per directed edge per
  // broadcast round, plus one departure per vertex.
  const Graph g = make_cycle(64);
  ElkinNeimanOptions options;
  options.k = 3;
  options.seed = 7;
  const DistributedRun dist = elkin_neiman_distributed(g, options);
  const auto broadcast_rounds =
      static_cast<std::uint64_t>(dist.run.carve.phases_used) * 3;
  const std::uint64_t upper =
      broadcast_rounds * 2 * 2 * static_cast<std::uint64_t>(g.num_edges()) +
      static_cast<std::uint64_t>(g.num_vertices()) * 2;
  EXPECT_LE(dist.sim.messages, upper);
}

}  // namespace
}  // namespace dsnd
