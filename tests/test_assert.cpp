#include "support/assert.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dsnd {
namespace {

TEST(Assert, RequirePassesOnTrue) {
  EXPECT_NO_THROW(DSND_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Assert, RequireThrowsInvalidArgument) {
  EXPECT_THROW(DSND_REQUIRE(false, "bad parameter"), std::invalid_argument);
}

TEST(Assert, CheckThrowsLogicError) {
  EXPECT_THROW(DSND_CHECK(false, "broken invariant"), std::logic_error);
}

TEST(Assert, MessageContainsExpressionAndText) {
  try {
    DSND_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Assert, CheckMessageMentionsInvariant) {
  try {
    DSND_CHECK(false, "state machine corrupted");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant"), std::string::npos);
    EXPECT_NE(what.find("state machine corrupted"), std::string::npos);
  }
}

}  // namespace
}  // namespace dsnd
