// Equivalence of the generic distributed carving protocol with the
// centralized carver for all three theorem schedules (Theorem 1 is
// covered again, more extensively, in test_elkin_neiman_distributed).
#include "decomposition/carving_protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "decomposition/elkin_neiman_distributed.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

void expect_same_clustering(const Clustering& a, const Clustering& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_clusters(), b.num_clusters());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.cluster_of(v), b.cluster_of(v)) << "v=" << v;
  }
  for (ClusterId c = 0; c < a.num_clusters(); ++c) {
    ASSERT_EQ(a.center_of(c), b.center_of(c)) << "c=" << c;
    ASSERT_EQ(a.color_of(c), b.color_of(c)) << "c=" << c;
  }
}

TEST(CarvingProtocol, GenericScheduleMatchesCentralized) {
  const Graph g = make_gnp(80, 0.08, 4);
  CarveParams params;
  // A hand-rolled decaying schedule distinct from all three theorems.
  for (int i = 0; i < 40; ++i) {
    params.betas.push_back(1.5 / (1.0 + 0.1 * i));
  }
  params.phase_rounds = 4;
  params.radius_overflow_at = 5.0;
  params.seed = 23;
  const CarveResult central = carve_decomposition(g, params);
  const DistributedCarveResult dist =
      carve_decomposition_distributed(g, params);
  expect_same_clustering(central.clustering, dist.carve.clustering);
  EXPECT_EQ(central.phases_used, dist.carve.phases_used);
  EXPECT_EQ(central.rounds, dist.carve.rounds);
  EXPECT_EQ(central.radius_overflow, dist.carve.radius_overflow);
  EXPECT_EQ(central.carved_per_phase, dist.carve.carved_per_phase);
}

TEST(CarvingProtocol, MultistageDistributedMatchesCentralized) {
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    const Graph g = make_grid2d(9, 9);
    MultistageOptions options;
    options.k = 3;
    options.seed = seed;
    const DecompositionRun central = multistage_decomposition(g, options);
    const DistributedRun dist = multistage_distributed(g, options);
    expect_same_clustering(central.clustering(), dist.run.clustering());
    EXPECT_EQ(central.carve.phases_used, dist.run.carve.phases_used);
    EXPECT_LE(dist.sim.max_message_words, kMaxProtocolMessageWords);
  }
}

TEST(CarvingProtocol, HighRadiusDistributedMatchesCentralized) {
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    const Graph g = make_gnp(64, 0.1, seed);
    HighRadiusOptions options;
    options.lambda = 3;
    options.seed = seed;
    const DecompositionRun central = high_radius_decomposition(g, options);
    const DistributedRun dist = high_radius_distributed(g, options);
    expect_same_clustering(central.clustering(), dist.run.clustering());
    EXPECT_EQ(central.carve.phases_used, dist.run.carve.phases_used);
    EXPECT_LE(dist.sim.max_message_words, kMaxProtocolMessageWords);
  }
}

TEST(CarvingProtocol, ChangeBasedSendingBoundsTraffic) {
  // Each vertex transmits each distinct (center, dist) top-2 entry at
  // most a handful of times; total entry messages stay far below the
  // always-send bound of 2 per edge-direction per broadcast round.
  const Graph g = make_cycle(64);
  CarveParams params;
  params.betas.assign(32, 1.0);
  params.phase_rounds = 6;
  params.radius_overflow_at = 7.0;
  params.seed = 3;
  const DistributedCarveResult dist =
      carve_decomposition_distributed(g, params);
  const std::uint64_t always_send_bound =
      static_cast<std::uint64_t>(dist.carve.phases_used) * 6 * 2 * 2 *
      static_cast<std::uint64_t>(g.num_edges());
  EXPECT_LT(dist.sim.messages, always_send_bound / 2);
}

TEST(CarvingProtocol, RejectsUnsupportedModes) {
  const Graph g = make_path(8);
  CarveParams params;
  params.betas = {1.0};
  params.phase_rounds = 2;
  params.margin = 0.5;
  EXPECT_THROW(carve_decomposition_distributed(g, params),
               std::invalid_argument);
  params.margin = 1.0;
  params.run_to_completion = false;
  EXPECT_THROW(carve_decomposition_distributed(g, params),
               std::invalid_argument);
}

TEST(CarvingProtocol, ValidDecompositionUnderLongPhases) {
  // High-radius style: phases far longer than the graph diameter; the
  // change-based sender must go quiet after the fixed point.
  const Graph g = make_grid2d(7, 7);
  CarveParams params;
  params.betas.assign(3, 0.15);
  params.phase_rounds = 60;
  params.radius_overflow_at = 61.0;
  params.seed = 11;
  const DistributedCarveResult dist =
      carve_decomposition_distributed(g, params);
  EXPECT_TRUE(dist.carve.clustering.is_complete());
  const DecompositionReport report = validate_decomposition(
      g, dist.carve.clustering, /*compute_weak=*/false);
  EXPECT_TRUE(report.complete);
}

}  // namespace
}  // namespace dsnd
