// The DecompositionService contract: service responses are bit-identical
// to the standalone carve entry points for every engine thread count and
// every submission order (serial, batched, concurrent soak); repeated
// requests are served from the cache (shared_ptr identity, hit/miss/
// eviction accounting exact, cold >> cached latency); one warm context
// per graph is created and reused; deliverables equal their standalone
// constructions; and bad requests throw instead of degrading.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "apps/mis.hpp"
#include "decomposition/covers.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/elkin_neiman_distributed.hpp"
#include "graph/generators.hpp"
#include "service/decomposition_service.hpp"

namespace dsnd {
namespace {

void expect_identical(const DistributedRun& a, const DistributedRun& b,
                      const std::string& label) {
  ASSERT_EQ(a.sim.rounds, b.sim.rounds) << label;
  EXPECT_EQ(a.sim.messages, b.sim.messages) << label;
  EXPECT_EQ(a.sim.words, b.sim.words) << label;
  EXPECT_EQ(a.sim.vertex_activations, b.sim.vertex_activations) << label;
  EXPECT_EQ(a.run.carve.phases_used, b.run.carve.phases_used) << label;
  EXPECT_EQ(a.run.carve.retries, b.run.carve.retries) << label;
  EXPECT_EQ(a.run.carve.rounds, b.run.carve.rounds) << label;
  const Clustering& ca = a.run.clustering();
  const Clustering& cb = b.run.clustering();
  ASSERT_EQ(ca.num_clusters(), cb.num_clusters()) << label;
  for (VertexId v = 0; v < ca.num_vertices(); ++v) {
    ASSERT_EQ(ca.cluster_of(v), cb.cluster_of(v)) << label << " v=" << v;
  }
  for (ClusterId c = 0; c < ca.num_clusters(); ++c) {
    ASSERT_EQ(ca.center_of(c), cb.center_of(c)) << label << " c=" << c;
    ASSERT_EQ(ca.color_of(c), cb.color_of(c)) << label << " c=" << c;
  }
}

ServiceRequest decomposition_request(const std::string& graph_id,
                                     VertexId n, std::uint64_t seed) {
  ServiceRequest request;
  request.graph_id = graph_id;
  request.schedule = theorem1_schedule(n, 4, 4.0);
  request.seed = seed;
  return request;
}

TEST(Service, SubmitMatchesStandaloneAcrossEngineThreadCounts) {
  const VertexId n = 2000;
  const Graph g = make_gnp(n, 8.0 / (n - 1), 1);
  const CarveSchedule schedule = theorem1_schedule(n, 4, 4.0);
  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    EngineOptions engine;
    engine.threads = threads;
    const DistributedRun standalone =
        run_schedule_distributed(g, schedule, 9, engine);

    ServiceOptions options;
    options.engine = engine;
    DecompositionService service(options);
    service.register_graph_view("g", g);
    const ServiceResponse response =
        service.submit(decomposition_request("g", n, 9));
    ASSERT_TRUE(response.valid);
    ASSERT_EQ(response.status, "ok");
    expect_identical(response.result->run, standalone,
                     "threads=" + std::to_string(threads));
  }
}

TEST(Service, ConcurrentSubmissionSoakIsOrderAndRaceInvariant) {
  const VertexId n = 1000;
  struct Entry {
    std::string id;
    Graph graph;
  };
  const std::vector<Entry> graphs = {
      {"gnp", make_gnp(n, 8.0 / (n - 1), 1)},
      {"ring", make_cycle(n)},
      {"hyp", make_hyperbolic(n, 8.0, 2.8, 1)},
  };

  // The ground truth: standalone carves, one per (graph, seed).
  std::vector<ServiceRequest> requests;
  std::vector<DistributedRun> expected;
  for (const Entry& e : graphs) {
    for (const std::uint64_t seed : {3ULL, 5ULL, 8ULL, 13ULL}) {
      requests.push_back(decomposition_request(e.id, n, seed));
      expected.push_back(
          run_schedule_distributed(e.graph, requests.back().schedule, seed));
    }
  }

  // Soak: shuffled submission orders, submitted from several threads at
  // once against one service (cache off, so every submission really
  // carves — races in the pool, not the cache, are under test).
  std::mt19937 shuffle_rng(7);
  for (int round = 0; round < 3; ++round) {
    ServiceOptions options;
    options.cache_capacity = 0;
    DecompositionService service(options);
    for (const Entry& e : graphs) {
      service.register_graph_view(e.id, e.graph);
    }
    std::vector<std::size_t> order(requests.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), shuffle_rng);

    std::vector<ServiceResponse> responses(requests.size());
    const unsigned submitters = 4;
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < submitters; ++w) {
      workers.emplace_back([&, w] {
        for (std::size_t i = w; i < order.size(); i += submitters) {
          responses[order[i]] = service.submit(requests[order[i]]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();

    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(responses[i].valid);
      expect_identical(responses[i].result->run, expected[i],
                       "round=" + std::to_string(round) + " " +
                           requests[i].graph_id + " seed=" +
                           std::to_string(requests[i].seed));
    }
  }
}

TEST(Service, SubmitBatchMatchesSerialSubmission) {
  const VertexId n = 1000;
  const Graph a = make_gnp(n, 8.0 / (n - 1), 1);
  const Graph b = make_cycle(n);

  ServiceOptions options;
  options.cache_capacity = 0;
  DecompositionService serial_service(options);
  DecompositionService batch_service(options);
  for (DecompositionService* s : {&serial_service, &batch_service}) {
    s->register_graph_view("a", a);
    s->register_graph_view("b", b);
  }

  std::vector<ServiceRequest> requests;
  for (const std::uint64_t seed : {2ULL, 4ULL, 6ULL}) {
    requests.push_back(decomposition_request("a", n, seed));
    requests.push_back(decomposition_request("b", n, seed));
  }
  const std::vector<ServiceResponse> batched =
      batch_service.submit_batch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ServiceResponse serial = serial_service.submit(requests[i]);
    expect_identical(batched[i].result->run, serial.result->run,
                     "i=" + std::to_string(i));
  }
}

TEST(Service, CacheHitsMissesAndEvictionsAreAccountedExactly) {
  const VertexId n = 400;
  const Graph g = make_gnp(n, 8.0 / (n - 1), 1);
  ServiceOptions options;
  options.cache_capacity = 2;
  DecompositionService service(options);
  service.register_graph_view("g", g);

  const ServiceRequest a = decomposition_request("g", n, 1);
  const ServiceRequest b = decomposition_request("g", n, 2);
  const ServiceRequest c = decomposition_request("g", n, 3);

  const ServiceResponse a_cold = service.submit(a);  // miss -> {a}
  EXPECT_FALSE(a_cold.cache_hit);
  const ServiceResponse a_hot = service.submit(a);  // hit
  EXPECT_TRUE(a_hot.cache_hit);
  // A hit aliases the cached result, it does not recompute it.
  EXPECT_EQ(a_hot.result.get(), a_cold.result.get());

  service.submit(b);                                 // miss -> {b, a}
  service.submit(c);                                 // miss -> {c, b}, evicts a
  const ServiceResponse a_again = service.submit(a);  // miss again
  EXPECT_FALSE(a_again.cache_hit);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 4u);
  EXPECT_EQ(stats.cache_evictions, 2u);  // a (by c), then b (by a_again)
  EXPECT_EQ(stats.cache_entries, 2u);

  // The evicted-and-recomputed run is still the same run.
  expect_identical(a_again.result->run, a_cold.result->run, "a recomputed");
}

TEST(Service, WarmContextIsCreatedOncePerGraphAndReused) {
  const VertexId n = 600;
  const Graph g = make_gnp(n, 8.0 / (n - 1), 1);
  const Graph h = make_cycle(n);
  ServiceOptions options;
  options.cache_capacity = 0;  // every submission must reach the pool
  DecompositionService service(options);
  service.register_graph_view("g", g);
  service.register_graph_view("h", h);

  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    service.submit(decomposition_request("g", n, seed));
  }
  service.submit(decomposition_request("h", n, 7));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.contexts_created, 2u);  // one per graph, not per request
  EXPECT_EQ(stats.warm_acquires, 2u);     // g's 2nd and 3rd submission
}

TEST(Service, CachedResponsesAreMuchFasterThanColdOnes) {
  const VertexId n = 5000;
  const Graph g = make_gnp(n, 8.0 / (n - 1), 1);
  DecompositionService service;
  service.register_graph_view("g", g);
  const ServiceRequest request = decomposition_request("g", n, 11);
  const ServiceResponse cold = service.submit(request);
  const ServiceResponse cached = service.submit(request);
  ASSERT_FALSE(cold.cache_hit);
  ASSERT_TRUE(cached.cache_hit);
  // A hit is a map probe + shared_ptr copy; the cold run simulated a
  // full CONGEST execution. 10x is a deliberately loose floor for CI.
  EXPECT_LT(cached.wall_ms * 10.0, cold.wall_ms);
}

TEST(Service, DeliverablesMatchTheirStandaloneConstructions) {
  const VertexId n = 500;
  const Graph g = make_gnp(n, 8.0 / (n - 1), 2);
  DecompositionService service;
  service.register_graph_view("g", g);

  ServiceRequest request = decomposition_request("g", n, 5);
  request.deliverable = Deliverable::kMis;
  const ServiceResponse mis = service.submit(request);
  ASSERT_TRUE(mis.result->mis.has_value());
  const MisResult standalone = mis_by_decomposition(
      g, run_schedule_distributed(g, request.schedule, 5).run.clustering());
  EXPECT_EQ(mis.result->mis->in_mis, standalone.in_mis);

  // The cover deliverable must reproduce build_neighborhood_cover bit
  // for bit: same power-graph carve (the headline k = ln n schedule),
  // same expansion.
  const Graph small = make_gnp(200, 0.04, 3);
  service.register_graph_view("small", small);
  ServiceRequest cover_request;
  cover_request.graph_id = "small";
  cover_request.schedule = theorem1_schedule(200, 0, 4.0);
  cover_request.seed = 5;
  cover_request.deliverable = Deliverable::kCover;
  cover_request.cover_radius = 2;
  const ServiceResponse cover = service.submit(cover_request);
  ASSERT_TRUE(cover.result->cover.has_value());

  CoverOptions cover_options;
  cover_options.radius = 2;
  cover_options.seed = 5;
  const NeighborhoodCover expected =
      build_neighborhood_cover(small, cover_options);
  const NeighborhoodCover& got = *cover.result->cover;
  EXPECT_EQ(got.num_colors, expected.num_colors);
  ASSERT_EQ(got.clusters.size(), expected.clusters.size());
  for (std::size_t i = 0; i < got.clusters.size(); ++i) {
    EXPECT_EQ(got.clusters[i].members, expected.clusters[i].members)
        << "cluster " << i;
    EXPECT_EQ(got.clusters[i].color, expected.clusters[i].color);
  }
  const CoverReport report = validate_cover(small, got);
  EXPECT_TRUE(report.all_balls_covered);
  EXPECT_TRUE(report.color_classes_disjoint);
}

TEST(Service, RegisterGraphOwnsItsCopy) {
  DecompositionService service;
  std::uint64_t fingerprint = 0;
  {
    const Graph g = make_gnp(300, 0.03, 1);
    fingerprint = service.register_graph("g", g);  // copy, then drop g
  }
  EXPECT_TRUE(service.has_graph("g"));
  EXPECT_EQ(service.graph_fingerprint("g"), fingerprint);
  const ServiceResponse response =
      service.submit(decomposition_request("g", 300, 4));
  EXPECT_TRUE(response.valid);
  EXPECT_EQ(response.status, "ok");
}

TEST(Service, FingerprintDistinguishesGraphsAndPinsEquality) {
  const Graph a = make_gnp(500, 0.02, 1);
  const Graph b = make_gnp(500, 0.02, 2);
  EXPECT_EQ(a.fingerprint(), make_gnp(500, 0.02, 1).fingerprint());
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Service, ReRegisteringAGraphIdIsSafeAndServesTheNewGraph) {
  const VertexId n = 400;
  const Graph first = make_gnp(n, 8.0 / (n - 1), 1);
  const Graph second = make_cycle(n);
  DecompositionService service;
  const std::uint64_t old_fingerprint = service.register_graph("g", first);
  const ServiceResponse before =
      service.submit(decomposition_request("g", n, 3));
  ASSERT_TRUE(before.valid);

  // Replacing the registration must not leave the warm context (built
  // on the old graph) reachable under the id: the slot is keyed by
  // fingerprint and the retired registration stays shared-owned, so the
  // next submit carves the NEW graph on a fresh context.
  const std::uint64_t new_fingerprint = service.register_graph("g", second);
  ASSERT_NE(old_fingerprint, new_fingerprint);
  EXPECT_EQ(service.graph_fingerprint("g"), new_fingerprint);
  const ServiceResponse after =
      service.submit(decomposition_request("g", n, 3));
  ASSERT_TRUE(after.valid);
  const CarveSchedule schedule = theorem1_schedule(n, 4, 4.0);
  expect_identical(after.result->run,
                   run_schedule_distributed(second, schedule, 3),
                   "after re-registration");
  expect_identical(before.result->run,
                   run_schedule_distributed(first, schedule, 3),
                   "before re-registration");
  // ...and the result carved on the old graph is not served for the new
  // one: fingerprints separate the cache entries.
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(service.stats().contexts_created, 2u);
}

TEST(Service, SubmitBatchSurfacesBadRequestsAsExceptions) {
  const VertexId n = 300;
  const Graph a = make_gnp(n, 8.0 / (n - 1), 1);
  const Graph b = make_cycle(n);
  DecompositionService service;
  service.register_graph_view("a", a);
  service.register_graph_view("b", b);

  // Three distinct graph ids force the multi-group (worker-thread)
  // path; the unknown id must throw the same std::invalid_argument it
  // does under serial submission instead of escaping its thread and
  // terminating the process.
  const std::vector<ServiceRequest> requests = {
      decomposition_request("a", n, 1),
      decomposition_request("missing", n, 1),
      decomposition_request("b", n, 1),
  };
  EXPECT_THROW(service.submit_batch(requests), std::invalid_argument);
}

TEST(Service, CoverRequestsNormalizeTheBackendOutOfTheCacheKey) {
  const Graph g = make_gnp(200, 0.04, 1);
  DecompositionService service;
  service.register_graph_view("g", g);

  ServiceRequest cover;
  cover.graph_id = "g";
  cover.schedule = theorem1_schedule(200, 0, 4.0);
  cover.seed = 5;
  cover.deliverable = Deliverable::kCover;
  cover.cover_radius = 2;
  cover.backend = ServiceBackend::kDistributed;
  const ServiceResponse cold = service.submit(cover);
  ASSERT_TRUE(cold.valid);
  // Covers always carve centralized, so the backend does not determine
  // the result and the same request under the other backend is a hit,
  // not a second carve of an identical cover.
  cover.backend = ServiceBackend::kCentralized;
  const ServiceResponse hot = service.submit(cover);
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_EQ(hot.result.get(), cold.result.get());

  // And distributed-backend covers reject the centralized-only ablation
  // knobs just like the non-cover distributed path.
  cover.backend = ServiceBackend::kDistributed;
  cover.margin = 0.5;
  EXPECT_THROW(service.submit(cover), std::invalid_argument);
  cover.backend = ServiceBackend::kCentralized;
  EXPECT_NO_THROW(service.submit(cover));
}

TEST(Service, BadRequestsThrowInsteadOfDegrading) {
  const Graph g = make_gnp(200, 0.04, 1);
  DecompositionService service;
  service.register_graph_view("g", g);

  EXPECT_THROW(service.submit(decomposition_request("nope", 200, 1)),
               std::invalid_argument);

  // The distributed backend implements the paper's exact rules; the
  // ablation knobs must be explicitly routed to the centralized backend.
  ServiceRequest margin = decomposition_request("g", 200, 1);
  margin.margin = 0.5;
  EXPECT_THROW(service.submit(margin), std::invalid_argument);
  margin.backend = ServiceBackend::kCentralized;
  EXPECT_NO_THROW(service.submit(margin));

  ServiceRequest cover = decomposition_request("g", 200, 1);
  cover.deliverable = Deliverable::kCover;
  cover.cover_radius = 0;
  EXPECT_THROW(service.submit(cover), std::invalid_argument);

  EXPECT_EQ(deliverable_by_name("spanner"), Deliverable::kSpanner);
  EXPECT_STREQ(deliverable_name(Deliverable::kCover), "cover");
  EXPECT_THROW(deliverable_by_name("nope"), std::invalid_argument);
}

TEST(Service, CentralizedBackendMatchesDistributedPerSeed) {
  const VertexId n = 800;
  const Graph g = make_gnp(n, 8.0 / (n - 1), 1);
  DecompositionService service;
  service.register_graph_view("g", g);

  ServiceRequest request = decomposition_request("g", n, 21);
  const ServiceResponse distributed = service.submit(request);
  request.backend = ServiceBackend::kCentralized;
  const ServiceResponse centralized = service.submit(request);
  // Distinct cache keys (backend is part of the key), same clustering:
  // the PR 3 parity contract surfaces through the service unchanged.
  EXPECT_FALSE(centralized.cache_hit);
  const Clustering& cd = distributed.result->run.run.clustering();
  const Clustering& cc = centralized.result->run.run.clustering();
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(cd.cluster_of(v), cc.cluster_of(v)) << "v=" << v;
  }
  // Centralized responses carry no simulation metrics.
  EXPECT_EQ(centralized.result->run.sim.messages, 0u);
}

}  // namespace
}  // namespace dsnd
