#include "decomposition/high_radius.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "decomposition/supergraph.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(HighRadius, KFormula) {
  // k = (cn)^{1/lambda} ln(cn).
  EXPECT_NEAR(high_radius_k(100, 2, 4.0), std::sqrt(400.0) * std::log(400.0),
              1e-9);
  EXPECT_NEAR(high_radius_k(100, 1, 4.0), 400.0 * std::log(400.0), 1e-6);
}

TEST(HighRadius, ColorCountAtMostLambdaOnSuccess) {
  for (std::int32_t lambda : {2, 3, 4}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const Graph g = make_gnp(100, 0.05, seed);
      HighRadiusOptions options;
      options.lambda = lambda;
      options.seed = seed;
      const DecompositionRun run = high_radius_decomposition(g, options);
      EXPECT_TRUE(run.clustering().is_complete());
      if (run.carve.exhausted_within_target) {
        EXPECT_LE(run.clustering().num_colors(), lambda);
      }
    }
  }
}

TEST(HighRadius, UsuallyExhaustsWithinLambdaPhases) {
  // Success probability is >= 1 - 3/c; with c = 16 that is ~81%.
  int successes = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const Graph g = make_gnp(80, 0.06, static_cast<std::uint64_t>(t));
    HighRadiusOptions options;
    options.lambda = 3;
    options.c = 16.0;
    options.seed = static_cast<std::uint64_t>(t) + 100;
    const DecompositionRun run = high_radius_decomposition(g, options);
    if (run.carve.exhausted_within_target) ++successes;
  }
  EXPECT_GE(successes, 7);
}

TEST(HighRadius, StrongDiameterWithinBound) {
  const Graph g = make_grid2d(10, 10);
  HighRadiusOptions options;
  options.lambda = 2;
  options.seed = 9;
  const DecompositionRun run = high_radius_decomposition(g, options);
  if (!run.carve.radius_overflow) {
    const DecompositionReport report =
        validate_decomposition(g, run.clustering());
    EXPECT_LE(static_cast<double>(report.max_strong_diameter),
              run.bounds.strong_diameter);
    EXPECT_TRUE(report.all_clusters_connected);
  }
  EXPECT_TRUE(phase_coloring_is_proper(g, run.clustering()));
}

TEST(HighRadius, LambdaOneYieldsWholeComponentClusters) {
  // With one color every vertex must be clustered in a single phase, so
  // clusters are unions of whole components (here: the one component).
  const Graph g = make_cycle(32);
  HighRadiusOptions options;
  options.lambda = 1;
  options.c = 8.0;
  options.seed = 4;
  const DecompositionRun run = high_radius_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
  if (run.carve.exhausted_within_target) {
    EXPECT_EQ(run.clustering().num_clusters(), 1);
    EXPECT_EQ(run.clustering().num_colors(), 1);
  }
}

TEST(HighRadius, InverseTradeoffAgainstTheorem1) {
  // Theorem 3 trades more radius for fewer colors: with the same c and
  // graph, lambda = 2 must use far fewer colors than Theorem 1 with
  // k = ln n, at the cost of larger clusters.
  const Graph g = make_gnp(200, 0.04, 6);
  HighRadiusOptions t3;
  t3.lambda = 2;
  t3.seed = 6;
  const DecompositionRun run3 = high_radius_decomposition(g, t3);
  ElkinNeimanOptions t1;
  t1.seed = 6;
  const DecompositionRun run1 = elkin_neiman_decomposition(g, t1);
  EXPECT_LT(run3.clustering().num_colors(), run1.clustering().num_colors());
}

TEST(HighRadius, RejectsBadParameters) {
  EXPECT_THROW(high_radius_decomposition(Graph(), HighRadiusOptions{}),
               std::invalid_argument);
  EXPECT_THROW(high_radius_k(100, 0, 4.0), std::invalid_argument);
  EXPECT_THROW(high_radius_k(0, 2, 4.0), std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
