#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
  }
}

TEST(Bfs, UnreachableMarked) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, FilteredRespectsAliveMask) {
  // Path 0-1-2-3-4 with vertex 2 removed: 3 and 4 become unreachable.
  const Graph g = make_path(5);
  std::vector<char> alive = {1, 1, 0, 1, 1};
  const auto dist = bfs_distances_filtered(g, 0, alive);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, FilteredRequiresAliveSource) {
  const Graph g = make_path(3);
  std::vector<char> alive = {0, 1, 1};
  EXPECT_THROW(bfs_distances_filtered(g, 0, alive), std::invalid_argument);
}

TEST(Bfs, MultiSourceNearestDistance) {
  const Graph g = make_path(7);
  const VertexId sources[] = {0, 6};
  const auto dist = multi_source_bfs(g, sources);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[5], 1);
}

TEST(ShortestPath, EndpointsAndLength) {
  const Graph g = make_grid2d(3, 3);
  const auto path = shortest_path(g, 0, 8);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 8);
  EXPECT_EQ(path.size(), 5u);  // distance 4
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
  }
}

TEST(ShortestPath, DisconnectedIsEmpty) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(shortest_path(g, 0, 3).empty());
}

TEST(ShortestPath, SelfIsSingleton) {
  const Graph g = make_path(3);
  const auto path = shortest_path(g, 1, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1);
}

TEST(Components, CountsAndLabels) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const Components comps = connected_components(g);
  EXPECT_EQ(comps.count, 3);
  EXPECT_EQ(comps.component_of[0], comps.component_of[2]);
  EXPECT_NE(comps.component_of[0], comps.component_of[3]);
  EXPECT_NE(comps.component_of[3], comps.component_of[5]);
  const auto groups = comps.groups();
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].size() + groups[1].size() + groups[2].size(), 6u);
}

TEST(Components, ConnectedGraph) {
  EXPECT_TRUE(is_connected(make_cycle(10)));
  EXPECT_FALSE(is_connected(Graph::from_edges(3, {{0, 1}})));
  EXPECT_TRUE(is_connected(Graph()));          // vacuous
  EXPECT_TRUE(is_connected(make_path(1)));
}

TEST(Eccentricity, CenterVsLeafOfPath) {
  const Graph g = make_path(9);
  EXPECT_EQ(eccentricity(g, 4), 4);
  EXPECT_EQ(eccentricity(g, 0), 8);
}

TEST(Diameter, KnownGraphs) {
  EXPECT_EQ(exact_diameter(make_path(10)), 9);
  EXPECT_EQ(exact_diameter(make_cycle(10)), 5);
  EXPECT_EQ(exact_diameter(make_complete(5)), 1);
  EXPECT_EQ(exact_diameter(make_star(9)), 2);
}

TEST(Diameter, TwoSweepExactOnTrees) {
  for (std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    const Graph g = make_random_tree(80, seed);
    EXPECT_EQ(two_sweep_diameter_lower_bound(g), exact_diameter(g));
  }
}

TEST(Diameter, TwoSweepIsLowerBound) {
  for (std::uint64_t seed : {2ULL, 4ULL}) {
    const Graph g = make_gnp(120, 0.05, seed);
    EXPECT_LE(two_sweep_diameter_lower_bound(g), exact_diameter(g));
  }
}

TEST(AllPairs, MatchesSingleSource) {
  const Graph g = make_grid2d(4, 4);
  const auto all = all_pairs_distances(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(all[static_cast<std::size_t>(v)], bfs_distances(g, v));
  }
}

TEST(AllPairs, SymmetricDistances) {
  const Graph g = make_gnp(60, 0.1, 21);
  const auto all = all_pairs_distances(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(all[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)],
                all[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)]);
    }
  }
}

}  // namespace
}  // namespace dsnd
