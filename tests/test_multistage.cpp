#include "decomposition/multistage.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "decomposition/supergraph.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(Multistage, ScheduleMatchesPaperFormula) {
  const VertexId n = 256;
  const double c = 6.0;
  const std::int32_t k = 4;
  const auto betas = multistage_beta_schedule(n, k, c);
  const double cn = c * n;
  // First stage: 2(cn)^{1/k} phases at beta = ln(cn)/k.
  const auto s0 = static_cast<std::size_t>(
      std::ceil(2.0 * std::pow(cn, 1.0 / k)));
  ASSERT_GE(betas.size(), s0);
  for (std::size_t t = 0; t < s0; ++t) {
    EXPECT_NEAR(betas[t], std::log(cn) / k, 1e-12);
  }
  // Schedule total is bounded by the theorem's 4k(cn)^{1/k} color budget
  // (plus rounding slack from the per-stage ceil).
  const double color_bound = 4.0 * k * std::pow(cn, 1.0 / k);
  EXPECT_LE(static_cast<double>(betas.size()),
            color_bound + std::log(static_cast<double>(n)) + 2.0);
  // Betas decay across stages.
  EXPECT_LT(betas.back(), betas.front());
}

TEST(Multistage, BetasAllPositive) {
  for (VertexId n : {10, 100, 1000}) {
    for (const auto beta : multistage_beta_schedule(n, 3, 6.0)) {
      EXPECT_GT(beta, 0.0);
    }
  }
}

TEST(Multistage, CompleteAndProper) {
  for (const char* family : {"grid", "gnp-sparse", "small-world"}) {
    const Graph g = family_by_name(family).make(128, 5);
    MultistageOptions options;
    options.k = 4;
    options.seed = 5;
    const DecompositionRun run = multistage_decomposition(g, options);
    EXPECT_TRUE(run.clustering().is_complete()) << family;
    EXPECT_TRUE(phase_coloring_is_proper(g, run.clustering())) << family;
  }
}

TEST(Multistage, StrongDiameterBoundHolds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = make_gnp(120, 0.05, seed);
    MultistageOptions options;
    options.k = 4;
    options.seed = seed;
    const DecompositionRun run = multistage_decomposition(g, options);
    if (run.carve.radius_overflow) continue;
    const DecompositionReport report =
        validate_decomposition(g, run.clustering());
    EXPECT_LE(report.max_strong_diameter, 2 * 4 - 2) << "seed=" << seed;
    EXPECT_TRUE(report.all_clusters_connected);
  }
}

TEST(Multistage, UsesFewerOrEqualColorsThanTheorem1OnAverage) {
  // The whole point of Theorem 2: 4k(cn)^{1/k} < (cn)^{1/k} ln(cn) once
  // ln(cn) > 4k. Use k = 1 on a larger graph so the gap is decisive.
  double colors_t1 = 0.0;
  double colors_t2 = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = make_gnp(300, 0.02, seed);
    ElkinNeimanOptions t1;
    t1.k = 1;
    t1.c = 6.0;
    t1.seed = seed;
    MultistageOptions t2;
    t2.k = 1;
    t2.c = 6.0;
    t2.seed = seed;
    colors_t1 += elkin_neiman_decomposition(g, t1).carve.phases_used;
    colors_t2 += multistage_decomposition(g, t2).carve.phases_used;
  }
  EXPECT_LT(colors_t2, colors_t1);
}

TEST(Multistage, BoundsPopulated) {
  const Graph g = make_path(100);
  MultistageOptions options;
  options.k = 3;
  options.c = 6.0;
  const DecompositionRun run = multistage_decomposition(g, options);
  EXPECT_DOUBLE_EQ(run.bounds.strong_diameter, 4.0);
  EXPECT_NEAR(run.bounds.colors, 4.0 * 3 * std::pow(600.0, 1.0 / 3.0),
              1e-9);
  EXPECT_DOUBLE_EQ(run.bounds.success_probability, 1.0 - 5.0 / 6.0);
}

TEST(Multistage, RejectsBadParameters) {
  EXPECT_THROW(multistage_decomposition(Graph(), MultistageOptions{}),
               std::invalid_argument);
  EXPECT_THROW(multistage_beta_schedule(100, 0, 6.0),
               std::invalid_argument);
  EXPECT_THROW(multistage_beta_schedule(100, 3, 1.0),
               std::invalid_argument);
}

TEST(Multistage, DeterministicInSeed) {
  const Graph g = make_gnp(90, 0.07, 2);
  MultistageOptions options;
  options.k = 3;
  options.seed = 13;
  const DecompositionRun a = multistage_decomposition(g, options);
  const DecompositionRun b = multistage_decomposition(g, options);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(a.clustering().cluster_of(v), b.clustering().cluster_of(v));
  }
}

}  // namespace
}  // namespace dsnd
