#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dsnd {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256ss, DeterministicForSameSeed) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ss, ZeroSeedIsWellMixed) {
  Xoshiro256ss rng(0);
  // A poorly seeded xoshiro (all-zero state) would return 0 forever.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 64; ++i) values.insert(rng());
  EXPECT_GT(values.size(), 60u);
}

TEST(StreamSeed, DistinctStreamsForDistinctInputs) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 20; ++a) {
    for (std::uint64_t b = 0; b < 20; ++b) {
      seeds.insert(stream_seed(123, a, b));
    }
  }
  EXPECT_EQ(seeds.size(), 400u);
}

TEST(StreamSeed, OrderOfComponentsMatters) {
  EXPECT_NE(stream_seed(1, 2, 3), stream_seed(1, 3, 2));
}

TEST(UniformUnit, InHalfOpenInterval) {
  Xoshiro256ss rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform_unit(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformUnit, MeanNearHalf) {
  Xoshiro256ss rng(5);
  double sum = 0.0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) sum += uniform_unit(rng);
  EXPECT_NEAR(sum / samples, 0.5, 0.01);
}

TEST(UniformBelow, RespectsBound) {
  Xoshiro256ss rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(uniform_below(rng, bound), bound);
    }
  }
}

TEST(UniformBelow, CoversAllResidues) {
  Xoshiro256ss rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[uniform_below(rng, 10)];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 each
}

}  // namespace
}  // namespace dsnd
