// The acceptance matrix for the schedule-driven carving core: for every
// theorem x graph family x seed, the CONGEST run must be bit-identical
// to its centralized reference on the same seed (cluster assignment,
// centers, colors, phase count) with O(1)-word messages — the parity
// property Theorem 1 has always had, extended to Theorems 2 and 3.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "decomposition/elkin_neiman_distributed.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 7, 42};

Graph make_family(const std::string& family, VertexId n,
                  std::uint64_t seed) {
  if (family == "gnp") return make_gnp(n, 6.0 / std::max(n - 1, 1), seed);
  if (family == "ring") return make_cycle(n);
  return family_by_name("rgg").make(n, seed);
}

void expect_parity(const DecompositionRun& central,
                   const DistributedRun& dist, const std::string& label) {
  ASSERT_EQ(dist.run.carve.phases_used, central.carve.phases_used) << label;
  ASSERT_EQ(dist.run.carve.rounds, central.carve.rounds) << label;
  EXPECT_EQ(dist.run.carve.radius_overflow, central.carve.radius_overflow)
      << label;
  // The Las Vegas recovery accounting is part of the parity contract.
  EXPECT_EQ(dist.run.carve.retries, central.carve.retries) << label;
  EXPECT_EQ(dist.run.carve.extra_rounds, central.carve.extra_rounds)
      << label;
  EXPECT_EQ(dist.run.carve.carved_per_phase, central.carve.carved_per_phase)
      << label;
  const Clustering& a = central.clustering();
  const Clustering& b = dist.run.clustering();
  ASSERT_EQ(a.num_clusters(), b.num_clusters()) << label;
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.cluster_of(v), b.cluster_of(v)) << label << " v=" << v;
  }
  for (ClusterId c = 0; c < a.num_clusters(); ++c) {
    ASSERT_EQ(a.center_of(c), b.center_of(c)) << label << " c=" << c;
    ASSERT_EQ(a.color_of(c), b.color_of(c)) << label << " c=" << c;
  }
  // The engine's message metrics certify the CONGEST claim.
  EXPECT_LE(dist.sim.max_message_words, kMaxProtocolMessageWords) << label;
  // Bounds travel with the schedule on both paths.
  EXPECT_DOUBLE_EQ(dist.run.bounds.strong_diameter,
                   central.bounds.strong_diameter)
      << label;
  EXPECT_DOUBLE_EQ(dist.run.bounds.colors, central.bounds.colors) << label;
}

TEST(DistributedParity, Theorem2AcrossFamiliesAndSeeds) {
  for (const char* family : {"gnp", "ring", "rgg"}) {
    for (const std::uint64_t seed : kSeeds) {
      const Graph g = make_family(family, 96, seed);
      MultistageOptions options;
      options.k = 3;
      options.seed = seed * 131 + 7;
      const DecompositionRun central = multistage_decomposition(g, options);
      const DistributedRun dist = multistage_distributed(g, options);
      expect_parity(central, dist,
                    std::string("T2 ") + family + " seed=" +
                        std::to_string(seed));
    }
  }
}

TEST(DistributedParity, Theorem3AcrossFamiliesAndSeeds) {
  for (const char* family : {"gnp", "ring", "rgg"}) {
    for (const std::uint64_t seed : kSeeds) {
      const Graph g = make_family(family, 96, seed);
      HighRadiusOptions options;
      options.lambda = 3;
      options.seed = seed * 977 + 3;
      const DecompositionRun central = high_radius_decomposition(g, options);
      const DistributedRun dist = high_radius_distributed(g, options);
      expect_parity(central, dist,
                    std::string("T3 ") + family + " seed=" +
                        std::to_string(seed));
    }
  }
}

TEST(DistributedParity, Theorem1OnRgg) {
  // Theorem 1's parity matrix (test_elkin_neiman_distributed) predates
  // the rgg family; cover it here so all three theorems share the grid.
  for (const std::uint64_t seed : kSeeds) {
    const Graph g = make_family("rgg", 96, seed);
    ElkinNeimanOptions options;
    options.k = 4;
    options.seed = seed * 613 + 11;
    const DecompositionRun central = elkin_neiman_decomposition(g, options);
    const DistributedRun dist = elkin_neiman_distributed(g, options);
    expect_parity(central, dist, "T1 rgg seed=" + std::to_string(seed));
  }
}

TEST(DistributedParity, ParityHoldsUnderEngineConfigurations) {
  // The schedule core must be execution-invariant: threads and
  // scheduling knobs change nothing observable.
  const Graph g = make_family("gnp", 80, 3);
  MultistageOptions options;
  options.k = 3;
  options.seed = 19;
  const DistributedRun baseline = multistage_distributed(g, options);
  for (const bool active : {true, false}) {
    EngineOptions engine;
    engine.active_scheduling = active;
    engine.threads = active ? 4 : 2;
    const DistributedRun run = multistage_distributed(g, options, engine);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(run.run.clustering().cluster_of(v),
                baseline.run.clustering().cluster_of(v));
    }
    EXPECT_EQ(run.sim.messages, baseline.sim.messages);
  }
}

TEST(DistributedParity, ShardCountInvarianceAcrossTheoremsAndFamilies) {
  // The sharded engine's acceptance matrix: for every theorem x family,
  // thread/shard counts 1, 2, 4, and 7 (7 does not divide the vertex
  // count — shards of unequal width) must reproduce the serial run
  // bit-for-bit: clustering, message totals, and per-round traffic.
  for (const int theorem : {1, 2, 3}) {
    for (const char* family : {"gnp", "ring", "rgg"}) {
      const Graph g = make_family(family, 96, 5);
      const std::uint64_t seed = 31 * static_cast<std::uint64_t>(theorem);
      DistributedRun runs[4];
      const unsigned thread_counts[] = {1, 2, 4, 7};
      for (std::size_t i = 0; i < 4; ++i) {
        EngineOptions engine;
        engine.threads = thread_counts[i];
        if (theorem == 1) {
          ElkinNeimanOptions options;
          options.k = 4;
          options.seed = seed;
          runs[i] = elkin_neiman_distributed(g, options, engine);
        } else if (theorem == 2) {
          MultistageOptions options;
          options.k = 3;
          options.seed = seed;
          runs[i] = multistage_distributed(g, options, engine);
        } else {
          HighRadiusOptions options;
          options.lambda = 3;
          options.seed = seed;
          runs[i] = high_radius_distributed(g, options, engine);
        }
      }
      for (std::size_t i = 1; i < 4; ++i) {
        const std::string label = std::string("T") +
                                  std::to_string(theorem) + " " + family +
                                  " threads=" +
                                  std::to_string(thread_counts[i]);
        ASSERT_EQ(runs[i].run.carve.phases_used,
                  runs[0].run.carve.phases_used)
            << label;
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          ASSERT_EQ(runs[i].run.clustering().cluster_of(v),
                    runs[0].run.clustering().cluster_of(v))
              << label << " v=" << v;
        }
        EXPECT_EQ(runs[i].sim.messages, runs[0].sim.messages) << label;
        EXPECT_EQ(runs[i].sim.words, runs[0].sim.words) << label;
        EXPECT_EQ(runs[i].sim.messages_per_round,
                  runs[0].sim.messages_per_round)
            << label;
        EXPECT_EQ(runs[i].sim.vertex_activations,
                  runs[0].sim.vertex_activations)
            << label;
      }
    }
  }
}

}  // namespace
}  // namespace dsnd
