#include "apps/luby.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/checkers.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(Luby, ValidMisOnFamilies) {
  for (const char* family :
       {"grid", "gnp-sparse", "gnp-dense", "cycle", "random-tree",
        "ring-of-cliques", "small-world", "hypercube"}) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      const Graph g = family_by_name(family).make(128, seed);
      const LubyResult result = luby_mis(g, seed);
      EXPECT_TRUE(is_maximal_independent_set(g, result.in_mis))
          << family << " seed=" << seed;
    }
  }
}

TEST(Luby, IterationCountLogarithmic) {
  // O(log n) iterations in expectation; allow a loose 8x constant.
  const Graph g = make_gnp(512, 0.02, 5);
  const LubyResult result = luby_mis(g, 5);
  EXPECT_LE(result.iterations, 8.0 * std::log2(512.0));
  EXPECT_GE(result.iterations, 1);
}

TEST(Luby, MessagesAreSmall) {
  const Graph g = make_grid2d(10, 10);
  const LubyResult result = luby_mis(g, 9);
  EXPECT_LE(result.sim.max_message_words, 3u);
}

TEST(Luby, DeterministicInSeed) {
  const Graph g = make_gnp(100, 0.05, 11);
  const LubyResult a = luby_mis(g, 42);
  const LubyResult b = luby_mis(g, 42);
  EXPECT_EQ(a.in_mis, b.in_mis);
  EXPECT_EQ(a.sim.rounds, b.sim.rounds);
}

TEST(Luby, SingleVertexJoins) {
  const Graph g = make_path(1);
  const LubyResult result = luby_mis(g, 1);
  EXPECT_EQ(result.in_mis[0], 1);
}

TEST(Luby, CompleteGraphSelectsOne) {
  const Graph g = make_complete(25);
  const LubyResult result = luby_mis(g, 13);
  int count = 0;
  for (char b : result.in_mis) count += b;
  EXPECT_EQ(count, 1);
}

TEST(Luby, EdgelessGraphSelectsAllInOneIteration) {
  const Graph g = Graph::from_edges(12, {});
  const LubyResult result = luby_mis(g, 2);
  for (char b : result.in_mis) EXPECT_EQ(b, 1);
  EXPECT_EQ(result.iterations, 1);
}

}  // namespace
}  // namespace dsnd
