#include "decomposition/partition.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dsnd {
namespace {

TEST(Clustering, StartsUnassigned) {
  Clustering c(5);
  EXPECT_EQ(c.num_vertices(), 5);
  EXPECT_EQ(c.num_clusters(), 0);
  EXPECT_EQ(c.num_colors(), 0);
  EXPECT_FALSE(c.is_complete());
  EXPECT_EQ(c.num_unassigned(), 5);
  EXPECT_EQ(c.cluster_of(3), kNoCluster);
}

TEST(Clustering, AssignAndQuery) {
  Clustering c(4);
  const ClusterId a = c.add_cluster(0, 0);
  const ClusterId b = c.add_cluster(2, 1);
  c.assign(0, a);
  c.assign(1, a);
  c.assign(2, b);
  c.assign(3, b);
  EXPECT_TRUE(c.is_complete());
  EXPECT_EQ(c.num_clusters(), 2);
  EXPECT_EQ(c.num_colors(), 2);
  EXPECT_EQ(c.cluster_of(1), a);
  EXPECT_EQ(c.center_of(b), 2);
  EXPECT_EQ(c.color_of(a), 0);
}

TEST(Clustering, MembersGrouping) {
  Clustering c(5);
  const ClusterId a = c.add_cluster(0, 0);
  const ClusterId b = c.add_cluster(4, 0);
  c.assign(0, a);
  c.assign(2, a);
  c.assign(4, b);
  const auto members = c.members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[static_cast<std::size_t>(a)],
            (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(members[static_cast<std::size_t>(b)],
            (std::vector<VertexId>{4}));
  EXPECT_EQ(c.cluster_sizes(),
            (std::vector<VertexId>{2, 1}));
}

TEST(Clustering, MembersCsrMatchesMembers) {
  Clustering c(7);
  const ClusterId a = c.add_cluster(5, 0);
  const ClusterId b = c.add_cluster(1, 1);
  c.assign(5, a);
  c.assign(0, a);
  c.assign(3, a);
  c.assign(1, b);
  c.assign(6, b);
  // vertices 2 and 4 stay unassigned
  const ClusterMembers csr = c.members_csr();
  ASSERT_EQ(csr.num_clusters(), 2);
  EXPECT_EQ(csr.total_members(), 5);
  // Members come out in increasing vertex order, same as members().
  const auto span_a = csr.of(a);
  EXPECT_EQ(std::vector<VertexId>(span_a.begin(), span_a.end()),
            (std::vector<VertexId>{0, 3, 5}));
  const auto span_b = csr.of(b);
  EXPECT_EQ(std::vector<VertexId>(span_b.begin(), span_b.end()),
            (std::vector<VertexId>{1, 6}));
  EXPECT_EQ(csr.size_of(a), 3);
  EXPECT_EQ(csr.size_of(b), 2);
  const auto nested = c.members();
  for (ClusterId id = 0; id < csr.num_clusters(); ++id) {
    const auto span = csr.of(id);
    EXPECT_EQ(nested[static_cast<std::size_t>(id)],
              (std::vector<VertexId>(span.begin(), span.end())));
  }
  EXPECT_THROW(csr.of(2), std::invalid_argument);
}

TEST(Clustering, MembersCsrEmptyClustering) {
  const Clustering c(3);  // no clusters yet
  const ClusterMembers csr = c.members_csr();
  EXPECT_EQ(csr.num_clusters(), 0);
  EXPECT_EQ(csr.total_members(), 0);
}

TEST(Clustering, DoubleAssignRejected) {
  Clustering c(2);
  const ClusterId a = c.add_cluster(0, 0);
  c.assign(0, a);
  EXPECT_THROW(c.assign(0, a), std::invalid_argument);
}

TEST(Clustering, RangeChecks) {
  Clustering c(2);
  EXPECT_THROW(c.add_cluster(5, 0), std::invalid_argument);
  EXPECT_THROW(c.add_cluster(0, -1), std::invalid_argument);
  const ClusterId a = c.add_cluster(0, 0);
  EXPECT_THROW(c.assign(7, a), std::invalid_argument);
  EXPECT_THROW(c.assign(1, 9), std::invalid_argument);
  EXPECT_THROW(c.center_of(3), std::invalid_argument);
  EXPECT_THROW(c.color_of(-1), std::invalid_argument);
}

TEST(Clustering, ColorsNeedNotBeContiguousPerCluster) {
  Clustering c(3);
  c.add_cluster(0, 5);
  EXPECT_EQ(c.num_colors(), 6);  // colors 0..5 potentially in play
}

}  // namespace
}  // namespace dsnd
