#include "decomposition/linial_saks_distributed.hpp"

#include <gtest/gtest.h>

#include "decomposition/elkin_neiman_distributed.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(LsDistributed, BitIdenticalToCentralized) {
  for (const char* family :
       {"grid", "cycle", "gnp-sparse", "random-tree", "ring-of-cliques"}) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      const Graph g = family_by_name(family).make(96, seed);
      LinialSaksOptions options;
      options.k = 4;
      options.seed = seed;
      const DecompositionRun central =
          linial_saks_decomposition(g, options);
      const DistributedLsRun dist = linial_saks_distributed(g, options);
      ASSERT_EQ(dist.run.carve.phases_used, central.carve.phases_used)
          << family << " seed=" << seed;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(dist.run.clustering().cluster_of(v),
                  central.clustering().cluster_of(v))
            << family << " seed=" << seed << " v=" << v;
      }
      for (ClusterId c = 0; c < central.clustering().num_clusters(); ++c) {
        ASSERT_EQ(dist.run.clustering().center_of(c),
                  central.clustering().center_of(c));
        ASSERT_EQ(dist.run.clustering().color_of(c),
                  central.clustering().color_of(c));
      }
    }
  }
}

TEST(LsDistributed, MessagesAreCongestWidth) {
  const Graph g = make_gnp(100, 0.06, 5);
  LinialSaksOptions options;
  options.k = 4;
  options.seed = 5;
  const DistributedLsRun dist = linial_saks_distributed(g, options);
  EXPECT_LE(dist.sim.max_message_words, kLsProtocolMaxWords);
  EXPECT_GT(dist.sim.messages, 0u);
}

TEST(LsDistributed, RoundsMatchAccounting) {
  const Graph g = make_grid2d(8, 8);
  LinialSaksOptions options;
  options.k = 3;
  options.seed = 9;
  const DistributedLsRun dist = linial_saks_distributed(g, options);
  EXPECT_EQ(static_cast<std::int64_t>(dist.sim.rounds),
            dist.run.carve.rounds);
}

TEST(LsDistributed, HigherTrafficThanElkinNeiman) {
  // The frontier rule sends up to k entries per edge per round while the
  // shifted-exponential rule sends at most 2 — the CONGEST advantage the
  // paper's technique brings. Compare total words on the same graph over
  // several seeds (individual runs have different phase counts, so
  // normalize per round).
  const Graph g = make_gnp(128, 0.08, 3);
  double ls_words_per_round = 0.0;
  double en_words_per_round = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    LinialSaksOptions ls;
    ls.k = 5;
    ls.seed = seed;
    const DistributedLsRun ls_run = linial_saks_distributed(g, ls);
    ls_words_per_round += static_cast<double>(ls_run.sim.words) /
                          static_cast<double>(ls_run.sim.rounds);
    ElkinNeimanOptions en;
    en.k = 5;
    en.seed = seed;
    const DistributedRun en_run = elkin_neiman_distributed(g, en);
    en_words_per_round += static_cast<double>(en_run.sim.words) /
                          static_cast<double>(en_run.sim.rounds);
  }
  EXPECT_GT(ls_words_per_round, en_words_per_round);
}

TEST(LsDistributed, SingleVertex) {
  const Graph g = make_path(1);
  const DistributedLsRun dist =
      linial_saks_distributed(g, LinialSaksOptions{});
  EXPECT_TRUE(dist.run.clustering().is_complete());
  EXPECT_EQ(dist.sim.messages, 0u);
}

}  // namespace
}  // namespace dsnd
