#include "graph/power.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"

namespace dsnd {
namespace {

TEST(GraphPower, PowerOneIsIdentity) {
  const Graph g = make_gnp(50, 0.1, 3);
  EXPECT_EQ(graph_power(g, 1), g);
}

TEST(GraphPower, PathSquared) {
  const Graph g = make_path(5);
  const Graph g2 = graph_power(g, 2);
  EXPECT_TRUE(g2.has_edge(0, 1));
  EXPECT_TRUE(g2.has_edge(0, 2));
  EXPECT_FALSE(g2.has_edge(0, 3));
  EXPECT_EQ(g2.num_edges(), 4 + 3);  // distance-1 plus distance-2 pairs
}

TEST(GraphPower, MatchesDistanceDefinition) {
  const Graph g = make_gnp(40, 0.08, 9);
  for (const std::int32_t t : {2, 3}) {
    const Graph gt = graph_power(g, t);
    const auto all = all_pairs_distances(g);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
        const std::int32_t d = all[static_cast<std::size_t>(u)]
                                  [static_cast<std::size_t>(v)];
        const bool expected = d != kUnreachable && d <= t;
        EXPECT_EQ(gt.has_edge(u, v), expected)
            << "t=" << t << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(GraphPower, LargePowerBecomesComponentCliques) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const Graph gt = graph_power(g, 10);
  EXPECT_TRUE(gt.has_edge(0, 2));
  EXPECT_TRUE(gt.has_edge(3, 4));
  EXPECT_FALSE(gt.has_edge(2, 3));  // different components stay apart
  EXPECT_FALSE(gt.has_edge(0, 5));
}

TEST(GraphPower, PreservesDisconnection) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const Graph g3 = graph_power(g, 3);
  EXPECT_EQ(connected_components(g3).count, 2);
}

TEST(GraphPower, RejectsZeroPower) {
  EXPECT_THROW(graph_power(make_path(3), 0), std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
