#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/properties.hpp"
#include "graph/traversal.hpp"

namespace dsnd {
namespace {

TEST(Generators, Path) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(exact_diameter(g), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
}

TEST(Generators, PathSingleVertex) {
  const Graph g = make_path(1);
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Generators, Cycle) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(g.num_edges(), 6);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_EQ(exact_diameter(g), 3);
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Generators, Grid2d) {
  const Graph g = make_grid2d(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(exact_diameter(g), 2 + 3);      // Manhattan corner-to-corner
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, Torus2d) {
  const Graph g = make_torus2d(4, 4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(exact_diameter(g), 4);
}

TEST(Generators, Grid3d) {
  const Graph g = make_grid3d(2, 3, 4);
  EXPECT_EQ(g.num_vertices(), 24);
  EXPECT_EQ(exact_diameter(g), 1 + 2 + 3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_EQ(exact_diameter(g), 1);
  EXPECT_EQ(max_degree(g), 5);
}

TEST(Generators, Star) {
  const Graph g = make_star(7);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(g.degree(0), 6);
  EXPECT_EQ(exact_diameter(g), 2);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(triangle_count(g), 0);
}

TEST(Generators, BalancedTree) {
  const Graph g = make_balanced_tree(2, 3);  // 1+2+4+8 = 15 vertices
  EXPECT_EQ(g.num_vertices(), 15);
  EXPECT_EQ(g.num_edges(), 14);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 6);
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(exact_diameter(g), 4);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, RingOfCliques) {
  const Graph g = make_ring_of_cliques(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  // 4 cliques of C(5,2)=10 edges plus 4 connecting edges.
  EXPECT_EQ(g.num_edges(), 44);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Barbell) {
  const Graph g = make_barbell(4, 3);
  EXPECT_EQ(g.num_vertices(), 4 + 4 + 2);
  EXPECT_TRUE(is_connected(g));
  // Diameter: across both cliques and the path.
  EXPECT_EQ(exact_diameter(g), 1 + 3 + 1);
}

TEST(Generators, Lollipop) {
  const Graph g = make_lollipop(4, 3);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 4);
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  const VertexId n = 400;
  const double p = 0.05;
  const Graph g = make_gnp(n, p, 7);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(make_gnp(10, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(make_gnp(10, 1.0, 1).num_edges(), 45);
}

TEST(Generators, GnpDeterministicInSeed) {
  EXPECT_EQ(make_gnp(100, 0.1, 5), make_gnp(100, 0.1, 5));
  EXPECT_NE(make_gnp(100, 0.1, 5), make_gnp(100, 0.1, 6));
}

TEST(Generators, GnmExactEdgeCount) {
  const Graph g = make_gnm(50, 200, 3);
  EXPECT_EQ(g.num_vertices(), 50);
  EXPECT_EQ(g.num_edges(), 200);
}

TEST(Generators, GnmRejectsTooManyEdges) {
  EXPECT_THROW(make_gnm(4, 7, 1), std::invalid_argument);
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = make_random_tree(64, seed);
    EXPECT_EQ(g.num_edges(), 63);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomRegularDegrees) {
  const Graph g = make_random_regular(50, 4, 11);
  EXPECT_EQ(g.num_vertices(), 50);
  for (VertexId v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  EXPECT_THROW(make_random_regular(5, 3, 1), std::invalid_argument);
}

TEST(Generators, WattsStrogatzShape) {
  const Graph g = make_watts_strogatz(100, 3, 0.1, 13);
  EXPECT_EQ(g.num_vertices(), 100);
  // Rewiring preserves the edge count (300) up to saturated fallbacks.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 300.0, 5.0);
}

TEST(Generators, WattsStrogatzZeroBetaIsLattice) {
  const Graph g = make_watts_strogatz(20, 2, 0.0, 1);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, BarabasiAlbertShape) {
  const Graph g = make_barabasi_albert(200, 3, 17);
  EXPECT_EQ(g.num_vertices(), 200);
  EXPECT_TRUE(is_connected(g));
  // Preferential attachment yields a heavy hub.
  EXPECT_GT(max_degree(g), 10);
}

TEST(Generators, RggShape) {
  const Graph g = make_rgg(400, 0.12, 9);
  EXPECT_EQ(g.num_vertices(), 400);
  // Expected average degree ~ n*pi*r^2 ~ 18 (less near the boundary);
  // a generous band guards against bucketing bugs in either direction.
  const double avg_degree =
      2.0 * static_cast<double>(g.num_edges()) / 400.0;
  EXPECT_GT(avg_degree, 6.0);
  EXPECT_LT(avg_degree, 36.0);
  // Deterministic in the seed.
  EXPECT_EQ(g, make_rgg(400, 0.12, 9));
  EXPECT_NE(g.num_edges(), make_rgg(400, 0.12, 10).num_edges());
  EXPECT_THROW(make_rgg(10, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(make_rgg(10, 1.5, 1), std::invalid_argument);
}

// --- Chunk-count invariance (the KaGen-style stream-splitting contract):
// the parallel generators derive one RNG stream per unit of work (G(n,p)
// row, RGG point), so the graph is a function of (parameters, seed)
// alone — never of how many chunks/threads generated it.

TEST(Generators, GnpIndependentOfChunkCount) {
  const Graph reference = make_gnp(300, 0.04, 9, 1);
  for (const unsigned threads : {2u, 4u, 7u, 0u}) {
    EXPECT_EQ(make_gnp(300, 0.04, 9, threads), reference)
        << "threads=" << threads;
  }
}

TEST(Generators, RggIndependentOfChunkCount) {
  const GeometricGraph reference = make_rgg_geometric(400, 0.08, 3, 1);
  for (const unsigned threads : {2u, 5u, 7u}) {
    const GeometricGraph parallel = make_rgg_geometric(400, 0.08, 3, threads);
    EXPECT_EQ(parallel.graph, reference.graph) << "threads=" << threads;
    EXPECT_EQ(parallel.x, reference.x) << "threads=" << threads;
    EXPECT_EQ(parallel.y, reference.y) << "threads=" << threads;
  }
}

TEST(Generators, CycleIndependentOfChunkCount) {
  EXPECT_EQ(make_cycle(101, 4), make_cycle(101, 1));
  EXPECT_EQ(make_cycle(3, 8), make_cycle(3));
}

TEST(Graphs, FromCsrAdoptsAndValidates) {
  // Path 0-1-2 as a prebuilt CSR.
  const Graph g = Graph::from_csr({0, 1, 3, 4}, {1, 0, 2, 1});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  // Rejections: non-monotone offsets, out-of-range / duplicate / unsorted
  // rows, self-loops, bad terminator.
  EXPECT_THROW(Graph::from_csr({0, 2, 1, 4}, {1, 0, 2, 1}),
               std::invalid_argument);
  EXPECT_THROW(Graph::from_csr({0, 1, 3, 4}, {1, 0, 2, 5}),
               std::invalid_argument);
  EXPECT_THROW(Graph::from_csr({0, 1, 3, 4}, {1, 2, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(Graph::from_csr({0, 1, 3, 4}, {0, 0, 2, 1}),
               std::invalid_argument);
  EXPECT_THROW(Graph::from_csr({0, 1, 3, 5}, {1, 0, 2, 1}),
               std::invalid_argument);
}

TEST(Generators, StandardFamiliesProduceReasonableSizes) {
  for (const GraphFamily& family : standard_families()) {
    const Graph g = family.make(128, 42);
    EXPECT_GE(g.num_vertices(), 32) << family.name;
    EXPECT_LE(g.num_vertices(), 512) << family.name;
  }
}

TEST(Generators, FamilyLookup) {
  EXPECT_EQ(family_by_name("grid").name, "grid");
  EXPECT_THROW(family_by_name("nonexistent"), std::invalid_argument);
}

}  // namespace
}  // namespace dsnd
