#include "support/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dsnd {
namespace {

TEST(Table, RendersAlignedAscii) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1);
  t.row().cell("b").cell(22);
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  // Rule lines above/below header and at the end.
  EXPECT_GE(std::count(text.begin(), text.end(), '+'), 9);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b", "c"});
  t.row().cell(1).cell(2.5, 1).cell("x");
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b,c\n1,2.5,x\n");
}

TEST(Table, DoublePrecisionControl) {
  Table t({"v"});
  t.row().cell(3.14159, 3);
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "v\n3.142\n");
}

TEST(Table, RejectsOverfullRow) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("too many"), std::invalid_argument);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"x"});
  EXPECT_THROW(t.cell("no row yet"), std::invalid_argument);
}

TEST(Table, RejectsIncompletePreviousRow) {
  Table t({"a", "b"});
  t.row().cell("half");
  EXPECT_THROW(t.row(), std::logic_error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.0, 2), "1.00");
  EXPECT_EQ(format_double(2.345, 1), "2.3");
}

}  // namespace
}  // namespace dsnd
