// End-to-end flows across modules: generate -> decompose (all three
// theorems + both baselines) -> validate -> contract/color -> solve the
// three symmetry-breaking applications -> verify, plus the head-to-head
// structural comparison between Elkin–Neiman and Linial–Saks that is the
// paper's contribution.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/checkers.hpp"
#include "apps/coloring.hpp"
#include "apps/luby.hpp"
#include "apps/matching.hpp"
#include "apps/mis.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/elkin_neiman_distributed.hpp"
#include "decomposition/high_radius.hpp"
#include "decomposition/linial_saks.hpp"
#include "decomposition/multistage.hpp"
#include "decomposition/supergraph.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"

namespace dsnd {
namespace {

TEST(Integration, FullPipelineOnGrid) {
  const Graph g = make_grid2d(12, 12);
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = 2026;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);

  const DecompositionReport report =
      validate_decomposition(g, run.clustering());
  ASSERT_TRUE(report.complete);
  ASSERT_TRUE(report.proper_phase_coloring);

  const Graph super = build_supergraph(g, run.clustering());
  EXPECT_EQ(super.num_vertices(), run.clustering().num_clusters());
  const auto recolor = greedy_coloring(super);
  EXPECT_TRUE(is_proper_vertex_coloring(super, recolor));

  const MisResult mis = mis_by_decomposition(g, run.clustering());
  EXPECT_TRUE(is_maximal_independent_set(g, mis.in_mis));
  const ColoringResult coloring =
      coloring_by_decomposition(g, run.clustering());
  EXPECT_TRUE(is_proper_vertex_coloring(g, coloring.colors));
  const MatchingResult matching =
      matching_by_decomposition(g, run.clustering());
  EXPECT_TRUE(is_maximal_matching(g, matching.mate));
}

TEST(Integration, AllThreeTheoremsOnSameGraph) {
  const Graph g = make_gnp(200, 0.035, 77);
  ElkinNeimanOptions t1;
  t1.k = 4;
  t1.seed = 1;
  MultistageOptions t2;
  t2.k = 4;
  t2.seed = 1;
  HighRadiusOptions t3;
  t3.lambda = 3;
  t3.seed = 1;

  const DecompositionRun r1 = elkin_neiman_decomposition(g, t1);
  const DecompositionRun r2 = multistage_decomposition(g, t2);
  const DecompositionRun r3 = high_radius_decomposition(g, t3);

  for (const DecompositionRun* run : {&r1, &r2, &r3}) {
    EXPECT_TRUE(run->clustering().is_complete());
    EXPECT_TRUE(phase_coloring_is_proper(g, run->clustering()));
  }
  // The tradeoff shape: Theorem 3 uses fewer colors than Theorem 1.
  EXPECT_LE(r3.clustering().num_colors(), r1.clustering().num_colors());
}

TEST(Integration, StrongVsWeakHeadToHead) {
  // The paper's core claim as a statistical test: across seeds, EN never
  // violates the strong bound (modulo the explicitly-flagged overflow
  // event), while LS93 — whose guarantee is weak-diameter only — violates
  // it on a nontrivial fraction of runs.
  int en_checked = 0;
  int en_violations = 0;
  int ls_violations = 0;
  const std::int32_t k = 4;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Graph g = make_gnp(180, 0.035, seed);
    ElkinNeimanOptions en;
    en.k = k;
    en.seed = seed;
    const DecompositionRun en_run = elkin_neiman_decomposition(g, en);
    if (!en_run.carve.radius_overflow) {
      ++en_checked;
      const DecompositionReport report =
          validate_decomposition(g, en_run.clustering(),
                                 /*compute_weak=*/false);
      if (report.max_strong_diameter == kInfiniteDiameter ||
          report.max_strong_diameter > 2 * k - 2) {
        ++en_violations;
      }
    }
    LinialSaksOptions ls;
    ls.k = k;
    ls.seed = seed;
    const DecompositionRun ls_run = linial_saks_decomposition(g, ls);
    const DecompositionReport ls_report = validate_decomposition(
        g, ls_run.clustering(), /*compute_weak=*/false);
    if (ls_report.max_strong_diameter == kInfiniteDiameter ||
        ls_report.max_strong_diameter > 2 * k - 2) {
      ++ls_violations;
    }
  }
  EXPECT_EQ(en_violations, 0);
  EXPECT_GE(en_checked, 10);
  EXPECT_GT(ls_violations, 0);
}

TEST(Integration, DistributedAndLubySolveSameProblem) {
  const Graph g = make_torus2d(10, 10);
  ElkinNeimanOptions options;
  options.k = 3;
  options.seed = 5;
  const DistributedRun dist = elkin_neiman_distributed(g, options);
  const MisResult dec_mis = mis_by_decomposition(g, dist.run.clustering());
  const LubyResult luby = luby_mis(g, 5);
  EXPECT_TRUE(is_maximal_independent_set(g, dec_mis.in_mis));
  EXPECT_TRUE(is_maximal_independent_set(g, luby.in_mis));
}

TEST(Integration, IoRoundTripPreservesDecompositionBehavior) {
  // Same graph via serialization -> identical decomposition (the
  // algorithms depend only on structure and seed).
  const Graph g = make_watts_strogatz(120, 3, 0.2, 9);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph g2 = read_edge_list(buffer);
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = 31;
  const DecompositionRun a = elkin_neiman_decomposition(g, options);
  const DecompositionRun b = elkin_neiman_decomposition(g2, options);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(a.clustering().cluster_of(v), b.clustering().cluster_of(v));
  }
}

TEST(Integration, HeadlineRegimeSmallScale) {
  // k = ceil(ln n): the (O(log n), O(log n)) regime. Verify the measured
  // quantities against the theorem's own bounds on one medium graph.
  const Graph g = make_gnp(256, 0.025, 13);
  ElkinNeimanOptions options;  // k = 0 -> auto
  options.seed = 13;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  EXPECT_TRUE(run.clustering().is_complete());
  EXPECT_LE(run.carve.phases_used,
            4 * static_cast<std::int32_t>(run.bounds.colors));
  if (!run.carve.radius_overflow) {
    const DecompositionReport report = validate_decomposition(
        g, run.clustering(), /*compute_weak=*/false);
    EXPECT_LE(static_cast<double>(report.max_strong_diameter),
              run.bounds.strong_diameter);
  }
}

}  // namespace
}  // namespace dsnd
