#include "decomposition/validation.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(AnalyzeCluster, ConnectedPathSegment) {
  const Graph g = make_path(6);
  const VertexId members[] = {1, 2, 3};
  const ClusterShape shape = analyze_cluster(g, members, 2);
  EXPECT_TRUE(shape.connected);
  EXPECT_EQ(shape.size, 3);
  EXPECT_EQ(shape.strong_diameter, 2);
  EXPECT_EQ(shape.weak_diameter, 2);
  EXPECT_EQ(shape.radius_from_center, 1);
}

TEST(AnalyzeCluster, DisconnectedHasInfiniteStrongFiniteWeak) {
  // Cycle: members {0, 2} are non-adjacent but at distance 2 in G.
  const Graph g = make_cycle(4);
  const VertexId members[] = {0, 2};
  const ClusterShape shape = analyze_cluster(g, members, 0);
  EXPECT_FALSE(shape.connected);
  EXPECT_EQ(shape.strong_diameter, kInfiniteDiameter);
  EXPECT_EQ(shape.weak_diameter, 2);
  EXPECT_EQ(shape.radius_from_center, kInfiniteDiameter);
}

TEST(AnalyzeCluster, StrongExceedsWeakOnDetour) {
  // Cycle of 6: members {0,1,2,3,4} exclude 5. Inside the induced path
  // d(0,4) = 4 (strong diameter), while in G the worst member pair is
  // (1,4) at distance 3 (weak diameter) because 0-5-4 shortcuts exist.
  const Graph g = make_cycle(6);
  const VertexId members[] = {0, 1, 2, 3, 4};
  const ClusterShape shape = analyze_cluster(g, members, 2);
  EXPECT_TRUE(shape.connected);
  EXPECT_EQ(shape.strong_diameter, 4);
  EXPECT_EQ(shape.weak_diameter, 3);
  EXPECT_LT(shape.weak_diameter, shape.strong_diameter);
}

TEST(AnalyzeCluster, CenterOutsideClusterIsFlagged) {
  const Graph g = make_path(5);
  const VertexId members[] = {0, 1};
  const ClusterShape shape = analyze_cluster(g, members, 4);
  EXPECT_EQ(shape.radius_from_center, kInfiniteDiameter);
}

TEST(AnalyzeCluster, SingletonCluster) {
  const Graph g = make_path(3);
  const VertexId members[] = {1};
  const ClusterShape shape = analyze_cluster(g, members, 1);
  EXPECT_TRUE(shape.connected);
  EXPECT_EQ(shape.strong_diameter, 0);
  EXPECT_EQ(shape.weak_diameter, 0);
  EXPECT_EQ(shape.radius_from_center, 0);
}

Clustering manual_clustering(VertexId n,
                             const std::vector<std::vector<VertexId>>& sets,
                             const std::vector<std::int32_t>& colors) {
  Clustering c(n);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const ClusterId id = c.add_cluster(sets[i].front(), colors[i]);
    for (const VertexId v : sets[i]) c.assign(v, id);
  }
  return c;
}

TEST(ValidateDecomposition, GoodDecompositionPasses) {
  const Graph g = make_path(6);
  const Clustering c = manual_clustering(
      6, {{0, 1}, {2, 3}, {4, 5}}, {0, 1, 0});
  const DecompositionReport report = validate_decomposition(g, c);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.proper_phase_coloring);
  EXPECT_TRUE(report.all_clusters_connected);
  EXPECT_EQ(report.num_clusters, 3);
  EXPECT_EQ(report.num_colors, 2);
  EXPECT_EQ(report.max_strong_diameter, 1);
  EXPECT_EQ(report.max_weak_diameter, 1);
  EXPECT_DOUBLE_EQ(report.avg_cluster_size, 2.0);
  EXPECT_EQ(report.max_cluster_size, 2);
  EXPECT_TRUE(report.is_strong_decomposition(1, 2));
  EXPECT_TRUE(report.is_weak_decomposition(1, 2));
  EXPECT_FALSE(report.is_strong_decomposition(0, 2));  // diameter too big
  EXPECT_FALSE(report.is_strong_decomposition(1, 1));  // too many colors
}

TEST(ValidateDecomposition, IncompletePartitionReported) {
  const Graph g = make_path(4);
  Clustering c(4);
  const ClusterId a = c.add_cluster(0, 0);
  c.assign(0, a);
  c.assign(1, a);
  const DecompositionReport report = validate_decomposition(g, c);
  EXPECT_FALSE(report.complete);
  EXPECT_FALSE(report.is_strong_decomposition(10, 10));
}

TEST(ValidateDecomposition, ImproperColoringReported) {
  const Graph g = make_path(4);
  const Clustering c = manual_clustering(4, {{0, 1}, {2, 3}}, {0, 0});
  const DecompositionReport report = validate_decomposition(g, c);
  EXPECT_TRUE(report.complete);
  EXPECT_FALSE(report.proper_phase_coloring);
  EXPECT_FALSE(report.is_strong_decomposition(10, 10));
}

TEST(ValidateDecomposition, DisconnectedClusterReported) {
  const Graph g = make_cycle(6);
  const Clustering c = manual_clustering(
      6, {{0, 3}, {1, 2}, {4, 5}}, {0, 1, 2});
  const DecompositionReport report = validate_decomposition(g, c);
  EXPECT_EQ(report.disconnected_clusters, 1);
  EXPECT_FALSE(report.all_clusters_connected);
  EXPECT_EQ(report.max_strong_diameter, kInfiniteDiameter);
  EXPECT_NE(report.max_weak_diameter, kInfiniteDiameter);
  EXPECT_FALSE(report.is_strong_decomposition(100, 100));
  EXPECT_TRUE(report.is_weak_decomposition(3, 3));
}

TEST(ValidateDecomposition, StrongOnlyModeSkipsWeak) {
  const Graph g = make_grid2d(4, 4);
  const Clustering c = manual_clustering(
      16,
      {{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}},
      {0, 1, 0, 1});
  const DecompositionReport report =
      validate_decomposition(g, c, /*compute_weak=*/false);
  EXPECT_EQ(report.max_strong_diameter, 3);
  EXPECT_EQ(report.max_weak_diameter, 0);  // not computed
}

}  // namespace
}  // namespace dsnd
