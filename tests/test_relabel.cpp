// Cache-aware relabeling: the Permutation must be a checked bijection
// with exact round-trips, apply_layout must preserve the topology, and —
// the contract the perf work rests on — a carving run on a relabeled
// graph must be BIT-IDENTICAL to the run on the original labeling, for
// every theorem schedule, graph family, and engine thread count.
#include "graph/relabel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "decomposition/elkin_neiman_distributed.hpp"
#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(Permutation, IdentityAndInverse) {
  const Permutation id = Permutation::identity(5);
  ASSERT_EQ(id.size(), 5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(id.to_new[static_cast<std::size_t>(v)], v);
    EXPECT_EQ(id.to_old[static_cast<std::size_t>(v)], v);
  }
  const Permutation p = Permutation::from_to_new({2, 0, 3, 1});
  const Permutation q = p.inverse();
  for (VertexId v = 0; v < 4; ++v) {
    // Exact round-trips in both directions.
    EXPECT_EQ(p.to_old[static_cast<std::size_t>(
                  p.to_new[static_cast<std::size_t>(v)])],
              v);
    EXPECT_EQ(q.to_new[static_cast<std::size_t>(v)],
              p.to_old[static_cast<std::size_t>(v)]);
  }
}

TEST(Permutation, RejectsNonBijections) {
  EXPECT_THROW(Permutation::from_to_new({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Permutation::from_to_new({0, 3, 1}), std::invalid_argument);
  EXPECT_THROW(Permutation::from_to_new({-1, 0, 1}), std::invalid_argument);
}

TEST(Permutation, UnpermuteMapsBackToOriginalIds) {
  const Permutation p = Permutation::from_to_new({2, 0, 1});
  // by_new[new id] -> by_old[old id]: old 0 lives at new 2, etc.
  const std::vector<int> by_new = {10, 20, 30};
  const std::vector<int> by_old = unpermute(by_new, p);
  EXPECT_EQ(by_old, (std::vector<int>{30, 10, 20}));
}

TEST(Relabel, ApplyLayoutPreservesTopology) {
  const Graph g = make_gnp(60, 0.1, 5);
  const Permutation layout = bfs_layout(g);
  const Graph relabeled = apply_layout(g, layout);
  ASSERT_EQ(relabeled.num_vertices(), g.num_vertices());
  ASSERT_EQ(relabeled.num_edges(), g.num_edges());
  g.for_each_edge([&](VertexId u, VertexId v) {
    EXPECT_TRUE(relabeled.has_edge(
        layout.to_new[static_cast<std::size_t>(u)],
        layout.to_new[static_cast<std::size_t>(v)]));
  });
}

TEST(Relabel, BfsLayoutPacksRingNeighbors) {
  const Graph g = make_cycle(64);
  const Permutation layout = bfs_layout(g);
  // BFS from 0 explores the ring in both directions: every vertex's new
  // id is within 2 of its neighbors' new ids.
  for (VertexId v = 0; v < 64; ++v) {
    for (const VertexId w : g.neighbors(v)) {
      EXPECT_LE(std::abs(layout.to_new[static_cast<std::size_t>(v)] -
                         layout.to_new[static_cast<std::size_t>(w)]),
                2);
    }
  }
}

TEST(Relabel, GridBucketLayoutOrdersByCell) {
  const std::vector<double> x = {0.9, 0.1, 0.6, 0.1};
  const std::vector<double> y = {0.9, 0.1, 0.1, 0.6};
  const Permutation p = grid_bucket_layout(x, y, 2);
  // Row-major cells: (0,0) holds points 1 and 2 (point order), then
  // (0,1) nothing... cells: point 1 -> cell(0,0), point 2 -> cell(1,0),
  // point 3 -> cell(0,1), point 0 -> cell(1,1).
  EXPECT_EQ(p.to_old, (std::vector<VertexId>{1, 2, 3, 0}));
}

Graph make_family(const std::string& family, VertexId n,
                  std::uint64_t seed) {
  if (family == "gnp") return make_gnp(n, 6.0 / std::max(n - 1, 1), seed);
  if (family == "ring") return make_cycle(n);
  return family_by_name("rgg").make(n, seed);
}

CarveSchedule schedule_for(int theorem, VertexId n) {
  if (theorem == 1) return theorem1_schedule(n, 4, 4.0);
  if (theorem == 2) return theorem2_schedule(n, 3, 6.0);
  return theorem3_schedule(n, 3, 4.0);
}

void expect_identical(const DistributedRun& a, const DistributedRun& b,
                      const std::string& label) {
  const Clustering& ca = a.run.clustering();
  const Clustering& cb = b.run.clustering();
  ASSERT_EQ(ca.num_clusters(), cb.num_clusters()) << label;
  for (VertexId v = 0; v < ca.num_vertices(); ++v) {
    ASSERT_EQ(ca.cluster_of(v), cb.cluster_of(v)) << label << " v=" << v;
  }
  for (ClusterId c = 0; c < ca.num_clusters(); ++c) {
    ASSERT_EQ(ca.center_of(c), cb.center_of(c)) << label << " c=" << c;
    ASSERT_EQ(ca.color_of(c), cb.color_of(c)) << label << " c=" << c;
  }
  EXPECT_EQ(a.run.carve.carved_per_phase, b.run.carve.carved_per_phase)
      << label;
  // The relabeled run is the same distributed computation on renamed
  // processors: its traffic must match exactly, round by round.
  EXPECT_EQ(a.sim.rounds, b.sim.rounds) << label;
  EXPECT_EQ(a.sim.messages, b.sim.messages) << label;
  EXPECT_EQ(a.sim.words, b.sim.words) << label;
  EXPECT_EQ(a.sim.messages_per_round, b.sim.messages_per_round) << label;
}

TEST(Relabel, ClusteringBitIdenticalWithAndWithoutRelabeling) {
  for (const int theorem : {1, 2, 3}) {
    for (const char* family : {"gnp", "ring", "rgg"}) {
      const Graph g = make_family(family, 96, 7);
      const CarveSchedule schedule = schedule_for(theorem, 96);
      const std::uint64_t seed = 1234 + static_cast<std::uint64_t>(theorem);
      const DistributedRun plain =
          run_schedule_distributed(g, schedule, seed);
      const LayoutGraph relabeled = make_layout_graph(g, bfs_layout(g));
      const DistributedRun laid =
          run_schedule_distributed(relabeled, schedule, seed);
      expect_identical(plain, laid,
                       std::string("T") + std::to_string(theorem) + " " +
                           family);
    }
  }
}

TEST(Relabel, RelabelingComposesWithShardedThreads) {
  const Graph g = make_family("rgg", 120, 3);
  const CarveSchedule schedule = schedule_for(1, 120);
  const DistributedRun baseline = run_schedule_distributed(g, schedule, 99);
  const LayoutGraph relabeled = make_layout_graph(g, bfs_layout(g));
  for (const unsigned threads : {2u, 7u}) {
    EngineOptions engine;
    engine.threads = threads;
    const DistributedRun run =
        run_schedule_distributed(relabeled, schedule, 99, engine);
    expect_identical(baseline, run,
                     "threads=" + std::to_string(threads));
  }
}

TEST(Relabel, GridBucketLayoutMatchesPlainRunOnRgg) {
  const GeometricGraph gg = make_rgg_geometric(400, 0.08, 11);
  const CarveSchedule schedule = schedule_for(1, 400);
  const DistributedRun plain =
      run_schedule_distributed(gg.graph, schedule, 21);
  const LayoutGraph relabeled = make_layout_graph(
      gg.graph, grid_bucket_layout(gg.x, gg.y, 12));
  const DistributedRun laid =
      run_schedule_distributed(relabeled, schedule, 21);
  expect_identical(plain, laid, "rgg grid-bucket");
}

}  // namespace
}  // namespace dsnd
