#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dsnd {
namespace {

TEST(Properties, MaxAndAverageDegree) {
  const Graph g = make_star(5);
  EXPECT_EQ(max_degree(g), 4);
  EXPECT_DOUBLE_EQ(average_degree(g), 2.0 * 4 / 5);
}

TEST(Properties, AverageDegreeEmptyGraph) {
  EXPECT_DOUBLE_EQ(average_degree(Graph()), 0.0);
}

TEST(Properties, BipartiteFamilies) {
  EXPECT_TRUE(is_bipartite(make_path(10)));
  EXPECT_TRUE(is_bipartite(make_grid2d(4, 6)));
  EXPECT_TRUE(is_bipartite(make_cycle(8)));
  EXPECT_FALSE(is_bipartite(make_cycle(7)));
  EXPECT_FALSE(is_bipartite(make_complete(3)));
  EXPECT_TRUE(is_bipartite(make_hypercube(5)));
}

TEST(Properties, BipartiteDisconnected) {
  // Even cycle plus odd cycle: not bipartite overall.
  GraphBuilder builder(9);
  for (VertexId v = 0; v < 4; ++v) builder.add_edge(v, (v + 1) % 4);
  for (VertexId v = 0; v < 5; ++v) builder.add_edge(4 + v, 4 + (v + 1) % 5);
  EXPECT_FALSE(is_bipartite(std::move(builder).build()));
}

TEST(Properties, TriangleCount) {
  EXPECT_EQ(triangle_count(make_complete(4)), 4);
  EXPECT_EQ(triangle_count(make_complete(5)), 10);
  EXPECT_EQ(triangle_count(make_cycle(5)), 0);
  EXPECT_EQ(triangle_count(make_grid2d(3, 3)), 0);
}

TEST(Properties, DescribeMentionsKeyNumbers) {
  const std::string text = describe(make_grid2d(3, 3));
  EXPECT_NE(text.find("n=9"), std::string::npos);
  EXPECT_NE(text.find("m=12"), std::string::npos);
  EXPECT_NE(text.find("components=1"), std::string::npos);
}

}  // namespace
}  // namespace dsnd
