// Parameterized property sweeps: the paper's invariants checked across
// the cartesian product of graph families, sizes, radius parameters, and
// seeds. These are the "theorem holds everywhere" tests; the per-module
// files cover behaviors and edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "apps/checkers.hpp"
#include "apps/coloring.hpp"
#include "apps/matching.hpp"
#include "apps/mis.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/linial_saks.hpp"
#include "decomposition/mpx.hpp"
#include "decomposition/multistage.hpp"
#include "decomposition/supergraph.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace dsnd {
namespace {

using SweepParam = std::tuple<std::string, VertexId, std::int32_t,
                              std::uint64_t>;  // family, n, k, seed

std::string sweep_name(const testing::TestParamInfo<SweepParam>& info) {
  const auto& [family, n, k, seed] = info.param;
  std::string name = family + "_n" + std::to_string(n) + "_k" +
                     std::to_string(k) + "_s" + std::to_string(seed);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class DecompositionSweep : public testing::TestWithParam<SweepParam> {
 protected:
  Graph graph() const {
    const auto& [family, n, k, seed] = GetParam();
    (void)k;
    return family_by_name(family).make(n, seed);
  }
};

TEST_P(DecompositionSweep, ElkinNeimanTheorem1Invariants) {
  const auto& [family, n, k, seed] = GetParam();
  (void)family;
  (void)n;
  const Graph g = graph();
  ElkinNeimanOptions options;
  options.k = k;
  options.seed = seed;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);

  // Always: complete partition.
  ASSERT_TRUE(run.clustering().is_complete());

  // Conditioned on Lemma 1's event not occurring (as in the theorem):
  // proper phase coloring (Lemma 4 needs untruncated broadcasts),
  // connected clusters, strong diameter <= 2k-2, center radius <= k-1.
  if (!run.carve.radius_overflow) {
    ASSERT_TRUE(phase_coloring_is_proper(g, run.clustering()));
    const DecompositionReport report =
        validate_decomposition(g, run.clustering());
    EXPECT_TRUE(report.all_clusters_connected);
    ASSERT_NE(report.max_strong_diameter, kInfiniteDiameter);
    EXPECT_LE(report.max_strong_diameter, 2 * k - 2);
    EXPECT_LE(report.max_radius_from_center, k - 1);
    // Weak diameter never exceeds strong diameter.
    EXPECT_LE(report.max_weak_diameter, report.max_strong_diameter);
  }
}

TEST_P(DecompositionSweep, MultistageTheorem2Invariants) {
  const auto& [family, n, k, seed] = GetParam();
  (void)family;
  (void)n;
  const Graph g = graph();
  MultistageOptions options;
  options.k = k;
  options.seed = seed;
  const DecompositionRun run = multistage_decomposition(g, options);
  ASSERT_TRUE(run.clustering().is_complete());
  if (!run.carve.radius_overflow) {
    ASSERT_TRUE(phase_coloring_is_proper(g, run.clustering()));
    const DecompositionReport report =
        validate_decomposition(g, run.clustering(), /*compute_weak=*/false);
    EXPECT_TRUE(report.all_clusters_connected);
    ASSERT_NE(report.max_strong_diameter, kInfiniteDiameter);
    EXPECT_LE(report.max_strong_diameter, 2 * k - 2);
  }
}

TEST_P(DecompositionSweep, LinialSaksWeakInvariants) {
  const auto& [family, n, k, seed] = GetParam();
  (void)family;
  (void)n;
  const Graph g = graph();
  LinialSaksOptions options;
  options.k = k;
  options.seed = seed;
  const DecompositionRun run = linial_saks_decomposition(g, options);
  ASSERT_TRUE(run.clustering().is_complete());
  ASSERT_TRUE(phase_coloring_is_proper(g, run.clustering()));
  const DecompositionReport report =
      validate_decomposition(g, run.clustering());
  ASSERT_NE(report.max_weak_diameter, kInfiniteDiameter);
  EXPECT_LE(report.max_weak_diameter, 2 * k - 2);
}

TEST_P(DecompositionSweep, ApplicationsAreValid) {
  const auto& [family, n, k, seed] = GetParam();
  (void)family;
  (void)n;
  const Graph g = graph();
  ElkinNeimanOptions options;
  options.k = k;
  options.seed = seed;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);

  const MisResult mis = mis_by_decomposition(g, run.clustering());
  EXPECT_TRUE(is_maximal_independent_set(g, mis.in_mis));

  const ColoringResult coloring =
      coloring_by_decomposition(g, run.clustering());
  EXPECT_TRUE(is_proper_vertex_coloring(g, coloring.colors));
  EXPECT_LE(coloring.colors_used, max_degree(g) + 1);

  const MatchingResult matching =
      matching_by_decomposition(g, run.clustering());
  EXPECT_TRUE(is_maximal_matching(g, matching.mate));
}

INSTANTIATE_TEST_SUITE_P(
    Families, DecompositionSweep,
    testing::Combine(
        testing::Values("path", "cycle", "grid", "balanced-tree",
                        "random-tree", "gnp-sparse", "random-regular",
                        "hypercube", "ring-of-cliques", "small-world"),
        testing::Values<VertexId>(96),
        testing::Values<std::int32_t>(3, 5),
        testing::Values<std::uint64_t>(1, 2)),
    sweep_name);

INSTANTIATE_TEST_SUITE_P(
    Sizes, DecompositionSweep,
    testing::Combine(testing::Values("gnp-sparse", "grid"),
                     testing::Values<VertexId>(32, 64, 200),
                     testing::Values<std::int32_t>(4),
                     testing::Values<std::uint64_t>(3)),
    sweep_name);

// --- MPX sweep ------------------------------------------------------------

using MpxParam = std::tuple<std::string, double, std::uint64_t>;

std::string mpx_name(const testing::TestParamInfo<MpxParam>& info) {
  const auto& [family, beta, seed] = info.param;
  std::string name = family + "_b" +
                     std::to_string(static_cast<int>(beta * 100)) + "_s" +
                     std::to_string(seed);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class MpxSweep : public testing::TestWithParam<MpxParam> {};

TEST_P(MpxSweep, PartitionConnectedAndCovering) {
  const auto& [family, beta, seed] = GetParam();
  const Graph g = family_by_name(family).make(120, seed);
  const MpxResult result = mpx_partition(g, {.beta = beta, .seed = seed});
  ASSERT_TRUE(result.clustering.is_complete());
  const DecompositionReport report = validate_decomposition(
      g, result.clustering, /*compute_weak=*/false);
  EXPECT_TRUE(report.all_clusters_connected);
  ASSERT_NE(report.max_strong_diameter, kInfiniteDiameter);
  // Generous w.h.p. bound: 8 log(n) / beta.
  EXPECT_LE(report.max_strong_diameter,
            8.0 * std::log(static_cast<double>(g.num_vertices())) / beta);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MpxSweep,
    testing::Combine(testing::Values("grid", "gnp-sparse", "cycle",
                                     "random-tree", "hypercube"),
                     testing::Values(0.15, 0.4, 0.8),
                     testing::Values<std::uint64_t>(1, 2)),
    mpx_name);

}  // namespace
}  // namespace dsnd
