// The warm-path contract: a reusable CarveContext (persistent worker
// pool, retained engine arenas, retained protocol arrays) must be
// invisible in the results — every warm run is bit-identical to a cold
// run of the same inputs, for every thread count, across interleaved
// seeds, across Lemma 1 recarves, and with the quiet-round barrier
// elision on or off (reliable and faulty transports alike). Also pins
// the batched radius sampler to the scalar stream bit for bit — the
// equality every chunk-parallel sampling pass rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "decomposition/carving.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/elkin_neiman_distributed.hpp"
#include "graph/generators.hpp"
#include "simulator/transport.hpp"

namespace dsnd {
namespace {

void expect_identical(const DistributedRun& a, const DistributedRun& b,
                      const std::string& label) {
  ASSERT_EQ(a.sim.rounds, b.sim.rounds) << label;
  EXPECT_EQ(a.sim.messages, b.sim.messages) << label;
  EXPECT_EQ(a.sim.words, b.sim.words) << label;
  EXPECT_EQ(a.sim.vertex_activations, b.sim.vertex_activations) << label;
  EXPECT_EQ(a.sim.messages_per_round, b.sim.messages_per_round) << label;
  EXPECT_EQ(a.run.carve.phases_used, b.run.carve.phases_used) << label;
  EXPECT_EQ(a.run.carve.retries, b.run.carve.retries) << label;
  EXPECT_EQ(a.run.carve.rounds, b.run.carve.rounds) << label;
  EXPECT_EQ(a.run.carve.carved_per_phase, b.run.carve.carved_per_phase)
      << label;
  EXPECT_DOUBLE_EQ(a.run.carve.max_sampled_radius,
                   b.run.carve.max_sampled_radius)
      << label;
  const Clustering& ca = a.run.clustering();
  const Clustering& cb = b.run.clustering();
  ASSERT_EQ(ca.num_clusters(), cb.num_clusters()) << label;
  for (VertexId v = 0; v < ca.num_vertices(); ++v) {
    ASSERT_EQ(ca.cluster_of(v), cb.cluster_of(v)) << label << " v=" << v;
  }
  for (ClusterId c = 0; c < ca.num_clusters(); ++c) {
    ASSERT_EQ(ca.center_of(c), cb.center_of(c)) << label << " c=" << c;
    ASSERT_EQ(ca.color_of(c), cb.color_of(c)) << label << " c=" << c;
  }
}

// The batched sampler must reproduce the scalar per-vertex stream
// exactly (EXPECT_EQ on doubles, not NEAR): same seed, phase, retry,
// vertex => same bits, and the folded stats must equal the scalar fold.
TEST(WarmEngine, BatchedSamplerMatchesScalarBitForBit) {
  const VertexId n = 4096;
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < n; ++v) {
    if (v % 3 != 1) vertices.push_back(v);  // a strided live subset
  }
  std::vector<double> scratch(vertices.size());
  std::vector<double> radii(static_cast<std::size_t>(n), -1.0);
  const double beta = 1.25;
  const double overflow_at = 7.0;
  for (const std::int32_t phase : {0, 3}) {
    for (const std::int32_t retry : {0, 2}) {
      const RadiusBatchStats stats =
          carve_radius_sample_batch(99, phase, beta, retry, vertices,
                                    /*names=*/{}, scratch, radii,
                                    overflow_at);
      double max_radius = 0.0;
      bool overflow = false;
      for (const VertexId v : vertices) {
        const double expected = carve_radius_sample(99, phase, v, beta,
                                                    retry);
        EXPECT_EQ(radii[static_cast<std::size_t>(v)], expected)
            << "phase=" << phase << " retry=" << retry << " v=" << v;
        max_radius = std::max(max_radius, expected);
        overflow = overflow || expected >= overflow_at;
      }
      EXPECT_EQ(stats.max_radius, max_radius);
      EXPECT_EQ(stats.overflow, overflow);
    }
  }
}

// With a name map (the relabeled-graph path) the batch must key each
// vertex's stream by its ORIGINAL id, exactly like the scalar call the
// protocol used to make per vertex.
TEST(WarmEngine, BatchedSamplerHonorsNameMap) {
  const VertexId n = 512;
  std::vector<VertexId> names(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    names[static_cast<std::size_t>(v)] = n - 1 - v;  // reversal layout
  }
  std::vector<VertexId> vertices(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) vertices[static_cast<std::size_t>(v)] = v;
  std::vector<double> scratch(static_cast<std::size_t>(n));
  std::vector<double> radii(static_cast<std::size_t>(n));
  carve_radius_sample_batch(7, 1, 0.9, 1, vertices, names, scratch, radii,
                            100.0);
  for (const VertexId v : vertices) {
    EXPECT_EQ(radii[static_cast<std::size_t>(v)],
              carve_radius_sample(7, 1, names[static_cast<std::size_t>(v)],
                                  0.9, 1))
        << "v=" << v;
  }
}

// Warm runs on a reused context are bit-identical to cold runs, for
// serial and multi-threaded engines, with seeds interleaved so a run's
// leftover state would be caught by the NEXT seed's comparison.
TEST(WarmEngine, WarmRunsMatchColdRunsAcrossThreadsAndSeeds) {
  const VertexId n = 3000;  // above the chunk-parallel sampling threshold
  const Graph g = make_gnp(n, 6.0 / (n - 1), 3);
  const CarveSchedule schedule = theorem1_schedule(n, 0, 4.0);
  const std::uint64_t seeds[] = {42, 7, 1, 42};
  for (const unsigned threads : {1u, 2u, 4u}) {
    EngineOptions options;
    options.threads = threads;
    CarveContext context(g, options);
    for (const std::uint64_t seed : seeds) {
      const DistributedRun warm =
          run_schedule_distributed(context, schedule, seed);
      const DistributedRun cold =
          run_schedule_distributed(g, schedule, seed, options);
      expect_identical(warm, cold,
                       "threads=" + std::to_string(threads) +
                           " seed=" + std::to_string(seed));
    }
  }
}

// The theorem wrappers' context overloads are the same runs as their
// Graph overloads.
TEST(WarmEngine, TheoremWrappersMatchOnContext) {
  const VertexId n = 600;
  const Graph g = make_gnp(n, 6.0 / (n - 1), 9);
  EngineOptions options;
  options.threads = 2;
  CarveContext context(g, options);
  ElkinNeimanOptions t1;
  t1.seed = 11;
  expect_identical(elkin_neiman_distributed(context, t1),
                   elkin_neiman_distributed(g, t1, options), "theorem1");
  MultistageOptions t2;
  t2.seed = 12;
  expect_identical(multistage_distributed(context, t2),
                   multistage_distributed(g, t2, options), "theorem2");
  HighRadiusOptions t3;
  t3.seed = 13;
  expect_identical(high_radius_distributed(context, t3),
                   high_radius_distributed(g, t3, options), "theorem3");
}

// A reused context through the Las Vegas recarve loop: the overflow
// threshold is lowered so salted per-phase resamples fire, and the warm
// replays must reproduce the cold run — retries, extra rounds, and all.
TEST(WarmEngine, ReusedContextRecarvesIdentically) {
  const VertexId n = 3000;
  const Graph g = make_gnp(n, 8.0 / (n - 1), 1);
  CarveSchedule schedule = theorem1_schedule(n, 0, 4.0);
  schedule.radius_overflow_at = 5.5;
  schedule.max_retries_per_phase = 64;
  for (const unsigned threads : {1u, 4u}) {
    EngineOptions options;
    options.threads = threads;
    CarveContext context(g, options);
    const DistributedRun first =
        run_schedule_distributed(context, schedule, 42);
    ASSERT_GT(first.run.carve.retries, 0);
    const DistributedRun second =
        run_schedule_distributed(context, schedule, 42);
    const DistributedRun cold =
        run_schedule_distributed(g, schedule, 42, options);
    expect_identical(first, cold,
                     "recarve cold threads=" + std::to_string(threads));
    expect_identical(second, cold,
                     "recarve warm threads=" + std::to_string(threads));
  }
}

// Quiet-round elision is pure mechanics: disabling it must not move a
// single bit of the results — on the reliable transport and under a
// fault plan whose delay calendar forces pending() to hold rounds open.
TEST(WarmEngine, ElisionOnOffParity) {
  const VertexId n = 1500;
  const Graph g = make_gnp(n, 6.0 / (n - 1), 5);
  const CarveSchedule schedule = theorem1_schedule(n, 0, 4.0);
  for (const unsigned threads : {1u, 3u}) {
    EngineOptions on;
    on.threads = threads;
    on.elide_quiet_rounds = true;
    EngineOptions off = on;
    off.elide_quiet_rounds = false;
    expect_identical(run_schedule_distributed(g, schedule, 42, on),
                     run_schedule_distributed(g, schedule, 42, off),
                     "reliable threads=" + std::to_string(threads));

    FaultPlan plan;
    plan.seed = 1009;
    plan.drop_rate = 0.001;
    plan.delay_rate = 0.02;
    plan.max_delay_rounds = 3;
    FaultyTransport chaos_on(plan);
    FaultyTransport chaos_off(plan);
    on.transport = &chaos_on;
    off.transport = &chaos_off;
    const DistributedRun faulty_on =
        run_schedule_distributed(g, schedule, 42, on);
    const DistributedRun faulty_off =
        run_schedule_distributed(g, schedule, 42, off);
    expect_identical(faulty_on, faulty_off,
                     "faulty threads=" + std::to_string(threads));
    EXPECT_EQ(faulty_on.run.carve.faults.dropped,
              faulty_off.run.carve.faults.dropped);
    EXPECT_EQ(faulty_on.run.carve.faults.delayed,
              faulty_off.run.carve.faults.delayed);
    EXPECT_GT(faulty_on.run.carve.faults.delayed, 0u);
  }
}

// Rapid run churn on one context: the parked pool must wake and park
// cleanly across many back-to-back runs (the classic teardown/startup
// race surface), with every run reproducing the first.
TEST(WarmEngine, PoolSurvivesRapidRunChurn) {
  const VertexId n = 3000;
  const Graph g = make_gnp(n, 6.0 / (n - 1), 3);
  const CarveSchedule schedule = theorem1_schedule(n, 0, 4.0);
  EngineOptions options;
  options.threads = 4;
  CarveContext context(g, options);
  const DistributedRun baseline =
      run_schedule_distributed(context, schedule, 42);
  for (int i = 0; i < 8; ++i) {
    const DistributedRun again =
        run_schedule_distributed(context, schedule, 42);
    ASSERT_EQ(again.sim.messages, baseline.sim.messages) << "run " << i;
    ASSERT_EQ(again.sim.rounds, baseline.sim.rounds) << "run " << i;
  }
}

}  // namespace
}  // namespace dsnd
