// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate what the algorithms do.
//
// One global threshold (set_log_level), one sink (stderr), and the
// DSND_LOG_{DEBUG,INFO,WARN,ERROR} stream macros: each builds its line in
// a temporary and hands it to log_message at end of statement, which
// drops it if the level is below the threshold. There is deliberately no timestamping or threading
// support: the library is single-threaded per run and the simulated
// round/phase counters are the meaningful "time" to print.
#pragma once

#include <sstream>
#include <string>

namespace dsnd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr if level passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace dsnd

#define DSND_LOG_DEBUG ::dsnd::detail::LogLine(::dsnd::LogLevel::kDebug)
#define DSND_LOG_INFO ::dsnd::detail::LogLine(::dsnd::LogLevel::kInfo)
#define DSND_LOG_WARN ::dsnd::detail::LogLine(::dsnd::LogLevel::kWarn)
#define DSND_LOG_ERROR ::dsnd::detail::LogLine(::dsnd::LogLevel::kError)
