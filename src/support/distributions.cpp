#include "support/distributions.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace dsnd {

double exponential_inverse_cdf(double u, double beta) {
  DSND_REQUIRE(beta > 0.0, "exponential rate must be positive");
  DSND_REQUIRE(u >= 0.0 && u < 1.0, "u must lie in [0, 1)");
  return -std::log1p(-u) / beta;
}

double sample_exponential(Xoshiro256ss& rng, double beta) {
  return exponential_inverse_cdf(uniform_unit(rng), beta);
}

int sample_truncated_geometric(Xoshiro256ss& rng, double p, int max_radius) {
  DSND_REQUIRE(p > 0.0 && p < 1.0, "geometric parameter must be in (0, 1)");
  DSND_REQUIRE(max_radius >= 0, "max_radius must be nonnegative");
  // Pr[r >= j] = p^j, so r = floor(log(1 - u) / log(p)) capped at
  // max_radius reproduces the truncated tail mass exactly.
  const double u = uniform_unit(rng);
  const double raw = std::log1p(-u) / std::log(p);
  if (raw >= static_cast<double>(max_radius)) return max_radius;
  return static_cast<int>(raw);
}

}  // namespace dsnd
