#include "support/rng.hpp"

namespace dsnd {

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b) {
  // Feed the three words through SplitMix64 sequentially; the chained
  // finalizer makes (seed, a, b) -> stream a good avalanche mixing.
  SplitMix64 mixer(seed);
  std::uint64_t acc = mixer();
  mixer = SplitMix64(acc ^ a);
  acc = mixer();
  mixer = SplitMix64(acc ^ b);
  return mixer();
}

}  // namespace dsnd
