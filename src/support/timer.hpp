// Wall-clock timer for the experiment harnesses.
//
// Steady-clock stopwatch: construction starts it, reset() restarts it,
// elapsed_seconds()/elapsed_millis() read without stopping. The benches
// time whole decomposition runs with it; it is deliberately not used for
// the simulated round counts (those are logical, counted by SyncEngine
// and CarveResult::rounds, and must not depend on the host machine).
#pragma once

#include <chrono>

namespace dsnd {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dsnd
