// Samplers for the distributions the decomposition algorithms rely on.
//
// The Elkin–Neiman algorithm samples radii from EXP(beta) with density
// beta * e^(-beta x); Linial–Saks samples truncated geometric radii.
// Both use explicit inverse-CDF sampling on top of uniform_unit() so that
// results are reproducible across platforms (std::exponential_distribution
// is not guaranteed to produce identical streams everywhere).
#pragma once

#include "support/rng.hpp"

namespace dsnd {

/// Sample from the exponential distribution EXP(beta) with mean 1/beta.
/// beta must be positive.
double sample_exponential(Xoshiro256ss& rng, double beta);

/// Inverse CDF of EXP(beta) evaluated at u in [0, 1).
double exponential_inverse_cdf(double u, double beta);

/// Sample the Linial–Saks truncated geometric radius:
///   Pr[r = j]       = (1 - p) * p^j   for 0 <= j <= max_radius - 1
///   Pr[r = max_radius] = p^max_radius
/// so that Pr[r >= j] = p^j for all j <= max_radius.
/// Requires p in (0, 1) and max_radius >= 0.
int sample_truncated_geometric(Xoshiro256ss& rng, double p, int max_radius);

}  // namespace dsnd
