// Small lock-free helpers shared by the protocols that keep aggregate
// counters safe under the engine's parallel rounds.
#pragma once

#include <atomic>

namespace dsnd {

/// Monotone relaxed max: raises `target` to `value` if larger. The
/// protocols use it for shared instrumentation aggregates (phase
/// counters, max radii) that never feed back into per-vertex decisions,
/// so relaxed ordering keeps parallel rounds deterministic.
template <typename T>
void atomic_max(std::atomic<T>& target, T value) {
  T current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace dsnd
