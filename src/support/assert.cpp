#include "support/assert.hpp"

#include <sstream>
#include <stdexcept>

namespace dsnd {

namespace {

std::string format_failure(const char* kind, const char* expr,
                           const char* file, int line,
                           const std::string& message) {
  std::ostringstream out;
  out << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) out << " — " << message;
  return out.str();
}

}  // namespace

void fail_require(const char* expr, const char* file, int line,
                  const std::string& message) {
  throw std::invalid_argument(
      format_failure("precondition", expr, file, line, message));
}

void fail_check(const char* expr, const char* file, int line,
                const std::string& message) {
  throw std::logic_error(
      format_failure("invariant", expr, file, line, message));
}

}  // namespace dsnd
