#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace dsnd {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const { return count_ == 0 ? 0.0 : min_; }

double Summary::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  DSND_REQUIRE(!samples_.empty(), "min of empty sample set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  DSND_REQUIRE(!samples_.empty(), "max of empty sample set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::quantile(double q) const {
  DSND_REQUIRE(!samples_.empty(), "quantile of empty sample set");
  DSND_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(rank, samples_.size() - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  DSND_REQUIRE(hi > lo, "histogram range must be nonempty");
  DSND_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto index = static_cast<long>((x - lo_) / width);
  index = std::clamp(index, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(index)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  DSND_REQUIRE(x.size() == y.size(), "fit_linear needs matched vectors");
  DSND_REQUIRE(x.size() >= 2, "fit_linear needs at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;
    return fit;
  }
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double err = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += err * err;
  }
  fit.r_squared = 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace dsnd
