// Console table and CSV rendering for the experiment harnesses. Every
// bench binary prints its results through Table so the output mirrors the
// row/column layout the experiment index in DESIGN.md promises.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dsnd {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);
  /// Doubles are rendered with the given precision (default 2 decimals).
  Table& cell(double value, int precision = 2);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }

  /// Render as an aligned ASCII table.
  void print(std::ostream& out) const;
  /// Render as CSV (header row first).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision = 2);

}  // namespace dsnd
