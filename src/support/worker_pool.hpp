// Persistent worker pool with a spin-then-park dispatch barrier.
//
// The pool is spawned once (workers - 1 threads; worker 0 is always the
// calling thread) and parked between dispatches, so a long-lived owner —
// the SyncEngine keeps one for its whole lifetime — pays thread creation
// exactly once no matter how many runs and rounds it drives. Dispatch is
// a sense-reversing barrier generalized to a monotone epoch counter: the
// driver publishes the job and bumps `epoch_`; workers compare the epoch
// against the last value they served. Both sides spin briefly on the
// atomics before falling back to a mutex + condvar park, so back-to-back
// round stages cost two uncontended atomic round-trips per worker while
// an idle pool (between runs, or a destroyed engine) consumes no CPU.
//
// Memory ordering: the job pointer/context are written before the
// release bump of `epoch_`, and workers acquire-load the epoch before
// reading them. Completion is an acq_rel fetch_sub chain on
// `outstanding_`; the driver's acquire load of zero synchronizes with
// every worker's decrement (RMWs extend the release sequence), so all
// shard state written by a job is visible to the driver when run()
// returns — the same happens-before the old per-run condvar barrier
// provided, without its two syscalls per stage.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace dsnd {

class WorkerPool {
 public:
  /// Spawns `workers - 1` parked threads (clamped to at least one
  /// worker, the caller). The threads live until destruction.
  explicit WorkerPool(unsigned workers);

  /// Wakes any parked thread with a stop epoch and joins. Safe to run
  /// immediately after construction or between dispatches; never call
  /// concurrently with run().
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned workers() const { return workers_; }

  /// Runs fn(w) once for every worker index w in [0, workers()) — w = 0
  /// on the calling thread — and returns after all have finished. Not
  /// reentrant and single-driver: only one run() at a time.
  template <typename F>
  void run(F&& fn) {
    if (workers_ == 1) {
      fn(0u);
      return;
    }
    const auto invoke = [](void* ctx, unsigned w) {
      (*static_cast<std::remove_reference_t<F>*>(ctx))(w);
    };
    dispatch(invoke, &fn);
  }

 private:
  void dispatch(void (*job)(void*, unsigned), void* ctx);
  void worker_loop(unsigned w);

  unsigned workers_;
  void (*job_)(void*, unsigned) = nullptr;
  void* job_ctx_ = nullptr;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> outstanding_{0};
  std::atomic<bool> stop_{false};
  // True only while the driver is inside (or committing to) a cv_done_
  // wait; lets workers skip the notify mutex on the fast path.
  std::atomic<bool> driver_parked_{false};

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
};

}  // namespace dsnd
