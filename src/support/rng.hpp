// Deterministic pseudo-random number generation.
//
// The library never uses std::random_device or global state: every random
// algorithm takes an explicit 64-bit seed, and per-(phase, vertex) streams
// are derived with stream_seed(). This is what makes the centralized
// reference implementation and the message-passing protocol of the
// Elkin–Neiman algorithm bit-identical: both sample r_v for vertex v in
// phase t from Xoshiro256ss(stream_seed(seed, t, v)) without sharing any
// generator state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dsnd {

/// SplitMix64: tiny generator used to expand seeds (Vigna, public domain
/// algorithm; reimplemented here). Passes through every 64-bit value
/// exactly once over its period, which makes it a good seed mixer.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna
/// algorithm; reimplemented here). State is seeded via SplitMix64 so that
/// any 64-bit seed, including 0, yields a well-mixed state.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 mixer(seed);
    for (auto& word : state_) word = mixer();
  }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives an independent stream seed from (seed, a, b). Used to give each
/// (phase, vertex) pair its own reproducible generator.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b);

/// Uniform double in [0, 1) with 53 random bits.
template <typename Rng>
double uniform_unit(Rng& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, bound) without modulo bias (Lemire-style
/// rejection). bound must be positive.
template <typename Rng>
std::uint64_t uniform_below(Rng& rng, std::uint64_t bound) {
  // Rejection sampling on the top of the range keeps the result exact.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t raw = rng();
    if (raw >= threshold) return raw % bound;
  }
}

}  // namespace dsnd
