#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace dsnd {

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DSND_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  if (!rows_.empty()) {
    DSND_CHECK(rows_.back().size() == headers_.size(),
               "previous row is incomplete");
  }
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  DSND_REQUIRE(!rows_.empty(), "call row() before cell()");
  DSND_REQUIRE(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      out << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
          << text << " |";
    }
    out << '\n';
  };
  auto print_rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void Table::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dsnd
