// Summary statistics used by the experiment harnesses: streaming
// mean/variance (Welford), min/max, and exact quantiles over stored
// samples.
//
// The benches aggregate per-seed measurements (diameters, colors,
// rounds) with Summary before printing measured-vs-bound tables, so the
// accumulator must be exact on counts and numerically stable on means —
// hence Welford's algorithm rather than naive sum-of-squares. Quantiles
// store their samples and sort on demand; they are for offline reporting,
// not hot paths.
#pragma once

#include <cstddef>
#include <vector>

namespace dsnd {

/// Streaming accumulator: O(1) memory, numerically stable mean/variance.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Accumulator that also stores samples so quantiles can be extracted.
class SampleSet {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact quantile by nearest-rank on the sorted samples; q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the first/last bucket. Used to visualize radius and diameter spreads.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::size_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Ordinary least squares fit y = a + b*x; returns {a, b, r_squared}.
/// Used by the scaling benches to check O(log n) / O(log^2 n) shapes.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

}  // namespace dsnd
