#include "support/worker_pool.hpp"

namespace dsnd {

namespace {

// Spin budget before parking on the condvar. Sized so the inter-stage
// gaps of a parallel round (exchange + roll-up on the driver) stay
// inside the spin window, while a pool left idle between runs parks
// after roughly a microsecond-scale burn.
constexpr int kSpinIterations = 1 << 14;

}  // namespace

WorkerPool::WorkerPool(unsigned workers)
    : workers_(workers == 0 ? 1 : workers) {
  if (workers_ > 1) {
    threads_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

WorkerPool::~WorkerPool() {
  if (workers_ > 1) {
    {
      // The lock pairs the stop+epoch publication with a worker's
      // decision to park, so the wakeup cannot be missed.
      const std::scoped_lock lock(mutex_);
      stop_.store(true, std::memory_order_relaxed);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

void WorkerPool::worker_loop(const unsigned w) {
  std::uint64_t served = 0;
  for (;;) {
    std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    for (int spin = kSpinIterations; epoch == served && spin > 0; --spin) {
      if ((spin & 1023) == 0) std::this_thread::yield();
      epoch = epoch_.load(std::memory_order_acquire);
    }
    if (epoch == served) {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return epoch_.load(std::memory_order_relaxed) != served;
      });
      epoch = epoch_.load(std::memory_order_relaxed);
    }
    served = epoch;
    if (stop_.load(std::memory_order_acquire)) return;
    job_(job_ctx_, w);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        driver_parked_.load(std::memory_order_acquire)) {
      // Last one out wakes a parked driver. Taking the mutex orders the
      // notify after the driver's predicate check, so it cannot be lost;
      // a driver still spinning never sets driver_parked_ and skips this.
      const std::scoped_lock lock(mutex_);
      cv_done_.notify_one();
    }
  }
}

void WorkerPool::dispatch(void (*job)(void*, unsigned), void* ctx) {
  job_ = job;
  job_ctx_ = ctx;
  outstanding_.store(workers_ - 1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(mutex_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_start_.notify_all();
  job(ctx, 0);
  for (int spin = kSpinIterations;
       outstanding_.load(std::memory_order_acquire) != 0; --spin) {
    if (spin > 0) {
      if ((spin & 1023) == 0) std::this_thread::yield();
      continue;
    }
    std::unique_lock lock(mutex_);
    driver_parked_.store(true, std::memory_order_release);
    cv_done_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_relaxed) == 0;
    });
    driver_parked_.store(false, std::memory_order_release);
    break;
  }
}

}  // namespace dsnd
