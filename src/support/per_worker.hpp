// Cache-line-padded per-worker accumulator slots.
//
// The engine's parallel rounds give every worker thread an index
// (Protocol::begin_workers announces the count, Outbox::worker() the
// slot); protocols keep one accumulator per worker and fold the slots on
// the driving thread when a total is read (finished(), build_result()).
// This replaces shared atomic counters: no cross-core cache-line
// bouncing during the round, and the engine's round barrier provides
// the happens-before for every fold.
#pragma once

#include <cstddef>
#include <vector>

namespace dsnd {

template <typename T>
class PerWorker {
 public:
  /// (Re)creates `workers` value-initialized slots; called from
  /// Protocol::begin_workers (and from begin() with one slot so a
  /// protocol driven without an engine still works).
  void reset(unsigned workers) {
    slots_.assign(workers == 0 ? 1 : workers, Slot{});
  }

  T& operator[](unsigned worker) { return slots_[worker].value; }
  const T& operator[](unsigned worker) const {
    return slots_[worker].value;
  }

  /// Folds all slots on the calling thread: fn(accumulated, slot value).
  template <typename Acc, typename Fn>
  Acc fold(Acc init, Fn&& fn) const {
    for (const Slot& slot : slots_) init = fn(init, slot.value);
    return init;
  }

 private:
  struct alignas(64) Slot {
    T value{};
  };
  std::vector<Slot> slots_;
};

}  // namespace dsnd
