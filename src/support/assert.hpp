// Checked preconditions and internal invariants.
//
// DSND_REQUIRE guards public API preconditions and throws
// std::invalid_argument so callers can recover from bad parameters.
// DSND_CHECK guards internal invariants and throws std::logic_error;
// a failure indicates a bug in this library, not in the caller.
#pragma once

#include <string>

namespace dsnd {

/// Thrown (as std::invalid_argument) when a public API precondition fails.
[[noreturn]] void fail_require(const char* expr, const char* file, int line,
                               const std::string& message);

/// Thrown (as std::logic_error) when an internal invariant fails.
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& message);

}  // namespace dsnd

#define DSND_REQUIRE(cond, msg)                                  \
  do {                                                           \
    if (!(cond)) ::dsnd::fail_require(#cond, __FILE__, __LINE__, \
                                      (msg));                    \
  } while (false)

#define DSND_CHECK(cond, msg)                                  \
  do {                                                         \
    if (!(cond)) ::dsnd::fail_check(#cond, __FILE__, __LINE__, \
                                    (msg));                    \
  } while (false)
