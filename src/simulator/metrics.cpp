#include "simulator/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace dsnd {

double SimMetrics::avg_messages_per_round() const {
  if (rounds == 0) return 0.0;
  return static_cast<double>(messages) / static_cast<double>(rounds);
}

std::string SimMetrics::to_string() const {
  std::ostringstream out;
  out << "rounds=" << rounds << " messages=" << messages
      << " words=" << words << " max_message_words=" << max_message_words
      << " vertex_activations=" << vertex_activations;
  return out.str();
}

}  // namespace dsnd
