#include "simulator/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace dsnd {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kFinished: return "finished";
    case RunStatus::kQuiescent: return "quiescent";
    case RunStatus::kRoundBudgetExhausted: return "round-budget";
  }
  return "unknown";
}

double SimMetrics::avg_messages_per_round() const {
  if (rounds == 0) return 0.0;
  return static_cast<double>(messages) / static_cast<double>(rounds);
}

std::string SimMetrics::to_string() const {
  std::ostringstream out;
  out << "rounds=" << rounds << " messages=" << messages
      << " words=" << words << " max_message_words=" << max_message_words
      << " vertex_activations=" << vertex_activations
      << " status=" << run_status_name(status);
  if (faults.total() != 0) {
    out << " dropped=" << faults.dropped << " delayed=" << faults.delayed
        << " duplicated=" << faults.duplicated
        << " crashed=" << faults.crashed;
    if (faults.rejoined != 0) out << " rejoined=" << faults.rejoined;
  }
  return out.str();
}

}  // namespace dsnd
