#include "simulator/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace dsnd {

void SimMetrics::record_message(std::size_t round,
                                std::size_t message_words) {
  ++messages;
  words += message_words;
  max_message_words = std::max(max_message_words, message_words);
  if (messages_per_round.size() <= round) {
    messages_per_round.resize(round + 1, 0);
  }
  ++messages_per_round[round];
}

double SimMetrics::avg_messages_per_round() const {
  if (rounds == 0) return 0.0;
  return static_cast<double>(messages) / static_cast<double>(rounds);
}

std::string SimMetrics::to_string() const {
  std::ostringstream out;
  out << "rounds=" << rounds << " messages=" << messages
      << " words=" << words << " max_message_words=" << max_message_words;
  return out.str();
}

}  // namespace dsnd
