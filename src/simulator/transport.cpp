#include "simulator/transport.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace dsnd {

namespace detail {

std::size_t staged_message_count(std::span<const SendStaging> staging) {
  std::size_t total = 0;
  for (const SendStaging& worker : staging) {
    for (const ShardBucket& bucket : worker.buckets) {
      total += bucket.headers.size();
    }
  }
  return total;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// ReliableTransport
// ---------------------------------------------------------------------------

void ReliableTransport::begin_run(const TransportGeometry& geometry) {
  shards_ = geometry.shards;
  slices_.resize(shards_);
  for (std::vector<TransportSlice>& per_worker : slices_) {
    per_worker.resize(shards_);
  }
}

void ReliableTransport::exchange(std::size_t round,
                                 std::span<detail::SendStaging> staging) {
  (void)round;
  DSND_CHECK(staging.size() == shards_,
             "staging worker count does not match the announced geometry");
  // Slice (s, w) aliases staging bucket (w, s): destination shard s
  // receives the source workers' buckets in worker order — the serial
  // vertex-order send sequence. Rewritten in place, no allocation.
  for (unsigned s = 0; s < shards_; ++s) {
    for (unsigned w = 0; w < shards_; ++w) {
      const detail::ShardBucket& bucket = staging[w].buckets[s];
      slices_[s][w] =
          TransportSlice{std::span<const detail::MsgHeader>(bucket.headers),
                         bucket.words.data()};
    }
  }
}

std::span<const TransportSlice> ReliableTransport::delivery(
    const unsigned s) const {
  return slices_[s];
}

// ---------------------------------------------------------------------------
// FaultyTransport
// ---------------------------------------------------------------------------

FaultyTransport::FaultyTransport(FaultPlan plan, Transport* inner)
    : plan_(std::move(plan)), inner_(inner) {
  DSND_REQUIRE(plan_.drop_rate >= 0.0 && plan_.drop_rate <= 1.0 &&
                   plan_.duplicate_rate >= 0.0 && plan_.duplicate_rate <= 1.0 &&
                   plan_.delay_rate >= 0.0 && plan_.delay_rate <= 1.0 &&
                   plan_.reorder_rate >= 0.0 && plan_.reorder_rate <= 1.0,
               "fault rates must lie in [0, 1]");
  DSND_REQUIRE(plan_.max_delay_rounds >= 1,
               "max_delay_rounds must be at least 1");
}

void FaultyTransport::begin_run(const TransportGeometry& geometry) {
  geometry_ = geometry;
  inner().begin_run(geometry);

  for (std::vector<OutBucket>& parity : out_) {
    parity.resize(geometry.shards);
    for (OutBucket& bucket : parity) {
      bucket.headers.clear();
      bucket.words.clear();
      bucket.sunk.clear();
    }
  }
  out_slices_.resize(geometry.shards);

  // The calendar ring must be strictly longer than the largest possible
  // delay so a slot is fully drained before anything new lands in it.
  std::size_t ring = 1;
  while (ring <= plan_.max_delay_rounds) ring *= 2;
  ring *= 2;
  calendar_.resize(ring);
  for (DelaySlot& slot : calendar_) {
    slot.msgs.clear();
    slot.words.clear();
  }

  // Per-vertex hull of the covering spans: crash = min, rejoin = max.
  // Uncovered vertices get (never crashes, rejoin 0) — down() is false
  // for every round. Any crash-stop span (rejoin == kNeverRejoins) pins
  // the vertex down forever regardless of other spans.
  crash_round_.assign(static_cast<std::size_t>(geometry.num_vertices),
                      std::numeric_limits<std::uint64_t>::max());
  rejoin_round_.assign(static_cast<std::size_t>(geometry.num_vertices), 0);
  for (const CrashSpan& span : plan_.crashes) {
    DSND_REQUIRE(span.rejoin == kNeverRejoins || span.rejoin > span.round,
                 "CrashSpan rejoin must be after the crash round");
    const VertexId end = std::min(span.end, geometry.num_vertices);
    for (VertexId v = std::max<VertexId>(span.begin, 0); v < end; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      crash_round_[vi] = std::min(crash_round_[vi], span.round);
      rejoin_round_[vi] = std::max(rejoin_round_[vi], span.rejoin);
    }
  }

  // Rejoin schedule: one (round, count) entry per distinct finite rejoin
  // round with a nonempty outage window, sorted so exchange() bills each
  // vertex's rejoin exactly once via a cursor.
  rejoin_events_.clear();
  rejoin_cursor_ = 0;
  for (std::size_t vi = 0; vi < rejoin_round_.size(); ++vi) {
    const std::uint64_t rejoin = rejoin_round_[vi];
    if (rejoin == 0 || rejoin == kNeverRejoins) continue;
    if (crash_round_[vi] >= rejoin) continue;  // window merged away
    bool merged = false;
    for (auto& [at, count] : rejoin_events_) {
      if (at == rejoin) {
        ++count;
        merged = true;
        break;
      }
    }
    if (!merged) rejoin_events_.emplace_back(rejoin, 1);
  }
  std::sort(rejoin_events_.begin(), rejoin_events_.end());

  pending_ = 0;
  round_faults_ = FaultCounters{};
}

bool FaultyTransport::targeted(const std::size_t round, const VertexId from,
                               const VertexId to) const {
  for (const EdgeDrop& drop : plan_.targeted_drops) {
    if (drop.round == round && drop.from == from && drop.to == to) return true;
  }
  return false;
}

void FaultyTransport::emit(const std::size_t round, const VertexId from,
                           const VertexId to,
                           const std::span<const std::uint64_t> payload,
                           const bool reorder, const std::uint32_t delay) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  if (delay == 0) {
    OutBucket& out = out_[round & 1][geometry_.shard_of(to)];
    const std::size_t begin = out.words.size();
    out.words.insert(out.words.end(), payload.begin(), payload.end());
    (reorder ? out.sunk : out.headers)
        .push_back(detail::MsgHeader{from, to, length, begin});
    return;
  }
  DelaySlot& slot = calendar_[(round + delay) & (calendar_.size() - 1)];
  const std::size_t begin = slot.words.size();
  slot.words.insert(slot.words.end(), payload.begin(), payload.end());
  slot.msgs.push_back(
      DelayedMsg{detail::MsgHeader{from, to, length, begin}, reorder});
  ++pending_;
  ++round_faults_.delayed;
}

void FaultyTransport::exchange(const std::size_t round,
                               std::span<detail::SendStaging> staging) {
  inner().exchange(round, staging);
  round_faults_ = FaultCounters{};

  // Bill rejoin events whose round has arrived: each crash-recovery
  // vertex counts once, at the first exchange at or past its rejoin.
  while (rejoin_cursor_ < rejoin_events_.size() &&
         rejoin_events_[rejoin_cursor_].first <= round) {
    round_faults_.rejoined += rejoin_events_[rejoin_cursor_].second;
    ++rejoin_cursor_;
  }

  const unsigned parity = static_cast<unsigned>(round & 1);
  for (OutBucket& bucket : out_[parity]) {
    bucket.headers.clear();
    bucket.words.clear();
    bucket.sunk.clear();
  }

  // Due delayed messages first: parked copies whose target round is this
  // one, in enqueue order (source-round order, sender-serial within a
  // round — shard-count invariant). Their reorder mark still applies
  // relative to THIS round's delivery.
  DelaySlot& due = calendar_[round & (calendar_.size() - 1)];
  for (const DelayedMsg& msg : due.msgs) {
    const detail::MsgHeader& h = msg.header;
    // A due copy addressed to a vertex inside a crash-RECOVERY outage is
    // lost (the NIC was down when it arrived). Legacy crash-stop targets
    // keep receiving, as in PR 7 — they are outbound-silent only.
    if (down(h.to, round) &&
        rejoin_round_[static_cast<std::size_t>(h.to)] != kNeverRejoins) {
      ++round_faults_.crashed;
      continue;
    }
    emit(round, h.from, h.to, {due.words.data() + h.word_begin, h.length},
         msg.reorder, /*delay=*/0);
  }
  pending_ -= due.msgs.size();
  due.msgs.clear();
  due.words.clear();

  // Fresh traffic: walk each destination shard's inner delivery in slice
  // order (sender-serial) and put every message copy through the plan.
  // Each decision comes from a generator keyed by (seed, round, from,
  // to, occurrence) — none of which depends on the shard count.
  for (unsigned s = 0; s < geometry_.shards; ++s) {
    VertexId block_sender = -1;
    for (const TransportSlice& slice : inner().delivery(s)) {
      for (const detail::MsgHeader& h : slice.headers) {
        if (h.from != block_sender) {
          // A sender's headers are contiguous within a slice (a vertex
          // executes once per round, appending in send order), so the
          // per-(from, to) occurrence scratch resets per sender block.
          block_sender = h.from;
          occurrence_.clear();
        }
        std::uint32_t occurrence = 0;
        bool found = false;
        for (auto& [to, count] : occurrence_) {
          if (to == h.to) {
            occurrence = count++;
            found = true;
            break;
          }
        }
        if (!found) occurrence_.emplace_back(h.to, 1u);

        if (down(h.from, round)) {
          ++round_faults_.crashed;
          continue;
        }
        // Crash-RECOVERY receivers lose inbound traffic while down;
        // placed before any RNG draw so legacy plans (which never take
        // this branch) consume an identical decision stream.
        if (down(h.to, round) &&
            rejoin_round_[static_cast<std::size_t>(h.to)] != kNeverRejoins) {
          ++round_faults_.crashed;
          continue;
        }
        if (!plan_.targeted_drops.empty() && targeted(round, h.from, h.to)) {
          ++round_faults_.dropped;
          continue;
        }

        Xoshiro256ss rng(stream_seed(
            stream_seed(plan_.seed, round,
                        static_cast<std::uint64_t>(h.from) + 1),
            static_cast<std::uint64_t>(h.to) + 1, occurrence));
        if (plan_.drop_rate > 0.0 && uniform_unit(rng) < plan_.drop_rate) {
          ++round_faults_.dropped;
          continue;
        }
        unsigned copies = 1;
        if (plan_.duplicate_rate > 0.0 &&
            uniform_unit(rng) < plan_.duplicate_rate) {
          copies = 2;
          ++round_faults_.duplicated;
        }
        const std::span<const std::uint64_t> payload{
            slice.words + h.word_begin, h.length};
        for (unsigned copy = 0; copy < copies; ++copy) {
          std::uint32_t delay = 0;
          if (plan_.delay_rate > 0.0 &&
              uniform_unit(rng) < plan_.delay_rate) {
            delay = 1 + static_cast<std::uint32_t>(uniform_below(
                            rng, plan_.max_delay_rounds));
          }
          const bool reorder = plan_.reorder_rate > 0.0 &&
                               uniform_unit(rng) < plan_.reorder_rate;
          emit(round, h.from, h.to, payload, reorder, delay);
        }
      }
    }
  }

  // Seal this round's delivery: reorder-marked copies sink, stably,
  // behind every unmarked message of the shard's round. Restricted to
  // any single receiver this is a stable partition of its subsequence,
  // so per-receiver inbox order stays shard-count invariant.
  for (unsigned s = 0; s < geometry_.shards; ++s) {
    OutBucket& out = out_[parity][s];
    out.headers.insert(out.headers.end(), out.sunk.begin(), out.sunk.end());
    out.sunk.clear();
    out_slices_[s] =
        TransportSlice{std::span<const detail::MsgHeader>(out.headers),
                       out.words.data()};
  }
}

std::span<const TransportSlice> FaultyTransport::delivery(
    const unsigned s) const {
  return {&out_slices_[s], 1};
}

}  // namespace dsnd
