#include "simulator/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "support/assert.hpp"

namespace dsnd {

// ---------------------------------------------------------------------------
// Outbox
// ---------------------------------------------------------------------------

void Outbox::ensure_neighbors() {
  if (!neighbors_fetched_) {
    neighbors_ = engine_.graph().neighbors(sender_);
    neighbors_fetched_ = true;
  }
}

bool Outbox::is_neighbor(VertexId to) {
  ensure_neighbors();
  const std::size_t size = neighbors_.size();
  while (cursor_ < size && neighbors_[cursor_] < to) ++cursor_;
  if (cursor_ < size && neighbors_[cursor_] == to) return true;
  // Out-of-order send: binary-search the sorted row and repark the
  // cursor so a subsequent in-order run resumes in O(1) per send.
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), to);
  if (it != neighbors_.end() && *it == to) {
    cursor_ = static_cast<std::size_t>(it - neighbors_.begin());
    return true;
  }
  return false;
}

void Outbox::send(VertexId to, std::span<const std::uint64_t> words) {
  DSND_REQUIRE(is_neighbor(to), "protocol tried to send to a non-neighbor");
  const std::size_t begin = staging_.words.size();
  staging_.words.insert(staging_.words.end(), words.begin(), words.end());
  staging_.headers.push_back(detail::MsgHeader{
      sender_, to, static_cast<std::uint32_t>(words.size()), begin});
}

void Outbox::send_to_all_neighbors(std::span<const std::uint64_t> words) {
  ensure_neighbors();
  if (neighbors_.empty()) return;
  // One arena copy of the payload, shared by every per-neighbor header.
  const std::size_t begin = staging_.words.size();
  staging_.words.insert(staging_.words.end(), words.begin(), words.end());
  const auto length = static_cast<std::uint32_t>(words.size());
  for (const VertexId to : neighbors_) {
    staging_.headers.push_back(
        detail::MsgHeader{sender_, to, length, begin});
  }
}

void Outbox::wake_self_in(std::size_t rounds) {
  DSND_REQUIRE(rounds >= 1, "wake_self_in needs a delay of at least 1 round");
  staging_.wakes.emplace_back(
      static_cast<std::uint64_t>(engine_.current_round_ + rounds), sender_);
}

// ---------------------------------------------------------------------------
// SyncEngine
// ---------------------------------------------------------------------------

SyncEngine::SyncEngine(const Graph& g, EngineOptions options)
    : graph_(g), options_(options) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  inbox_begin_.resize(n);
  inbox_fill_.resize(n);
  inbox_len_.assign(n, 0);
  inbox_count_.assign(n, 0);
  active_stamp_.assign(n, 0);
  all_vertices_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    all_vertices_[v] = static_cast<VertexId>(v);
  }
  wake_ring_.resize(64);
}

void SyncEngine::reset(Protocol& protocol) {
  workers_ = options_.threads == 0
                 ? std::max(1u, std::thread::hardware_concurrency())
                 : std::max(1u, options_.threads);
  scheduled_ =
      options_.active_scheduling && !protocol.needs_spontaneous_rounds();
  current_round_ = 0;
  metrics_ = SimMetrics{};
  round_messages_.clear();

  staging_.resize(workers_);
  for (auto& staging : staging_) staging.clear_round();
  staging_word_counts_.clear();

  for (const VertexId to : touched_) {
    inbox_len_[static_cast<std::size_t>(to)] = 0;
  }
  touched_.clear();
  inbox_views_.clear();
  words_live_.clear();
  std::fill(active_stamp_.begin(), active_stamp_.end(), 0);
  active_.clear();
  for (auto& bucket : wake_ring_) bucket.clear();
  pending_wakes_ = 0;
}

void SyncEngine::run_vertex(Protocol& protocol, VertexId v,
                            detail::SendStaging& staging) {
  const auto vi = static_cast<std::size_t>(v);
  const std::uint32_t length = inbox_len_[vi];
  const std::span<const MessageView> inbox =
      length == 0 ? std::span<const MessageView>{}
                  : std::span<const MessageView>(
                        inbox_views_.data() + inbox_begin_[vi], length);
  Outbox out(*this, staging, v);
  protocol.on_round(v, current_round_, inbox, out);
}

void SyncEngine::ring_insert(const std::uint64_t target, const VertexId v) {
  const std::uint64_t delta = target - current_round_;
  if (delta >= wake_ring_.size()) {
    // Grow the calendar to a power of two covering the delta and rehome
    // the pending entries under the new mask.
    std::size_t size = wake_ring_.size();
    while (size <= delta) size *= 2;
    std::vector<std::vector<std::pair<std::uint64_t, VertexId>>> grown(size);
    for (const auto& bucket : wake_ring_) {
      for (const auto& entry : bucket) {
        grown[entry.first & (size - 1)].push_back(entry);
      }
    }
    wake_ring_ = std::move(grown);
  }
  wake_ring_[target & (wake_ring_.size() - 1)].emplace_back(target, v);
  ++pending_wakes_;
}

void SyncEngine::collect_round() {
  // The inbox index consumed this round is dead; zero its slots so the
  // no-message default holds for next round.
  for (const VertexId to : touched_) {
    inbox_len_[static_cast<std::size_t>(to)] = 0;
  }
  touched_.clear();

  // Staged payload words become the live arena backing next round's
  // views. Serial mode swaps buffers (zero copies; last round's arena
  // memory is recycled as staging capacity); parallel mode concatenates
  // the worker arenas in worker order.
  staging_word_counts_.clear();
  for (const auto& staging : staging_) {
    staging_word_counts_.push_back(staging.words.size());
  }
  if (workers_ == 1) {
    std::swap(words_live_, staging_[0].words);
  } else {
    words_merge_.clear();
    for (const auto& staging : staging_) {
      words_merge_.insert(words_merge_.end(), staging.words.begin(),
                          staging.words.end());
    }
    std::swap(words_live_, words_merge_);
  }

  // Pass 1: per-receiver counts and message metrics.
  std::size_t total_messages = 0;
  for (const auto& staging : staging_) {
    total_messages += staging.headers.size();
    for (const detail::MsgHeader& h : staging.headers) {
      metrics_.words += h.length;
      if (h.length > metrics_.max_message_words) {
        metrics_.max_message_words = h.length;
      }
      std::uint32_t& count = inbox_count_[static_cast<std::size_t>(h.to)];
      if (count == 0) touched_.push_back(h.to);
      ++count;
    }
  }
  metrics_.messages += total_messages;
  round_messages_.push_back(total_messages);

  // Pass 2: CSR offsets for the touched receivers only — a quiet round
  // costs O(active + messages), never O(n).
  std::size_t running = 0;
  for (const VertexId to : touched_) {
    const auto ti = static_cast<std::size_t>(to);
    inbox_begin_[ti] = running;
    inbox_fill_[ti] = running;
    inbox_len_[ti] = inbox_count_[ti];
    running += inbox_count_[ti];
    inbox_count_[ti] = 0;
  }

  // Pass 3: stable counting-sort scatter by receiver. Iterating the
  // staging buffers in worker order reproduces the vertex-order send
  // sequence, so inbox order is identical for any thread count.
  inbox_views_.resize(total_messages);
  std::size_t word_base = 0;
  for (std::size_t s = 0; s < staging_.size(); ++s) {
    for (const detail::MsgHeader& h : staging_[s].headers) {
      inbox_views_[inbox_fill_[static_cast<std::size_t>(h.to)]++] =
          MessageView{h.from,
                      {words_live_.data() + word_base + h.word_begin,
                       h.length}};
    }
    word_base += staging_word_counts_[s];
  }

  // Wake requests into the calendar, then fire the next round's bucket
  // and build the next active list: receivers with mail plus due wakes,
  // deduplicated, in vertex-id order (so the execution order — and hence
  // every inbox order — matches the run-every-vertex mode). In
  // run-every-vertex mode (scheduled_ false) none of this is ever read,
  // so staged wakes are simply dropped with the rest of the staging.
  if (scheduled_) {
    for (const auto& staging : staging_) {
      for (const auto& [target, v] : staging.wakes) ring_insert(target, v);
    }
    const std::uint64_t next = static_cast<std::uint64_t>(current_round_) + 1;
    const std::uint64_t stamp = next + 1;
    active_.clear();
    for (const VertexId to : touched_) {
      active_.push_back(to);
      active_stamp_[static_cast<std::size_t>(to)] = stamp;
    }
    auto& due = wake_ring_[next & (wake_ring_.size() - 1)];
    for (const auto& [target, v] : due) {
      if (active_stamp_[static_cast<std::size_t>(v)] != stamp) {
        active_stamp_[static_cast<std::size_t>(v)] = stamp;
        active_.push_back(v);
      }
    }
    pending_wakes_ -= due.size();
    due.clear();
    // Vertex-id order keeps execution (and inbox) order identical to the
    // run-every-vertex mode. Dense lists are rebuilt by scanning the
    // stamp array — O(n), cheaper than sorting a large fraction of n;
    // sparse lists are sorted directly.
    if (active_.size() >= active_stamp_.size() / 16) {
      active_.clear();
      for (std::size_t v = 0; v < active_stamp_.size(); ++v) {
        if (active_stamp_[v] == stamp) {
          active_.push_back(static_cast<VertexId>(v));
        }
      }
    } else if (!std::is_sorted(active_.begin(), active_.end())) {
      std::sort(active_.begin(), active_.end());
    }
  }

  for (auto& staging : staging_) staging.clear_round();
}

SimMetrics SyncEngine::run(Protocol& protocol, std::size_t max_rounds) {
  reset(protocol);
  protocol.begin(graph_);

  // Worker pool for the duration of this run (workers_ > 1 only). Each
  // worker executes a contiguous slice of the round's vertex list into
  // its own staging buffer; the main thread takes slice 0.
  std::mutex mutex;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  std::uint64_t generation = 0;
  unsigned outstanding = 0;
  bool stop = false;
  std::span<const VertexId> job{};
  std::vector<std::thread> pool;

  const auto run_slice = [&](std::span<const VertexId> vertices, unsigned w) {
    const std::size_t chunk =
        (vertices.size() + workers_ - 1) / workers_;
    const std::size_t begin = std::min(vertices.size(), w * chunk);
    const std::size_t end = std::min(vertices.size(), begin + chunk);
    detail::SendStaging& staging = staging_[w];
    try {
      for (std::size_t i = begin; i < end; ++i) {
        run_vertex(protocol, vertices[i], staging);
      }
    } catch (...) {
      staging.error = std::current_exception();
    }
  };

  if (workers_ > 1) {
    for (unsigned w = 1; w < workers_; ++w) {
      pool.emplace_back([&, w] {
        std::uint64_t seen = 0;
        while (true) {
          std::span<const VertexId> vertices;
          {
            std::unique_lock lock(mutex);
            cv_start.wait(lock,
                          [&] { return stop || generation != seen; });
            if (stop) return;
            seen = generation;
            vertices = job;
          }
          run_slice(vertices, w);
          {
            const std::scoped_lock lock(mutex);
            if (--outstanding == 0) cv_done.notify_one();
          }
        }
      });
    }
  }
  struct PoolGuard {
    std::mutex& mutex;
    std::condition_variable& cv_start;
    bool& stop;
    std::vector<std::thread>& pool;
    ~PoolGuard() {
      {
        const std::scoped_lock lock(mutex);
        stop = true;
      }
      cv_start.notify_all();
      for (std::thread& t : pool) t.join();
    }
  } pool_guard{mutex, cv_start, stop, pool};

  while (current_round_ < max_rounds && !protocol.finished()) {
    const bool use_active = scheduled_ && current_round_ > 0;
    const std::span<const VertexId> vertices =
        use_active ? std::span<const VertexId>(active_)
                   : std::span<const VertexId>(all_vertices_);
    if (use_active && vertices.empty() && pending_wakes_ == 0) {
      // Quiescent: no inbox, no pending wake — no future round can
      // change state, so running to the cap would only burn time.
      break;
    }
    metrics_.vertex_activations += vertices.size();

    if (workers_ == 1 || vertices.size() < 2) {
      for (const VertexId v : vertices) {
        run_vertex(protocol, v, staging_[0]);
      }
    } else {
      {
        const std::scoped_lock lock(mutex);
        job = vertices;
        outstanding = workers_ - 1;
        ++generation;
      }
      cv_start.notify_all();
      run_slice(vertices, 0);
      {
        std::unique_lock lock(mutex);
        cv_done.wait(lock, [&] { return outstanding == 0; });
      }
      for (const auto& staging : staging_) {
        if (staging.error) std::rethrow_exception(staging.error);
      }
    }

    collect_round();
    ++current_round_;
  }

  metrics_.rounds = current_round_;
  metrics_.messages_per_round = round_messages_;
  return metrics_;
}

}  // namespace dsnd
