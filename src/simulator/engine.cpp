#include "simulator/engine.hpp"

#include <algorithm>
#include <thread>

#include "support/assert.hpp"

namespace {

// Cap on the per-round metric reservations: safety-cap round budgets can
// be astronomically large (attempt-scaled n-proportional bounds at 10M
// vertices), and reserving them literally would dwarf the run itself.
// 64k rounds covers every real schedule by orders of magnitude; a run
// that legitimately outlives it merely amortizes a few regrowths.
constexpr std::size_t kRoundReserveCap = std::size_t{1} << 16;

// On an elided quiet round the collect stage only fires wakes and
// maintains active lists; below this many executed vertices that is
// cheaper inline than waking the pool for a barrier.
constexpr std::size_t kSerialQuietCollect = 2048;

}  // namespace

namespace dsnd {

// ---------------------------------------------------------------------------
// Outbox
// ---------------------------------------------------------------------------

void Outbox::ensure_neighbors() {
  if (!neighbors_fetched_) {
    neighbors_ = engine_.graph().neighbors(sender_);
    neighbors_fetched_ = true;
  }
}

bool Outbox::is_neighbor(VertexId to) {
  ensure_neighbors();
  const std::size_t size = neighbors_.size();
  while (cursor_ < size && neighbors_[cursor_] < to) ++cursor_;
  if (cursor_ < size && neighbors_[cursor_] == to) return true;
  // Out-of-order send: binary-search the sorted row and repark the
  // cursor so a subsequent in-order run resumes in O(1) per send.
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), to);
  if (it != neighbors_.end() && *it == to) {
    cursor_ = static_cast<std::size_t>(it - neighbors_.begin());
    return true;
  }
  return false;
}

void Outbox::send(VertexId to, std::span<const std::uint64_t> words) {
  DSND_REQUIRE(is_neighbor(to), "protocol tried to send to a non-neighbor");
  detail::ShardBucket& bucket = staging_.buckets[engine_.shard_of(to)];
  const std::size_t begin = bucket.words.size();
  bucket.words.insert(bucket.words.end(), words.begin(), words.end());
  bucket.headers.push_back(detail::MsgHeader{
      sender_, to, static_cast<std::uint32_t>(words.size()), begin});
}

void Outbox::send_to_all_neighbors(std::span<const std::uint64_t> words) {
  ensure_neighbors();
  if (neighbors_.empty()) return;
  // The neighbor row is sorted, so destinations group into runs per
  // shard: one arena copy of the payload per destination shard, shared
  // by every header addressed to it.
  const auto length = static_cast<std::uint32_t>(words.size());
  unsigned shard = ~0u;
  detail::ShardBucket* bucket = nullptr;
  std::size_t begin = 0;
  for (const VertexId to : neighbors_) {
    if (const unsigned s = engine_.shard_of(to); s != shard) {
      shard = s;
      bucket = &staging_.buckets[s];
      begin = bucket->words.size();
      bucket->words.insert(bucket->words.end(), words.begin(), words.end());
    }
    bucket->headers.push_back(detail::MsgHeader{sender_, to, length, begin});
  }
}

void Outbox::wake_self_in(std::size_t rounds) {
  DSND_REQUIRE(rounds >= 1, "wake_self_in needs a delay of at least 1 round");
  // Wakes ride in the bucket addressed to the sender's own shard, so the
  // owner finds them during its collect stage no matter which worker
  // executed the vertex.
  staging_.buckets[engine_.shard_of(sender_)].wakes.emplace_back(
      static_cast<std::uint64_t>(engine_.current_round_ + rounds), sender_);
}

// ---------------------------------------------------------------------------
// SyncEngine
// ---------------------------------------------------------------------------

SyncEngine::SyncEngine(const Graph& g, EngineOptions options)
    : graph_(g), options_(options) {
  transport_ =
      options_.transport != nullptr ? options_.transport : &default_transport_;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  workers_ = options_.threads == 0
                 ? std::max(1u, std::thread::hardware_concurrency())
                 : std::max(1u, options_.threads);
  if (n > 0 && static_cast<std::size_t>(workers_) > n) {
    workers_ = static_cast<unsigned>(n);
  }
  shard_width_ = n == 0 ? 1
                        : static_cast<VertexId>(
                              (n + workers_ - 1) / workers_);

  inbox_begin_.resize(n);
  inbox_fill_.resize(n);
  inbox_len_.assign(n, 0);
  inbox_count_.assign(n, 0);
  active_stamp_.assign(n, 0);

  shards_.resize(workers_);
  for (unsigned s = 0; s < workers_; ++s) {
    shards_[s].begin = std::min(graph_.num_vertices(),
                                static_cast<VertexId>(s) * shard_width_);
    shards_[s].end =
        std::min(graph_.num_vertices(),
                 static_cast<VertexId>(shards_[s].begin + shard_width_));
    shards_[s].wake_ring.resize(64);
  }
  for (auto& parity : staging_) {
    parity.resize(workers_);
    for (detail::SendStaging& staging : parity) {
      staging.buckets.resize(workers_);
    }
  }
  worker_errors_.resize(workers_);
  if (workers_ > 1) pool_.emplace(workers_);
}

void SyncEngine::reset(Protocol& protocol) {
  scheduled_ =
      options_.active_scheduling && !protocol.needs_spontaneous_rounds();
  current_round_ = 0;
  metrics_ = SimMetrics{};
  round_messages_.clear();
  round_faults_.clear();

  for (auto& parity : staging_) {
    for (detail::SendStaging& staging : parity) staging.clear_round();
  }
  for (detail::Shard& shard : shards_) {
    for (const VertexId to : shard.touched) {
      inbox_len_[static_cast<std::size_t>(to)] = 0;
    }
    shard.touched.clear();
    shard.inbox_views.clear();
    shard.active.clear();
    for (auto& bucket : shard.wake_ring) bucket.clear();
    shard.pending_wakes = 0;
    shard.round_messages = 0;
    shard.round_words = 0;
    shard.round_max_words = 0;
  }
  std::fill(active_stamp_.begin(), active_stamp_.end(), 0);
  std::fill(worker_errors_.begin(), worker_errors_.end(), nullptr);

  transport_->begin_run(
      TransportGeometry{workers_, shard_width_, graph_.num_vertices()});
}

void SyncEngine::run_vertex(Protocol& protocol, VertexId v,
                            detail::SendStaging& staging, unsigned worker) {
  const auto vi = static_cast<std::size_t>(v);
  const std::uint32_t length = inbox_len_[vi];
  const std::span<const MessageView> inbox =
      length == 0
          ? std::span<const MessageView>{}
          : std::span<const MessageView>(
                shards_[shard_of(v)].inbox_views.data() + inbox_begin_[vi],
                length);
  Outbox out(*this, staging, v, worker);
  protocol.on_round(v, current_round_, inbox, out);
}

void SyncEngine::execute_shard(Protocol& protocol, unsigned s,
                               unsigned parity, bool use_active) {
  detail::SendStaging& staging = staging_[parity][s];
  staging.clear_round();
  const detail::Shard& shard = shards_[s];
  if (use_active) {
    for (const VertexId v : shard.active) {
      run_vertex(protocol, v, staging, s);
    }
  } else {
    for (VertexId v = shard.begin; v < shard.end; ++v) {
      run_vertex(protocol, v, staging, s);
    }
  }
}

void SyncEngine::ring_insert(detail::Shard& shard, const std::uint64_t target,
                             const VertexId v) {
  const std::uint64_t delta = target - current_round_;
  if (delta >= shard.wake_ring.size()) {
    // Grow the calendar to a power of two covering the delta and rehome
    // the pending entries under the new mask.
    std::size_t size = shard.wake_ring.size();
    while (size <= delta) size *= 2;
    std::vector<std::vector<std::pair<std::uint64_t, VertexId>>> grown(size);
    for (const auto& bucket : shard.wake_ring) {
      for (const auto& entry : bucket) {
        grown[entry.first & (size - 1)].push_back(entry);
      }
    }
    shard.wake_ring = std::move(grown);
  }
  shard.wake_ring[target & (shard.wake_ring.size() - 1)].emplace_back(target,
                                                                      v);
  ++shard.pending_wakes;
}

void SyncEngine::collect_shard(unsigned s, unsigned parity, bool deliver) {
  detail::Shard& shard = shards_[s];

  // The inbox index consumed this round is dead; zero its slots so the
  // no-message default holds for next round.
  for (const VertexId to : shard.touched) {
    inbox_len_[static_cast<std::size_t>(to)] = 0;
  }
  shard.touched.clear();

  if (deliver) {
    // Pass 1 over the slices the transport delivered to this shard:
    // per-receiver counts and this shard's slice of the message metrics
    // (what was RECEIVED — a lossy transport's drops are billed in the
    // fault counters, not here).
    const std::span<const TransportSlice> delivered = transport_->delivery(s);
    std::uint64_t messages = 0;
    std::uint64_t word_total = 0;
    std::size_t max_words = 0;
    for (const TransportSlice& slice : delivered) {
      messages += slice.headers.size();
      for (const detail::MsgHeader& h : slice.headers) {
        word_total += h.length;
        if (h.length > max_words) max_words = h.length;
        std::uint32_t& count = inbox_count_[static_cast<std::size_t>(h.to)];
        if (count == 0) shard.touched.push_back(h.to);
        ++count;
      }
    }
    shard.round_messages = messages;
    shard.round_words = word_total;
    shard.round_max_words = max_words;

    // Pass 2: CSR offsets for the touched receivers only — a quiet round
    // costs O(active + messages), never O(n).
    std::size_t running = 0;
    for (const VertexId to : shard.touched) {
      const auto ti = static_cast<std::size_t>(to);
      inbox_begin_[ti] = running;
      inbox_fill_[ti] = running;
      inbox_len_[ti] = inbox_count_[ti];
      running += inbox_count_[ti];
      inbox_count_[ti] = 0;
    }

    // Pass 3: stable counting-sort scatter by receiver. The transport
    // guarantees scanning its slices in order yields every receiver's
    // inbox in a shard-count-invariant order (the reliable transport's
    // slices are the source buckets in worker order — the serial
    // vertex-order send sequence). Views alias the delivering arenas
    // directly — payload words are never copied again.
    shard.inbox_views.resize(messages);
    for (const TransportSlice& slice : delivered) {
      for (const detail::MsgHeader& h : slice.headers) {
        shard.inbox_views[inbox_fill_[static_cast<std::size_t>(h.to)]++] =
            MessageView{h.from, {slice.words + h.word_begin, h.length}};
      }
    }
  }
  // Elided quiet rounds (!deliver) skip the transport reads outright:
  // nothing was exchanged, so delivery is empty by construction and the
  // round accumulators keep the zeros the roll-up left them with.

  // Wake requests into the shard's calendar — read from the RAW staging
  // buckets, not the transport's delivery: self-wakes are local timers,
  // so a vertex whose expected message was dropped still runs at its
  // scheduled round. Then fire the next round's
  // bucket and build the next active list: owned receivers with mail
  // plus due wakes, deduplicated, in vertex-id order (so execution — and
  // hence every inbox order — matches the run-every-vertex mode). In
  // run-every-vertex mode none of this is ever read, so staged wakes are
  // simply dropped with the rest of the staging.
  if (scheduled_) {
    for (unsigned w = 0; w < workers_; ++w) {
      for (const auto& [target, v] : staging_[parity][w].buckets[s].wakes) {
        ring_insert(shard, target, v);
      }
    }
    const std::uint64_t next = static_cast<std::uint64_t>(current_round_) + 1;
    const std::uint64_t stamp = next + 1;
    shard.active.clear();
    for (const VertexId to : shard.touched) {
      shard.active.push_back(to);
      active_stamp_[static_cast<std::size_t>(to)] = stamp;
    }
    auto& due = shard.wake_ring[next & (shard.wake_ring.size() - 1)];
    for (const auto& [target, v] : due) {
      if (active_stamp_[static_cast<std::size_t>(v)] != stamp) {
        active_stamp_[static_cast<std::size_t>(v)] = stamp;
        shard.active.push_back(v);
      }
    }
    shard.pending_wakes -= due.size();
    due.clear();
    // Vertex-id order keeps execution (and inbox) order identical to the
    // run-every-vertex mode. Dense lists are rebuilt by scanning the
    // owned slice of the stamp array — O(shard), cheaper than sorting a
    // large fraction of it; sparse lists are sorted directly.
    const auto owned =
        static_cast<std::size_t>(shard.end - shard.begin);
    if (shard.active.size() >= owned / 16) {
      shard.active.clear();
      for (VertexId v = shard.begin; v < shard.end; ++v) {
        if (active_stamp_[static_cast<std::size_t>(v)] == stamp) {
          shard.active.push_back(v);
        }
      }
    } else if (!std::is_sorted(shard.active.begin(), shard.active.end())) {
      std::sort(shard.active.begin(), shard.active.end());
    }
  }
}

SimMetrics SyncEngine::run(Protocol& protocol, std::size_t max_rounds) {
  reset(protocol);
  protocol.begin(graph_);
  protocol.begin_workers(workers_);

  const std::size_t round_budget =
      options_.max_rounds == 0 ? max_rounds
                               : std::min(max_rounds, options_.max_rounds);
  const bool lossy = transport_->lossy();
  // Reserve the per-round series up to the effective budget (capped —
  // see kRoundReserveCap) so the round loop never reallocates mid-run;
  // the capacity persists across runs like every other engine buffer.
  const std::size_t reserve_rounds = std::min(round_budget, kRoundReserveCap);
  round_messages_.reserve(reserve_rounds);
  if (lossy) round_faults_.reserve(reserve_rounds);

  // Rounds with workers_ > 1 dispatch their stages on the persistent
  // parked pool — the main thread drives shard 0, the exchange, and the
  // roll-up, exactly as the per-run pool used to, minus the per-run
  // thread spawn/join and the condvar double-barrier per stage.
  RoundPool round_pool(pool_.has_value() ? &*pool_ : nullptr);

  const auto run_stage = [&](unsigned s, bool collect, unsigned parity,
                             bool use_active, bool deliver) {
    try {
      if (collect) {
        collect_shard(s, parity, deliver);
      } else {
        execute_shard(protocol, s, parity, use_active);
      }
    } catch (...) {
      worker_errors_[s] = std::current_exception();
    }
  };

  bool quiescent = false;
  while (current_round_ < round_budget && !protocol.finished()) {
    const bool use_active = scheduled_ && current_round_ > 0;
    std::size_t total = 0;
    if (use_active) {
      std::size_t pending = 0;
      for (const detail::Shard& shard : shards_) {
        total += shard.active.size();
        pending += shard.pending_wakes;
      }
      if (total == 0 && pending == 0 && transport_->pending() == 0) {
        // Quiescent: no inbox, no pending wake, nothing in flight in the
        // transport — no future round can change state, so running to
        // the cap would only burn time.
        quiescent = true;
        break;
      }
    } else {
      total = static_cast<std::size_t>(graph_.num_vertices());
    }
    metrics_.vertex_activations += total;
    // Serial pre-round hook: workers are parked (or not yet dispatched),
    // so the protocol may fold per-worker accumulators and advance any
    // shared round-plan state race-free; round_pool lets it fan bulk
    // fills across the parked workers before the round proper starts.
    protocol.on_round_begin(current_round_, round_pool);

    const auto parity = static_cast<unsigned>(current_round_ & 1);
    // Set after the execute stage: a quiet round — nothing staged,
    // nothing in flight in the transport — skips exchange+deliver
    // outright (and, in the parallel path, usually the collect barrier
    // with it).
    bool deliver = true;
    if (workers_ == 1 || total < 2) {
      // Serial path (also the tiny-round fast path): every shard's
      // staging is cleared, all vertices run into worker slot 0's
      // staging — bucket routing keeps delivery and wake ownership
      // exactly as in the parallel path — and collects run in shard
      // order on this thread.
      for (unsigned w = 1; w < workers_; ++w) {
        staging_[parity][w].clear_round();
      }
      detail::SendStaging& staging = staging_[parity][0];
      staging.clear_round();
      for (unsigned s = 0; s < workers_; ++s) {
        const detail::Shard& shard = shards_[s];
        if (use_active) {
          for (const VertexId v : shard.active) {
            run_vertex(protocol, v, staging, 0);
          }
        } else {
          for (VertexId v = shard.begin; v < shard.end; ++v) {
            run_vertex(protocol, v, staging, 0);
          }
        }
      }
      deliver = !options_.elide_quiet_rounds ||
                detail::staged_message_count(staging_[parity]) > 0 ||
                transport_->pending() > 0;
      if (deliver) transport_->exchange(current_round_, staging_[parity]);
      for (unsigned s = 0; s < workers_; ++s) {
        collect_shard(s, parity, deliver);
      }
    } else {
      pool_->run([&](unsigned s) {
        run_stage(s, /*collect=*/false, parity, use_active, true);
      });
      deliver = !options_.elide_quiet_rounds ||
                detail::staged_message_count(staging_[parity]) > 0 ||
                transport_->pending() > 0;
      if (deliver) {
        // The exchange runs serially between the two stages: workers are
        // parked, so the transport may inspect every staging bucket (and
        // mutate its own delivery buffers) race-free.
        transport_->exchange(current_round_, staging_[parity]);
        pool_->run([&](unsigned s) {
          run_stage(s, /*collect=*/true, parity, use_active, true);
        });
      } else if (total <= kSerialQuietCollect) {
        // Quiet round, small active set: the collect stage is only wake
        // firing and active-list upkeep, so running it inline elides the
        // second barrier entirely.
        for (unsigned s = 0; s < workers_; ++s) {
          run_stage(s, /*collect=*/true, parity, use_active, false);
        }
      } else {
        pool_->run([&](unsigned s) {
          run_stage(s, /*collect=*/true, parity, use_active, false);
        });
      }
      for (std::exception_ptr& error : worker_errors_) {
        if (error) {
          const std::exception_ptr rethrown = error;
          std::fill(worker_errors_.begin(), worker_errors_.end(), nullptr);
          std::rethrow_exception(rethrown);
        }
      }
    }

    // Roll the shard accumulators into the run metrics — O(S) per round
    // on this thread, no shared counters during the round.
    std::uint64_t round_total = 0;
    for (detail::Shard& shard : shards_) {
      round_total += shard.round_messages;
      metrics_.words += shard.round_words;
      if (shard.round_max_words > metrics_.max_message_words) {
        metrics_.max_message_words = shard.round_max_words;
      }
      shard.round_messages = 0;
      shard.round_words = 0;
      shard.round_max_words = 0;
    }
    metrics_.messages += round_total;
    round_messages_.push_back(round_total);

    if (lossy) {
      // Fault accounting only on lossy transports: reliable runs keep
      // their zero-allocation steady state (faults_per_round stays
      // empty) and their bit-identical metrics. A skipped exchange
      // injected nothing, so elided rounds record explicit zeros rather
      // than re-reading the transport's (stale) last-round counters.
      const FaultCounters faults =
          deliver ? transport_->round_faults() : FaultCounters{};
      metrics_.faults += faults;
      round_faults_.push_back(faults);
    }

    ++current_round_;
  }

  metrics_.rounds = current_round_;
  metrics_.messages_per_round = round_messages_;
  metrics_.faults_per_round = round_faults_;
  metrics_.status = protocol.finished() ? RunStatus::kFinished
                    : quiescent        ? RunStatus::kQuiescent
                                       : RunStatus::kRoundBudgetExhausted;
  return metrics_;
}

}  // namespace dsnd
