#include "simulator/engine.hpp"

#include "support/assert.hpp"

namespace dsnd {

void Outbox::send(VertexId to, std::vector<std::uint64_t> words) {
  engine_.deliver(sender_, to, std::move(words));
}

void Outbox::send_to_all_neighbors(std::span<const std::uint64_t> words) {
  for (VertexId to : engine_.graph().neighbors(sender_)) {
    engine_.deliver(sender_, to,
                    std::vector<std::uint64_t>(words.begin(), words.end()));
  }
}

SyncEngine::SyncEngine(const Graph& g) : graph_(g) {
  inboxes_.resize(static_cast<std::size_t>(g.num_vertices()));
  next_inboxes_.resize(static_cast<std::size_t>(g.num_vertices()));
}

void SyncEngine::deliver(VertexId from, VertexId to,
                         std::vector<std::uint64_t> words) {
  DSND_REQUIRE(graph_.has_edge(from, to),
               "protocol tried to send to a non-neighbor");
  metrics_.record_message(current_round_, words.size());
  next_inboxes_[static_cast<std::size_t>(to)].push_back(
      Message{from, std::move(words)});
}

SimMetrics SyncEngine::run(Protocol& protocol, std::size_t max_rounds) {
  metrics_ = SimMetrics{};
  for (auto& box : inboxes_) box.clear();
  for (auto& box : next_inboxes_) box.clear();
  current_round_ = 0;

  protocol.begin(graph_);
  while (!protocol.finished() && current_round_ < max_rounds) {
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      Outbox out(*this, v);
      protocol.on_round(v, current_round_,
                        inboxes_[static_cast<std::size_t>(v)], out);
    }
    // Advance to the next round: what was sent becomes next inboxes.
    for (std::size_t v = 0; v < inboxes_.size(); ++v) {
      inboxes_[v].clear();
      std::swap(inboxes_[v], next_inboxes_[v]);
    }
    ++current_round_;
  }
  metrics_.rounds = current_round_;
  metrics_.messages_per_round.resize(current_round_, 0);
  return metrics_;
}

}  // namespace dsnd
