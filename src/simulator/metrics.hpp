// Cost accounting for the synchronous model: rounds, messages, words.
//
// The CONGEST claims of the paper ("each message consists of O(1) words")
// are verified against max_message_words; the round bounds of Theorems
// 1-3 against rounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dsnd {

struct SimMetrics {
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  /// Largest single message, in 64-bit words (CONGEST width check).
  std::size_t max_message_words = 0;
  /// Messages sent in each round (index = round). Always has exactly
  /// `rounds` entries; quiet rounds are explicit zeros.
  std::vector<std::uint64_t> messages_per_round;
  /// Total on_round() invocations across the run. With active-vertex
  /// scheduling this is how much work the engine actually did; without
  /// it, exactly n * rounds.
  std::uint64_t vertex_activations = 0;

  /// Average messages per round; 0 if no rounds elapsed.
  double avg_messages_per_round() const;

  std::string to_string() const;
};

}  // namespace dsnd
