// Cost accounting for the synchronous model: rounds, messages, words.
//
// The CONGEST claims of the paper ("each message consists of O(1) words")
// are verified against max_message_words; the round bounds of Theorems
// 1-3 against rounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dsnd {

/// How a run() ended. Anything other than the first two is a *named*
/// failure: the engine refuses to hang or silently stop making progress,
/// it tells the caller why it gave up instead.
enum class RunStatus {
  /// The protocol's finished() predicate fired.
  kFinished,
  /// Scheduled mode reached quiescence (no active vertex, no pending
  /// wake, no in-flight transport delivery) before finished().
  kQuiescent,
  /// The round budget ran out first — under a lossy transport this is
  /// the named replacement for a no-progress hang.
  kRoundBudgetExhausted,
};

const char* run_status_name(RunStatus status);

/// Fault events injected by a transport, per round or per run. All
/// zeros on a reliable transport.
struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  // Suppressed messages of crashed vertices: sends of any crashed
  // sender, plus (crash-RECOVERY spans only) deliveries addressed to a
  // vertex while it is down.
  std::uint64_t crashed = 0;
  /// Crash-recovery rejoin events: vertices whose CrashSpan rejoin round
  /// was reached, counted once per vertex per run. A recovery event, not
  /// a fault event — excluded from total(), which keeps counting
  /// injected perturbations only.
  std::uint64_t rejoined = 0;

  std::uint64_t total() const {
    return dropped + delayed + duplicated + crashed;
  }

  FaultCounters& operator+=(const FaultCounters& other) {
    dropped += other.dropped;
    delayed += other.delayed;
    duplicated += other.duplicated;
    crashed += other.crashed;
    rejoined += other.rejoined;
    return *this;
  }
};

struct SimMetrics {
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  /// Largest single message, in 64-bit words (CONGEST width check).
  std::size_t max_message_words = 0;
  /// Messages sent in each round (index = round). Always has exactly
  /// `rounds` entries; quiet rounds are explicit zeros.
  std::vector<std::uint64_t> messages_per_round;
  /// Total on_round() invocations across the run. With active-vertex
  /// scheduling this is how much work the engine actually did; without
  /// it, exactly n * rounds.
  std::uint64_t vertex_activations = 0;

  /// How the run ended (see RunStatus). kQuiescent and kFinished are the
  /// normal outcomes; kRoundBudgetExhausted is the named non-hang
  /// failure a lossy transport can force.
  RunStatus status = RunStatus::kFinished;

  /// Fault events injected by the transport across the whole run (all
  /// zeros on a reliable transport). `messages`/`words` above count what
  /// was DELIVERED, post-faults.
  FaultCounters faults;

  /// Per-round fault counters (index = round). Populated only when the
  /// attached transport is lossy; empty otherwise, so reliable runs keep
  /// their zero-allocation steady state.
  std::vector<FaultCounters> faults_per_round;

  /// Average messages per round; 0 if no rounds elapsed.
  double avg_messages_per_round() const;

  std::string to_string() const;
};

}  // namespace dsnd
