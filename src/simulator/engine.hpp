// Synchronous message-passing simulator (the distributed substrate).
//
// Model: each vertex of the communication graph hosts a processor;
// computation proceeds in synchronous rounds. In every round each
// processor reads the messages its neighbors sent in the previous round,
// updates local state, and sends new messages (to neighbors only — the
// engine enforces adjacency). Message payloads are sequences of 64-bit
// words; the engine records per-message widths so a protocol's CONGEST
// compliance (O(1) words per message) can be asserted by tests/benches.
//
// Implementation (see docs/ARCHITECTURE.md for the shard diagram): the
// vertex set is split into `threads`-many contiguous SHARDS, each owned
// by one worker. A round has two parallel stages:
//
//   stage 1 (execute): worker w runs the scheduled vertices of shard w.
//     Sends are routed owner-computes at stage time: worker w keeps one
//     staging bucket per destination shard (headers + flat payload
//     words), so a send appends to bucket (w -> shard_of(to)).
//   stage 2 (exchange + deliver): the round boundary hands the staged
//     buckets to the engine's Transport (see simulator/transport.hpp),
//     which decides what each destination shard receives — the default
//     ReliableTransport returns the bucket slices untouched, a
//     FaultyTransport may drop/delay/duplicate/reorder them. Worker t
//     then counting-sorts the headers delivered to shard t — a
//     fixed-size all-to-all of slices, no global sort, no serial merge —
//     into shard t's CSR inbox index. Inbox views point straight into
//     the delivering arenas (zero payload copies on the reliable path);
//     arenas are double-buffered by round parity so the views stay valid
//     while the next round stages into the other parity.
//
// Iterating source buckets in worker order reproduces the serial
// vertex-order send sequence (shards are ascending contiguous id
// ranges), so results and metrics are bit-identical for every thread /
// shard count. All buffers persist across rounds and run()s: steady-
// state rounds perform zero heap allocations.
//
// Scheduling: by default only vertices with a nonempty inbox or a
// pending self-wake (Outbox::wake_self_in) execute in a round — quiet
// vertices cost nothing. Every vertex runs in round 0 so protocols can
// act spontaneously once and set up their wake chains. Protocols whose
// vertices act on a round timetable without messages or self-wakes
// override Protocol::needs_spontaneous_rounds() to opt out, and then
// every vertex runs every round. When a scheduled run reaches
// quiescence — no active vertex and no pending wake — the engine stops
// early: no future round could change state. Active lists, wake
// calendars, and quiescence counts are all shard-local; only the O(S)
// per-round roll-up runs on the driving thread.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <exception>
#include <initializer_list>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "simulator/metrics.hpp"
#include "simulator/transport.hpp"
#include "support/worker_pool.hpp"

namespace dsnd {

/// A delivered message: sender plus a view of the payload words. The
/// span points into the engine's staging arenas and is valid only for
/// the duration of the on_round() call it was passed to; protocols that
/// need a payload later must copy the words.
struct MessageView {
  VertexId from = -1;
  std::span<const std::uint64_t> words;
};

/// Engine knobs. The default is deterministic single-threaded execution
/// with active-vertex scheduling.
struct EngineOptions {
  /// When true (default), only vertices with a nonempty inbox or a due
  /// self-wake run each round (unless the protocol opts out via
  /// Protocol::needs_spontaneous_rounds). When false, every vertex runs
  /// every round.
  bool active_scheduling = true;

  /// Worker threads for vertex execution — also the shard count: the
  /// vertex set is split into this many contiguous ownership ranges.
  /// 1 = serial (default); 0 = hardware concurrency. Any value produces
  /// identical results.
  unsigned threads = 1;

  /// Upper bound on rounds per run(), applied on top of the cap passed
  /// to run(): the effective budget is the smaller of the two. 0 (the
  /// default) defers entirely to the run() argument. When the budget
  /// runs out before finished()/quiescence the run ends with the named
  /// RunStatus::kRoundBudgetExhausted instead of hanging — essential
  /// under lossy transports, where a dropped message can otherwise stall
  /// a protocol that polls forever.
  std::size_t max_rounds = 0;

  /// The transport backing the exchange+deliver stage. Borrowed, not
  /// owned; must outlive the engine's runs. nullptr (the default) uses
  /// an engine-owned ReliableTransport — today's in-process bucket
  /// exchange, bit for bit.
  Transport* transport = nullptr;

  /// When true (default), rounds in which no shard staged a cross-shard
  /// message and the transport holds nothing in flight
  /// (Transport::pending() == 0) skip the exchange+deliver stage
  /// entirely — no transport call, no delivery passes, no collect
  /// barrier; only wakes and active lists are updated. Results and
  /// metrics are identical either way (such a round delivers zero
  /// messages by construction); the knob exists for A/B benchmarking
  /// and for bisecting, not for correctness.
  bool elide_quiet_rounds = true;
};

namespace detail {

/// Shard-local delivery and scheduling state, owned by one worker and
/// cache-line padded so neighboring shards never share a line.
struct alignas(64) Shard {
  VertexId begin = 0;  // owned vertex range [begin, end)
  VertexId end = 0;

  // This round's inboxes for owned receivers: CSR over inbox_views,
  // payload spans into the source buckets.
  std::vector<MessageView> inbox_views;
  std::vector<VertexId> touched;  // owned receivers with mail

  // Active-vertex scheduling: next round's owned active list and the
  // shard's wake calendar (power-of-two ring keyed by target round).
  std::vector<VertexId> active;
  std::vector<std::vector<std::pair<std::uint64_t, VertexId>>> wake_ring;
  std::size_t pending_wakes = 0;

  // Per-round accumulators, rolled up by the driving thread at the end
  // of stage 2 — no cross-core contention during the round.
  std::uint64_t round_messages = 0;
  std::uint64_t round_words = 0;
  std::size_t round_max_words = 0;
};

}  // namespace detail

class SyncEngine;

/// Per-vertex send interface handed to Protocol::on_round.
class Outbox {
 public:
  /// Queues a message from the current vertex to neighbor `to` for
  /// delivery next round. Throws if `to` is not adjacent to the sender.
  /// The payload is copied into the engine's arena before returning.
  void send(VertexId to, std::span<const std::uint64_t> words);

  void send(VertexId to, std::initializer_list<std::uint64_t> words) {
    send(to, std::span<const std::uint64_t>(words.begin(), words.size()));
  }

  /// Queues the same payload to every neighbor of the current vertex.
  /// The payload words are stored once per destination shard touched and
  /// shared by all copies addressed to that shard.
  void send_to_all_neighbors(std::span<const std::uint64_t> words);

  void send_to_all_neighbors(std::initializer_list<std::uint64_t> words) {
    send_to_all_neighbors(
        std::span<const std::uint64_t>(words.begin(), words.size()));
  }

  /// Asks the engine to run this vertex again `rounds` rounds from now
  /// (>= 1) even if its inbox is empty. The active-scheduling analogue of
  /// spontaneous action: a protocol that must act at a future step of its
  /// timetable schedules the wake instead of running every round.
  void wake_self_in(std::size_t rounds);

  /// Index of the worker executing this vertex, < the count announced by
  /// Protocol::begin_workers. Protocols index per-worker accumulator
  /// slots with it instead of sharing atomic counters across cores.
  unsigned worker() const { return worker_; }

 private:
  friend class SyncEngine;
  Outbox(SyncEngine& engine, detail::SendStaging& staging, VertexId sender,
         unsigned worker)
      : engine_(engine), staging_(staging), sender_(sender),
        worker_(worker) {}

  /// Adjacency check: a monotone cursor over the sorted neighbor row
  /// makes in-order send sequences O(1) amortized per send; out-of-order
  /// sends fall back to binary search.
  bool is_neighbor(VertexId to);

  /// The neighbor row is fetched on first use: many activations only
  /// read their inbox or schedule a wake and never pay for the lookup.
  void ensure_neighbors();

  SyncEngine& engine_;
  detail::SendStaging& staging_;
  VertexId sender_;
  unsigned worker_;
  std::span<const VertexId> neighbors_;
  std::size_t cursor_ = 0;
  bool neighbors_fetched_ = false;
};

/// Chunk-parallel helper handed to Protocol::on_round_begin, backed by
/// the engine's parked worker pool. Lets a protocol's serial pre-round
/// hook fan a bulk data-parallel fill (e.g. the carving protocol's
/// batched radius sampling) across the engine's workers without owning
/// threads of its own.
class RoundPool {
 public:
  explicit RoundPool(WorkerPool* pool) : pool_(pool) {}

  unsigned workers() const { return pool_ != nullptr ? pool_->workers() : 1; }

  /// Splits [0, count) into one contiguous chunk per worker and runs
  /// fn(chunk_begin, chunk_end, worker) concurrently — worker 0 on the
  /// calling thread. Small counts run as one serial chunk (the barrier
  /// costs more than the work). Chunks are disjoint, so per-index writes
  /// need no synchronization; a per-chunk fold combined with an
  /// associative + commutative operator (max, |=, +) on the caller's
  /// thread afterwards is bit-identical for every worker count.
  template <typename F>
  void for_chunks(std::size_t count, F&& fn) const {
    const unsigned workers_now = workers();
    if (workers_now <= 1 || count < kMinParallelCount) {
      if (count > 0) fn(std::size_t{0}, count, 0u);
      return;
    }
    const std::size_t chunk = (count + workers_now - 1) / workers_now;
    pool_->run([&](unsigned w) {
      const std::size_t begin = std::min(count, w * chunk);
      const std::size_t end = std::min(count, begin + chunk);
      if (begin < end) fn(begin, end, w);
    });
  }

 private:
  // Below this, one cache-warm serial pass beats waking the pool.
  static constexpr std::size_t kMinParallelCount = 2048;

  WorkerPool* pool_;
};

/// A distributed algorithm. The engine drives all vertices through
/// synchronous rounds until finished() or a round cap.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once before the first round.
  virtual void begin(const Graph& g) = 0;

  /// Called once per run() after begin() with the number of workers that
  /// will execute rounds. Protocols that keep aggregate counters size
  /// one accumulator slot per worker here (indexed by Outbox::worker(),
  /// summed when read) instead of sharing atomics across cores.
  virtual void begin_workers(unsigned workers) { (void)workers; }

  /// Called once on the driving thread immediately before each round
  /// that will execute (after the quiescence check, before any
  /// on_round), so per-worker accumulators from the previous round may
  /// be folded and shared round-plan state advanced without
  /// synchronization — the hook for protocols whose global round
  /// timetable depends on aggregated state (e.g. the carving protocol's
  /// Las Vegas phase replay, which folds the overflow bit sampled last
  /// round to decide whether the current attempt will be aborted).
  /// Rounds it observes are consecutive; it is never called for a round
  /// the engine skips (quiescence, finished()). `pool` fans bulk
  /// data-parallel work (array fills, batched sampling) across the
  /// engine's parked workers — see RoundPool::for_chunks for the
  /// determinism contract. Default: no-op.
  virtual void on_round_begin(std::size_t round, RoundPool& pool) {
    (void)round;
    (void)pool;
  }

  /// Called per round for each scheduled vertex with the messages
  /// delivered to it (sent by neighbors in the previous round).
  virtual void on_round(VertexId v, std::size_t round,
                        std::span<const MessageView> inbox, Outbox& out) = 0;

  /// Checked after every round; true stops the engine. A global predicate
  /// is a simulation convenience (real deployments use termination
  /// detection); it never feeds information back into on_round decisions.
  /// Always invoked on the driving thread between rounds, so per-worker
  /// accumulators may be summed without synchronization.
  virtual bool finished() const = 0;

  /// Scheduling opt-out. Protocols whose vertices act spontaneously on a
  /// round timetable — sending with an empty inbox at rounds they never
  /// scheduled a wake for — return true, and the engine then runs every
  /// vertex every round regardless of EngineOptions::active_scheduling.
  virtual bool needs_spontaneous_rounds() const { return false; }
};

class SyncEngine {
 public:
  explicit SyncEngine(const Graph& g, EngineOptions options = {});

  /// Runs `protocol` until finished(), quiescence (scheduled mode only),
  /// or max_rounds; returns the metrics. Reusable: a second run() starts
  /// fresh but reuses all internal buffer capacity.
  SimMetrics run(Protocol& protocol, std::size_t max_rounds);

  const Graph& graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }

  /// The resolved transport backing the exchange stage: the borrowed
  /// EngineOptions::transport, or the engine-owned reliable default.
  const Transport& transport() const { return *transport_; }

  /// Resolved worker/shard count (threads = 0 resolves to the hardware
  /// concurrency at construction).
  unsigned workers() const { return workers_; }

 private:
  friend class Outbox;

  unsigned shard_of(VertexId v) const {
    return static_cast<unsigned>(v / shard_width_);
  }

  void reset(Protocol& protocol);
  void run_vertex(Protocol& protocol, VertexId v,
                  detail::SendStaging& staging, unsigned worker);
  /// Stage 1 for one shard: clear this parity's staging and execute the
  /// shard's scheduled vertices.
  void execute_shard(Protocol& protocol, unsigned s, unsigned parity,
                     bool use_active);
  /// Stage 2 for one shard: counting-sort what the transport delivered
  /// to it into its CSR inbox, fire due wakes (read from the raw staging
  /// buckets, never the transport — self-wakes are local timers and
  /// survive any fault plan), build its next active list. `deliver` is
  /// false on elided quiet rounds: the transport was not exchanged, so
  /// the delivery passes are skipped and only wakes/active lists run.
  void collect_shard(unsigned s, unsigned parity, bool deliver);
  void ring_insert(detail::Shard& shard, std::uint64_t target, VertexId v);

  const Graph& graph_;
  const EngineOptions options_;
  // The resolved transport: options_.transport, or the engine-owned
  // reliable default. Exchange runs serially on the driving thread;
  // delivery() is read in parallel by the collect workers.
  Transport* transport_ = nullptr;
  ReliableTransport default_transport_;
  unsigned workers_ = 1;
  // The persistent worker pool (workers_ > 1 only): spawned once at
  // construction and parked between stages, rounds, and runs, so warm
  // re-runs pay zero thread setup.
  std::optional<WorkerPool> pool_;
  VertexId shard_width_ = 1;  // ceil(n / workers): shard s owns
                              // [s*width, min((s+1)*width, n))
  bool scheduled_ = false;
  std::size_t current_round_ = 0;

  // Double-buffered staging, indexed [round parity][source worker]. The
  // parity written this round backs next round's inbox views; the other
  // parity's views were consumed last round and its buckets are cleared
  // when stage 1 next writes them.
  std::array<std::vector<detail::SendStaging>, 2> staging_;
  std::vector<detail::Shard> shards_;
  std::vector<std::exception_ptr> worker_errors_;

  // Per-vertex delivery slots, each touched only by its owner's worker.
  // inbox_begin_/inbox_len_ index the owner shard's inbox_views and are
  // valid for the receivers in that shard's touched list; inbox_len_ is
  // zero elsewhere.
  std::vector<std::size_t> inbox_begin_;
  std::vector<std::size_t> inbox_fill_;
  std::vector<std::uint32_t> inbox_len_;
  std::vector<std::uint32_t> inbox_count_;
  std::vector<std::uint64_t> active_stamp_;

  SimMetrics metrics_;
  // Per-round series kept as persistent members (copied into metrics_ at
  // run end) so their capacity survives across runs and the round loop
  // never reallocates mid-run once warmed.
  std::vector<std::uint64_t> round_messages_;
  std::vector<FaultCounters> round_faults_;
};

}  // namespace dsnd
