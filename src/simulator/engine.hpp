// Synchronous message-passing simulator (the distributed substrate).
//
// Model: each vertex of the communication graph hosts a processor;
// computation proceeds in synchronous rounds. In every round each
// processor reads the messages its neighbors sent in the previous round,
// updates local state, and sends new messages (to neighbors only — the
// engine enforces adjacency). Message payloads are sequences of 64-bit
// words; the engine records per-message widths so a protocol's CONGEST
// compliance (O(1) words per message) can be asserted by tests/benches.
//
// Implementation (see docs/ARCHITECTURE.md for the arena diagram): a
// round performs zero per-message heap allocations. Sends append the
// payload words to a flat, reusable word arena and a fixed-size header
// to a staging list; at the round boundary the headers are counting-
// sorted by receiver into a CSR index over the arena, so each vertex's
// inbox is a contiguous span of `MessageView`s. All buffers are engine
// members whose capacity persists across rounds (and across run()s).
//
// Scheduling: by default only vertices with a nonempty inbox or a
// pending self-wake (Outbox::wake_self_in) execute in a round — quiet
// vertices cost nothing. Every vertex runs in round 0 so protocols can
// act spontaneously once and set up their wake chains. Protocols whose
// vertices act on a round timetable without messages or self-wakes
// override Protocol::needs_spontaneous_rounds() to opt out, and then
// every vertex runs every round (the pre-arena behavior). When a
// scheduled run reaches quiescence — no active vertex and no pending
// wake — the engine stops early: no future round could change state.
//
// Parallelism: EngineOptions::threads > 1 executes the vertices of a
// round concurrently. Protocols must not share mutable state between
// vertices (aggregate counters must be atomic): the engine calls
// on_round() for every vertex with only that vertex's inbox, and the
// outputs become visible to neighbors in the *next* round, exactly as in
// the standard synchronous model. Each worker stages its sends privately
// and the engine merges the staging buffers in vertex order, so results
// and metrics are bit-identical for any thread count. The default is
// single-threaded.
#pragma once

#include <cstdint>
#include <exception>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "simulator/metrics.hpp"

namespace dsnd {

/// A delivered message: sender plus a view of the payload words. The
/// span points into the engine's round arena and is valid only for the
/// duration of the on_round() call it was passed to; protocols that need
/// a payload later must copy the words.
struct MessageView {
  VertexId from = -1;
  std::span<const std::uint64_t> words;
};

/// Engine knobs. The default is deterministic single-threaded execution
/// with active-vertex scheduling.
struct EngineOptions {
  /// When true (default), only vertices with a nonempty inbox or a due
  /// self-wake run each round (unless the protocol opts out via
  /// Protocol::needs_spontaneous_rounds). When false, every vertex runs
  /// every round.
  bool active_scheduling = true;

  /// Worker threads for vertex execution. 1 = serial (default);
  /// 0 = hardware concurrency. Any value produces identical results.
  unsigned threads = 1;
};

namespace detail {

/// One staged send: receiver, sender, and the payload's location in the
/// staging word arena. 64-bit word offsets keep >4G-word rounds valid.
struct MsgHeader {
  VertexId from = -1;
  VertexId to = -1;
  std::uint32_t length = 0;
  std::size_t word_begin = 0;
};

/// Per-worker send buffer: headers + flat payload words + wake requests.
/// Capacity persists across rounds, so steady-state rounds allocate
/// nothing. With threads > 1 each worker owns one and the engine merges
/// them in vertex order at the round boundary.
struct SendStaging {
  std::vector<MsgHeader> headers;
  std::vector<std::uint64_t> words;
  std::vector<std::pair<std::uint64_t, VertexId>> wakes;  // (round, vertex)
  std::exception_ptr error;

  void clear_round() {
    headers.clear();
    words.clear();
    wakes.clear();
    error = nullptr;
  }
};

}  // namespace detail

class SyncEngine;

/// Per-vertex send interface handed to Protocol::on_round.
class Outbox {
 public:
  /// Queues a message from the current vertex to neighbor `to` for
  /// delivery next round. Throws if `to` is not adjacent to the sender.
  /// The payload is copied into the engine's arena before returning.
  void send(VertexId to, std::span<const std::uint64_t> words);

  void send(VertexId to, std::initializer_list<std::uint64_t> words) {
    send(to, std::span<const std::uint64_t>(words.begin(), words.size()));
  }

  /// Queues the same payload to every neighbor of the current vertex.
  /// The payload words are stored once and shared by all copies.
  void send_to_all_neighbors(std::span<const std::uint64_t> words);

  void send_to_all_neighbors(std::initializer_list<std::uint64_t> words) {
    send_to_all_neighbors(
        std::span<const std::uint64_t>(words.begin(), words.size()));
  }

  /// Asks the engine to run this vertex again `rounds` rounds from now
  /// (>= 1) even if its inbox is empty. The active-scheduling analogue of
  /// spontaneous action: a protocol that must act at a future step of its
  /// timetable schedules the wake instead of running every round.
  void wake_self_in(std::size_t rounds);

 private:
  friend class SyncEngine;
  Outbox(SyncEngine& engine, detail::SendStaging& staging, VertexId sender)
      : engine_(engine), staging_(staging), sender_(sender) {}

  /// Adjacency check: a monotone cursor over the sorted neighbor row
  /// makes in-order send sequences O(1) amortized per send; out-of-order
  /// sends fall back to binary search.
  bool is_neighbor(VertexId to);

  /// The neighbor row is fetched on first use: many activations only
  /// read their inbox or schedule a wake and never pay for the lookup.
  void ensure_neighbors();

  SyncEngine& engine_;
  detail::SendStaging& staging_;
  VertexId sender_;
  std::span<const VertexId> neighbors_;
  std::size_t cursor_ = 0;
  bool neighbors_fetched_ = false;
};

/// A distributed algorithm. The engine drives all vertices through
/// synchronous rounds until finished() or a round cap.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once before the first round.
  virtual void begin(const Graph& g) = 0;

  /// Called per round for each scheduled vertex with the messages
  /// delivered to it (sent by neighbors in the previous round).
  virtual void on_round(VertexId v, std::size_t round,
                        std::span<const MessageView> inbox, Outbox& out) = 0;

  /// Checked after every round; true stops the engine. A global predicate
  /// is a simulation convenience (real deployments use termination
  /// detection); it never feeds information back into on_round decisions.
  virtual bool finished() const = 0;

  /// Scheduling opt-out. Protocols whose vertices act spontaneously on a
  /// round timetable — sending with an empty inbox at rounds they never
  /// scheduled a wake for — return true, and the engine then runs every
  /// vertex every round regardless of EngineOptions::active_scheduling.
  virtual bool needs_spontaneous_rounds() const { return false; }
};

class SyncEngine {
 public:
  explicit SyncEngine(const Graph& g, EngineOptions options = {});

  /// Runs `protocol` until finished(), quiescence (scheduled mode only),
  /// or max_rounds; returns the metrics. Reusable: a second run() starts
  /// fresh but reuses all internal buffer capacity.
  SimMetrics run(Protocol& protocol, std::size_t max_rounds);

  const Graph& graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }

 private:
  friend class Outbox;

  void reset(Protocol& protocol);
  void run_vertex(Protocol& protocol, VertexId v,
                  detail::SendStaging& staging);
  /// Round boundary: merges the staging buffers into the next round's
  /// CSR inbox index, fires due wakes, and builds the next active list.
  void collect_round();
  void ring_insert(std::uint64_t target, VertexId v);

  const Graph& graph_;
  const EngineOptions options_;
  unsigned workers_ = 1;
  bool scheduled_ = false;
  std::size_t current_round_ = 0;

  std::vector<detail::SendStaging> staging_;
  std::vector<std::size_t> staging_word_counts_;

  // Current round's inboxes: CSR over inbox_views_, payloads in the
  // words_live_ arena. inbox_begin_/inbox_len_ are valid for the
  // receivers listed in touched_; inbox_len_ is zero elsewhere.
  std::vector<std::uint64_t> words_live_;
  std::vector<std::uint64_t> words_merge_;
  std::vector<MessageView> inbox_views_;
  std::vector<std::size_t> inbox_begin_;
  std::vector<std::size_t> inbox_fill_;
  std::vector<std::uint32_t> inbox_len_;
  std::vector<std::uint32_t> inbox_count_;
  std::vector<VertexId> touched_;

  // Active-vertex scheduling state. wake_ring_ is a power-of-two
  // calendar of (target round, vertex) pairs; active_stamp_ deduplicates
  // the next active list.
  std::vector<VertexId> all_vertices_;
  std::vector<VertexId> active_;
  std::vector<std::uint64_t> active_stamp_;
  std::vector<std::vector<std::pair<std::uint64_t, VertexId>>> wake_ring_;
  std::size_t pending_wakes_ = 0;

  SimMetrics metrics_;
  std::vector<std::uint64_t> round_messages_;
};

}  // namespace dsnd
