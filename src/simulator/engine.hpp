// Synchronous message-passing simulator (the distributed substrate).
//
// Model: each vertex of the communication graph hosts a processor;
// computation proceeds in synchronous rounds. In every round each
// processor reads the messages its neighbors sent in the previous round,
// updates local state, and sends new messages (to neighbors only — the
// engine enforces adjacency). Message payloads are sequences of 64-bit
// words; the engine records per-message widths so a protocol's CONGEST
// compliance (O(1) words per message) can be asserted by tests/benches.
//
// Protocols must not share mutable state between vertices: the engine
// calls on_round() for every vertex with only that vertex's inbox, and
// the outputs become visible to neighbors in the *next* round, exactly as
// in the standard synchronous model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "simulator/metrics.hpp"

namespace dsnd {

struct Message {
  VertexId from = -1;
  std::vector<std::uint64_t> words;
};

class SyncEngine;

/// Per-vertex send interface handed to Protocol::on_round.
class Outbox {
 public:
  /// Queues a message from the current vertex to neighbor `to` for
  /// delivery next round. Throws if `to` is not adjacent to the sender.
  void send(VertexId to, std::vector<std::uint64_t> words);

  /// Queues the same payload to every neighbor of the current vertex.
  void send_to_all_neighbors(std::span<const std::uint64_t> words);

 private:
  friend class SyncEngine;
  Outbox(SyncEngine& engine, VertexId sender)
      : engine_(engine), sender_(sender) {}

  SyncEngine& engine_;
  VertexId sender_;
};

/// A distributed algorithm. The engine drives all vertices through
/// synchronous rounds until finished() or a round cap.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once before the first round.
  virtual void begin(const Graph& g) = 0;

  /// Called once per vertex per round with the messages delivered to this
  /// vertex (sent by neighbors in the previous round).
  virtual void on_round(VertexId v, std::size_t round,
                        std::span<const Message> inbox, Outbox& out) = 0;

  /// Checked after every round; true stops the engine. A global predicate
  /// is a simulation convenience (real deployments use termination
  /// detection); it never feeds information back into on_round decisions.
  virtual bool finished() const = 0;
};

class SyncEngine {
 public:
  explicit SyncEngine(const Graph& g);

  /// Runs `protocol` until finished() or max_rounds; returns the metrics.
  SimMetrics run(Protocol& protocol, std::size_t max_rounds);

  const Graph& graph() const { return graph_; }

 private:
  friend class Outbox;
  void deliver(VertexId from, VertexId to, std::vector<std::uint64_t> words);

  const Graph& graph_;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::vector<Message>> next_inboxes_;
  SimMetrics metrics_;
  std::size_t current_round_ = 0;
};

}  // namespace dsnd
