// The transport seam behind the engine's exchange+deliver stage.
//
// A round of the sharded engine has two halves: workers stage sends into
// per-(source worker, destination shard) buckets, and the round boundary
// hands each destination shard the bucket slices addressed to it. The
// Transport interface owns that hand-off: the engine stages into the
// wire-format structs below and then asks the transport what each shard
// actually RECEIVES this round. Swapping the transport swaps the network
// without touching the engine, the protocols, or the staging path — the
// seam the future socket/MPI backend plugs into (ROADMAP: multi-process
// backend).
//
//   ReliableTransport   delivers exactly what was staged: its slices
//                       alias the staging buckets directly (zero copies,
//                       zero allocations in steady state), reproducing
//                       the pre-seam engine bit for bit.
//   FaultyTransport     wraps any inner transport and applies a
//                       deterministic, seeded FaultPlan to whatever the
//                       inner transport delivers: per-message drop,
//                       duplication, bounded delay (a small calendar of
//                       copied payloads), within-round reordering, and
//                       crash-stop vertex ranges that go silent from a
//                       configured round.
//
// Determinism contract: every fault decision is drawn from a stream
// keyed by (fault_seed, round, from, to, occurrence) — the stream-split
// scheme the generators and the carving samplers already use — and the
// per-receiver delivery order is defined in shard-count-invariant terms
// (sender serial order; due-delayed before fresh; reorder = stable sink
// to the back). A chaos run is therefore bit-identical across
// thread/shard counts, exactly like a reliable run.
//
// Self-wakes (Outbox::wake_self_in) are local timers, not network
// traffic: they ride in the staging buckets for ownership routing but
// are read by the engine directly, never through the transport — a
// vertex whose expected message was dropped still gets its scheduled
// wake (no permanently-asleep vertices under loss).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "simulator/metrics.hpp"

namespace dsnd {

namespace detail {

/// One staged send: receiver, sender, and the payload's location in the
/// bucket's word arena. 64-bit word offsets keep >4G-word rounds valid.
struct MsgHeader {
  VertexId from = -1;
  VertexId to = -1;
  std::uint32_t length = 0;
  std::size_t word_begin = 0;
};

/// One (source worker -> destination shard) staging bucket: headers,
/// flat payload words, and the wake requests of senders owned by the
/// destination shard. Capacity persists across rounds.
struct ShardBucket {
  std::vector<MsgHeader> headers;
  std::vector<std::uint64_t> words;
  std::vector<std::pair<std::uint64_t, VertexId>> wakes;  // (round, vertex)

  void clear() {
    headers.clear();
    words.clear();
    wakes.clear();
  }
};

/// Per-worker send staging for one round parity: one bucket per
/// destination shard. With threads > 1 each worker owns one; the round
/// boundary exchanges bucket slices instead of merging arenas.
struct SendStaging {
  std::vector<ShardBucket> buckets;

  void clear_round() {
    for (ShardBucket& bucket : buckets) bucket.clear();
  }
};

/// Total headers staged across every (worker, shard) bucket — the
/// engine's quiet-round predicate (O(workers^2) bucket-size sums, no
/// header scan).
std::size_t staged_message_count(std::span<const SendStaging> staging);

}  // namespace detail

/// One contiguous run of delivered messages: headers plus the word arena
/// their word_begin offsets index into. A shard's inbox is built by
/// scanning its slices in order; payload views alias `words` directly,
/// so the transport must keep the arena alive until the NEXT round's
/// exchange (the engine's double-buffering contract).
struct TransportSlice {
  std::span<const detail::MsgHeader> headers;
  const std::uint64_t* words = nullptr;
};

/// Engine geometry handed to Transport::begin_run: how vertex ids map to
/// destination shards this run. shard_of(v) = v / shard_width.
struct TransportGeometry {
  unsigned shards = 1;
  VertexId shard_width = 1;
  VertexId num_vertices = 0;

  unsigned shard_of(VertexId v) const {
    return static_cast<unsigned>(v / shard_width);
  }
};

/// The exchange+deliver stage as an interface. Lifecycle per engine
/// run(): begin_run once, then per round one serial exchange() (between
/// the execute and collect stages, on the driving thread) followed by
/// delivery(s) calls from the per-shard collect workers (read-only,
/// safe in parallel).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Called once per engine run() before the first round; resets any
  /// carried state (delay calendars, counters) and sizes per-shard
  /// structures.
  virtual void begin_run(const TransportGeometry& geometry) = 0;

  /// Hands the transport this round's staged sends: one SendStaging per
  /// source worker (the current parity's). The transport prepares what
  /// each destination shard will receive. Serial, driving thread only.
  ///
  /// Elision contract: on a round where no worker staged a message AND
  /// pending() == 0, the engine MAY skip exchange() — and every
  /// delivery() read — entirely (the quiet-round fast path). Such a
  /// round delivers nothing by construction for any transport whose
  /// traffic originates from the staged sends; a transport whose
  /// deliveries can arrive from elsewhere (e.g. a process-boundary
  /// backend receiving remote slices) must account for them in
  /// pending(), which both blocks the elision and the engine's
  /// quiescence detection. round_faults() is NOT queried for a skipped
  /// round — the engine records explicit zeros.
  virtual void exchange(std::size_t round,
                        std::span<detail::SendStaging> staging) = 0;

  /// The slices destination shard `s` receives this round, in delivery
  /// order. Scanning them in order yields every receiver's inbox in its
  /// final order. Valid until the next exchange() of the same parity.
  virtual std::span<const TransportSlice> delivery(unsigned s) const = 0;

  /// Messages accepted but not yet delivered (in-flight delays). The
  /// engine must not declare quiescence while this is nonzero: a pending
  /// delivery can still change protocol state.
  virtual std::size_t pending() const { return 0; }

  /// True when this transport can deliver something other than exactly
  /// what was staged. Gates the carve layer's verify-and-recover loop
  /// and relaxes its exhaustion invariant into a named failure status.
  virtual bool lossy() const { return false; }

  /// Fault events injected by the last exchange() (zeros for fault-free
  /// transports). The engine rolls these into SimMetrics per round.
  virtual FaultCounters round_faults() const { return {}; }
};

/// Delivers exactly what was staged: slice (w, s) aliases staging bucket
/// (w, s), in source-worker order — the serial send order, which is what
/// makes results bit-identical for every shard count. Zero payload
/// copies, zero steady-state allocations.
class ReliableTransport final : public Transport {
 public:
  void begin_run(const TransportGeometry& geometry) override;
  void exchange(std::size_t round,
                std::span<detail::SendStaging> staging) override;
  std::span<const TransportSlice> delivery(unsigned s) const override;

 private:
  unsigned shards_ = 1;
  // slices_[s] holds one slice per source worker, rewritten in place
  // each exchange (capacity persists across rounds and runs).
  std::vector<std::vector<TransportSlice>> slices_;
};

/// Rejoin sentinel for CrashSpan: the crashed range never comes back
/// (the PR 7 crash-STOP semantics).
inline constexpr std::uint64_t kNeverRejoins = ~std::uint64_t{0};

/// A vertex id range [begin, end) that crashes at `round`. Two regimes:
///
///   rejoin == kNeverRejoins (default): crash-STOP, the legacy model.
///     From `round` on the transport suppresses every message these
///     vertices SEND (fail-silent; the simulated processor still runs
///     locally, its traffic just never leaves the NIC). Inbound traffic
///     still arrives — the node is a black hole only outward.
///   rejoin < kNeverRejoins: crash-RECOVERY. The range is DOWN for
///     rounds [round, rejoin): both its sends and the deliveries
///     addressed to it (fresh and due-delayed alike) are suppressed and
///     billed as `crashed`. From `rejoin` on it participates normally
///     again, and the transport counts one `rejoined` event per vertex.
///     The simulation keeps the vertex's local state across the outage —
///     the abstraction a real deployment earns by reloading the
///     phase-boundary checkpoint on rejoin (decomposition/checkpoint.hpp)
///     — and self-wakes never route through the transport, so the wake
///     calendar stays in sync by construction.
///
/// Ranges rather than shard ids keep the plan independent of the
/// engine's shard count. Spans overlapping on a vertex merge to their
/// hull: crash = min, rejoin = max (any crash-stop span pins the vertex
/// down forever).
struct CrashSpan {
  VertexId begin = 0;
  VertexId end = 0;  // exclusive
  std::uint64_t round = 0;
  std::uint64_t rejoin = kNeverRejoins;  // exclusive end of the outage
};

/// One surgically targeted drop: the message(s) from `from` to `to`
/// staged in round `round` vanish. The deterministic scalpel for
/// regression tests (e.g. the wake-calendar-under-loss test) where a
/// rate would be a shotgun.
struct EdgeDrop {
  std::uint64_t round = 0;
  VertexId from = -1;
  VertexId to = -1;
};

/// A deterministic fault schedule. Every per-message decision is drawn
/// from the stream keyed by (seed, round, from, to, occurrence), so the
/// same plan on the same protocol traffic injects the same faults
/// regardless of thread/shard count.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Probability a message is dropped outright.
  double drop_rate = 0.0;
  /// Probability a message is delivered twice (copies scheduled
  /// independently, so one copy may be delayed while the other is not).
  double duplicate_rate = 0.0;
  /// Probability a message copy is delayed by 1..max_delay_rounds extra
  /// rounds (uniform), delivered late via the transport's calendar.
  double delay_rate = 0.0;
  std::uint32_t max_delay_rounds = 1;
  /// Probability a message copy is reordered: marked copies sink,
  /// stably, behind every unmarked message of the same round's delivery.
  double reorder_rate = 0.0;
  /// Crash-stop schedule (fail-silent senders from a given round).
  std::vector<CrashSpan> crashes;
  /// Targeted single-message drops, applied before any random decision.
  std::vector<EdgeDrop> targeted_drops;

  /// True when the plan can actually perturb delivery. An all-zero plan
  /// makes FaultyTransport a bit-exact (if copying) relay.
  bool any() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0 ||
           reorder_rate > 0.0 || !crashes.empty() || !targeted_drops.empty();
  }
};

/// Applies a FaultPlan to whatever an inner transport delivers. The
/// default inner transport is an owned ReliableTransport; a future
/// socket/MPI transport slots in unchanged. Surviving payloads are
/// copied into parity-buffered arenas (delayed ones additionally
/// through the calendar), so the aliasing lifetime contract of
/// TransportSlice holds just like the reliable path.
class FaultyTransport final : public Transport {
 public:
  explicit FaultyTransport(FaultPlan plan, Transport* inner = nullptr);

  void begin_run(const TransportGeometry& geometry) override;
  void exchange(std::size_t round,
                std::span<detail::SendStaging> staging) override;
  std::span<const TransportSlice> delivery(unsigned s) const override;
  /// In-flight messages of this layer PLUS the wrapped transport's: a
  /// nested calendar (e.g. a delaying transport wrapped by another) must
  /// keep blocking quiet-round elision and quiescence even when this
  /// layer's own calendar is empty.
  std::size_t pending() const override { return pending_ + inner().pending(); }
  bool lossy() const override { return plan_.any() || inner().lossy(); }
  /// This layer's injections plus the wrapped transport's — nested
  /// faults (e.g. a delay parked in the inner calendar) must reach the
  /// engine's metrics through the outermost layer.
  FaultCounters round_faults() const override {
    FaultCounters faults = round_faults_;
    faults += inner().round_faults();
    return faults;
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  /// A delayed message parked in the calendar: header offsets index the
  /// owning slot's word arena; `reorder` was drawn at send time.
  struct DelayedMsg {
    detail::MsgHeader header;
    bool reorder = false;
  };
  struct DelaySlot {
    std::vector<DelayedMsg> msgs;
    std::vector<std::uint64_t> words;
  };
  /// One destination shard's delivered messages for one round parity.
  struct OutBucket {
    std::vector<detail::MsgHeader> headers;
    std::vector<std::uint64_t> words;
    std::vector<detail::MsgHeader> sunk;  // reorder-marked, appended last
  };

  bool targeted(std::size_t round, VertexId from, VertexId to) const;
  /// Routes one surviving message copy: into the current round's out
  /// bucket for `to`'s shard (delay == 0) or into the delay calendar
  /// slot for round + delay. Payload words are copied either way.
  void emit(std::size_t round, VertexId from, VertexId to,
            std::span<const std::uint64_t> payload, bool reorder,
            std::uint32_t delay);

  Transport& inner() {
    if (inner_ != nullptr) return *inner_;
    return owned_inner_;
  }
  const Transport& inner() const {
    if (inner_ != nullptr) return *inner_;
    return owned_inner_;
  }
  /// True while `v` is inside its crash window: crashed at or before
  /// `round` and not yet rejoined. Legacy (crash-stop) vertices have
  /// rejoin == kNeverRejoins, so they stay down forever.
  bool down(VertexId v, std::uint64_t round) const {
    const auto vi = static_cast<std::size_t>(v);
    return crash_round_[vi] <= round && round < rejoin_round_[vi];
  }

  FaultPlan plan_;
  Transport* inner_ = nullptr;          // borrowed when non-null
  ReliableTransport owned_inner_;       // used when constructed without one
  TransportGeometry geometry_;
  std::array<std::vector<OutBucket>, 2> out_;  // [round parity][shard]
  std::vector<TransportSlice> out_slices_;     // one per shard, per round
  std::vector<DelaySlot> calendar_;            // ring keyed by target round
  std::vector<std::uint64_t> crash_round_;     // per vertex, ~0 = never
  std::vector<std::uint64_t> rejoin_round_;    // per vertex, 0 = no window
  // Rejoin schedule: sorted (round, vertices rejoining that round) pairs
  // plus a cursor, so exchange() can bill rejoin events once per vertex
  // without scanning the per-vertex arrays each round.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rejoin_events_;
  std::size_t rejoin_cursor_ = 0;
  // Occurrence scratch: (to, count) pairs for the current sender's block.
  std::vector<std::pair<VertexId, std::uint32_t>> occurrence_;
  std::size_t pending_ = 0;
  FaultCounters round_faults_;
};

}  // namespace dsnd
