// The classic network-decomposition solving pipeline ([AGLP89], recalled
// in the paper's introduction): given a (D, chi) decomposition with a
// chi-coloring of the supergraph, a symmetry-breaking problem is solved
// color class by color class. Clusters of one class are pairwise
// non-adjacent, so they run in parallel; each cluster gathers its
// topology plus the frozen decisions of adjacent vertices at a leader,
// solves locally, and disseminates — O(D) rounds per class (LOCAL
// model), O(D * chi) rounds total.
//
// This module provides the shared class iteration and the round
// accounting; mis.hpp / coloring.hpp / matching.hpp plug in their local
// solvers.
#pragma once

#include <cstdint>
#include <vector>

#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

/// Cluster ids grouped by color, colors ascending; index = color.
std::vector<std::vector<ClusterId>> clusters_by_color(
    const Clustering& clustering);

struct PipelineCost {
  /// Simulated LOCAL rounds: sum over color classes of
  /// 2 * (max cluster diameter in the class) + 2 (gather + scatter plus
  /// one boundary exchange each way).
  std::int64_t rounds = 0;
  std::int32_t color_classes = 0;
  std::int32_t max_cluster_diameter = 0;
};

/// Round accounting for the naive gather/solve/scatter execution over the
/// given decomposition. Requires connected clusters (strong diameter).
PipelineCost pipeline_round_cost(const Graph& g,
                                 const Clustering& clustering);

}  // namespace dsnd
