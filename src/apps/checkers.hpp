// Validity checkers for the symmetry-breaking problems the paper's
// introduction motivates: maximal independent set, proper vertex
// coloring, and maximal matching. Used as oracles by tests and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

/// in_set[v] != 0 means v is selected.
bool is_independent_set(const Graph& g, const std::vector<char>& in_set);

/// Independent and no vertex can be added.
bool is_maximal_independent_set(const Graph& g,
                                const std::vector<char>& in_set);

/// colors[v] >= 0 for all v and no edge is monochromatic.
bool is_proper_vertex_coloring(const Graph& g,
                               const std::vector<std::int32_t>& colors);

std::int32_t num_colors_used(const std::vector<std::int32_t>& colors);

/// mate[v] == partner vertex or -1; symmetric and consistent with edges.
bool is_matching(const Graph& g, const std::vector<VertexId>& mate);

/// Matching and no edge has both endpoints unmatched.
bool is_maximal_matching(const Graph& g, const std::vector<VertexId>& mate);

}  // namespace dsnd
