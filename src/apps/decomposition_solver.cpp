#include "apps/decomposition_solver.hpp"

#include <algorithm>

#include "decomposition/validation.hpp"
#include "support/assert.hpp"

namespace dsnd {

std::vector<std::vector<ClusterId>> clusters_by_color(
    const Clustering& clustering) {
  std::vector<std::vector<ClusterId>> classes(
      static_cast<std::size_t>(clustering.num_colors()));
  for (ClusterId c = 0; c < clustering.num_clusters(); ++c) {
    classes[static_cast<std::size_t>(clustering.color_of(c))].push_back(c);
  }
  return classes;
}

PipelineCost pipeline_round_cost(const Graph& g,
                                 const Clustering& clustering) {
  DSND_REQUIRE(clustering.is_complete(),
               "pipeline requires a complete partition");
  const std::vector<std::int32_t> diameters =
      cluster_strong_diameters(g, clustering);
  PipelineCost cost;
  for (const auto& cluster_ids : clusters_by_color(clustering)) {
    if (cluster_ids.empty()) continue;
    ++cost.color_classes;
    std::int32_t class_diameter = 0;
    for (const ClusterId c : cluster_ids) {
      const std::int32_t diameter =
          diameters[static_cast<std::size_t>(c)];
      DSND_REQUIRE(diameter != kInfiniteDiameter,
                   "pipeline requires connected (strong-diameter) clusters");
      class_diameter = std::max(class_diameter, diameter);
    }
    cost.max_cluster_diameter =
        std::max(cost.max_cluster_diameter, class_diameter);
    cost.rounds += 2 * static_cast<std::int64_t>(class_diameter) + 2;
  }
  return cost;
}

}  // namespace dsnd
