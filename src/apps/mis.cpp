#include "apps/mis.hpp"

#include "support/assert.hpp"

namespace dsnd {

MisResult mis_by_decomposition(const Graph& g,
                               const Clustering& clustering) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  MisResult result;
  result.in_mis.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  result.cost = pipeline_round_cost(g, clustering);

  std::vector<char> decided(static_cast<std::size_t>(g.num_vertices()), 0);
  const ClusterMembers members = clustering.members_csr();
  for (const auto& cluster_ids : clusters_by_color(clustering)) {
    // Clusters within one color class are pairwise non-adjacent, so their
    // local computations cannot observe each other; any processing order
    // simulates a parallel execution.
    for (const ClusterId c : cluster_ids) {
      for (const VertexId v : members.of(c)) {
        // Greedy local rule: join unless a decided neighbor is in the MIS.
        bool blocked = false;
        for (const VertexId w : g.neighbors(v)) {
          if (decided[static_cast<std::size_t>(w)] &&
              result.in_mis[static_cast<std::size_t>(w)]) {
            blocked = true;
            break;
          }
        }
        result.in_mis[static_cast<std::size_t>(v)] = blocked ? 0 : 1;
        decided[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  return result;
}

std::vector<char> greedy_mis(const Graph& g) {
  std::vector<char> in_mis(static_cast<std::size_t>(g.num_vertices()), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool blocked = false;
    for (const VertexId w : g.neighbors(v)) {
      if (w < v && in_mis[static_cast<std::size_t>(w)]) {
        blocked = true;
        break;
      }
    }
    in_mis[static_cast<std::size_t>(v)] = blocked ? 0 : 1;
  }
  return in_mis;
}

}  // namespace dsnd
