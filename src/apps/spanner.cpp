#include "apps/spanner.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "decomposition/validation.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "support/assert.hpp"

namespace dsnd {

namespace {

/// Adds the edges of a BFS tree of the induced subgraph on `members`,
/// rooted at the member closest to `center` (the center itself whenever
/// it is a member). Members must induce a connected subgraph.
void add_bfs_tree(const Graph& g, std::span<const VertexId> members,
                  VertexId center, std::set<Edge>& edges) {
  const InducedSubgraph sub = induced_subgraph(g, members);
  VertexId root = 0;
  for (VertexId v = 0; v < sub.graph.num_vertices(); ++v) {
    if (sub.parent_of(v) == center) root = v;
  }
  std::vector<std::int32_t> dist(
      static_cast<std::size_t>(sub.graph.num_vertices()), -1);
  std::queue<VertexId> frontier;
  dist[static_cast<std::size_t>(root)] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop();
    for (VertexId w : sub.graph.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] != -1) continue;
      dist[static_cast<std::size_t>(w)] =
          dist[static_cast<std::size_t>(u)] + 1;
      const VertexId pu = sub.parent_of(u);
      const VertexId pw = sub.parent_of(w);
      edges.insert({std::min(pu, pw), std::max(pu, pw)});
      frontier.push(w);
    }
  }
  DSND_CHECK(std::all_of(dist.begin(), dist.end(),
                         [](std::int32_t d) { return d != -1; }),
             "spanner tree construction requires connected clusters");
}

SpannerResult finish(const Graph& g, std::set<Edge> edges) {
  SpannerResult result;
  result.spanner = Graph::from_edges(
      g.num_vertices(), std::vector<Edge>(edges.begin(), edges.end()));
  result.edges = result.spanner.num_edges();
  result.stretch = measure_stretch(g, result.spanner);
  return result;
}

}  // namespace

SpannerResult spanner_by_decomposition(const Graph& g,
                                       const Clustering& clustering) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  DSND_REQUIRE(clustering.is_complete(),
               "spanner requires a complete partition");
  std::set<Edge> edges;
  const ClusterMembers members = clustering.members_csr();
  for (ClusterId c = 0; c < clustering.num_clusters(); ++c) {
    add_bfs_tree(g, members.of(c), clustering.center_of(c), edges);
  }
  // One connecting edge per adjacent cluster pair: the lexicographically
  // smallest, for determinism.
  std::set<std::pair<ClusterId, ClusterId>> connected_pairs;
  g.for_each_edge([&](VertexId u, VertexId v) {
    ClusterId cu = clustering.cluster_of(u);
    ClusterId cv = clustering.cluster_of(v);
    if (cu == cv) return;
    if (cu > cv) std::swap(cu, cv);
    if (connected_pairs.insert({cu, cv}).second) {
      edges.insert({std::min(u, v), std::max(u, v)});
    }
  });
  return finish(g, std::move(edges));
}

SpannerResult spanner_from_cover(const Graph& g,
                                 const NeighborhoodCover& cover) {
  DSND_REQUIRE(cover.radius >= 1, "cover radius must be >= 1");
  std::set<Edge> edges;
  for (const CoverCluster& cluster : cover.clusters) {
    add_bfs_tree(g, cluster.members, cluster.center, edges);
  }
  return finish(g, std::move(edges));
}

std::int32_t measure_stretch(const Graph& g, const Graph& spanner) {
  DSND_REQUIRE(spanner.num_vertices() == g.num_vertices(),
               "spanner must be on the same vertex set");
  std::int32_t stretch = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 0) continue;
    const auto dist = bfs_distances(spanner, v);
    for (VertexId w : g.neighbors(v)) {
      if (w < v) continue;
      const std::int32_t d = dist[static_cast<std::size_t>(w)];
      if (d == kUnreachable) return kInfiniteDiameter;
      stretch = std::max(stretch, d);
    }
  }
  return stretch;
}

}  // namespace dsnd
