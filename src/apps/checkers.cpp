#include "apps/checkers.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace dsnd {

bool is_independent_set(const Graph& g, const std::vector<char>& in_set) {
  DSND_REQUIRE(in_set.size() == static_cast<std::size_t>(g.num_vertices()),
               "selection size mismatch");
  bool independent = true;
  g.for_each_edge([&](VertexId u, VertexId v) {
    if (in_set[static_cast<std::size_t>(u)] &&
        in_set[static_cast<std::size_t>(v)]) {
      independent = false;
    }
  });
  return independent;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<char>& in_set) {
  if (!is_independent_set(g, in_set)) return false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_set[static_cast<std::size_t>(v)]) continue;
    bool blocked = false;
    for (VertexId w : g.neighbors(v)) {
      if (in_set[static_cast<std::size_t>(w)]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;
  }
  return true;
}

bool is_proper_vertex_coloring(const Graph& g,
                               const std::vector<std::int32_t>& colors) {
  DSND_REQUIRE(colors.size() == static_cast<std::size_t>(g.num_vertices()),
               "color vector size mismatch");
  if (std::any_of(colors.begin(), colors.end(),
                  [](std::int32_t c) { return c < 0; })) {
    return false;
  }
  bool proper = true;
  g.for_each_edge([&](VertexId u, VertexId v) {
    if (colors[static_cast<std::size_t>(u)] ==
        colors[static_cast<std::size_t>(v)]) {
      proper = false;
    }
  });
  return proper;
}

std::int32_t num_colors_used(const std::vector<std::int32_t>& colors) {
  std::int32_t max_color = -1;
  for (std::int32_t c : colors) max_color = std::max(max_color, c);
  return max_color + 1;
}

bool is_matching(const Graph& g, const std::vector<VertexId>& mate) {
  DSND_REQUIRE(mate.size() == static_cast<std::size_t>(g.num_vertices()),
               "mate vector size mismatch");
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId m = mate[static_cast<std::size_t>(v)];
    if (m == -1) continue;
    if (m < 0 || m >= g.num_vertices()) return false;
    if (m == v) return false;
    if (mate[static_cast<std::size_t>(m)] != v) return false;
    if (!g.has_edge(v, m)) return false;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const std::vector<VertexId>& mate) {
  if (!is_matching(g, mate)) return false;
  bool maximal = true;
  g.for_each_edge([&](VertexId u, VertexId v) {
    if (mate[static_cast<std::size_t>(u)] == -1 &&
        mate[static_cast<std::size_t>(v)] == -1) {
      maximal = false;
    }
  });
  return maximal;
}

}  // namespace dsnd
