#include "apps/matching.hpp"

#include "support/assert.hpp"

namespace dsnd {

MatchingResult matching_by_decomposition(const Graph& g,
                                         const Clustering& clustering) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  MatchingResult result;
  result.mate.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  result.cost = pipeline_round_cost(g, clustering);

  std::vector<char> processed(static_cast<std::size_t>(g.num_vertices()),
                              0);
  const ClusterMembers members = clustering.members_csr();
  for (const auto& cluster_ids : clusters_by_color(clustering)) {
    for (const ClusterId c : cluster_ids) {
      const auto cluster = members.of(c);
      for (const VertexId v : cluster) {
        if (result.mate[static_cast<std::size_t>(v)] != -1) continue;
        // Prefer an unmatched neighbor inside this cluster, then an
        // unmatched neighbor in an already-processed cluster (boundary
        // proposal); rows are sorted so choices are deterministic.
        VertexId partner = -1;
        for (const VertexId w : g.neighbors(v)) {
          if (result.mate[static_cast<std::size_t>(w)] != -1) continue;
          const bool internal =
              clustering.cluster_of(w) == clustering.cluster_of(v);
          if (internal) {
            partner = w;
            break;
          }
          if (partner == -1 && processed[static_cast<std::size_t>(w)]) {
            partner = w;
          }
        }
        if (partner != -1) {
          result.mate[static_cast<std::size_t>(v)] = partner;
          result.mate[static_cast<std::size_t>(partner)] = v;
          ++result.matched_edges;
        }
      }
      for (const VertexId v : cluster) {
        processed[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  return result;
}

}  // namespace dsnd
