#include "apps/coloring.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace dsnd {

ColoringResult coloring_by_decomposition(const Graph& g,
                                         const Clustering& clustering) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  ColoringResult result;
  result.colors.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  result.cost = pipeline_round_cost(g, clustering);

  const ClusterMembers members = clustering.members_csr();
  std::vector<char> used;
  for (const auto& cluster_ids : clusters_by_color(clustering)) {
    for (const ClusterId c : cluster_ids) {
      for (const VertexId v : members.of(c)) {
        // Smallest color unused by any already-colored neighbor (frozen
        // external clusters or earlier vertices of this cluster).
        used.assign(static_cast<std::size_t>(g.degree(v)) + 2, 0);
        for (const VertexId w : g.neighbors(v)) {
          const std::int32_t cw = result.colors[static_cast<std::size_t>(w)];
          if (cw >= 0 && cw < static_cast<std::int32_t>(used.size())) {
            used[static_cast<std::size_t>(cw)] = 1;
          }
        }
        std::int32_t color = 0;
        while (used[static_cast<std::size_t>(color)]) ++color;
        result.colors[static_cast<std::size_t>(v)] = color;
        result.colors_used = std::max(result.colors_used, color + 1);
      }
    }
  }
  return result;
}

}  // namespace dsnd
