// (Delta+1) vertex coloring via a network decomposition — the second
// symmetry-breaking application from the paper's introduction.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/decomposition_solver.hpp"
#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct ColoringResult {
  std::vector<std::int32_t> colors;  // per vertex, in [0, Delta]
  std::int32_t colors_used = 0;
  PipelineCost cost;
};

/// First-fit within each cluster, respecting frozen neighbor colors;
/// never exceeds max_degree(g) + 1 colors.
ColoringResult coloring_by_decomposition(const Graph& g,
                                         const Clustering& clustering);

}  // namespace dsnd
