// (Delta+1) vertex coloring via a network decomposition — the second
// symmetry-breaking application from the paper's introduction.
//
// Runs the decomposition_solver.hpp pipeline with a first-fit local
// solver: color classes of the supergraph are processed in order; within
// a class each cluster colors its vertices greedily, respecting the
// frozen colors of already-processed neighbors outside the cluster.
// First-fit never needs a color beyond the local degree, so the result
// uses at most Delta+1 colors; with the paper's strong (O(log n),
// O(log n)) decomposition the pipeline costs O(log^2 n) LOCAL rounds.
// Properness is asserted by apps/checkers.hpp in tests and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/decomposition_solver.hpp"
#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct ColoringResult {
  std::vector<std::int32_t> colors;  // per vertex, in [0, Delta]
  std::int32_t colors_used = 0;
  PipelineCost cost;
};

/// First-fit within each cluster, respecting frozen neighbor colors;
/// never exceeds max_degree(g) + 1 colors.
ColoringResult coloring_by_decomposition(const Graph& g,
                                         const Clustering& clustering);

}  // namespace dsnd
