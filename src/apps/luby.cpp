#include "apps/luby.hpp"

#include <algorithm>
#include <vector>

#include "simulator/engine.hpp"
#include "support/assert.hpp"
#include "support/per_worker.hpp"
#include "support/rng.hpp"

namespace dsnd {

namespace {

constexpr std::uint64_t kTagPriority = 1;
constexpr std::uint64_t kTagIn = 2;

enum class NodeState : std::uint8_t { kUndecided, kIn, kOut };

class LubyProtocol final : public Protocol {
 public:
  explicit LubyProtocol(std::uint64_t seed) : seed_(seed) {}

  void begin(const Graph& g) override {
    graph_ = &g;
    const auto n = static_cast<std::size_t>(g.num_vertices());
    state_.assign(n, NodeState::kUndecided);
    priority_.assign(n, 0);
    accum_.reset(1);
  }

  void begin_workers(unsigned workers) override { accum_.reset(workers); }

  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    const auto vi = static_cast<std::size_t>(v);
    const auto step = static_cast<std::int32_t>(round % 3);
    const auto iteration = static_cast<std::int32_t>(round / 3);

    Accum& accum = accum_[out.worker()];
    if (step == 0) {
      if (state_[vi] != NodeState::kUndecided) return;
      accum.iterations = std::max(accum.iterations, iteration + 1);
      // Fresh random priority per iteration; ties broken by vertex id in
      // the comparison, so reuse across vertices is harmless.
      Xoshiro256ss rng(stream_seed(
          seed_, static_cast<std::uint64_t>(iteration) + 1,
          static_cast<std::uint64_t>(v) + 1));
      priority_[vi] = rng();
      out.send_to_all_neighbors(
          {kTagPriority, priority_[vi], static_cast<std::uint64_t>(v)});
      // The decision step must run even when no neighbor priority
      // arrives (isolated vertex, or all neighbors already decided).
      out.wake_self_in(1);
      return;
    }

    if (step == 1) {
      if (state_[vi] != NodeState::kUndecided) return;
      // Local maximum among undecided neighbors joins the MIS.
      bool wins = true;
      for (const MessageView& msg : inbox) {
        if (msg.words.empty() || msg.words[0] != kTagPriority) continue;
        const std::uint64_t their_priority = msg.words[1];
        const auto their_id = static_cast<VertexId>(msg.words[2]);
        if (their_priority > priority_[vi] ||
            (their_priority == priority_[vi] && their_id > v)) {
          wins = false;
          break;
        }
      }
      if (wins) {
        state_[vi] = NodeState::kIn;
        ++accum.decided;
        out.send_to_all_neighbors({kTagIn});
      } else {
        // Still undecided: resample at the next iteration's step 0
        // (a kTagIn from a neighbor may decide this vertex at step 2
        // first; the stale wake is then a no-op).
        out.wake_self_in(2);
      }
      return;
    }

    // step == 2: neighbors of fresh IN vertices drop out. Since only
    // undecided vertices broadcast priorities, no explicit OUT
    // notification is needed for the next iteration's comparison.
    if (state_[vi] != NodeState::kUndecided) return;
    for (const MessageView& msg : inbox) {
      if (!msg.words.empty() && msg.words[0] == kTagIn) {
        state_[vi] = NodeState::kOut;
        ++accum.decided;
        return;
      }
    }
  }

  bool finished() const override {
    const VertexId decided = accum_.fold(
        VertexId{0},
        [](VertexId acc, const Accum& a) { return acc + a.decided; });
    return decided == graph_->num_vertices();
  }

  std::vector<char> in_mis() const {
    std::vector<char> result(state_.size(), 0);
    for (std::size_t v = 0; v < state_.size(); ++v) {
      result[v] = state_[v] == NodeState::kIn ? 1 : 0;
    }
    return result;
  }

  std::int32_t iterations() const {
    return accum_.fold(0, [](std::int32_t acc, const Accum& a) {
      return std::max(acc, a.iterations);
    });
  }

 private:
  /// Per-worker aggregate slice (support/per_worker.hpp): monotone
  /// fields folded on the driving thread, no cross-core contention.
  struct Accum {
    VertexId decided = 0;
    std::int32_t iterations = 0;
  };

  const std::uint64_t seed_;
  const Graph* graph_ = nullptr;
  std::vector<NodeState> state_;
  std::vector<std::uint64_t> priority_;
  PerWorker<Accum> accum_;
};

}  // namespace

LubyResult luby_mis(const Graph& g, std::uint64_t seed) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  LubyProtocol protocol(seed);
  SyncEngine engine(g);
  // Expected O(log n) iterations; the cap is far above that.
  const std::size_t max_rounds =
      3 * (64 + static_cast<std::size_t>(g.num_vertices()));
  LubyResult result;
  result.sim = engine.run(protocol, max_rounds);
  DSND_CHECK(protocol.finished(), "Luby's algorithm failed to terminate");
  result.in_mis = protocol.in_mis();
  result.iterations = protocol.iterations();
  return result;
}

}  // namespace dsnd
