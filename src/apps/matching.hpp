// Maximal matching via a network decomposition — the third application
// from the paper's introduction. Boundary edges to already-processed
// clusters are claimed with a propose/accept exchange (the external,
// frozen endpoint arbitrates); the sequential simulation realizes one
// valid arbitration order.
#pragma once

#include <vector>

#include "apps/decomposition_solver.hpp"
#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct MatchingResult {
  std::vector<VertexId> mate;  // partner vertex or -1
  VertexId matched_edges = 0;
  PipelineCost cost;
};

MatchingResult matching_by_decomposition(const Graph& g,
                                         const Clustering& clustering);

}  // namespace dsnd
