// Sparse spanners from decompositions and covers — the [DMP+05]
// application direction cited in the paper's introduction.
//
// Two constructions:
//
//  (a) spanner_by_decomposition: per-cluster BFS trees plus one
//      connecting edge per adjacent cluster pair. Stretch <= 4k - 3 for
//      a strong (2k-2, chi) decomposition; edge count
//      n - #clusters + |E(G(P))| (sparse when the supergraph is sparse).
//
//  (b) spanner_from_cover: BFS trees of every cover cluster of a
//      (W = 1, chi)-neighborhood cover. Every edge's endpoints share a
//      cluster, so stretch <= the largest cover-cluster diameter
//      (O(k)); edge count < chi * n because each vertex lies in at most
//      chi clusters — the O(n log n)-edge, O(log n)-stretch regime of
//      [DMP+05] when chi = O(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "decomposition/covers.hpp"
#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct SpannerResult {
  Graph spanner;            // subgraph of g on the same vertex set
  std::int64_t edges = 0;
  /// Largest d_spanner(u, v) over edges (u, v) of g; the multiplicative
  /// stretch of the spanner (kInfiniteDiameter if disconnected — cannot
  /// happen for valid inputs).
  std::int32_t stretch = 0;
};

/// (a) — requires a complete partition with connected clusters.
SpannerResult spanner_by_decomposition(const Graph& g,
                                       const Clustering& clustering);

/// (b) — requires a cover with radius >= 1 and connected clusters.
SpannerResult spanner_from_cover(const Graph& g,
                                 const NeighborhoodCover& cover);

/// Max over edges (u,v) of G of d_H(u, v); kInfiniteDiameter if some
/// edge's endpoints are disconnected in H. (Edge stretch equals overall
/// multiplicative stretch for unweighted graphs.)
std::int32_t measure_stretch(const Graph& g, const Graph& spanner);

}  // namespace dsnd
