// Luby's randomized MIS, implemented as a genuine protocol on the
// synchronous simulator — the non-decomposition baseline for bench E7.
// Each iteration costs three rounds: exchange random priorities, winners
// (local maxima among undecided neighbors) announce IN, their neighbors
// announce OUT. O(log n) iterations in expectation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "simulator/metrics.hpp"

namespace dsnd {

struct LubyResult {
  std::vector<char> in_mis;
  SimMetrics sim;
  std::int32_t iterations = 0;
};

LubyResult luby_mis(const Graph& g, std::uint64_t seed);

}  // namespace dsnd
