// The O(D * chi) MIS pipeline as a genuine LOCAL-model protocol on the
// simulator — the "naive algorithm" of the paper's introduction made
// concrete: clusters of each color class (processed in a fixed
// per-class round budget derived from the known diameter bound 2k-2)
// build a BFS tree from their center, convergecast their topology plus
// the frozen decisions of adjacent vertices to the leader, solve MIS
// locally, and broadcast the answers back down.
//
// Two things are worth measuring here (bench E7):
//  - rounds: chi color classes x O(k) rounds each = O(D * chi), vs the
//    CONGEST algorithms' accounting;
//  - message width: convergecast messages carry whole subtree topologies
//    — this pipeline is LOCAL, not CONGEST, and the max_message_words
//    metric quantifies exactly how non-CONGEST it is.
//
// The result is bit-identical to mis_by_decomposition() on the same
// clustering: the leader runs the same greedy (vertex-id order) and
// same-class clusters are non-adjacent, so decisions commute.
#pragma once

#include <cstdint>
#include <vector>

#include "decomposition/partition.hpp"
#include "graph/graph.hpp"
#include "simulator/engine.hpp"
#include "simulator/metrics.hpp"

namespace dsnd {

struct DistributedMisResult {
  std::vector<char> in_mis;
  SimMetrics sim;
  /// Rounds budgeted per color class: 2 * (2k - 2) + 4.
  std::int32_t rounds_per_class = 0;
  std::int32_t classes = 0;
};

/// Runs the pipeline over a decomposition whose clusters have strong
/// radius (distance center -> member inside the cluster) at most k - 1,
/// which is what the Elkin–Neiman algorithms guarantee for parameter k.
/// Clusters must be connected and contain their centers. The pipeline is
/// time-driven, so it opts out of active scheduling; engine_options can
/// still enable parallel rounds.
DistributedMisResult mis_distributed_pipeline(
    const Graph& g, const Clustering& clustering, std::int32_t k,
    const EngineOptions& engine_options = {});

}  // namespace dsnd
