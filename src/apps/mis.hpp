// Maximal independent set via a network decomposition (the pipeline of
// decomposition_solver.hpp with a greedy local solver). With the paper's
// strong (O(log n), O(log n)) decomposition this runs in O(log^2 n)
// LOCAL rounds — compare luby.hpp for the classic randomized alternative.
#pragma once

#include <vector>

#include "apps/decomposition_solver.hpp"
#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct MisResult {
  std::vector<char> in_mis;  // per vertex
  PipelineCost cost;
};

/// Requires a complete partition with connected clusters and a proper
/// phase coloring (what the Elkin–Neiman algorithms produce).
MisResult mis_by_decomposition(const Graph& g, const Clustering& clustering);

/// Sequential greedy MIS (vertex-id order) — correctness oracle.
std::vector<char> greedy_mis(const Graph& g);

}  // namespace dsnd
