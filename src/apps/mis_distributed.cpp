#include "apps/mis_distributed.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "decomposition/supergraph.hpp"
#include "simulator/engine.hpp"
#include "support/assert.hpp"
#include "support/per_worker.hpp"

namespace dsnd {

namespace {

constexpr std::uint64_t kTagTree = 1;      // [tag, cluster]
constexpr std::uint64_t kTagGather = 2;    // [tag, n, records...]
constexpr std::uint64_t kTagDecide = 3;    // [tag, n, (vertex, in)...]
constexpr std::uint64_t kTagAnnounce = 4;  // [tag, in]

/// An owned copy of a decision broadcast buffered for relaying next
/// round (MessageView payloads only live for one on_round call).
struct StoredDecision {
  VertexId from = -1;
  std::vector<std::uint64_t> words;
};

/// One vertex's contribution to the convergecast: id, external-block
/// flag, then its same-cluster neighbor list.
struct GatherRecord {
  VertexId vertex = -1;
  bool blocked = false;
  std::vector<VertexId> internal_neighbors;
};

void append_record(std::vector<std::uint64_t>& words,
                   const GatherRecord& record) {
  words.push_back(static_cast<std::uint64_t>(record.vertex));
  words.push_back(record.blocked ? 1 : 0);
  words.push_back(record.internal_neighbors.size());
  for (const VertexId w : record.internal_neighbors) {
    words.push_back(static_cast<std::uint64_t>(w));
  }
}

class MisPipelineProtocol final : public Protocol {
 public:
  MisPipelineProtocol(const Clustering& clustering, std::int32_t k)
      : clustering_(clustering), k_(k),
        rounds_per_class_(3 * k + 2),
        classes_(clustering.num_colors()) {}

  void begin(const Graph& g) override {
    const auto n = static_cast<std::size_t>(g.num_vertices());
    graph_ = &g;
    depth_.assign(n, -1);
    parent_.assign(n, -1);
    decided_.assign(n, 0);
    in_mis_.assign(n, 0);
    neighbor_in_mis_.assign(n, 0);
    pending_records_.assign(n, {});
    relay_decisions_.assign(n, std::nullopt);
    accum_.reset(1);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const ClusterId c = clustering_.cluster_of(v);
      if (clustering_.center_of(c) == v) {
        depth_[static_cast<std::size_t>(v)] = 0;
      }
    }
  }

  void begin_workers(unsigned workers) override { accum_.reset(workers); }

  /// The pipeline is time-driven: vertices act at fixed steps of their
  /// class window (seed/convergecast/solve/downcast/announce) with
  /// possibly empty inboxes, so it opts out of active scheduling.
  bool needs_spontaneous_rounds() const override { return true; }

  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    const auto vi = static_cast<std::size_t>(v);
    const auto per_class = static_cast<std::size_t>(rounds_per_class_);
    const auto class_index = static_cast<std::int32_t>(round / per_class);
    const auto step = static_cast<std::int32_t>(round % per_class);
    const ClusterId cluster = clustering_.cluster_of(v);
    const std::int32_t my_class = clustering_.color_of(cluster);

    // Bookkeeping that applies regardless of the active class: frozen
    // decisions announced by neighbors, tree adoption, buffered
    // convergecast payloads.
    for (const MessageView& msg : inbox) {
      if (msg.words.empty()) continue;
      switch (msg.words[0]) {
        case kTagAnnounce:
          if (msg.words[1] != 0) neighbor_in_mis_[vi] = 1;
          break;
        case kTagTree:
          if (static_cast<ClusterId>(msg.words[1]) == cluster &&
              depth_[vi] == -1 && my_class == class_index) {
            depth_[vi] = step;  // tree messages sent at step d arrive d+1
            parent_[vi] = msg.from;
          }
          break;
        case kTagGather:
          for (std::size_t i = 2; i < msg.words.size();) {
            GatherRecord record;
            record.vertex = static_cast<VertexId>(msg.words[i++]);
            record.blocked = msg.words[i++] != 0;
            const auto count = static_cast<std::size_t>(msg.words[i++]);
            for (std::size_t j = 0; j < count; ++j) {
              record.internal_neighbors.push_back(
                  static_cast<VertexId>(msg.words[i++]));
            }
            pending_records_[vi].push_back(std::move(record));
          }
          break;
        case kTagDecide:
          for (std::size_t i = 2; i + 1 < msg.words.size(); i += 2) {
            if (static_cast<VertexId>(msg.words[i]) == v) {
              decide(vi, msg.words[i + 1] != 0, out.worker());
            }
          }
          relay_decisions_[vi] = StoredDecision{
              msg.from, {msg.words.begin(), msg.words.end()}};
          break;
        default:
          DSND_CHECK(false, "unknown pipeline message tag");
      }
    }

    if (my_class != class_index) return;

    // Tree building: the center seeds at step 0; adopters forward the
    // wave one step after adopting.
    if (step < k_) {
      const bool seeded = depth_[vi] == 0 && step == 0;
      const bool adopted_now = depth_[vi] == step && step > 0;
      if (seeded || adopted_now) {
        for (const VertexId w : graph_->neighbors(v)) {
          if (clustering_.cluster_of(w) == cluster) {
            out.send(w, {kTagTree, static_cast<std::uint64_t>(cluster)});
          }
        }
      }
      return;
    }

    DSND_CHECK(depth_[vi] >= 0,
               "cluster radius exceeds k-1: BFS tree incomplete");

    // Convergecast: a vertex at depth d ships its aggregate (own record
    // plus everything buffered from its subtree) at step k + (k-1-d).
    if (step == k_ + (k_ - 1 - depth_[vi]) && depth_[vi] > 0) {
      GatherRecord own = make_own_record(v);
      std::vector<std::uint64_t> words = {kTagGather, 0};
      append_record(words, own);
      for (const GatherRecord& record : pending_records_[vi]) {
        append_record(words, record);
      }
      words[1] = 1 + pending_records_[vi].size();
      pending_records_[vi].clear();
      out.send(parent_[vi], words);
      return;
    }

    // Leader solves at step 2k and starts the downcast.
    if (step == 2 * k_ && depth_[vi] == 0) {
      std::vector<GatherRecord> records = std::move(pending_records_[vi]);
      pending_records_[vi].clear();
      records.push_back(make_own_record(v));
      std::sort(records.begin(), records.end(),
                [](const GatherRecord& a, const GatherRecord& b) {
                  return a.vertex < b.vertex;
                });
      // Greedy in vertex-id order — identical to mis_by_decomposition.
      std::map<VertexId, bool> solution;
      for (const GatherRecord& record : records) {
        bool blocked = record.blocked;
        for (const VertexId w : record.internal_neighbors) {
          const auto it = solution.find(w);
          if (it != solution.end() && it->second) blocked = true;
        }
        solution[record.vertex] = !blocked;
      }
      std::vector<std::uint64_t> words = {kTagDecide, solution.size()};
      for (const auto& [vertex, in] : solution) {
        words.push_back(static_cast<std::uint64_t>(vertex));
        words.push_back(in ? 1 : 0);
      }
      decide(vi, solution.at(v), out.worker());
      for (const VertexId w : graph_->neighbors(v)) {
        if (clustering_.cluster_of(w) == cluster) {
          out.send(w, words);
        }
      }
      return;
    }

    // Relay the decision broadcast one level down per round.
    if (step > 2 * k_ && step < 3 * k_ && relay_decisions_[vi]) {
      for (const VertexId w : graph_->neighbors(v)) {
        if (clustering_.cluster_of(w) == cluster && w != parent_[vi]) {
          out.send(w, relay_decisions_[vi]->words);
        }
      }
      relay_decisions_[vi].reset();
      return;
    }

    // Everyone announces at the class's fixed final step so adjacent
    // clusters of later classes see frozen state.
    if (step == 3 * k_) {
      DSND_CHECK(decided_[vi], "vertex missed its cluster's decision");
      out.send_to_all_neighbors(
          {kTagAnnounce, in_mis_[vi] ? 1ULL : 0ULL});
    }
  }

  bool finished() const override { return undecided() == 0; }

  std::vector<char> in_mis() const { return in_mis_; }
  std::int32_t rounds_per_class() const { return rounds_per_class_; }
  std::int32_t classes() const { return classes_; }
  VertexId undecided() const {
    const VertexId decided = accum_.fold(
        VertexId{0},
        [](VertexId acc, const Accum& a) { return acc + a.decided; });
    return graph_->num_vertices() - decided;
  }

 private:
  GatherRecord make_own_record(VertexId v) const {
    const auto vi = static_cast<std::size_t>(v);
    GatherRecord record;
    record.vertex = v;
    record.blocked = neighbor_in_mis_[vi] != 0;
    for (const VertexId w : graph_->neighbors(v)) {
      if (clustering_.cluster_of(w) == clustering_.cluster_of(v)) {
        record.internal_neighbors.push_back(w);
      }
    }
    return record;
  }

  void decide(std::size_t vi, bool in, unsigned worker) {
    if (decided_[vi]) return;
    decided_[vi] = 1;
    in_mis_[vi] = in ? 1 : 0;
    ++accum_[worker].decided;
  }

  const Clustering& clustering_;
  const std::int32_t k_;
  const std::int32_t rounds_per_class_;
  const std::int32_t classes_;

  const Graph* graph_ = nullptr;
  std::vector<std::int32_t> depth_;
  std::vector<VertexId> parent_;
  std::vector<char> decided_;
  std::vector<char> in_mis_;
  std::vector<char> neighbor_in_mis_;
  std::vector<std::vector<GatherRecord>> pending_records_;
  std::vector<std::optional<StoredDecision>> relay_decisions_;
  /// Per-worker decided counter (support/per_worker.hpp): decide()
  /// touches only the deciding vertex's state plus its worker's slot, so
  /// parallel rounds stay race-free with no shared atomics.
  struct Accum {
    VertexId decided = 0;
  };
  PerWorker<Accum> accum_;
};

}  // namespace

DistributedMisResult mis_distributed_pipeline(
    const Graph& g, const Clustering& clustering, std::int32_t k,
    const EngineOptions& engine_options) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  DSND_REQUIRE(clustering.is_complete(),
               "pipeline requires a complete partition");
  DSND_REQUIRE(k >= 1, "k must be positive");
  DSND_REQUIRE(phase_coloring_is_proper(g, clustering),
               "pipeline requires a proper phase coloring");

  MisPipelineProtocol protocol(clustering, k);
  SyncEngine engine(g, engine_options);
  const std::size_t max_rounds =
      static_cast<std::size_t>(protocol.classes()) *
      static_cast<std::size_t>(protocol.rounds_per_class());
  DistributedMisResult result;
  result.sim = engine.run(protocol, max_rounds);
  DSND_CHECK(protocol.undecided() == 0,
             "pipeline failed to decide every vertex");
  result.in_mis = protocol.in_mis();
  result.rounds_per_class = protocol.rounds_per_class();
  result.classes = protocol.classes();
  return result;
}

}  // namespace dsnd
