// Sparse neighborhood covers from strong network decompositions — the
// application direction the paper highlights via [AP92, ABCP92]: covers
// drive compact routing and synchronizers.
//
// A (W, chi)-neighborhood cover is a collection of (overlapping) vertex
// sets ("cover clusters"), each assigned one of chi colors, such that
//   (1) for every vertex v some cover cluster contains the entire ball
//       B(v, W);
//   (2) same-colored cover clusters are disjoint (so each vertex lies in
//       at most chi clusters);
//   (3) every cover cluster is connected with strong diameter
//       O(W * k) — here at most (2W+1)(2k-2) + 2W.
//
// Construction: run the Elkin–Neiman decomposition on the power graph
// G^{2W+1} (clusters there are >= 2W+2 apart in G when same-colored),
// then expand every cluster by W hops in G. Expansion keeps same-colored
// clusters disjoint, swallows every ball around a member, and the
// G^{2W+1}-shortest-path structure keeps the expanded cluster connected
// in G.
#pragma once

#include <cstdint>
#include <vector>

#include "decomposition/elkin_neiman.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct CoverCluster {
  std::vector<VertexId> members;  // sorted
  VertexId center = -1;
  std::int32_t color = 0;
};

struct NeighborhoodCover {
  std::vector<CoverCluster> clusters;
  std::int32_t num_colors = 0;
  std::int32_t radius = 0;  // W
  /// Underlying decomposition accounting (phases == colors etc.).
  DecompositionRun base;
};

struct CoverOptions {
  std::int32_t radius = 2;  // W
  std::int32_t k = 0;       // decomposition radius parameter; 0 = ln n
  double c = 4.0;
  std::uint64_t seed = 1;
};

NeighborhoodCover build_neighborhood_cover(const Graph& g,
                                           const CoverOptions& options);

/// The expansion half of the construction, exposed on its own: grows
/// every cluster of a decomposition of G^{2W+1} by `radius` = W hops in
/// g (multi-source BFS from its members) and returns the cover
/// clusters. build_neighborhood_cover and the DecompositionService's
/// cover deliverable share this, so a service-carved base decomposition
/// expands exactly like the standalone path.
std::vector<CoverCluster> expand_clusters_to_cover(
    const Graph& g, const Clustering& clustering, std::int32_t radius);

struct CoverReport {
  bool all_balls_covered = false;   // property (1)
  bool color_classes_disjoint = false;  // property (2)
  std::int32_t max_overlap = 0;     // clusters containing one vertex
  std::int32_t max_strong_diameter = 0;  // kInfiniteDiameter if violated
  bool all_clusters_connected = false;
  double avg_cluster_size = 0.0;
};

/// Brute-force verification of the three cover properties.
CoverReport validate_cover(const Graph& g, const NeighborhoodCover& cover);

}  // namespace dsnd
