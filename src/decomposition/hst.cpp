#include "decomposition/hst.hpp"

#include <algorithm>
#include <cmath>

#include "decomposition/mpx.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace dsnd {

double HstTree::distance(VertexId u, VertexId v) const {
  DSND_REQUIRE(u >= 0 && u < num_vertices(), "u out of range");
  DSND_REQUIRE(v >= 0 && v < num_vertices(), "v out of range");
  if (u == v) return 0.0;
  // Climb both leaves to the root, recording cumulative weights, then
  // find the lowest common ancestor by set intersection of the paths.
  std::vector<std::int32_t> path_u, path_v;
  std::vector<double> acc_u, acc_v;
  double sum = 0.0;
  for (std::int32_t node = leaf_of(u); node != -1; node = parent(node)) {
    path_u.push_back(node);
    acc_u.push_back(sum);
    if (parent(node) != -1) sum += edge_weight(node);
  }
  sum = 0.0;
  for (std::int32_t node = leaf_of(v); node != -1; node = parent(node)) {
    path_v.push_back(node);
    acc_v.push_back(sum);
    if (parent(node) != -1) sum += edge_weight(node);
  }
  for (std::size_t i = 0; i < path_u.size(); ++i) {
    for (std::size_t j = 0; j < path_v.size(); ++j) {
      if (path_u[i] == path_v[j]) {
        return acc_u[i] + acc_v[j];
      }
    }
  }
  return -1.0;  // different components
}

HstTree build_hst(const Graph& g, const HstOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DSND_REQUIRE(options.c > 0.0, "c must be positive");
  const auto n = static_cast<std::size_t>(g.num_vertices());

  HstTree tree;
  tree.leaf_of_.assign(n, -1);

  // Level i_max: connected components become the roots.
  const Components components = connected_components(g);
  const auto groups = components.groups();
  std::int32_t diameter = 0;
  for (const auto& group : groups) {
    const InducedSubgraph sub = induced_subgraph(g, group);
    diameter = std::max(diameter, exact_diameter(sub.graph));
  }
  std::int32_t levels = 1;
  while ((1 << levels) < std::max(diameter, 1)) ++levels;
  tree.num_levels_ = levels + 1;

  struct Work {
    std::vector<VertexId> members;
    std::int32_t node = -1;
    std::int32_t level = 0;
  };
  std::vector<Work> queue;
  for (const auto& group : groups) {
    const auto node = static_cast<std::int32_t>(tree.parent_.size());
    tree.parent_.push_back(-1);
    tree.weight_.push_back(0.0);
    queue.push_back({group, node, levels});
  }

  const double ln_cn =
      std::log(options.c * static_cast<double>(std::max<VertexId>(
                               g.num_vertices(), 2)));

  while (!queue.empty()) {
    const Work work = std::move(queue.back());
    queue.pop_back();

    if (work.members.size() == 1 || work.level == 0) {
      // Leaves: singleton nodes, one per vertex. A multi-vertex level-0
      // cluster still fans out into singleton leaves so every vertex has
      // its own leaf.
      const InducedSubgraph sub = induced_subgraph(g, work.members);
      const double parent_diam =
          static_cast<double>(std::max(exact_diameter(sub.graph), 1));
      for (const VertexId v : work.members) {
        if (work.members.size() == 1) {
          tree.leaf_of_[static_cast<std::size_t>(v)] = work.node;
        } else {
          const auto node = static_cast<std::int32_t>(tree.parent_.size());
          tree.parent_.push_back(work.node);
          tree.weight_.push_back(parent_diam / 2.0);
          tree.leaf_of_[static_cast<std::size_t>(v)] = node;
        }
      }
      continue;
    }

    // Partition this cluster's induced subgraph with MPX at the level's
    // beta; children recurse one level down.
    const InducedSubgraph sub = induced_subgraph(g, work.members);
    const double parent_diam =
        static_cast<double>(std::max(exact_diameter(sub.graph), 1));
    const double beta = std::max(
        1e-6, ln_cn / static_cast<double>(1 << work.level));
    MpxOptions mpx;
    mpx.beta = beta;
    mpx.seed = stream_seed(options.seed,
                           static_cast<std::uint64_t>(work.level),
                           static_cast<std::uint64_t>(work.node));
    const MpxResult partition = mpx_partition(sub.graph, mpx);
    const ClusterMembers child_members =
        partition.clustering.members_csr();
    for (ClusterId cc = 0; cc < child_members.num_clusters(); ++cc) {
      const auto child = child_members.of(cc);
      std::vector<VertexId> mapped;
      mapped.reserve(child.size());
      for (const VertexId s : child) mapped.push_back(sub.parent_of(s));
      const auto node = static_cast<std::int32_t>(tree.parent_.size());
      tree.parent_.push_back(work.node);
      tree.weight_.push_back(parent_diam / 2.0);
      queue.push_back({std::move(mapped), node, work.level - 1});
    }
  }
  return tree;
}

StretchReport measure_hst_stretch(const Graph& g, const HstTree& tree,
                                  std::int64_t pairs, std::uint64_t seed) {
  DSND_REQUIRE(tree.num_vertices() == g.num_vertices(),
               "tree does not match graph");
  DSND_REQUIRE(pairs >= 1, "need at least one sample pair");
  StretchReport report;
  Xoshiro256ss rng(stream_seed(seed, 0x687374ULL, 1));
  double total = 0.0;
  for (std::int64_t i = 0; i < pairs; ++i) {
    const auto u = static_cast<VertexId>(
        uniform_below(rng, static_cast<std::uint64_t>(g.num_vertices())));
    // BFS once per sampled source; pick a random reachable target.
    const auto dist = bfs_distances(g, u);
    std::vector<VertexId> reachable;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (v != u && dist[static_cast<std::size_t>(v)] != kUnreachable) {
        reachable.push_back(v);
      }
    }
    if (reachable.empty()) continue;
    const VertexId v = reachable[uniform_below(rng, reachable.size())];
    const double dg =
        static_cast<double>(dist[static_cast<std::size_t>(v)]);
    const double dt = tree.distance(u, v);
    DSND_CHECK(dt >= 0.0, "connected pair must have finite tree distance");
    if (dt < dg) report.dominating = false;
    const double stretch = dt / dg;
    total += stretch;
    report.max = std::max(report.max, stretch);
    ++report.pairs;
  }
  if (report.pairs > 0) {
    report.mean = total / static_cast<double>(report.pairs);
  }
  return report;
}

}  // namespace dsnd
