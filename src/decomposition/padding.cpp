#include "decomposition/padding.hpp"

#include <algorithm>
#include <limits>

#include "graph/traversal.hpp"
#include "support/assert.hpp"

namespace dsnd {

std::vector<std::int32_t> padding_distances(const Graph& g,
                                            const Clustering& clustering) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  DSND_REQUIRE(clustering.is_complete(),
               "padding requires a complete partition");
  // Boundary vertices: an edge to a different cluster.
  std::vector<VertexId> boundary;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      if (clustering.cluster_of(w) != clustering.cluster_of(v)) {
        boundary.push_back(v);
        break;
      }
    }
  }
  const auto dist_to_boundary = multi_source_bfs(g, boundary);
  std::vector<std::int32_t> pad(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::int32_t d = dist_to_boundary[static_cast<std::size_t>(v)];
    pad[static_cast<std::size_t>(v)] =
        d == kUnreachable ? kInfinitePadding : d + 1;
  }
  return pad;
}

PaddingReport analyze_padding(const Graph& g, const Clustering& clustering) {
  const auto pad = padding_distances(g, clustering);
  PaddingReport report;
  std::int64_t total = 0;
  VertexId finite = 0;
  report.min = std::numeric_limits<std::int32_t>::max();
  for (const std::int32_t p : pad) {
    if (p == kInfinitePadding) {
      ++report.infinite_count;
      continue;
    }
    ++finite;
    total += p;
    report.min = std::min(report.min, p);
    report.max = std::max(report.max, p);
  }
  if (finite == 0) {
    report.min = 0;
    return report;
  }
  report.mean = static_cast<double>(total) / static_cast<double>(finite);
  report.survival.assign(static_cast<std::size_t>(report.max), 0.0);
  for (const std::int32_t p : pad) {
    const std::int32_t effective =
        p == kInfinitePadding ? report.max : p;
    for (std::int32_t t = 1; t <= effective; ++t) {
      report.survival[static_cast<std::size_t>(t - 1)] += 1.0;
    }
  }
  for (double& s : report.survival) {
    s /= static_cast<double>(g.num_vertices());
  }
  return report;
}

}  // namespace dsnd
