#include "decomposition/multistage.hpp"

#include <cmath>
#include <string>

#include "service/decomposition_service.hpp"
#include "support/assert.hpp"

namespace dsnd {

std::vector<double> multistage_beta_schedule(VertexId n, std::int32_t k,
                                             double c) {
  DSND_REQUIRE(n >= 1, "graph must be nonempty");
  DSND_REQUIRE(k >= 1, "k must be positive");
  DSND_REQUIRE(c > 1.0, "c must exceed 1 so every stage keeps beta > 0");
  const double cn = c * static_cast<double>(n);
  const auto stages = static_cast<std::int32_t>(
      std::floor(std::log(std::max<VertexId>(n, 2))));
  std::vector<double> betas;
  for (std::int32_t i = 0; i <= stages; ++i) {
    // Stage i: s_i phases with beta_i = ln(cn/e^i)/k = (ln(cn) - i)/k.
    const double stage_cn = cn / std::exp(static_cast<double>(i));
    const double beta = std::log(stage_cn) / static_cast<double>(k);
    DSND_CHECK(beta > 0.0, "stage beta must stay positive");
    const auto phases = static_cast<std::int32_t>(std::ceil(
        2.0 * std::pow(stage_cn, 1.0 / static_cast<double>(k))));
    for (std::int32_t t = 0; t < phases; ++t) betas.push_back(beta);
  }
  return betas;
}

CarveSchedule theorem2_schedule(VertexId n, std::int32_t k, double c) {
  DSND_REQUIRE(n >= 1, "graph must be nonempty");
  const std::int32_t rk = resolve_k(n, k);
  const double cn = c * static_cast<double>(n);

  CarveSchedule schedule;
  schedule.name = "theorem2(k=" + std::to_string(rk) + ")";
  schedule.betas = multistage_beta_schedule(n, rk, c);
  schedule.phase_rounds = rk;
  schedule.radius_overflow_at = static_cast<double>(rk) + 1.0;
  schedule.k = static_cast<double>(rk);
  schedule.c = c;
  schedule.bounds.strong_diameter = 2.0 * rk - 2.0;
  schedule.bounds.colors =
      4.0 * rk * std::pow(cn, 1.0 / static_cast<double>(rk));
  // Rounds: (k+1) simulated rounds per phase over at most `colors` phases.
  schedule.bounds.rounds =
      (static_cast<double>(rk) + 1.0) * schedule.bounds.colors;
  schedule.bounds.success_probability = 1.0 - 5.0 / c;
  return schedule;
}

DecompositionRun multistage_decomposition(const Graph& g,
                                          const MultistageOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  return DecompositionService::run_once_centralized(
      g,
      with_overflow_policy(
          theorem2_schedule(g.num_vertices(), options.k, options.c),
          options.overflow_policy, options.max_retries_per_phase),
      options.seed, options.run_to_completion, /*margin=*/1.0);
}

}  // namespace dsnd
