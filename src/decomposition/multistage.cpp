#include "decomposition/multistage.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace dsnd {

std::vector<double> multistage_beta_schedule(VertexId n, std::int32_t k,
                                             double c) {
  DSND_REQUIRE(n >= 1, "graph must be nonempty");
  DSND_REQUIRE(k >= 1, "k must be positive");
  DSND_REQUIRE(c > 1.0, "c must exceed 1 so every stage keeps beta > 0");
  const double cn = c * static_cast<double>(n);
  const auto stages = static_cast<std::int32_t>(
      std::floor(std::log(std::max<VertexId>(n, 2))));
  std::vector<double> betas;
  for (std::int32_t i = 0; i <= stages; ++i) {
    // Stage i: s_i phases with beta_i = ln(cn/e^i)/k = (ln(cn) - i)/k.
    const double stage_cn = cn / std::exp(static_cast<double>(i));
    const double beta = std::log(stage_cn) / static_cast<double>(k);
    DSND_CHECK(beta > 0.0, "stage beta must stay positive");
    const auto phases = static_cast<std::int32_t>(std::ceil(
        2.0 * std::pow(stage_cn, 1.0 / static_cast<double>(k))));
    for (std::int32_t t = 0; t < phases; ++t) betas.push_back(beta);
  }
  return betas;
}

DecompositionRun multistage_decomposition(const Graph& g,
                                          const MultistageOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  const VertexId n = g.num_vertices();
  const std::int32_t k = resolve_k(n, options.k);
  const double cn = options.c * static_cast<double>(n);

  CarveParams params;
  params.betas = multistage_beta_schedule(n, k, options.c);
  params.phase_rounds = k;
  params.margin = 1.0;
  params.radius_overflow_at = static_cast<double>(k) + 1.0;
  params.run_to_completion = options.run_to_completion;
  params.seed = options.seed;

  DecompositionRun run;
  run.carve = carve_decomposition(g, params);
  run.k = static_cast<double>(k);
  run.c = options.c;
  run.bounds.strong_diameter = 2.0 * k - 2.0;
  run.bounds.colors =
      4.0 * k * std::pow(cn, 1.0 / static_cast<double>(k));
  // Rounds: (k+1) simulated rounds per phase over at most `colors` phases.
  run.bounds.rounds = (static_cast<double>(k) + 1.0) * run.bounds.colors;
  run.bounds.success_probability = 1.0 - 5.0 / options.c;
  return run;
}

}  // namespace dsnd
