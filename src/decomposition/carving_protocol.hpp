// Generic CONGEST carving protocol: the message-passing realization of
// carve_decomposition() for an arbitrary beta schedule, which makes all
// three theorems runnable as genuine distributed algorithms:
//   - Theorem 1: constant beta = ln(cn)/k            (elkin_neiman_distributed)
//   - Theorem 2: stage-decaying beta_i = ln(cn/e^i)/k (multistage_distributed)
//   - Theorem 3: beta = (cn)^{-1/lambda}, long phases (high_radius_distributed)
//
// Message discipline (the paper's CONGEST observation): each vertex
// forwards only its top-2 shifted values, one entry per message —
// [tag, center, radius-bits, dist], 4 words. An entry is (re)sent only
// when it changed at this vertex, so traffic per phase is proportional
// to the number of top-2 improvements rather than phase length.
//
// On the same seed the protocol is bit-identical to carve_decomposition:
// both draw r_v from stream (seed, phase, retry, vertex) and both compute
// the same top-2 fixed point (see the displacement argument in DESIGN.md).
//
// Lemma 1 recovery (OverflowPolicy::kRetry, the default): when any live
// vertex samples r_v >= radius_overflow_at at an attempt's sampling
// round, the overflow bit aggregates during the phase broadcast (in the
// simulation: folded between rounds by the serial Protocol::on_round_begin
// hook), the deciding step re-arms every live vertex instead of joining,
// and the phase replays with freshly salted radii — so the whp guarantee
// becomes Las Vegas (always-valid output) at a cost of one phase length
// of rounds per retry, billed in CarveResult::extra_rounds.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "decomposition/carve_schedule.hpp"
#include "decomposition/carving.hpp"
#include "graph/graph.hpp"
#include "graph/relabel.hpp"
#include "simulator/engine.hpp"
#include "simulator/metrics.hpp"

namespace dsnd {

struct DistributedCarveResult {
  CarveResult carve;
  SimMetrics sim;
};

/// A distributed decomposition run: the theorem-level result plus the
/// simulator's message/round accounting.
struct DistributedRun {
  DecompositionRun run;
  SimMetrics sim;
};

/// Reusable warm-run state for repeated distributed carves on ONE graph:
/// the SyncEngine (whose worker pool stays spawned and parked between
/// runs, and whose shard arrays/arenas keep their capacity) plus the
/// carving protocol's per-vertex arrays and, on lossy layout runs, the
/// reconstructed original graph used for validation. Construct once,
/// then feed it to run_schedule_distributed / the theorem entry points
/// as often as wanted — attempt 2..N of the verify-and-recover loop and
/// every warm re-run pay zero setup. The borrowed graph (and layout)
/// and any borrowed transport must outlive the context. Results are
/// bit-identical to the context-free overloads: a run never observes
/// whether the engine it ran on was cold or warm (pinned by test).
class CarveContext {
 public:
  explicit CarveContext(const Graph& g, const EngineOptions& options = {});
  /// Layout-aware twin: runs on lg.graph while keying all randomness and
  /// the emitted clustering to ORIGINAL ids via lg.layout.
  explicit CarveContext(const LayoutGraph& lg,
                        const EngineOptions& options = {});
  ~CarveContext();

  CarveContext(const CarveContext&) = delete;
  CarveContext& operator=(const CarveContext&) = delete;

  SyncEngine& engine();
  const SyncEngine& engine() const;

 private:
  friend DistributedCarveResult carve_decomposition_distributed(
      CarveContext& context, const CarveParams& params);
  friend DistributedRun run_schedule_distributed(
      CarveContext& context, const CarveSchedule& schedule,
      std::uint64_t seed);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One carve on a reusable context — the warm-path twin of the Graph
/// overload below, bit-identical to it on the same inputs.
DistributedCarveResult carve_decomposition_distributed(
    CarveContext& context, const CarveParams& params);

/// The full schedule (verify-and-recover loop included) on a reusable
/// context — the warm-path twin of the overloads below. Different
/// schedules and seeds may share one context freely; only the graph is
/// fixed at construction.
DistributedRun run_schedule_distributed(CarveContext& context,
                                        const CarveSchedule& schedule,
                                        std::uint64_t seed);

/// Runs the carving schedule as a distributed protocol on the synchronous
/// simulator. params.margin must be 1 (the paper's rule); the schedule,
/// phase length, overflow threshold, and completion semantics match
/// carve_decomposition exactly. engine_options tunes the simulator
/// (scheduling, threads); the clustering is identical for every setting.
/// vertex_names (empty = identity) maps engine vertex ids to the
/// original ids the algorithm is keyed on — the hook the cache-aware
/// relabeling uses (see the LayoutGraph overload below): radius streams,
/// tie-breaks, and the emitted clustering all use names, so a run on a
/// relabeled graph is bit-identical to the unrelabeled run.
DistributedCarveResult carve_decomposition_distributed(
    const Graph& g, const CarveParams& params,
    const EngineOptions& engine_options = {},
    std::span<const VertexId> vertex_names = {});

/// The CONGEST twin of run_schedule(): executes the schedule through the
/// generic carving protocol and attaches the schedule's bounds. All three
/// theorem wrappers (elkin_neiman_distributed.hpp) are thin calls to this
/// with their theorem{1,2,3}_schedule(); on the same seed the clustering
/// is bit-identical to run_schedule(g, schedule, seed).
DistributedRun run_schedule_distributed(
    const Graph& g, const CarveSchedule& schedule, std::uint64_t seed,
    const EngineOptions& engine_options = {});

/// Layout-aware twin: runs on lg.graph (the relabeled topology, built by
/// make_layout_graph with e.g. bfs_layout or grid_bucket_layout) while
/// keying all randomness and the returned clustering to ORIGINAL vertex
/// ids via lg.layout — bit-identical to run_schedule_distributed on the
/// original graph with the same seed, with the cache behavior of the
/// relabeled layout.
DistributedRun run_schedule_distributed(
    const LayoutGraph& lg, const CarveSchedule& schedule, std::uint64_t seed,
    const EngineOptions& engine_options = {});

/// Largest message the protocol emits, in 64-bit words.
inline constexpr std::size_t kCarveProtocolMaxWords = 4;

}  // namespace dsnd
