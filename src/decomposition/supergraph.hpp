// Cluster contraction and supergraph coloring.
//
// G(P) has one vertex per cluster and an edge between clusters joined by
// any original edge. The carving algorithms color G(P) by phase index
// (clusters carved in the same phase are never adjacent); a greedy pass
// over the supergraph can often reduce the color count further in
// practice, which the benches report as "greedy recolored".
#pragma once

#include <cstdint>
#include <vector>

#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

/// Contracts clusters; requires a complete partition. Supergraph vertex i
/// corresponds to cluster id i.
Graph build_supergraph(const Graph& g, const Clustering& clustering);

/// True iff no edge of G joins two clusters of the same color — i.e. the
/// per-cluster colors are a proper coloring of G(P).
bool phase_coloring_is_proper(const Graph& g, const Clustering& clustering);

/// Greedy (first-fit, vertex-id order) proper coloring of a graph;
/// returns one color per vertex, using at most max_degree + 1 colors.
std::vector<std::int32_t> greedy_coloring(const Graph& g);

/// Convenience: number of colors a greedy recoloring of the supergraph
/// needs (always <= the phase-count coloring the algorithm produced).
std::int32_t greedy_supergraph_colors(const Graph& g,
                                      const Clustering& clustering);

}  // namespace dsnd
