#include "decomposition/partition.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace dsnd {

Clustering::Clustering(VertexId num_vertices)
    : cluster_of_(static_cast<std::size_t>(num_vertices), kNoCluster) {
  DSND_REQUIRE(num_vertices >= 0, "vertex count must be nonnegative");
}

std::int32_t Clustering::num_colors() const {
  std::int32_t max_color = -1;
  for (std::int32_t color : colors_) max_color = std::max(max_color, color);
  return max_color + 1;
}

ClusterId Clustering::add_cluster(VertexId center, std::int32_t color) {
  DSND_REQUIRE(center >= 0 && center < num_vertices(),
               "cluster center out of range");
  DSND_REQUIRE(color >= 0, "cluster color must be nonnegative");
  centers_.push_back(center);
  colors_.push_back(color);
  return static_cast<ClusterId>(centers_.size() - 1);
}

void Clustering::assign(VertexId v, ClusterId c) {
  DSND_REQUIRE(v >= 0 && v < num_vertices(), "vertex out of range");
  DSND_REQUIRE(c >= 0 && c < num_clusters(), "cluster out of range");
  DSND_REQUIRE(cluster_of_[static_cast<std::size_t>(v)] == kNoCluster,
               "vertex already assigned to a cluster");
  cluster_of_[static_cast<std::size_t>(v)] = c;
}

ClusterId Clustering::cluster_of(VertexId v) const {
  DSND_REQUIRE(v >= 0 && v < num_vertices(), "vertex out of range");
  return cluster_of_[static_cast<std::size_t>(v)];
}

VertexId Clustering::center_of(ClusterId c) const {
  DSND_REQUIRE(c >= 0 && c < num_clusters(), "cluster out of range");
  return centers_[static_cast<std::size_t>(c)];
}

std::int32_t Clustering::color_of(ClusterId c) const {
  DSND_REQUIRE(c >= 0 && c < num_clusters(), "cluster out of range");
  return colors_[static_cast<std::size_t>(c)];
}

bool Clustering::is_complete() const {
  return std::none_of(cluster_of_.begin(), cluster_of_.end(),
                      [](ClusterId c) { return c == kNoCluster; });
}

VertexId Clustering::num_unassigned() const {
  return static_cast<VertexId>(
      std::count(cluster_of_.begin(), cluster_of_.end(), kNoCluster));
}

ClusterMembers::ClusterMembers(std::vector<std::int64_t> offsets,
                               std::vector<VertexId> flat)
    : offsets_(std::move(offsets)), flat_(std::move(flat)) {
  DSND_REQUIRE(!offsets_.empty(), "CSR offsets must have at least one entry");
  DSND_REQUIRE(offsets_.back() ==
                   static_cast<std::int64_t>(flat_.size()),
               "CSR offsets do not cover the flat array");
}

std::span<const VertexId> ClusterMembers::of(ClusterId c) const {
  DSND_REQUIRE(c >= 0 && c < num_clusters(), "cluster out of range");
  const auto begin = offsets_[static_cast<std::size_t>(c)];
  const auto end = offsets_[static_cast<std::size_t>(c) + 1];
  return {flat_.data() + begin, static_cast<std::size_t>(end - begin)};
}

ClusterMembers Clustering::members_csr() const {
  // Counting sort by cluster id; stable, so each cluster's members come
  // out in increasing vertex order (the same order members() produced).
  std::vector<std::int64_t> offsets(
      static_cast<std::size_t>(num_clusters()) + 1, 0);
  for (const ClusterId c : cluster_of_) {
    if (c != kNoCluster) ++offsets[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t c = 1; c < offsets.size(); ++c) {
    offsets[c] += offsets[c - 1];
  }
  std::vector<VertexId> flat(static_cast<std::size_t>(offsets.back()));
  std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t v = 0; v < cluster_of_.size(); ++v) {
    const ClusterId c = cluster_of_[v];
    if (c != kNoCluster) {
      flat[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] =
          static_cast<VertexId>(v);
    }
  }
  return ClusterMembers(std::move(offsets), std::move(flat));
}

std::vector<std::vector<VertexId>> Clustering::members() const {
  const ClusterMembers csr = members_csr();
  std::vector<std::vector<VertexId>> result(
      static_cast<std::size_t>(num_clusters()));
  for (ClusterId c = 0; c < num_clusters(); ++c) {
    const auto span = csr.of(c);
    result[static_cast<std::size_t>(c)].assign(span.begin(), span.end());
  }
  return result;
}

std::vector<VertexId> Clustering::cluster_sizes() const {
  std::vector<VertexId> sizes(static_cast<std::size_t>(num_clusters()), 0);
  for (const ClusterId c : cluster_of_) {
    if (c != kNoCluster) ++sizes[static_cast<std::size_t>(c)];
  }
  return sizes;
}

}  // namespace dsnd
