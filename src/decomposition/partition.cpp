#include "decomposition/partition.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace dsnd {

Clustering::Clustering(VertexId num_vertices)
    : cluster_of_(static_cast<std::size_t>(num_vertices), kNoCluster) {
  DSND_REQUIRE(num_vertices >= 0, "vertex count must be nonnegative");
}

std::int32_t Clustering::num_colors() const {
  std::int32_t max_color = -1;
  for (std::int32_t color : colors_) max_color = std::max(max_color, color);
  return max_color + 1;
}

ClusterId Clustering::add_cluster(VertexId center, std::int32_t color) {
  DSND_REQUIRE(center >= 0 && center < num_vertices(),
               "cluster center out of range");
  DSND_REQUIRE(color >= 0, "cluster color must be nonnegative");
  centers_.push_back(center);
  colors_.push_back(color);
  return static_cast<ClusterId>(centers_.size() - 1);
}

void Clustering::assign(VertexId v, ClusterId c) {
  DSND_REQUIRE(v >= 0 && v < num_vertices(), "vertex out of range");
  DSND_REQUIRE(c >= 0 && c < num_clusters(), "cluster out of range");
  DSND_REQUIRE(cluster_of_[static_cast<std::size_t>(v)] == kNoCluster,
               "vertex already assigned to a cluster");
  cluster_of_[static_cast<std::size_t>(v)] = c;
}

ClusterId Clustering::cluster_of(VertexId v) const {
  DSND_REQUIRE(v >= 0 && v < num_vertices(), "vertex out of range");
  return cluster_of_[static_cast<std::size_t>(v)];
}

VertexId Clustering::center_of(ClusterId c) const {
  DSND_REQUIRE(c >= 0 && c < num_clusters(), "cluster out of range");
  return centers_[static_cast<std::size_t>(c)];
}

std::int32_t Clustering::color_of(ClusterId c) const {
  DSND_REQUIRE(c >= 0 && c < num_clusters(), "cluster out of range");
  return colors_[static_cast<std::size_t>(c)];
}

bool Clustering::is_complete() const {
  return std::none_of(cluster_of_.begin(), cluster_of_.end(),
                      [](ClusterId c) { return c == kNoCluster; });
}

VertexId Clustering::num_unassigned() const {
  return static_cast<VertexId>(
      std::count(cluster_of_.begin(), cluster_of_.end(), kNoCluster));
}

std::vector<std::vector<VertexId>> Clustering::members() const {
  std::vector<std::vector<VertexId>> result(
      static_cast<std::size_t>(num_clusters()));
  for (std::size_t v = 0; v < cluster_of_.size(); ++v) {
    const ClusterId c = cluster_of_[v];
    if (c != kNoCluster) {
      result[static_cast<std::size_t>(c)].push_back(
          static_cast<VertexId>(v));
    }
  }
  return result;
}

std::vector<VertexId> Clustering::cluster_sizes() const {
  std::vector<VertexId> sizes(static_cast<std::size_t>(num_clusters()), 0);
  for (const ClusterId c : cluster_of_) {
    if (c != kNoCluster) ++sizes[static_cast<std::size_t>(c)];
  }
  return sizes;
}

}  // namespace dsnd
