#include "decomposition/elkin_neiman.hpp"

#include <cmath>
#include <string>

#include "service/decomposition_service.hpp"
#include "support/assert.hpp"

namespace dsnd {

std::int32_t resolve_k(VertexId n, std::int32_t k) {
  DSND_REQUIRE(k >= 0, "k must be nonnegative (0 = auto)");
  if (k > 0) return k;
  const double ln_n = std::log(std::max<VertexId>(n, 2));
  return std::max<std::int32_t>(1,
                                static_cast<std::int32_t>(std::ceil(ln_n)));
}

double elkin_neiman_beta(VertexId n, std::int32_t k, double c) {
  DSND_REQUIRE(n >= 1, "graph must be nonempty");
  DSND_REQUIRE(k >= 1, "k must be positive");
  DSND_REQUIRE(c > 0.0, "c must be positive");
  return std::log(c * static_cast<double>(n)) / static_cast<double>(k);
}

std::int32_t elkin_neiman_target_phases(VertexId n, std::int32_t k,
                                        double c) {
  const double cn = c * static_cast<double>(n);
  const double lambda =
      std::pow(cn, 1.0 / static_cast<double>(k)) * std::log(cn);
  return std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::ceil(lambda)));
}

CarveSchedule theorem1_schedule(VertexId n, std::int32_t k, double c) {
  DSND_REQUIRE(n >= 1, "graph must be nonempty");
  DSND_REQUIRE(c > 0.0, "c must be positive");
  const std::int32_t rk = resolve_k(n, k);
  const std::int32_t lambda = elkin_neiman_target_phases(n, rk, c);

  CarveSchedule schedule;
  schedule.name = "theorem1(k=" + std::to_string(rk) + ")";
  schedule.betas.assign(static_cast<std::size_t>(lambda),
                        elkin_neiman_beta(n, rk, c));
  schedule.phase_rounds = rk;
  schedule.radius_overflow_at = static_cast<double>(rk) + 1.0;
  schedule.k = static_cast<double>(rk);
  schedule.c = c;
  schedule.bounds.strong_diameter = 2.0 * rk - 2.0;
  schedule.bounds.colors = static_cast<double>(lambda);
  schedule.bounds.rounds =
      static_cast<double>(rk) * static_cast<double>(lambda);
  schedule.bounds.success_probability = 1.0 - 3.0 / c;
  return schedule;
}

DecompositionRun elkin_neiman_decomposition(
    const Graph& g, const ElkinNeimanOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  // A one-shot service submission (decomposition_service.hpp): same
  // run_schedule execution, routed through the service layer like every
  // other entry point.
  return DecompositionService::run_once_centralized(
      g,
      with_overflow_policy(
          theorem1_schedule(g.num_vertices(), options.k, options.c),
          options.overflow_policy, options.max_retries_per_phase),
      options.seed, options.run_to_completion, options.margin);
}

}  // namespace dsnd
