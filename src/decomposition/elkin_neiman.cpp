#include "decomposition/elkin_neiman.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace dsnd {

std::int32_t resolve_k(VertexId n, std::int32_t k) {
  DSND_REQUIRE(k >= 0, "k must be nonnegative (0 = auto)");
  if (k > 0) return k;
  const double ln_n = std::log(std::max<VertexId>(n, 2));
  return std::max<std::int32_t>(1,
                                static_cast<std::int32_t>(std::ceil(ln_n)));
}

double elkin_neiman_beta(VertexId n, std::int32_t k, double c) {
  DSND_REQUIRE(n >= 1, "graph must be nonempty");
  DSND_REQUIRE(k >= 1, "k must be positive");
  DSND_REQUIRE(c > 0.0, "c must be positive");
  return std::log(c * static_cast<double>(n)) / static_cast<double>(k);
}

std::int32_t elkin_neiman_target_phases(VertexId n, std::int32_t k,
                                        double c) {
  const double cn = c * static_cast<double>(n);
  const double lambda =
      std::pow(cn, 1.0 / static_cast<double>(k)) * std::log(cn);
  return std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::ceil(lambda)));
}

DecompositionRun elkin_neiman_decomposition(
    const Graph& g, const ElkinNeimanOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DSND_REQUIRE(options.c > 0.0, "c must be positive");
  const VertexId n = g.num_vertices();
  const std::int32_t k = resolve_k(n, options.k);
  const double beta = elkin_neiman_beta(n, k, options.c);
  const std::int32_t lambda = elkin_neiman_target_phases(n, k, options.c);

  CarveParams params;
  params.betas.assign(static_cast<std::size_t>(lambda), beta);
  params.phase_rounds = k;
  params.margin = options.margin;
  params.radius_overflow_at = static_cast<double>(k) + 1.0;
  params.run_to_completion = options.run_to_completion;
  params.seed = options.seed;

  DecompositionRun run;
  run.carve = carve_decomposition(g, params);
  run.k = static_cast<double>(k);
  run.c = options.c;
  run.bounds.strong_diameter = 2.0 * k - 2.0;
  run.bounds.colors = static_cast<double>(lambda);
  run.bounds.rounds = static_cast<double>(k) * static_cast<double>(lambda);
  run.bounds.success_probability = 1.0 - 3.0 / options.c;
  return run;
}

}  // namespace dsnd
