#include "decomposition/mpx.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>
#include <vector>

#include "support/assert.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace dsnd {

MpxResult mpx_partition(const Graph& g, const MpxOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DSND_REQUIRE(options.beta > 0.0, "beta must be positive");
  const auto n = static_cast<std::size_t>(g.num_vertices());

  std::vector<double> shift(n);
  MpxResult result;
  for (std::size_t v = 0; v < n; ++v) {
    Xoshiro256ss rng(stream_seed(options.seed, 0x6d7078ULL,
                                 static_cast<std::uint64_t>(v) + 1));
    shift[v] = sample_exponential(rng, options.beta);
    result.max_shift = std::max(result.max_shift, shift[v]);
  }

  // Shifted multi-source Dijkstra: every vertex starts as its own source
  // with key -delta_v; settling order by (key, center) makes the argmax
  // assignment exact and the tie-break deterministic. Unit edge weights
  // keep keys monotone, so the standard lazy-deletion queue is exact.
  std::vector<double> key(n, 0.0);
  std::vector<VertexId> center(n);
  std::vector<char> settled(n, 0);
  using QueueItem = std::tuple<double, VertexId, VertexId>;  // key, center, v
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      queue;
  for (std::size_t v = 0; v < n; ++v) {
    key[v] = -shift[v];
    center[v] = static_cast<VertexId>(v);
    queue.push({key[v], center[v], static_cast<VertexId>(v)});
  }
  while (!queue.empty()) {
    const auto [d, c, v] = queue.top();
    queue.pop();
    const auto vi = static_cast<std::size_t>(v);
    if (settled[vi]) continue;
    // Lazy deletion: skip stale entries that lost to a better relaxation.
    if (d != key[vi] || c != center[vi]) continue;
    settled[vi] = 1;
    for (VertexId w : g.neighbors(v)) {
      const auto wi = static_cast<std::size_t>(w);
      if (settled[wi]) continue;
      const double candidate = d + 1.0;
      if (candidate < key[wi] ||
          (candidate == key[wi] && c < center[wi])) {
        key[wi] = candidate;
        center[wi] = c;
        queue.push({candidate, c, w});
      }
    }
  }

  // Group by center into clusters (deterministic id order).
  result.clustering = Clustering(g.num_vertices());
  std::vector<ClusterId> cluster_of_center(n, kNoCluster);
  for (std::size_t v = 0; v < n; ++v) {
    const auto ci = static_cast<std::size_t>(center[v]);
    if (cluster_of_center[ci] == kNoCluster) {
      cluster_of_center[ci] =
          result.clustering.add_cluster(center[v], /*color=*/0);
    }
    result.clustering.assign(static_cast<VertexId>(v),
                             cluster_of_center[ci]);
  }

  g.for_each_edge([&](VertexId u, VertexId v) {
    if (result.clustering.cluster_of(u) != result.clustering.cluster_of(v)) {
      ++result.cut_edges;
    }
  });
  result.cut_fraction =
      g.num_edges() == 0
          ? 0.0
          : static_cast<double>(result.cut_edges) /
                static_cast<double>(g.num_edges());
  return result;
}

}  // namespace dsnd
