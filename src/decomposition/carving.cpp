#include "decomposition/carving.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace dsnd {

const char* carve_status_name(CarveStatus status) {
  // Failure names deliberately avoid the substring "INVALID": that
  // string is reserved for true contract violations (a run claiming kOk
  // whose clustering fails external validation), which CI greps for.
  switch (status) {
    case CarveStatus::kOk: return "ok";
    case CarveStatus::kRoundBudgetExhausted: return "round-budget";
    case CarveStatus::kStalled: return "stalled";
    case CarveStatus::kRejected: return "rejected";
  }
  return "unknown";
}

bool CarveEntry::beats(const CarveEntry& other) const {
  if (!valid()) return false;
  if (!other.valid()) return true;
  const double lhs = value();
  const double rhs = other.value();
  if (lhs != rhs) return lhs > rhs;
  return center < other.center;
}

double carve_radius_sample(std::uint64_t seed, std::int32_t phase,
                           VertexId v, double beta, std::int32_t retry) {
  // Retry salt rides in the (a = 0) channel, which the (phase + 1,
  // vertex + 1) streams below never use, so retry 0 reproduces the
  // historical stream bit-for-bit and every retry draws from an
  // independent stream family.
  const std::uint64_t base =
      retry == 0 ? seed
                 : stream_seed(seed, 0, static_cast<std::uint64_t>(retry));
  Xoshiro256ss rng(stream_seed(base, static_cast<std::uint64_t>(phase) + 1,
                               static_cast<std::uint64_t>(v) + 1));
  return sample_exponential(rng, beta);
}

RadiusBatchStats carve_radius_sample_batch(
    std::uint64_t seed, std::int32_t phase, double beta, std::int32_t retry,
    std::span<const VertexId> vertices, std::span<const VertexId> names,
    std::span<double> unit_scratch, std::span<double> radii,
    double overflow_at) {
  DSND_REQUIRE(unit_scratch.size() >= vertices.size(),
               "batch sampling scratch smaller than the vertex batch");
  const std::uint64_t base =
      retry == 0 ? seed
                 : stream_seed(seed, 0, static_cast<std::uint64_t>(retry));
  const std::uint64_t phase_key = static_cast<std::uint64_t>(phase) + 1;
  const std::size_t count = vertices.size();
  // Pass 1: per-vertex stream seeding and the single uniform draw, into
  // the dense scratch. Each stream is independent, so the loop has no
  // cross-iteration state — the SplitMix64 seeding and xoshiro rotates
  // are pure integer lanes a vectorizer can chew on.
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<std::size_t>(vertices[i]);
    const std::uint64_t key =
        names.empty() ? static_cast<std::uint64_t>(v)
                      : static_cast<std::uint64_t>(names[v]);
    Xoshiro256ss rng(stream_seed(base, phase_key, key + 1));
    unit_scratch[i] = uniform_unit(rng);
  }
  // Pass 2: the inverse-CDF transform, element for element the same call
  // the scalar sampler makes — bit-identity with the scalar path cannot
  // drift no matter how pass 1 is scheduled.
  RadiusBatchStats stats;
  for (std::size_t i = 0; i < count; ++i) {
    const double r = exponential_inverse_cdf(unit_scratch[i], beta);
    radii[static_cast<std::size_t>(vertices[i])] = r;
    if (r > stats.max_radius) stats.max_radius = r;
    if (r >= overflow_at) stats.overflow = true;
  }
  return stats;
}

namespace {

/// Inserts `candidate` into the (best, second) slots of vertex y,
/// deduplicating by center: a later entry for the same center only
/// replaces the stored one if it carries a larger shifted value.
/// Returns true if the stored state changed.
bool merge_entry(CarveEntry& best, CarveEntry& second,
                 const CarveEntry& candidate) {
  if (!candidate.valid()) return false;
  if (best.valid() && best.center == candidate.center) {
    if (candidate.beats(best)) {
      best = candidate;
      return true;
    }
    return false;
  }
  if (second.valid() && second.center == candidate.center) {
    if (candidate.beats(second)) {
      second = candidate;
      // The improved second entry may now beat the best.
      if (second.beats(best)) std::swap(best, second);
      return true;
    }
    return false;
  }
  if (candidate.beats(best)) {
    second = best;
    best = candidate;
    return true;
  }
  if (candidate.beats(second)) {
    second = candidate;
    return true;
  }
  return false;
}

}  // namespace

PhaseState run_phase_broadcast(const Graph& g, const std::vector<char>& alive,
                               const std::vector<double>& radii,
                               std::int32_t phase_rounds,
                               ForwardPolicy policy) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  DSND_REQUIRE(alive.size() == n, "alive mask size mismatch");
  DSND_REQUIRE(radii.size() == n, "radii size mismatch");
  DSND_REQUIRE(phase_rounds >= 0, "phase_rounds must be nonnegative");

  PhaseState state;
  state.best.assign(n, CarveEntry{});
  state.second.assign(n, CarveEntry{});

  for (std::size_t v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    state.max_radius = std::max(state.max_radius, radii[v]);
    // Every live vertex hears its own broadcast at distance 0.
    state.best[v] = CarveEntry{radii[v], 0, static_cast<VertexId>(v)};
  }

  // Synchronous top-2 relaxation: in each round every live vertex offers
  // its current top-2 entries (one hop farther) to its live neighbors.
  // This is exactly what the CONGEST protocol transmits; see
  // elkin_neiman_distributed.cpp. Entries stop propagating once the hop
  // count would exceed ⌊r⌋ (the broadcast range) or the round budget.
  std::vector<CarveEntry> offer_best(n), offer_second(n);
  for (std::int32_t round = 0; round < phase_rounds; ++round) {
    for (std::size_t v = 0; v < n; ++v) {
      offer_best[v] = state.best[v];
      offer_second[v] = state.second[v];
    }
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      for (const CarveEntry* offered : {&offer_best[v], &offer_second[v]}) {
        if (policy == ForwardPolicy::kTop1 && offered == &offer_second[v]) {
          continue;  // ablation: suppress the second-best value
        }
        if (!offered->valid()) continue;
        const std::int32_t next_dist = offered->dist + 1;
        if (static_cast<double>(next_dist) >
            std::floor(offered->radius)) {
          continue;  // beyond the ⌊r_v⌋ broadcast range
        }
        const CarveEntry forwarded{offered->radius, next_dist,
                                   offered->center};
        for (VertexId w : g.neighbors(static_cast<VertexId>(v))) {
          if (!alive[static_cast<std::size_t>(w)]) continue;
          changed |= merge_entry(state.best[static_cast<std::size_t>(w)],
                                 state.second[static_cast<std::size_t>(w)],
                                 forwarded);
        }
      }
    }
    if (!changed) break;  // fixed point reached early; rounds still billed
  }
  return state;
}

bool phase_join_decision(const CarveEntry& best, const CarveEntry& second,
                         double margin) {
  if (!best.valid()) return false;
  const double m1 = best.value();
  const double m2 = second.valid() ? second.value() : 0.0;
  return m1 - m2 > margin;
}

CarveResult carve_decomposition(const Graph& g, const CarveParams& params) {
  DSND_REQUIRE(!params.betas.empty(), "carve schedule must be nonempty");
  DSND_REQUIRE(params.phase_rounds >= 1, "need at least one broadcast round");
  DSND_REQUIRE(params.max_retries_per_phase >= 0,
               "retry budget must be nonnegative");
  for (double beta : params.betas) {
    DSND_REQUIRE(beta > 0.0, "every beta must be positive");
  }

  const auto n = static_cast<std::size_t>(g.num_vertices());
  CarveResult result;
  result.clustering = Clustering(g.num_vertices());
  result.target_phases = static_cast<std::int32_t>(params.betas.size());

  std::vector<char> alive(n, 1);
  std::vector<double> radii(n, 0.0);
  std::vector<double> unit_scratch(n);
  std::vector<VertexId> live(n);
  VertexId remaining = g.num_vertices();

  // Cap runaway loops: even beta close to 0 empties the graph in one
  // phase, so this bound is never hit in practice.
  const std::int32_t hard_cap =
      result.target_phases * 16 + g.num_vertices() + 16;

  std::int32_t phase = 0;
  while (remaining > 0) {
    if (phase >= result.target_phases && !params.run_to_completion) break;
    DSND_CHECK(phase < hard_cap, "carving failed to converge");
    const double beta =
        phase < result.target_phases
            ? params.betas[static_cast<std::size_t>(phase)]
            : params.betas.back();

    // Las Vegas recarve loop: resample the whole phase (fresh per-retry
    // salt) while Lemma 1's event holds and the budget allows. Both the
    // overflow flag and the reported max come straight from the sampling
    // pass — not from the (truncated) broadcast state — so logs always
    // show the event that actually fired. The batched sampler draws from
    // the same per-(seed, phase, v, retry) streams the scalar one does.
    live.clear();
    for (std::size_t v = 0; v < n; ++v) {
      if (alive[v]) live.push_back(static_cast<VertexId>(v));
    }
    for (std::int32_t retry = 0;; ++retry) {
      const RadiusBatchStats stats = carve_radius_sample_batch(
          params.seed, phase, beta, retry, live, /*names=*/{}, unit_scratch,
          radii, params.radius_overflow_at);
      result.max_sampled_radius =
          std::max(result.max_sampled_radius, stats.max_radius);
      const bool attempt_overflow = stats.overflow;
      if (attempt_overflow &&
          params.overflow_policy == OverflowPolicy::kRetry &&
          retry < params.max_retries_per_phase) {
        // The aborted attempt still costs one phase of simulated rounds
        // (the distributed realization spends the phase broadcast
        // aggregating the overflow bit before it can replay).
        ++result.retries;
        continue;
      }
      if (attempt_overflow) result.radius_overflow = true;
      break;
    }

    PhaseState state = run_phase_broadcast(g, alive, radii,
                                           params.phase_rounds,
                                           params.forward_policy);

    // Collect joiners grouped by chosen center; each (phase, center)
    // group is one cluster (Claim 3 makes it connected).
    std::vector<VertexId> joiners;
    for (std::size_t v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      if (phase_join_decision(state.best[v], state.second[v],
                              params.margin)) {
        joiners.push_back(static_cast<VertexId>(v));
      }
    }

    std::vector<ClusterId> cluster_of_center(n, kNoCluster);
    for (VertexId y : joiners) {
      const VertexId center = state.best[static_cast<std::size_t>(y)].center;
      ClusterId& c = cluster_of_center[static_cast<std::size_t>(center)];
      if (c == kNoCluster) {
        c = result.clustering.add_cluster(center, phase);
      }
      result.clustering.assign(y, c);
      alive[static_cast<std::size_t>(y)] = 0;
    }
    remaining -= static_cast<VertexId>(joiners.size());
    result.carved_per_phase.push_back(
        static_cast<VertexId>(joiners.size()));
    ++phase;
  }

  result.phases_used = phase;
  result.exhausted_within_target =
      remaining == 0 && phase <= result.target_phases;
  const auto phase_len = static_cast<std::int64_t>(params.phase_rounds) + 1;
  result.extra_rounds = static_cast<std::int64_t>(result.retries) * phase_len;
  result.rounds =
      static_cast<std::int64_t>(phase) * phase_len + result.extra_rounds;
  return result;
}

}  // namespace dsnd
