#include "decomposition/linial_saks_distributed.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "simulator/engine.hpp"
#include "support/assert.hpp"
#include "support/distributions.hpp"
#include "support/per_worker.hpp"
#include "support/rng.hpp"

namespace dsnd {

namespace {

constexpr std::uint64_t kTagEntry = 1;
constexpr std::uint64_t kTagLeave = 2;

struct LsEntry {
  VertexId id = -1;
  std::int32_t radius = 0;
  std::int32_t dist = 0;

  std::int32_t remaining() const { return radius - dist; }
};

class LinialSaksProtocol final : public Protocol {
 public:
  LinialSaksProtocol(std::uint64_t seed, std::int32_t k, double p)
      : seed_(seed), k_(k), p_(p) {}

  void begin(const Graph& g) override {
    const auto n = static_cast<std::size_t>(g.num_vertices());
    graph_ = &g;
    alive_.assign(n, 1);
    frontier_.assign(n, {});
    chosen_center_.assign(n, -1);
    chosen_phase_.assign(n, -1);
    accum_.reset(1);
  }

  void begin_workers(unsigned workers) override { accum_.reset(workers); }

  void on_round(VertexId v, std::size_t round,
                std::span<const MessageView> inbox, Outbox& out) override {
    const auto vi = static_cast<std::size_t>(v);
    if (!alive_[vi]) return;
    const auto phase_len = static_cast<std::size_t>(k_) + 1;
    const auto phase = static_cast<std::int32_t>(round / phase_len);
    const auto step = static_cast<std::int32_t>(round % phase_len);

    Accum& accum = accum_[out.worker()];
    if (step == 0) {
      accum.phases_used = std::max(accum.phases_used, phase + 1);
      // Identical stream to linial_saks_decomposition.
      Xoshiro256ss rng(stream_seed(seed_,
                                   static_cast<std::uint64_t>(phase) + 1,
                                   static_cast<std::uint64_t>(v) + 1));
      const std::int32_t r = sample_truncated_geometric(rng, p_, k_ - 1);
      accum.max_radius = std::max(accum.max_radius, r);
      frontier_[vi].clear();
      frontier_[vi].push_back(LsEntry{v, r, 0});
      forward(v, LsEntry{v, r, 0}, out);
      // Quiet flooding steps run on inbox arrivals; the deciding step
      // must run even if nothing arrived.
      out.wake_self_in(static_cast<std::size_t>(k_));
      return;
    }

    for (const MessageView& msg : inbox) {
      if (msg.words.empty() || msg.words[0] != kTagEntry) continue;
      DSND_CHECK(msg.words.size() == 4, "malformed LS entry message");
      LsEntry entry;
      entry.id = static_cast<VertexId>(msg.words[1]);
      entry.radius = static_cast<std::int32_t>(msg.words[2]);
      entry.dist = static_cast<std::int32_t>(msg.words[3]);
      if (insert(vi, entry) && step < k_) forward(v, entry, out);
    }

    if (step < k_) return;

    // Deciding step: the frontier's first entry is the min-id broadcast
    // that reached this vertex; retained iff strictly inside its radius.
    DSND_CHECK(!frontier_[vi].empty(), "own broadcast must be present");
    const LsEntry winner = frontier_[vi].front();
    if (winner.dist < winner.radius) {
      chosen_center_[vi] = winner.id;
      chosen_phase_[vi] = phase;
      alive_[vi] = 0;
      ++accum.carved;
      out.send_to_all_neighbors({kTagLeave});
    } else {
      // Survivors sample again at the next phase's step 0.
      out.wake_self_in(1);
    }
  }

  bool finished() const override { return remaining() == 0; }

  CarveResult build_result() const {
    CarveResult result;
    const auto n = static_cast<std::size_t>(graph_->num_vertices());
    const std::int32_t phases_used = accum_.fold(
        0, [](std::int32_t acc, const Accum& a) {
          return std::max(acc, a.phases_used);
        });
    result.clustering = Clustering(graph_->num_vertices());
    result.phases_used = phases_used;
    result.max_sampled_radius = static_cast<double>(accum_.fold(
        0, [](std::int32_t acc, const Accum& a) {
          return std::max(acc, a.max_radius);
        }));
    result.rounds = static_cast<std::int64_t>(phases_used) * (k_ + 1);
    result.carved_per_phase.assign(
        static_cast<std::size_t>(phases_used), 0);
    // One bucketing pass keeps the deterministic (phase, vertex-id)
    // cluster order at O(n + phases) instead of O(n * phases).
    std::vector<std::vector<VertexId>> members_per_phase(
        static_cast<std::size_t>(phases_used));
    for (std::size_t v = 0; v < n; ++v) {
      if (chosen_phase_[v] >= 0) {
        members_per_phase[static_cast<std::size_t>(chosen_phase_[v])]
            .push_back(static_cast<VertexId>(v));
      }
    }
    std::vector<ClusterId> cluster_of_center(n, kNoCluster);
    for (std::int32_t phase = 0; phase < phases_used; ++phase) {
      for (const VertexId v : members_per_phase[static_cast<std::size_t>(
               phase)]) {
        ++result.carved_per_phase[static_cast<std::size_t>(phase)];
        const auto center = static_cast<std::size_t>(
            chosen_center_[static_cast<std::size_t>(v)]);
        if (cluster_of_center[center] == kNoCluster ||
            result.clustering.color_of(cluster_of_center[center]) !=
                phase) {
          cluster_of_center[center] = result.clustering.add_cluster(
              static_cast<VertexId>(center), phase);
        }
        result.clustering.assign(v, cluster_of_center[center]);
      }
    }
    return result;
  }

  VertexId remaining() const {
    const VertexId carved = accum_.fold(
        VertexId{0},
        [](VertexId acc, const Accum& a) { return acc + a.carved; });
    return graph_->num_vertices() - carved;
  }
  std::size_t max_frontier_size() const {
    std::size_t result = 0;
    for (const auto& f : frontier_) result = std::max(result, f.size());
    return result;
  }

 private:
  /// Pareto insert: keep ids ascending with strictly increasing remaining
  /// range. Returns true if the entry was inserted (needs forwarding).
  bool insert(std::size_t vi, const LsEntry& entry) {
    auto& frontier = frontier_[vi];
    // Position of the first kept entry with id >= entry.id.
    std::size_t pos = 0;
    while (pos < frontier.size() && frontier[pos].id < entry.id) ++pos;
    if (pos < frontier.size() && frontier[pos].id == entry.id) {
      // Synchronous flooding delivers each id first along a shortest
      // path, so a duplicate can never improve the stored distance.
      return false;
    }
    // Dominated by a smaller id with at least as much range?
    if (pos > 0 && frontier[pos - 1].remaining() >= entry.remaining()) {
      return false;
    }
    // Evict larger ids the new entry dominates.
    std::size_t last = pos;
    while (last < frontier.size() &&
           frontier[last].remaining() <= entry.remaining()) {
      ++last;
    }
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pos),
                   frontier.begin() + static_cast<std::ptrdiff_t>(last));
    frontier.insert(frontier.begin() + static_cast<std::ptrdiff_t>(pos),
                    entry);
    return true;
  }

  void forward(VertexId v, const LsEntry& entry, Outbox& out) {
    if (entry.dist + 1 > entry.radius) return;  // range exhausted
    for (VertexId w : graph_->neighbors(v)) {
      out.send(w, {kTagEntry, static_cast<std::uint64_t>(entry.id),
                   static_cast<std::uint64_t>(entry.radius),
                   static_cast<std::uint64_t>(entry.dist + 1)});
    }
  }

  /// Per-worker aggregate slice (support/per_worker.hpp): monotone
  /// fields folded on the driving thread, no cross-core contention.
  struct Accum {
    VertexId carved = 0;
    std::int32_t phases_used = 0;
    std::int32_t max_radius = 0;
  };

  const std::uint64_t seed_;
  const std::int32_t k_;
  const double p_;
  const Graph* graph_ = nullptr;
  std::vector<char> alive_;
  std::vector<std::vector<LsEntry>> frontier_;
  std::vector<VertexId> chosen_center_;
  std::vector<std::int32_t> chosen_phase_;
  PerWorker<Accum> accum_;
};

}  // namespace

DistributedLsRun linial_saks_distributed(const Graph& g,
                                         const LinialSaksOptions& options,
                                         const EngineOptions& engine_options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  const VertexId n = g.num_vertices();
  const std::int32_t k = std::max(resolve_k(n, options.k), 2);
  const double p = linial_saks_p(n, k);
  const auto lambda = static_cast<std::int32_t>(std::ceil(
      std::pow(static_cast<double>(n), 1.0 / k) *
          std::log(static_cast<double>(std::max<VertexId>(n, 2))) +
      1.0));

  LinialSaksProtocol protocol(options.seed, k, p);
  SyncEngine engine(g, engine_options);
  const std::size_t max_rounds =
      (static_cast<std::size_t>(lambda) * 16 +
       static_cast<std::size_t>(n) + 64) *
      (static_cast<std::size_t>(k) + 1);
  DistributedLsRun result;
  result.sim = engine.run(protocol, max_rounds);
  DSND_CHECK(protocol.remaining() == 0,
             "distributed Linial–Saks failed to exhaust the graph");
  result.run.carve = protocol.build_result();
  result.run.carve.target_phases = lambda;
  result.run.carve.exhausted_within_target =
      result.run.carve.phases_used <= lambda;
  result.run.k = static_cast<double>(k);
  result.run.c = 1.0;
  result.run.bounds.strong_diameter = 2.0 * k - 2.0;  // weak bound
  result.run.bounds.colors = static_cast<double>(lambda);
  result.run.bounds.rounds = static_cast<double>(lambda) * k;
  result.run.bounds.success_probability = 0.5;
  return result;
}

}  // namespace dsnd
