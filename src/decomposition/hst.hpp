// Hierarchically separated tree (HST) embeddings from nested padded
// partitions — the [Bar96] direction the paper discusses: Bartal showed
// the Linial–Saks decomposition technique yields probabilistic tree
// embeddings; this paper imports the reverse (MPX padded partitions ->
// strong decompositions). Here we compose the library's MPX partitioner
// into the classic top-down hierarchy:
//
//   level i_max: connected components;
//   level i:     each level-(i+1) cluster is re-partitioned by MPX with
//                beta_i ~ ln(cn)/2^i, targeting diameter O(2^i log n);
//   level 0:     singletons.
//
// Tree distances DOMINATE graph distances by construction: the edge from
// a child to its parent weighs half the parent cluster's measured strong
// diameter (>= 1/2), so d_T(u, v) >= diam(smallest common cluster)
// >= d_G(u, v). The interesting quantity is the expected stretch
// E[d_T / d_G], which Bartal-style analyses bound by O(log^2 n) — bench
// E13 measures its empirical shape.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

struct HstOptions {
  /// Failure parameter feeding beta_i = ln(c*n)/2^i (clamped to >= 1e-6).
  double c = 4.0;
  std::uint64_t seed = 1;
};

class HstTree {
 public:
  /// Tree distance between two vertices; infinity (-1) across components.
  double distance(VertexId u, VertexId v) const;

  VertexId num_vertices() const {
    return static_cast<VertexId>(leaf_of_.size());
  }
  std::int32_t num_nodes() const {
    return static_cast<std::int32_t>(parent_.size());
  }
  std::int32_t num_levels() const { return num_levels_; }

  std::int32_t parent(std::int32_t node) const { return parent_.at(
      static_cast<std::size_t>(node)); }
  double edge_weight(std::int32_t node) const { return weight_.at(
      static_cast<std::size_t>(node)); }
  std::int32_t leaf_of(VertexId v) const { return leaf_of_.at(
      static_cast<std::size_t>(v)); }

 private:
  friend HstTree build_hst(const Graph& g, const HstOptions& options);

  std::vector<std::int32_t> parent_;  // -1 at roots
  std::vector<double> weight_;        // edge to parent
  std::vector<std::int32_t> leaf_of_;
  std::int32_t num_levels_ = 0;
};

HstTree build_hst(const Graph& g, const HstOptions& options);

struct StretchReport {
  double mean = 0.0;
  double max = 0.0;
  /// Sampled over up to `pairs` random connected vertex pairs.
  std::int64_t pairs = 0;
  /// True iff d_T >= d_G held for every sampled pair (must always hold).
  bool dominating = true;
};

/// Samples vertex pairs and reports d_T / d_G statistics.
StretchReport measure_hst_stretch(const Graph& g, const HstTree& tree,
                                  std::int64_t pairs, std::uint64_t seed);

}  // namespace dsnd
