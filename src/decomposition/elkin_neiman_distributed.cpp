#include "decomposition/elkin_neiman_distributed.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace dsnd {

namespace {

/// Shared tail: run the schedule through the generic protocol and attach
/// the theorem bounds.
DistributedRun run_distributed(const Graph& g, const CarveParams& params,
                               double k, double c,
                               const TheoremBounds& bounds,
                               const EngineOptions& engine_options) {
  DistributedCarveResult result =
      carve_decomposition_distributed(g, params, engine_options);
  DistributedRun run;
  run.sim = result.sim;
  run.run.carve = std::move(result.carve);
  run.run.k = k;
  run.run.c = c;
  run.run.bounds = bounds;
  return run;
}

}  // namespace

DistributedRun elkin_neiman_distributed(const Graph& g,
                                        const ElkinNeimanOptions& options,
                                        const EngineOptions& engine_options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DSND_REQUIRE(options.margin == 1.0,
               "the distributed protocol implements the paper's margin of 1");
  DSND_REQUIRE(options.run_to_completion,
               "the distributed protocol always carves to completion");
  const VertexId n = g.num_vertices();
  const std::int32_t k = resolve_k(n, options.k);
  const double beta = elkin_neiman_beta(n, k, options.c);
  const std::int32_t lambda = elkin_neiman_target_phases(n, k, options.c);

  CarveParams params;
  params.betas.assign(static_cast<std::size_t>(lambda), beta);
  params.phase_rounds = k;
  params.margin = 1.0;
  params.radius_overflow_at = static_cast<double>(k) + 1.0;
  params.seed = options.seed;

  TheoremBounds bounds;
  bounds.strong_diameter = 2.0 * k - 2.0;
  bounds.colors = static_cast<double>(lambda);
  bounds.rounds = static_cast<double>(k) * static_cast<double>(lambda);
  bounds.success_probability = 1.0 - 3.0 / options.c;
  return run_distributed(g, params, static_cast<double>(k), options.c,
                         bounds, engine_options);
}

DistributedRun multistage_distributed(const Graph& g,
                                      const MultistageOptions& options,
                                      const EngineOptions& engine_options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DSND_REQUIRE(options.run_to_completion,
               "the distributed protocol always carves to completion");
  const VertexId n = g.num_vertices();
  const std::int32_t k = resolve_k(n, options.k);
  const double cn = options.c * static_cast<double>(n);

  CarveParams params;
  params.betas = multistage_beta_schedule(n, k, options.c);
  params.phase_rounds = k;
  params.margin = 1.0;
  params.radius_overflow_at = static_cast<double>(k) + 1.0;
  params.seed = options.seed;

  TheoremBounds bounds;
  bounds.strong_diameter = 2.0 * k - 2.0;
  bounds.colors = 4.0 * k * std::pow(cn, 1.0 / static_cast<double>(k));
  bounds.rounds = (static_cast<double>(k) + 1.0) * bounds.colors;
  bounds.success_probability = 1.0 - 5.0 / options.c;
  return run_distributed(g, params, static_cast<double>(k), options.c,
                         bounds, engine_options);
}

DistributedRun high_radius_distributed(const Graph& g,
                                       const HighRadiusOptions& options,
                                       const EngineOptions& engine_options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DSND_REQUIRE(options.run_to_completion,
               "the distributed protocol always carves to completion");
  const VertexId n = g.num_vertices();
  const double k = high_radius_k(n, options.lambda, options.c);
  const double cn = options.c * static_cast<double>(n);
  const double beta = std::log(cn) / k;

  CarveParams params;
  params.betas.assign(static_cast<std::size_t>(options.lambda), beta);
  params.phase_rounds = static_cast<std::int32_t>(std::ceil(k));
  params.margin = 1.0;
  params.radius_overflow_at = k + 1.0;
  params.seed = options.seed;

  TheoremBounds bounds;
  bounds.strong_diameter = 2.0 * k;
  bounds.colors = static_cast<double>(options.lambda);
  bounds.rounds = static_cast<double>(options.lambda) * k;
  bounds.success_probability = 1.0 - 3.0 / options.c;
  return run_distributed(g, params, k, options.c, bounds, engine_options);
}

}  // namespace dsnd
