#include "decomposition/elkin_neiman_distributed.hpp"

#include "service/decomposition_service.hpp"
#include "support/assert.hpp"

namespace dsnd {

namespace {

/// The distributed protocol supports only the paper's exact rule set;
/// the ablation knobs (margin, early stop) are centralized-only.
void require_protocol_mode(const Graph& g, bool run_to_completion) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DSND_REQUIRE(run_to_completion,
               "the distributed protocol always carves to completion");
}

}  // namespace

DistributedRun elkin_neiman_distributed(const Graph& g,
                                        const ElkinNeimanOptions& options,
                                        const EngineOptions& engine_options) {
  require_protocol_mode(g, options.run_to_completion);
  DSND_REQUIRE(options.margin == 1.0,
               "the distributed protocol implements the paper's margin of 1");
  // Routed through the service layer (decomposition_service.hpp); the
  // CarveContext& overload below stays the direct parity ground truth.
  return DecompositionService::run_once_distributed(
      g,
      with_overflow_policy(
          theorem1_schedule(g.num_vertices(), options.k, options.c),
          options.overflow_policy, options.max_retries_per_phase),
      options.seed, engine_options);
}

DistributedRun multistage_distributed(const Graph& g,
                                      const MultistageOptions& options,
                                      const EngineOptions& engine_options) {
  require_protocol_mode(g, options.run_to_completion);
  return DecompositionService::run_once_distributed(
      g,
      with_overflow_policy(
          theorem2_schedule(g.num_vertices(), options.k, options.c),
          options.overflow_policy, options.max_retries_per_phase),
      options.seed, engine_options);
}

DistributedRun high_radius_distributed(const Graph& g,
                                       const HighRadiusOptions& options,
                                       const EngineOptions& engine_options) {
  require_protocol_mode(g, options.run_to_completion);
  return DecompositionService::run_once_distributed(
      g,
      with_overflow_policy(
          theorem3_schedule(g.num_vertices(), options.lambda, options.c),
          options.overflow_policy, options.max_retries_per_phase),
      options.seed, engine_options);
}

DistributedRun elkin_neiman_distributed(CarveContext& context,
                                        const ElkinNeimanOptions& options) {
  const Graph& g = context.engine().graph();
  require_protocol_mode(g, options.run_to_completion);
  DSND_REQUIRE(options.margin == 1.0,
               "the distributed protocol implements the paper's margin of 1");
  return run_schedule_distributed(
      context,
      with_overflow_policy(
          theorem1_schedule(g.num_vertices(), options.k, options.c),
          options.overflow_policy, options.max_retries_per_phase),
      options.seed);
}

DistributedRun multistage_distributed(CarveContext& context,
                                      const MultistageOptions& options) {
  const Graph& g = context.engine().graph();
  require_protocol_mode(g, options.run_to_completion);
  return run_schedule_distributed(
      context,
      with_overflow_policy(
          theorem2_schedule(g.num_vertices(), options.k, options.c),
          options.overflow_policy, options.max_retries_per_phase),
      options.seed);
}

DistributedRun high_radius_distributed(CarveContext& context,
                                       const HighRadiusOptions& options) {
  const Graph& g = context.engine().graph();
  require_protocol_mode(g, options.run_to_completion);
  return run_schedule_distributed(
      context,
      with_overflow_policy(
          theorem3_schedule(g.num_vertices(), options.lambda, options.c),
          options.overflow_policy, options.max_retries_per_phase),
      options.seed);
}

}  // namespace dsnd
