// The beta-schedule abstraction at the heart of the decomposition layer.
//
// All three theorems of the paper are ONE carving process (carving.hpp)
// instantiated with different beta schedules:
//
//   - Theorem 1: lambda phases at constant beta = ln(cn)/k;
//   - Theorem 2: stage-decaying beta_i = ln(cn/e^i)/k, s_i phases each;
//   - Theorem 3: lambda phases at beta = (cn)^{-1/lambda} with a
//     real-valued radius parameter k = (cn)^{1/lambda} ln(cn).
//
// CarveSchedule captures everything a run needs *except* the seed: the
// per-phase betas, the per-phase broadcast round budget (ceil(k)), the
// Lemma 1 overflow threshold, and the bounds the theorem promises. Both
// execution backends consume the same schedule:
//
//   run_schedule(g, schedule, seed)              centralized reference
//   run_schedule_distributed(g, schedule, seed)  CONGEST protocol
//                                                (carving_protocol.hpp)
//
// and produce bit-identical clusterings on the same seed, so the bounds
// and parameters are derived exactly once per theorem — the theorem
// factories theorem{1,2,3}_schedule() declared next to their centralized
// drivers (elkin_neiman.hpp, multistage.hpp, high_radius.hpp) are the
// single source of truth the wrappers, benches, and tests all share.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decomposition/carving.hpp"
#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

/// Bounds promised by whichever theorem parameterized the run; benches
/// print measured-vs-bound and tests assert the measured side.
struct TheoremBounds {
  double strong_diameter = 0.0;
  double colors = 0.0;
  /// The theorem's whp round bound. Under the Las Vegas recarve loop
  /// (OverflowPolicy::kRetry) a run may additionally spend
  /// CarveResult::extra_rounds replaying overflowed phases; compare
  /// measured rounds against rounds_with_retries(run.extra_rounds) so
  /// the round-complexity claim stays honest.
  double rounds = 0.0;
  double success_probability = 0.0;

  /// The bound a specific Las Vegas run must meet: the whp bound plus
  /// the rounds its recarve retries actually consumed.
  double rounds_with_retries(std::int64_t extra_rounds) const {
    return rounds + static_cast<double>(extra_rounds);
  }
};

/// A fully derived carving schedule: the per-phase betas plus everything
/// the theorems promise about running them. Seed-independent, so one
/// schedule can drive many runs (and both backends).
struct CarveSchedule {
  /// Human-readable tag ("theorem1(k=4, c=4)") for traces and benches.
  std::string name;
  /// beta for phase t; phases beyond the schedule (run_to_completion
  /// overtime) reuse betas.back().
  std::vector<double> betas;
  /// Broadcast rounds per phase: ceil(k). Together with the membership
  /// announcement each phase occupies phase_rounds + 1 simulated rounds.
  std::int32_t phase_rounds = 1;
  /// Lemma 1's bad-event threshold (the paper's k + 1).
  double radius_overflow_at = 2.0;
  /// Recovery discipline when the bad event fires (see OverflowPolicy):
  /// kRetry makes every run's output valid unconditionally (Las Vegas);
  /// kTruncate preserves the historical flag-and-proceed behavior for
  /// ablations.
  OverflowPolicy overflow_policy = OverflowPolicy::kRetry;
  /// Resample budget per phase under kRetry.
  std::int32_t max_retries_per_phase = kDefaultMaxRetriesPerPhase;
  /// Whole-run restart budget for run_schedule_distributed's
  /// verify-and-recover loop under a LOSSY transport: an attempt whose
  /// output fails validation (or ends in a named engine failure) is
  /// retried with a run-salted seed up to this many times. Irrelevant —
  /// and never consulted — on reliable transports.
  std::int32_t max_run_retries = 4;
  /// Checkpoint-rollback budget for the same recovery loop: a failed
  /// attempt first restores the last validated phase-boundary checkpoint
  /// and replays only the suffix phases on a rollback-salted seed
  /// (stream_seed(seed, 2, rollback)), falling back to whole-run retries
  /// only when this budget is exhausted or no checkpoint exists yet.
  /// 0 disables rollback recovery entirely (the PR 7 retry-only loop).
  /// Never consulted on reliable transports.
  std::int32_t max_rollbacks = 8;
  /// Effective radius parameter (integer k for Theorems 1-2; the derived
  /// real k = (cn)^{1/lambda} ln(cn) for Theorem 3).
  double k = 0.0;
  /// Failure parameter; success probability is 1 - O(1)/c.
  double c = 0.0;
  TheoremBounds bounds;

  /// The scheduled number of phases (the theorem's color budget lambda).
  std::int32_t target_phases() const {
    return static_cast<std::int32_t>(betas.size());
  }

  /// Lowers the schedule to the carving core's parameter struct. margin
  /// and run_to_completion are run-time knobs (the E9 ablation and the
  /// success-event experiments), not part of the schedule itself.
  CarveParams params(std::uint64_t seed, bool run_to_completion = true,
                     double margin = 1.0) const;

  /// The named-failure round budget run_schedule_distributed derives for
  /// an n-vertex run when EngineOptions::max_rounds is left 0: the
  /// theorem's whp bound with a full per-phase retry budget, plus
  /// run-to-completion overtime slack (at worst one carved vertex per
  /// phase). Generous enough that no legitimate run ever hits it; a run
  /// that does gets RunStatus::kRoundBudgetExhausted instead of
  /// spinning. A schedule-level method so a reusable engine/context can
  /// apply it per run instead of baking it into the engine's options.
  std::size_t round_budget(VertexId num_vertices) const;
};

/// Applies an entry point's overflow-recovery knobs to a derived
/// schedule — the one place options-level policy meets the schedule, so
/// every theorem wrapper (centralized and distributed) stays in sync.
inline CarveSchedule with_overflow_policy(CarveSchedule schedule,
                                          OverflowPolicy policy,
                                          std::int32_t max_retries_per_phase) {
  schedule.overflow_policy = policy;
  schedule.max_retries_per_phase = max_retries_per_phase;
  return schedule;
}

struct DecompositionRun {
  CarveResult carve;
  TheoremBounds bounds;
  /// Copied from the schedule (see CarveSchedule::k / ::c).
  double k = 0.0;
  double c = 0.0;

  const Clustering& clustering() const { return carve.clustering; }
};

/// Executes the schedule with the centralized carver and attaches the
/// schedule's bounds. The CONGEST twin is run_schedule_distributed()
/// (carving_protocol.hpp); on the same seed the two are bit-identical.
DecompositionRun run_schedule(const Graph& g, const CarveSchedule& schedule,
                              std::uint64_t seed,
                              bool run_to_completion = true,
                              double margin = 1.0);

}  // namespace dsnd
