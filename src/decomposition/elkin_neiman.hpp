// Theorem 1 of the paper: for 1 <= k <= ln n and c > 3, a randomized
// strong (2k-2, (cn)^{1/k} ln(cn)) network decomposition computed in
// k (cn)^{1/k} ln(cn) rounds with probability >= 1 - 3/c, with O(1)-word
// messages. With k = ceil(ln n) this is the paper's headline strong
// (O(log n), O(log n)) decomposition in O(log^2 n) rounds.
//
// This is the centralized reference implementation: it executes the same
// random process as the CONGEST protocol (elkin_neiman_distributed.hpp)
// on the same seed and produces bit-identical clusterings.
#pragma once

#include <cstdint>

#include "decomposition/carving.hpp"
#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

/// Bounds promised by whichever theorem parameterized the run; benches
/// print measured-vs-bound and tests assert the measured side.
struct TheoremBounds {
  double strong_diameter = 0.0;
  double colors = 0.0;
  double rounds = 0.0;
  double success_probability = 0.0;
};

struct DecompositionRun {
  CarveResult carve;
  TheoremBounds bounds;
  /// Effective radius parameter (integer k for Theorems 1-2; the derived
  /// real k = (cn)^{1/lambda} ln(cn) for Theorem 3).
  double k = 0.0;
  double c = 0.0;

  const Clustering& clustering() const { return carve.clustering; }
};

struct ElkinNeimanOptions {
  /// Radius parameter; 0 selects ceil(ln n) (the headline regime).
  std::int32_t k = 0;
  /// Failure parameter; success probability is 1 - 3/c. Must exceed 3 for
  /// the theorem to be nontrivial, but any positive value runs.
  double c = 4.0;
  std::uint64_t seed = 1;
  /// Join margin (paper: 1). Exposed only for the E9 ablation; values
  /// below 1 void the strong-diameter guarantee.
  double margin = 1.0;
  /// Keep carving past lambda phases until the partition is complete
  /// (success of the theorem = not needing to).
  bool run_to_completion = true;
};

/// The number of phases lambda = ceil((cn)^{1/k} ln(cn)) of Theorem 1.
std::int32_t elkin_neiman_target_phases(VertexId n, std::int32_t k, double c);

/// beta = ln(cn) / k.
double elkin_neiman_beta(VertexId n, std::int32_t k, double c);

/// Resolves options.k == 0 to ceil(ln n) (at least 1).
std::int32_t resolve_k(VertexId n, std::int32_t k);

DecompositionRun elkin_neiman_decomposition(const Graph& g,
                                            const ElkinNeimanOptions& options);

}  // namespace dsnd
