// Theorem 1 of the paper: for 1 <= k <= ln n and c > 3, a randomized
// strong (2k-2, (cn)^{1/k} ln(cn)) network decomposition computed in
// k (cn)^{1/k} ln(cn) rounds with probability >= 1 - 3/c, with O(1)-word
// messages. With k = ceil(ln n) this is the paper's headline strong
// (O(log n), O(log n)) decomposition in O(log^2 n) rounds.
//
// theorem1_schedule() derives the constant-beta carve schedule and the
// promised bounds once; elkin_neiman_decomposition() runs it on the
// centralized carver and elkin_neiman_distributed() (see
// elkin_neiman_distributed.hpp) runs the *same* schedule as a CONGEST
// protocol — bit-identical clusterings on the same seed.
#pragma once

#include <cstdint>

#include "decomposition/carve_schedule.hpp"
#include "decomposition/carving.hpp"
#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct ElkinNeimanOptions {
  /// Radius parameter; 0 selects ceil(ln n) (the headline regime).
  std::int32_t k = 0;
  /// Failure parameter; success probability is 1 - 3/c. Must exceed 3 for
  /// the theorem to be nontrivial, but any positive value runs.
  double c = 4.0;
  std::uint64_t seed = 1;
  /// Join margin (paper: 1). Exposed only for the E9 ablation; values
  /// below 1 void the strong-diameter guarantee.
  double margin = 1.0;
  /// Keep carving past lambda phases until the partition is complete
  /// (success of the theorem = not needing to).
  bool run_to_completion = true;
  /// Lemma 1 recovery (see OverflowPolicy): the default Las Vegas
  /// recarve loop makes the output valid unconditionally; kTruncate is
  /// the flag-and-proceed ablation escape hatch.
  OverflowPolicy overflow_policy = OverflowPolicy::kRetry;
  std::int32_t max_retries_per_phase = kDefaultMaxRetriesPerPhase;
};

/// The number of phases lambda = ceil((cn)^{1/k} ln(cn)) of Theorem 1.
std::int32_t elkin_neiman_target_phases(VertexId n, std::int32_t k, double c);

/// beta = ln(cn) / k.
double elkin_neiman_beta(VertexId n, std::int32_t k, double c);

/// Resolves options.k == 0 to ceil(ln n) (at least 1).
std::int32_t resolve_k(VertexId n, std::int32_t k);

/// Theorem 1's schedule: lambda phases at constant beta = ln(cn)/k, k
/// broadcast rounds per phase, with the theorem's bounds attached.
/// k == 0 selects ceil(ln n).
CarveSchedule theorem1_schedule(VertexId n, std::int32_t k, double c);

DecompositionRun elkin_neiman_decomposition(const Graph& g,
                                            const ElkinNeimanOptions& options);

}  // namespace dsnd
