// Padding analysis: how deep inside its cluster does each vertex sit?
//
//   pad(v) = min { d_G(v, u) : u in a different cluster }.
//
// Padded partitions are where the paper's core technique comes from
// (Miller–Peng–Xu built them; Elkin–Neiman turned them into strong
// network decompositions). The MPX guarantee is that pad(v) >= t with
// probability >= 1 - O(beta * t) for each vertex — verified in bench E6
// and the property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

/// Marker: vertex's component is entirely inside one cluster (no outside
/// vertex reachable), i.e. padding is infinite.
inline constexpr std::int32_t kInfinitePadding = -1;

/// Per-vertex padding distances. Requires a complete partition.
///
/// Implementation note: pad(v) = 1 + d(v, B) where B is the set of
/// boundary vertices (those with an edge into another cluster); the
/// nearest outside vertex is always reached through a boundary vertex of
/// one's own cluster, or is itself adjacent (pad = 1).
std::vector<std::int32_t> padding_distances(const Graph& g,
                                            const Clustering& clustering);

struct PaddingReport {
  double mean = 0.0;
  std::int32_t min = 0;
  std::int32_t max = 0;  // finite max; kInfinitePadding entries excluded
  /// fraction of vertices with pad(v) >= t for t = 1, 2, ... (index t-1).
  std::vector<double> survival;
  VertexId infinite_count = 0;
};

PaddingReport analyze_padding(const Graph& g, const Clustering& clustering);

}  // namespace dsnd
