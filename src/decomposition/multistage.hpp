// Theorem 2 of the paper (Section 2.1, "Improved Number of Blocks"):
// for 1 <= k <= ln n and c > 5, a strong (2k-2, 4k(cn)^{1/k}) network
// decomposition in O(k^2 (cn)^{1/k}) rounds with probability >= 1 - 5/c.
//
// Identical carving machinery, but the exponential parameter decays over
// stages: stage i runs s_i = ceil(2 (cn/e^i)^{1/k}) phases with
// beta_i = ln(cn/e^i)/k, for i = 0..floor(ln n). Smaller beta raises the
// per-phase join probability, so later (sparser) stages finish in fewer
// phases and the total color count drops from (cn)^{1/k} ln(cn) to
// 4k (cn)^{1/k}.
//
// theorem2_schedule() packages the decaying schedule + bounds;
// multistage_decomposition() is the centralized run and
// multistage_distributed() (elkin_neiman_distributed.hpp) the CONGEST
// run of the same schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "decomposition/carve_schedule.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct MultistageOptions {
  std::int32_t k = 0;  // 0 = ceil(ln n)
  double c = 6.0;      // success probability 1 - 5/c
  std::uint64_t seed = 1;
  bool run_to_completion = true;
  /// Lemma 1 recovery (see OverflowPolicy / ElkinNeimanOptions).
  OverflowPolicy overflow_policy = OverflowPolicy::kRetry;
  std::int32_t max_retries_per_phase = kDefaultMaxRetriesPerPhase;
};

/// The per-phase beta schedule of Theorem 2 (one entry per phase).
std::vector<double> multistage_beta_schedule(VertexId n, std::int32_t k,
                                             double c);

/// Theorem 2's schedule: the stage-decaying betas above with k broadcast
/// rounds per phase and the theorem's bounds. k == 0 selects ceil(ln n).
CarveSchedule theorem2_schedule(VertexId n, std::int32_t k, double c);

DecompositionRun multistage_decomposition(const Graph& g,
                                          const MultistageOptions& options);

}  // namespace dsnd
