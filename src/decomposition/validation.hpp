// Brute-force honest validators for network decompositions. These are the
// ground truth the tests and benches assert against: strong diameter by
// per-cluster BFS inside the induced subgraph, weak diameter by BFS in
// the whole graph, supergraph coloring edge-by-edge.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

/// Marker for "infinite" diameter (disconnected cluster).
inline constexpr std::int32_t kInfiniteDiameter = -1;

struct ClusterShape {
  VertexId size = 0;
  bool connected = false;
  /// Diameter of the induced subgraph G(C); kInfiniteDiameter if C is
  /// disconnected in G(C).
  std::int32_t strong_diameter = 0;
  /// max_{u,v in C} d_G(u, v) — finite whenever C lies in one component
  /// of G; kInfiniteDiameter otherwise.
  std::int32_t weak_diameter = 0;
  /// Largest induced-subgraph distance from the cluster's center to a
  /// member; kInfiniteDiameter if some member is unreachable (or the
  /// center is outside the cluster, which Claim 3 forbids).
  std::int32_t radius_from_center = 0;
};

ClusterShape analyze_cluster(const Graph& g,
                             std::span<const VertexId> members,
                             VertexId center);

struct DecompositionReport {
  bool complete = false;               // every vertex clustered
  bool proper_phase_coloring = false;  // per-cluster colors proper on G(P)
  std::int32_t num_clusters = 0;
  std::int32_t num_colors = 0;
  std::int32_t disconnected_clusters = 0;
  bool all_clusters_connected = false;
  /// Max over clusters; kInfiniteDiameter if any cluster is disconnected.
  std::int32_t max_strong_diameter = 0;
  std::int32_t max_weak_diameter = 0;
  std::int32_t max_radius_from_center = 0;
  double avg_cluster_size = 0.0;
  VertexId max_cluster_size = 0;

  /// True when this is a valid strong (diameter_bound, color_bound)
  /// network decomposition.
  bool is_strong_decomposition(std::int32_t diameter_bound,
                               std::int32_t color_bound) const;
  /// Same with the weak-diameter notion.
  bool is_weak_decomposition(std::int32_t diameter_bound,
                             std::int32_t color_bound) const;
};

/// Full validation pass. compute_weak toggles the O(n*m) weak-diameter
/// sweep (the strong sweep is cheap because clusters are small).
DecompositionReport validate_decomposition(const Graph& g,
                                           const Clustering& clustering,
                                           bool compute_weak = true);

}  // namespace dsnd
