// Honest validators for network decompositions, in two tiers.
//
// validate_decomposition is the brute-force ground truth the tests and
// benches assert against: exact strong diameter by all-source BFS inside
// every cluster, weak diameter by BFS in the whole graph, supergraph
// coloring edge-by-edge. Per-cluster work is all-pairs, so it is
// O(sum_C |C| * (|C| + m_C)) — fine for bench-sized graphs, hopeless at
// engine scale.
//
// validate_decomposition_fast is the O(n + m) batch tier for the
// million-vertex engine runs: two restricted BFS sweeps per cluster over
// shared scratch arrays (no induced-subgraph copies, no per-cluster
// allocations). It checks completeness, the phase coloring, connectivity
// and center radius *exactly*, and brackets the strong diameter between
// a double-sweep lower bound and the 2 * radius upper bound — the upper
// bound is precisely the certificate the paper's Claim 3 provides
// (radius <= k-1 from the center gives strong diameter <= 2k-2), so
// is_strong_decomposition() on the fast report is a sound, conservative
// check of the theorems' guarantees.
//
// Neither tier copies subgraphs: BFS is restricted by comparing cluster
// ids (batch paths) or a membership mask (the single-cluster
// analyze_cluster API).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

/// Marker for "infinite" diameter (disconnected cluster).
inline constexpr std::int32_t kInfiniteDiameter = -1;

struct ClusterShape {
  VertexId size = 0;
  bool connected = false;
  /// Diameter of the induced subgraph G(C); kInfiniteDiameter if C is
  /// disconnected in G(C).
  std::int32_t strong_diameter = 0;
  /// max_{u,v in C} d_G(u, v) — finite whenever C lies in one component
  /// of G; kInfiniteDiameter otherwise.
  std::int32_t weak_diameter = 0;
  /// Largest induced-subgraph distance from the cluster's center to a
  /// member; kInfiniteDiameter if some member is unreachable (or the
  /// center is outside the cluster, which Claim 3 forbids).
  std::int32_t radius_from_center = 0;
};

ClusterShape analyze_cluster(const Graph& g,
                             std::span<const VertexId> members,
                             VertexId center);

struct DecompositionReport {
  bool complete = false;               // every vertex clustered
  bool proper_phase_coloring = false;  // per-cluster colors proper on G(P)
  std::int32_t num_clusters = 0;
  std::int32_t num_colors = 0;
  std::int32_t disconnected_clusters = 0;
  bool all_clusters_connected = false;
  /// Max over clusters; kInfiniteDiameter if any cluster is disconnected.
  std::int32_t max_strong_diameter = 0;
  std::int32_t max_weak_diameter = 0;
  std::int32_t max_radius_from_center = 0;
  double avg_cluster_size = 0.0;
  VertexId max_cluster_size = 0;

  /// True when this is a valid strong (diameter_bound, color_bound)
  /// network decomposition.
  bool is_strong_decomposition(std::int32_t diameter_bound,
                               std::int32_t color_bound) const;
  /// Same with the weak-diameter notion.
  bool is_weak_decomposition(std::int32_t diameter_bound,
                             std::int32_t color_bound) const;
};

/// Full brute-force validation pass. compute_weak toggles the O(n*m)
/// weak-diameter sweep; the strong sweep (all-source BFS per cluster) and
/// the exact center radius always run.
DecompositionReport validate_decomposition(const Graph& g,
                                           const Clustering& clustering,
                                           bool compute_weak = true);

/// Exact strong diameter of every cluster (kInfiniteDiameter where
/// disconnected), computed in one batch of restricted BFS over shared
/// scratch — the all-pairs cost without any induced-subgraph copies.
std::vector<std::int32_t> cluster_strong_diameters(
    const Graph& g, const Clustering& clustering);

/// The O(n + m) report. Exact fields: completeness, coloring, counts,
/// connectivity, center radius, sizes. The strong diameter is bracketed:
///   strong_diameter_lower <= max_C diam(G(C)) <= strong_diameter_upper.
struct FastDecompositionReport {
  bool complete = false;
  bool proper_phase_coloring = false;
  std::int32_t num_clusters = 0;
  std::int32_t num_colors = 0;
  std::int32_t disconnected_clusters = 0;
  bool all_clusters_connected = false;
  /// Clusters whose recorded center is not one of their members. Only
  /// possible when truncated samples were accepted — i.e. under
  /// OverflowPolicy::kTruncate or a blown retry budget (CarveResult::
  /// radius_overflow); the default Las Vegas recarve loop replays
  /// overflowed phases, so its runs never produce these.
  std::int32_t centerless_clusters = 0;
  /// Exact max over clusters of the center's eccentricity in G(C);
  /// kInfiniteDiameter if any cluster is disconnected or centerless.
  std::int32_t max_radius_from_center = 0;
  /// Double-sweep lower bound on the max strong diameter (exact on trees).
  std::int32_t strong_diameter_lower = 0;
  /// 2 * center-radius upper bound — Claim 3's certificate.
  std::int32_t strong_diameter_upper = 0;
  double avg_cluster_size = 0.0;
  VertexId max_cluster_size = 0;

  /// Sound (conservative) strong-decomposition check: certifies via the
  /// upper bound, so `true` is always correct; a run that only just meets
  /// the bound may need the brute-force tier to confirm.
  bool is_strong_decomposition(std::int32_t diameter_bound,
                               std::int32_t color_bound) const;
};

/// Batch validator for engine-scale runs: O(n + m) total, two restricted
/// BFS sweeps per cluster over arena scratch shared across clusters.
FastDecompositionReport validate_decomposition_fast(
    const Graph& g, const Clustering& clustering);

}  // namespace dsnd
