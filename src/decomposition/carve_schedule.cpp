#include "decomposition/carve_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace dsnd {

CarveParams CarveSchedule::params(std::uint64_t seed,
                                  bool run_to_completion,
                                  double margin) const {
  DSND_REQUIRE(!betas.empty(), "carve schedule must be nonempty");
  CarveParams p;
  p.betas = betas;
  p.phase_rounds = phase_rounds;
  p.margin = margin;
  p.radius_overflow_at = radius_overflow_at;
  p.overflow_policy = overflow_policy;
  p.max_retries_per_phase = max_retries_per_phase;
  p.run_to_completion = run_to_completion;
  p.seed = seed;
  return p;
}

std::size_t CarveSchedule::round_budget(VertexId num_vertices) const {
  const auto phase_len =
      static_cast<std::size_t>(std::max(phase_rounds, 0)) + 1;
  const auto attempts =
      1 + static_cast<std::size_t>(std::max(max_retries_per_phase, 0));
  const double bound_rounds = bounds.rounds_with_retries(
      static_cast<std::int64_t>(attempts * phase_len));
  const std::size_t overtime =
      (static_cast<std::size_t>(num_vertices) + betas.size() + 16) *
      attempts * phase_len;
  return static_cast<std::size_t>(8.0 * std::max(bound_rounds, 0.0)) +
         overtime + 64;
}

DecompositionRun run_schedule(const Graph& g, const CarveSchedule& schedule,
                              std::uint64_t seed, bool run_to_completion,
                              double margin) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DecompositionRun run;
  run.carve =
      carve_decomposition(g, schedule.params(seed, run_to_completion, margin));
  run.bounds = schedule.bounds;
  run.k = schedule.k;
  run.c = schedule.c;
  return run;
}

}  // namespace dsnd
