#include "decomposition/carve_schedule.hpp"

#include "support/assert.hpp"

namespace dsnd {

CarveParams CarveSchedule::params(std::uint64_t seed,
                                  bool run_to_completion,
                                  double margin) const {
  DSND_REQUIRE(!betas.empty(), "carve schedule must be nonempty");
  CarveParams p;
  p.betas = betas;
  p.phase_rounds = phase_rounds;
  p.margin = margin;
  p.radius_overflow_at = radius_overflow_at;
  p.overflow_policy = overflow_policy;
  p.max_retries_per_phase = max_retries_per_phase;
  p.run_to_completion = run_to_completion;
  p.seed = seed;
  return p;
}

DecompositionRun run_schedule(const Graph& g, const CarveSchedule& schedule,
                              std::uint64_t seed, bool run_to_completion,
                              double margin) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DecompositionRun run;
  run.carve =
      carve_decomposition(g, schedule.params(seed, run_to_completion, margin));
  run.bounds = schedule.bounds;
  run.k = schedule.k;
  run.c = schedule.c;
  return run;
}

}  // namespace dsnd
