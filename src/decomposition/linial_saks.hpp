// The Linial–Saks (1993) randomized decomposition — the baseline the
// paper improves on. Produces a weak (2k-2, O(n^{1/k} log n)) network
// decomposition: per phase, every live vertex samples a truncated
// geometric radius r_v (Pr[r >= j] = p^j with p = n^{-1/k}, capped at
// k-1) and broadcasts (id, r_v) through the surviving graph; a vertex y
// joins the cluster of the minimum-id vertex v whose broadcast reached it
// (d_{G_t}(y, v) <= r_v), and is retained in the phase's block only if
// the inequality is strict (d < r_v).
//
// Clusters of one phase are pairwise non-adjacent (same argument as the
// paper's: an edge between two same-phase clusters would force both
// centers to reach both endpoints, contradicting min-id choice), so phase
// = color is a proper supergraph coloring. Crucially the guarantee is
// only on the WEAK diameter: a cluster need not be connected in its
// induced subgraph, and its strong diameter can be unbounded — the gap
// that motivates the paper, measured head-to-head in bench E5.
#pragma once

#include <cstdint>

#include "decomposition/elkin_neiman.hpp"
#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct LinialSaksOptions {
  std::int32_t k = 0;  // 0 = ceil(ln n); radius cap is k-1
  std::uint64_t seed = 1;
};

/// The LS93 radius distribution parameter p = n^{-1/k}.
double linial_saks_p(VertexId n, std::int32_t k);

/// Runs phases until the graph is exhausted. bounds.strong_diameter is
/// set to the WEAK diameter bound 2k-2 (that is all LS93 promises).
DecompositionRun linial_saks_decomposition(const Graph& g,
                                           const LinialSaksOptions& options);

}  // namespace dsnd
