#include "decomposition/covers.hpp"

#include <algorithm>
#include <queue>

#include "decomposition/validation.hpp"
#include "graph/power.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "support/assert.hpp"

namespace dsnd {

NeighborhoodCover build_neighborhood_cover(const Graph& g,
                                           const CoverOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DSND_REQUIRE(options.radius >= 1, "cover radius must be positive");

  NeighborhoodCover cover;
  cover.radius = options.radius;

  // 1. Decompose the (2W+1)-th power: same-colored clusters there are at
  //    G-distance >= 2W+2 from each other.
  const Graph power = graph_power(g, 2 * options.radius + 1);
  ElkinNeimanOptions en;
  en.k = options.k;
  en.c = options.c;
  en.seed = options.seed;
  cover.base = elkin_neiman_decomposition(power, en);
  const Clustering& clustering = cover.base.clustering();
  cover.num_colors = clustering.num_colors();

  // 2. Expand every cluster by W hops in G.
  cover.clusters = expand_clusters_to_cover(g, clustering, options.radius);
  return cover;
}

std::vector<CoverCluster> expand_clusters_to_cover(
    const Graph& g, const Clustering& clustering, std::int32_t radius) {
  DSND_REQUIRE(radius >= 1, "cover radius must be positive");
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering and graph vertex counts differ");
  // Multi-source BFS from each cluster's members, capped at `radius`.
  std::vector<CoverCluster> clusters;
  const ClusterMembers members = clustering.members_csr();
  clusters.reserve(static_cast<std::size_t>(clustering.num_clusters()));
  for (ClusterId c = 0; c < clustering.num_clusters(); ++c) {
    const auto core = members.of(c);
    const auto dist = multi_source_bfs(g, core);
    CoverCluster expanded;
    expanded.center = clustering.center_of(c);
    expanded.color = clustering.color_of(c);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const std::int32_t d = dist[static_cast<std::size_t>(v)];
      if (d != kUnreachable && d <= radius) {
        expanded.members.push_back(v);
      }
    }
    clusters.push_back(std::move(expanded));
  }
  return clusters;
}

CoverReport validate_cover(const Graph& g, const NeighborhoodCover& cover) {
  CoverReport report;
  const auto n = static_cast<std::size_t>(g.num_vertices());

  // Membership bitmaps per cluster for fast ball checks, plus overlap
  // counting and per-color disjointness.
  std::vector<std::vector<char>> in_cluster(cover.clusters.size(),
                                            std::vector<char>(n, 0));
  std::vector<std::int32_t> overlap(n, 0);
  std::int64_t total_size = 0;
  for (std::size_t i = 0; i < cover.clusters.size(); ++i) {
    for (const VertexId v : cover.clusters[i].members) {
      in_cluster[i][static_cast<std::size_t>(v)] = 1;
      ++overlap[static_cast<std::size_t>(v)];
    }
    total_size += static_cast<std::int64_t>(cover.clusters[i].members.size());
  }
  report.max_overlap = 0;
  for (const std::int32_t o : overlap) {
    report.max_overlap = std::max(report.max_overlap, o);
  }
  report.avg_cluster_size =
      cover.clusters.empty()
          ? 0.0
          : static_cast<double>(total_size) /
                static_cast<double>(cover.clusters.size());

  // (2) same-colored clusters disjoint.
  report.color_classes_disjoint = true;
  std::vector<std::vector<std::size_t>> by_color;
  for (std::size_t i = 0; i < cover.clusters.size(); ++i) {
    const auto color = static_cast<std::size_t>(cover.clusters[i].color);
    if (by_color.size() <= color) by_color.resize(color + 1);
    by_color[color].push_back(i);
  }
  for (const auto& group : by_color) {
    std::vector<char> seen(n, 0);
    for (const std::size_t i : group) {
      for (const VertexId v : cover.clusters[i].members) {
        if (seen[static_cast<std::size_t>(v)]) {
          report.color_classes_disjoint = false;
        }
        seen[static_cast<std::size_t>(v)] = 1;
      }
    }
  }

  // (1) every ball B(v, W) inside some cluster.
  report.all_balls_covered = true;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Collect B(v, W).
    std::vector<VertexId> ball;
    {
      std::vector<std::int32_t> dist(n, -1);
      std::queue<VertexId> frontier;
      dist[static_cast<std::size_t>(v)] = 0;
      frontier.push(v);
      ball.push_back(v);
      while (!frontier.empty()) {
        const VertexId u = frontier.front();
        frontier.pop();
        if (dist[static_cast<std::size_t>(u)] == cover.radius) continue;
        for (VertexId w : g.neighbors(u)) {
          if (dist[static_cast<std::size_t>(w)] != -1) continue;
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(u)] + 1;
          ball.push_back(w);
          frontier.push(w);
        }
      }
    }
    bool covered = false;
    for (std::size_t i = 0; i < cover.clusters.size() && !covered; ++i) {
      if (!in_cluster[i][static_cast<std::size_t>(v)]) continue;
      covered = std::all_of(ball.begin(), ball.end(), [&](VertexId u) {
        return in_cluster[i][static_cast<std::size_t>(u)] != 0;
      });
    }
    if (!covered) report.all_balls_covered = false;
  }

  // (3) connectivity and strong diameter of every cover cluster.
  report.all_clusters_connected = true;
  report.max_strong_diameter = 0;
  for (const CoverCluster& cluster : cover.clusters) {
    const InducedSubgraph sub = induced_subgraph(g, cluster.members);
    if (!is_connected(sub.graph)) {
      report.all_clusters_connected = false;
      report.max_strong_diameter = kInfiniteDiameter;
      continue;
    }
    if (report.max_strong_diameter != kInfiniteDiameter) {
      report.max_strong_diameter = std::max(report.max_strong_diameter,
                                            exact_diameter(sub.graph));
    }
  }
  return report;
}

}  // namespace dsnd
