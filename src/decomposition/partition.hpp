// Clustering / network decomposition data structures.
//
// A (D, chi) network decomposition is a partition of V into clusters; each
// cluster carries a color (its carving phase) such that same-colored
// clusters are non-adjacent, and each cluster has (strong or weak)
// diameter at most D. Clustering stores the partition plus per-cluster
// color and center; DecompositionResult adds the cost accounting the
// theorems bound.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

using ClusterId = std::int32_t;
inline constexpr ClusterId kNoCluster = -1;

/// Per-cluster member lists in CSR form (offsets + one flat array):
/// one allocation pair regardless of cluster count, members of cluster c
/// in increasing vertex order. Built in O(n) by Clustering::members_csr;
/// this is what the batch validator and the application pipelines iterate
/// instead of materializing a vector-of-vectors.
class ClusterMembers {
 public:
  ClusterMembers() = default;
  ClusterMembers(std::vector<std::int64_t> offsets,
                 std::vector<VertexId> flat);

  ClusterId num_clusters() const {
    return static_cast<ClusterId>(offsets_.empty() ? 0
                                                   : offsets_.size() - 1);
  }

  /// Members of cluster c, in increasing vertex order.
  std::span<const VertexId> of(ClusterId c) const;

  VertexId size_of(ClusterId c) const {
    return static_cast<VertexId>(of(c).size());
  }

  /// Total assigned vertices (== n for complete partitions).
  std::int64_t total_members() const {
    return static_cast<std::int64_t>(flat_.size());
  }

 private:
  std::vector<std::int64_t> offsets_;  // size num_clusters + 1
  std::vector<VertexId> flat_;         // one entry per assigned vertex
};

class Clustering {
 public:
  Clustering() = default;
  explicit Clustering(VertexId num_vertices);

  VertexId num_vertices() const {
    return static_cast<VertexId>(cluster_of_.size());
  }
  ClusterId num_clusters() const {
    return static_cast<ClusterId>(centers_.size());
  }
  /// Number of distinct colors (= max color + 1; colors are dense).
  std::int32_t num_colors() const;

  /// Creates a cluster and returns its id.
  ClusterId add_cluster(VertexId center, std::int32_t color);

  /// Assigns vertex v to cluster c; v must be unassigned.
  void assign(VertexId v, ClusterId c);

  ClusterId cluster_of(VertexId v) const;
  VertexId center_of(ClusterId c) const;
  std::int32_t color_of(ClusterId c) const;

  /// True when every vertex belongs to some cluster (a full partition).
  bool is_complete() const;
  /// Number of vertices with no cluster.
  VertexId num_unassigned() const;

  /// Member lists as a CSR index (offsets + flat array), built in O(n).
  /// Preferred over members(): one allocation pair instead of one vector
  /// per cluster.
  ClusterMembers members_csr() const;
  /// Member lists indexed by cluster id. Thin convenience wrapper over
  /// members_csr() kept for tests and one-off consumers.
  std::vector<std::vector<VertexId>> members() const;
  /// Sizes indexed by cluster id.
  std::vector<VertexId> cluster_sizes() const;

 private:
  std::vector<ClusterId> cluster_of_;
  std::vector<VertexId> centers_;
  std::vector<std::int32_t> colors_;
};

}  // namespace dsnd
