// Clustering / network decomposition data structures.
//
// A (D, chi) network decomposition is a partition of V into clusters; each
// cluster carries a color (its carving phase) such that same-colored
// clusters are non-adjacent, and each cluster has (strong or weak)
// diameter at most D. Clustering stores the partition plus per-cluster
// color and center; DecompositionResult adds the cost accounting the
// theorems bound.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

using ClusterId = std::int32_t;
inline constexpr ClusterId kNoCluster = -1;

class Clustering {
 public:
  Clustering() = default;
  explicit Clustering(VertexId num_vertices);

  VertexId num_vertices() const {
    return static_cast<VertexId>(cluster_of_.size());
  }
  ClusterId num_clusters() const {
    return static_cast<ClusterId>(centers_.size());
  }
  /// Number of distinct colors (= max color + 1; colors are dense).
  std::int32_t num_colors() const;

  /// Creates a cluster and returns its id.
  ClusterId add_cluster(VertexId center, std::int32_t color);

  /// Assigns vertex v to cluster c; v must be unassigned.
  void assign(VertexId v, ClusterId c);

  ClusterId cluster_of(VertexId v) const;
  VertexId center_of(ClusterId c) const;
  std::int32_t color_of(ClusterId c) const;

  /// True when every vertex belongs to some cluster (a full partition).
  bool is_complete() const;
  /// Number of vertices with no cluster.
  VertexId num_unassigned() const;

  /// Member lists indexed by cluster id.
  std::vector<std::vector<VertexId>> members() const;
  /// Sizes indexed by cluster id.
  std::vector<VertexId> cluster_sizes() const;

 private:
  std::vector<ClusterId> cluster_of_;
  std::vector<VertexId> centers_;
  std::vector<std::int32_t> colors_;
};

}  // namespace dsnd
