// Linial–Saks as a message-passing protocol on the simulator, for the
// message-complexity comparison against the Elkin–Neiman protocol
// (bench E8) and as a fidelity check on the centralized baseline.
//
// Messages carry one (id, radius, distance) entry — O(1) words — but
// unlike Elkin–Neiman's top-2 rule, min-id flooding cannot simply keep
// the best entry: a small id with little remaining broadcast range does
// not subsume a larger id with more range. Each vertex therefore
// maintains the Pareto frontier {(id, remaining range)} — ids ascending,
// remaining strictly ascending — and forwards newly inserted frontier
// entries. The frontier never exceeds k entries (ranges lie in [0, k-1]),
// so per-round traffic is O(k) messages per edge instead of O(1): one
// quantitative reason the shifted-exponential rule is CONGEST-friendlier.
//
// Bit-identical to linial_saks_decomposition on the same seed (the
// min-id winner and its exact distance survive pruning along every
// shortest path; see the domination argument in DESIGN.md).
#pragma once

#include "decomposition/elkin_neiman.hpp"
#include "decomposition/linial_saks.hpp"
#include "graph/graph.hpp"
#include "simulator/engine.hpp"
#include "simulator/metrics.hpp"

namespace dsnd {

struct DistributedLsRun {
  DecompositionRun run;
  SimMetrics sim;
};

DistributedLsRun linial_saks_distributed(
    const Graph& g, const LinialSaksOptions& options,
    const EngineOptions& engine_options = {});

/// [tag, id, radius, dist].
inline constexpr std::size_t kLsProtocolMaxWords = 4;

}  // namespace dsnd
