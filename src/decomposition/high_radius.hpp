// Theorem 3 of the paper (Section 2.2, "High Radius Regime"): for
// 1 <= lambda <= ln n and c > 3, a strong (2(cn)^{1/lambda} ln(cn),
// lambda) network decomposition in lambda (cn)^{1/lambda} ln(cn) rounds
// with probability >= 1 - 3/c.
//
// The inverse tradeoff of Theorem 1: fix the number of colors at lambda
// and pay radius k = (cn)^{1/lambda} ln(cn) instead. Same carving with a
// real-valued k: theorem3_schedule() derives lambda phases at
// beta = (cn)^{-1/lambda} with ceil(k) broadcast rounds each;
// high_radius_decomposition() runs it centralized and
// high_radius_distributed() (elkin_neiman_distributed.hpp) as a CONGEST
// protocol.
#pragma once

#include <cstdint>

#include "decomposition/carve_schedule.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct HighRadiusOptions {
  /// Desired number of colors (blocks).
  std::int32_t lambda = 2;
  double c = 4.0;
  std::uint64_t seed = 1;
  bool run_to_completion = true;
  /// Lemma 1 recovery (see OverflowPolicy / ElkinNeimanOptions).
  OverflowPolicy overflow_policy = OverflowPolicy::kRetry;
  std::int32_t max_retries_per_phase = kDefaultMaxRetriesPerPhase;
};

/// The derived radius parameter k = (cn)^{1/lambda} ln(cn).
double high_radius_k(VertexId n, std::int32_t lambda, double c);

/// Theorem 3's schedule: lambda phases at beta = ln(cn)/k = (cn)^{-1/lambda}
/// with ceil(k) broadcast rounds per phase (real-valued k).
CarveSchedule theorem3_schedule(VertexId n, std::int32_t lambda, double c);

DecompositionRun high_radius_decomposition(const Graph& g,
                                           const HighRadiusOptions& options);

}  // namespace dsnd
