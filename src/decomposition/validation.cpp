#include "decomposition/validation.hpp"

#include <algorithm>

#include "decomposition/supergraph.hpp"
#include "graph/traversal.hpp"
#include "support/assert.hpp"

namespace dsnd {

namespace {

/// Shared scratch for restricted BFS: one distance array and one queue,
/// sized once and reused across every cluster (and every source), so a
/// whole validation pass performs O(1) allocations. Visited entries are
/// reset by walking the queue, keeping each sweep O(|C| + m_C).
struct BfsArena {
  std::vector<std::int32_t> dist;  // -1 = unvisited
  std::vector<VertexId> queue;

  explicit BfsArena(std::size_t n) : dist(n, -1), queue(n, 0) {}
};

struct SweepResult {
  VertexId reached = 0;
  std::int32_t ecc = 0;       // max distance over reached vertices
  VertexId farthest = -1;     // a vertex attaining ecc
};

/// BFS from `source` over the vertices v with in_cluster(v); resets the
/// arena before returning.
template <typename InCluster>
SweepResult restricted_bfs(const Graph& g, VertexId source,
                           const InCluster& in_cluster, BfsArena& arena) {
  SweepResult result;
  result.farthest = source;
  arena.dist[static_cast<std::size_t>(source)] = 0;
  arena.queue[0] = source;
  VertexId head = 0;
  VertexId tail = 1;
  while (head < tail) {
    const VertexId v = arena.queue[static_cast<std::size_t>(head++)];
    const std::int32_t d = arena.dist[static_cast<std::size_t>(v)];
    if (d > result.ecc) {
      result.ecc = d;
      result.farthest = v;
    }
    for (const VertexId w : g.neighbors(v)) {
      if (!in_cluster(w)) continue;
      if (arena.dist[static_cast<std::size_t>(w)] != -1) continue;
      arena.dist[static_cast<std::size_t>(w)] = d + 1;
      arena.queue[static_cast<std::size_t>(tail++)] = w;
    }
  }
  result.reached = tail;
  for (VertexId i = 0; i < tail; ++i) {
    arena.dist[static_cast<std::size_t>(
        arena.queue[static_cast<std::size_t>(i)])] = -1;
  }
  return result;
}

/// Exact per-cluster strong metrics: connectivity, all-pairs diameter,
/// and the center's eccentricity, via restricted BFS (no copies).
struct StrongStats {
  bool connected = false;
  std::int32_t diameter = 0;           // kInfiniteDiameter if disconnected
  std::int32_t radius_from_center = 0; // kInfiniteDiameter if unreachable
};

template <typename InCluster>
StrongStats exact_strong_stats(const Graph& g,
                               std::span<const VertexId> members,
                               VertexId center, const InCluster& in_cluster,
                               BfsArena& arena) {
  StrongStats stats;
  const auto size = static_cast<VertexId>(members.size());
  stats.connected = true;
  for (const VertexId source : members) {
    const SweepResult sweep = restricted_bfs(g, source, in_cluster, arena);
    if (sweep.reached < size) stats.connected = false;
    stats.diameter = std::max(stats.diameter, sweep.ecc);
    if (source == center) stats.radius_from_center = sweep.ecc;
  }
  if (!stats.connected) stats.diameter = kInfiniteDiameter;
  const bool center_is_member =
      center >= 0 && in_cluster(center);
  if (!center_is_member || !stats.connected) {
    stats.radius_from_center = kInfiniteDiameter;
  }
  return stats;
}

/// Folds a per-cluster diameter into a running maximum where
/// kInfiniteDiameter is absorbing.
void fold_max(std::int32_t& acc, std::int32_t value) {
  if (acc == kInfiniteDiameter || value == kInfiniteDiameter) {
    acc = kInfiniteDiameter;
  } else {
    acc = std::max(acc, value);
  }
}

std::int32_t weak_diameter_of(const Graph& g,
                              std::span<const VertexId> members) {
  std::int32_t weak = 0;
  for (const VertexId v : members) {
    const auto dist = bfs_distances(g, v);
    for (const VertexId w : members) {
      const std::int32_t d = dist[static_cast<std::size_t>(w)];
      if (d == kUnreachable) return kInfiniteDiameter;
      weak = std::max(weak, d);
    }
  }
  return weak;
}

}  // namespace

ClusterShape analyze_cluster(const Graph& g,
                             std::span<const VertexId> members,
                             VertexId center) {
  DSND_REQUIRE(!members.empty(), "cluster must be nonempty");
  ClusterShape shape;
  shape.size = static_cast<VertexId>(members.size());

  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<char> mask(n, 0);
  for (const VertexId v : members) {
    DSND_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < n,
                 "member out of range");
    DSND_REQUIRE(!mask[static_cast<std::size_t>(v)],
                 "duplicate member in cluster");
    mask[static_cast<std::size_t>(v)] = 1;
  }
  const auto in_cluster = [&mask](VertexId v) {
    return mask[static_cast<std::size_t>(v)] != 0;
  };

  BfsArena arena(n);
  // An out-of-range center (legal input: it just means "no center among
  // the members") must not index the mask.
  const VertexId center_checked =
      center >= 0 && static_cast<std::size_t>(center) < n ? center : -1;
  const StrongStats stats =
      exact_strong_stats(g, members, center_checked, in_cluster, arena);
  shape.connected = stats.connected;
  shape.strong_diameter = stats.diameter;
  shape.radius_from_center = stats.radius_from_center;
  shape.weak_diameter = weak_diameter_of(g, members);
  return shape;
}

bool DecompositionReport::is_strong_decomposition(
    std::int32_t diameter_bound, std::int32_t color_bound) const {
  return complete && proper_phase_coloring && all_clusters_connected &&
         max_strong_diameter != kInfiniteDiameter &&
         max_strong_diameter <= diameter_bound && num_colors <= color_bound;
}

bool DecompositionReport::is_weak_decomposition(std::int32_t diameter_bound,
                                                std::int32_t color_bound)
    const {
  return complete && proper_phase_coloring &&
         max_weak_diameter != kInfiniteDiameter &&
         max_weak_diameter <= diameter_bound && num_colors <= color_bound;
}

DecompositionReport validate_decomposition(const Graph& g,
                                           const Clustering& clustering,
                                           bool compute_weak) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  DecompositionReport report;
  report.complete = clustering.is_complete();
  report.proper_phase_coloring = phase_coloring_is_proper(g, clustering);
  report.num_clusters = clustering.num_clusters();
  report.num_colors = clustering.num_colors();

  const ClusterMembers members = clustering.members_csr();
  BfsArena arena(static_cast<std::size_t>(g.num_vertices()));
  std::int64_t total_size = 0;
  for (ClusterId c = 0; c < clustering.num_clusters(); ++c) {
    const auto cluster = members.of(c);
    DSND_CHECK(!cluster.empty(), "empty cluster in clustering");
    total_size += static_cast<std::int64_t>(cluster.size());
    report.max_cluster_size =
        std::max(report.max_cluster_size,
                 static_cast<VertexId>(cluster.size()));

    const auto in_cluster = [&clustering, c](VertexId v) {
      return clustering.cluster_of(v) == c;
    };
    const StrongStats stats = exact_strong_stats(
        g, cluster, clustering.center_of(c), in_cluster, arena);
    if (!stats.connected) ++report.disconnected_clusters;
    fold_max(report.max_strong_diameter, stats.diameter);
    fold_max(report.max_radius_from_center, stats.radius_from_center);
    if (compute_weak) {
      fold_max(report.max_weak_diameter, weak_diameter_of(g, cluster));
    }
  }
  report.all_clusters_connected = report.disconnected_clusters == 0;
  report.avg_cluster_size =
      clustering.num_clusters() == 0
          ? 0.0
          : static_cast<double>(total_size) /
                static_cast<double>(clustering.num_clusters());
  return report;
}

std::vector<std::int32_t> cluster_strong_diameters(
    const Graph& g, const Clustering& clustering) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  const ClusterMembers members = clustering.members_csr();
  BfsArena arena(static_cast<std::size_t>(g.num_vertices()));
  std::vector<std::int32_t> diameters(
      static_cast<std::size_t>(clustering.num_clusters()), 0);
  for (ClusterId c = 0; c < clustering.num_clusters(); ++c) {
    const auto in_cluster = [&clustering, c](VertexId v) {
      return clustering.cluster_of(v) == c;
    };
    diameters[static_cast<std::size_t>(c)] =
        exact_strong_stats(g, members.of(c), clustering.center_of(c),
                           in_cluster, arena)
            .diameter;
  }
  return diameters;
}

bool FastDecompositionReport::is_strong_decomposition(
    std::int32_t diameter_bound, std::int32_t color_bound) const {
  return complete && proper_phase_coloring && all_clusters_connected &&
         strong_diameter_upper != kInfiniteDiameter &&
         strong_diameter_upper <= diameter_bound &&
         num_colors <= color_bound;
}

FastDecompositionReport validate_decomposition_fast(
    const Graph& g, const Clustering& clustering) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  FastDecompositionReport report;
  report.complete = clustering.is_complete();
  report.proper_phase_coloring = phase_coloring_is_proper(g, clustering);
  report.num_clusters = clustering.num_clusters();
  report.num_colors = clustering.num_colors();

  const ClusterMembers members = clustering.members_csr();
  BfsArena arena(static_cast<std::size_t>(g.num_vertices()));
  std::int64_t total_size = 0;
  for (ClusterId c = 0; c < clustering.num_clusters(); ++c) {
    const auto cluster = members.of(c);
    DSND_CHECK(!cluster.empty(), "empty cluster in clustering");
    const auto size = static_cast<VertexId>(cluster.size());
    total_size += static_cast<std::int64_t>(size);
    report.max_cluster_size = std::max(report.max_cluster_size, size);

    const VertexId center = clustering.center_of(c);
    const bool center_is_member = clustering.cluster_of(center) == c;
    if (!center_is_member) ++report.centerless_clusters;
    const VertexId root = center_is_member ? center : cluster.front();

    const auto in_cluster = [&clustering, c](VertexId v) {
      return clustering.cluster_of(v) == c;
    };
    // Sweep 1 from the root: connectivity, the exact center radius (when
    // the root is the center), and the 2*ecc upper bound.
    const SweepResult first = restricted_bfs(g, root, in_cluster, arena);
    const bool connected = first.reached == size;
    if (!connected) ++report.disconnected_clusters;
    fold_max(report.max_radius_from_center,
             connected && center_is_member ? first.ecc : kInfiniteDiameter);
    fold_max(report.strong_diameter_upper,
             connected ? 2 * first.ecc : kInfiniteDiameter);
    // Sweep 2 from the farthest vertex: the double-sweep diameter lower
    // bound (exact on trees).
    if (connected) {
      const SweepResult second =
          restricted_bfs(g, first.farthest, in_cluster, arena);
      fold_max(report.strong_diameter_lower, second.ecc);
    } else {
      fold_max(report.strong_diameter_lower, kInfiniteDiameter);
    }
  }
  report.all_clusters_connected = report.disconnected_clusters == 0;
  report.avg_cluster_size =
      clustering.num_clusters() == 0
          ? 0.0
          : static_cast<double>(total_size) /
                static_cast<double>(clustering.num_clusters());
  return report;
}

}  // namespace dsnd
