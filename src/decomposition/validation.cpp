#include "decomposition/validation.hpp"

#include <algorithm>

#include "decomposition/supergraph.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "support/assert.hpp"

namespace dsnd {

ClusterShape analyze_cluster(const Graph& g,
                             std::span<const VertexId> members,
                             VertexId center) {
  DSND_REQUIRE(!members.empty(), "cluster must be nonempty");
  ClusterShape shape;
  shape.size = static_cast<VertexId>(members.size());

  const InducedSubgraph sub = induced_subgraph(g, members);
  shape.connected = is_connected(sub.graph);

  // Strong diameter and center radius inside the induced subgraph.
  shape.strong_diameter = 0;
  for (VertexId v = 0; v < sub.graph.num_vertices(); ++v) {
    const auto dist = bfs_distances(sub.graph, v);
    for (const std::int32_t d : dist) {
      if (d == kUnreachable) {
        shape.strong_diameter = kInfiniteDiameter;
      } else if (shape.strong_diameter != kInfiniteDiameter) {
        shape.strong_diameter = std::max(shape.strong_diameter, d);
      }
    }
  }

  VertexId center_sub = -1;
  for (VertexId v = 0; v < sub.graph.num_vertices(); ++v) {
    if (sub.parent_of(v) == center) center_sub = v;
  }
  if (center_sub == -1) {
    // Center not a member — possible only in truncated/overflow runs.
    shape.radius_from_center = kInfiniteDiameter;
  } else {
    shape.radius_from_center = 0;
    for (const std::int32_t d : bfs_distances(sub.graph, center_sub)) {
      if (d == kUnreachable) {
        shape.radius_from_center = kInfiniteDiameter;
        break;
      }
      shape.radius_from_center = std::max(shape.radius_from_center, d);
    }
  }

  // Weak diameter: distances in the whole graph between member pairs.
  shape.weak_diameter = 0;
  for (const VertexId v : members) {
    const auto dist = bfs_distances(g, v);
    for (const VertexId w : members) {
      const std::int32_t d = dist[static_cast<std::size_t>(w)];
      if (d == kUnreachable) {
        shape.weak_diameter = kInfiniteDiameter;
        break;
      }
      if (shape.weak_diameter != kInfiniteDiameter) {
        shape.weak_diameter = std::max(shape.weak_diameter, d);
      }
    }
    if (shape.weak_diameter == kInfiniteDiameter) break;
  }
  return shape;
}

namespace {

/// Folds a per-cluster diameter into a running maximum where
/// kInfiniteDiameter is absorbing.
void fold_max(std::int32_t& acc, std::int32_t value) {
  if (acc == kInfiniteDiameter || value == kInfiniteDiameter) {
    acc = kInfiniteDiameter;
  } else {
    acc = std::max(acc, value);
  }
}

}  // namespace

bool DecompositionReport::is_strong_decomposition(
    std::int32_t diameter_bound, std::int32_t color_bound) const {
  return complete && proper_phase_coloring && all_clusters_connected &&
         max_strong_diameter != kInfiniteDiameter &&
         max_strong_diameter <= diameter_bound && num_colors <= color_bound;
}

bool DecompositionReport::is_weak_decomposition(std::int32_t diameter_bound,
                                                std::int32_t color_bound)
    const {
  return complete && proper_phase_coloring &&
         max_weak_diameter != kInfiniteDiameter &&
         max_weak_diameter <= diameter_bound && num_colors <= color_bound;
}

DecompositionReport validate_decomposition(const Graph& g,
                                           const Clustering& clustering,
                                           bool compute_weak) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  DecompositionReport report;
  report.complete = clustering.is_complete();
  report.proper_phase_coloring = phase_coloring_is_proper(g, clustering);
  report.num_clusters = clustering.num_clusters();
  report.num_colors = clustering.num_colors();

  const auto members = clustering.members();
  std::int64_t total_size = 0;
  for (ClusterId c = 0; c < clustering.num_clusters(); ++c) {
    const auto& cluster = members[static_cast<std::size_t>(c)];
    DSND_CHECK(!cluster.empty(), "empty cluster in clustering");
    total_size += static_cast<std::int64_t>(cluster.size());
    report.max_cluster_size =
        std::max(report.max_cluster_size,
                 static_cast<VertexId>(cluster.size()));

    ClusterShape shape;
    if (compute_weak) {
      shape = analyze_cluster(g, cluster, clustering.center_of(c));
    } else {
      // Strong-only analysis: reuse analyze_cluster but skip the O(n*m)
      // weak sweep by restricting members to the induced graph.
      const InducedSubgraph sub = induced_subgraph(g, cluster);
      shape.size = static_cast<VertexId>(cluster.size());
      shape.connected = is_connected(sub.graph);
      shape.strong_diameter =
          shape.connected ? exact_diameter(sub.graph) : kInfiniteDiameter;
      shape.weak_diameter = 0;
      shape.radius_from_center = 0;
    }

    if (!shape.connected) ++report.disconnected_clusters;
    fold_max(report.max_strong_diameter, shape.strong_diameter);
    if (compute_weak) {
      fold_max(report.max_weak_diameter, shape.weak_diameter);
      fold_max(report.max_radius_from_center, shape.radius_from_center);
    }
  }
  report.all_clusters_connected = report.disconnected_clusters == 0;
  report.avg_cluster_size =
      clustering.num_clusters() == 0
          ? 0.0
          : static_cast<double>(total_size) /
                static_cast<double>(clustering.num_clusters());
  return report;
}

}  // namespace dsnd
