#include "decomposition/linial_saks.hpp"

#include <cmath>
#include <queue>
#include <vector>

#include "support/assert.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace dsnd {

double linial_saks_p(VertexId n, std::int32_t k) {
  DSND_REQUIRE(n >= 1, "graph must be nonempty");
  DSND_REQUIRE(k >= 1, "k must be positive");
  // p = n^{-1/k}; clamp away from the degenerate endpoints for n = 1.
  const double p =
      std::pow(static_cast<double>(std::max<VertexId>(n, 2)), -1.0 / k);
  return p;
}

namespace {

/// Per-phase winner bookkeeping for one vertex: the minimum-id center
/// whose broadcast reached it, and that center's radius and distance.
struct LsWinner {
  VertexId center = -1;
  std::int32_t radius = 0;
  std::int32_t dist = 0;

  bool valid() const { return center >= 0; }
};

}  // namespace

DecompositionRun linial_saks_decomposition(const Graph& g,
                                           const LinialSaksOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  const VertexId n = g.num_vertices();
  // k = 1 truncates every radius to 0 and no vertex is ever retained, so
  // the implementation needs k >= 2 (LS93's k = 1 regime degenerates to
  // singleton clusters with ~n colors and is of no practical interest).
  const std::int32_t k = std::max(resolve_k(n, options.k), 2);
  const double p = linial_saks_p(n, k);
  // Expected phase count O(n^{1/k} ln n); the hard cap only guards bugs.
  const auto lambda = static_cast<std::int32_t>(std::ceil(
      std::pow(static_cast<double>(n), 1.0 / k) *
          std::log(static_cast<double>(std::max<VertexId>(n, 2))) +
      1.0));
  const std::int32_t hard_cap = lambda * 16 + n + 16;

  const auto nn = static_cast<std::size_t>(n);
  std::vector<char> alive(nn, 1);
  std::vector<std::int32_t> radii(nn, 0);
  VertexId remaining = n;

  DecompositionRun run;
  run.carve.clustering = Clustering(n);
  run.carve.target_phases = lambda;

  std::int32_t phase = 0;
  while (remaining > 0) {
    DSND_CHECK(phase < hard_cap, "Linial–Saks failed to converge");
    for (std::size_t v = 0; v < nn; ++v) {
      if (!alive[v]) continue;
      Xoshiro256ss rng(stream_seed(options.seed,
                                   static_cast<std::uint64_t>(phase) + 1,
                                   static_cast<std::uint64_t>(v) + 1));
      radii[v] = sample_truncated_geometric(rng, p, k - 1);
      run.carve.max_sampled_radius =
          std::max(run.carve.max_sampled_radius,
                   static_cast<double>(radii[v]));
    }

    // Determine, for every live vertex y, the minimum-id center whose
    // r_v-hop broadcast reaches it in G_t. Processing candidate centers
    // in increasing id order and claiming unclaimed vertices via a
    // radius-limited BFS gives each y exactly that center.
    std::vector<LsWinner> winner(nn);
    std::vector<std::int32_t> dist(nn, -1);
    std::vector<VertexId> touched;
    for (VertexId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!alive[vi]) continue;
      // BFS from v through live vertices, up to radii[vi] hops, claiming
      // vertices that have no winner yet (all earlier candidates have
      // smaller ids, so an existing winner always wins the id tie-break).
      touched.clear();
      std::queue<VertexId> frontier;
      dist[vi] = 0;
      touched.push_back(v);
      frontier.push(v);
      while (!frontier.empty()) {
        const VertexId u = frontier.front();
        frontier.pop();
        const auto ui = static_cast<std::size_t>(u);
        if (!winner[ui].valid()) {
          winner[ui] = LsWinner{v, radii[vi], dist[ui]};
        }
        if (dist[ui] == radii[vi]) continue;
        for (VertexId w : g.neighbors(u)) {
          const auto wi = static_cast<std::size_t>(w);
          if (!alive[wi] || dist[wi] != -1) continue;
          dist[wi] = dist[ui] + 1;
          touched.push_back(w);
          frontier.push(w);
        }
      }
      for (VertexId t : touched) dist[static_cast<std::size_t>(t)] = -1;
    }

    // Retention rule: join this phase's block iff d(y, center) < r_center.
    std::vector<ClusterId> cluster_of_center(nn, kNoCluster);
    VertexId carved = 0;
    for (std::size_t y = 0; y < nn; ++y) {
      if (!alive[y] || !winner[y].valid()) continue;
      if (winner[y].dist >= winner[y].radius) continue;
      const auto center = static_cast<std::size_t>(winner[y].center);
      ClusterId& c = cluster_of_center[center];
      if (c == kNoCluster) {
        c = run.carve.clustering.add_cluster(winner[y].center, phase);
      }
      run.carve.clustering.assign(static_cast<VertexId>(y), c);
      alive[y] = 0;
      ++carved;
    }
    remaining -= carved;
    run.carve.carved_per_phase.push_back(carved);
    ++phase;
  }

  run.carve.phases_used = phase;
  run.carve.exhausted_within_target = phase <= lambda;
  // Distributed cost: k broadcast rounds plus one announcement per phase,
  // as in [LS93].
  run.carve.rounds = static_cast<std::int64_t>(phase) * (k + 1);
  run.k = static_cast<double>(k);
  run.c = 1.0;
  run.bounds.strong_diameter = 2.0 * k - 2.0;  // WEAK diameter bound
  run.bounds.colors = static_cast<double>(lambda);
  run.bounds.rounds = static_cast<double>(lambda) * k;
  run.bounds.success_probability = 0.5;  // expected-time statement in LS93
  return run;
}

}  // namespace dsnd
