#include "decomposition/checkpoint.hpp"

#include <algorithm>

namespace dsnd {

void PhaseCheckpoint::capture(std::span<const char> alive_now,
                              std::span<const VertexId> live_now,
                              std::span<const VertexId> centers_now,
                              std::span<const std::int32_t> phases_now,
                              const std::int32_t next_phase_now,
                              const std::int32_t retries_total_now,
                              const double max_sampled_radius_now,
                              const VertexId carved_now,
                              const std::int32_t phases_used_now) {
  alive.assign(alive_now.begin(), alive_now.end());
  live.assign(live_now.begin(), live_now.end());
  chosen_center.assign(centers_now.begin(), centers_now.end());
  chosen_phase.assign(phases_now.begin(), phases_now.end());
  next_phase = next_phase_now;
  retries_total = retries_total_now;
  max_sampled_radius = max_sampled_radius_now;
  carved = carved_now;
  phases_used = phases_used_now;
}

bool PhaseValidator::validate_phase(const Graph& g,
                                    std::span<const VertexId> joiners,
                                    std::span<const VertexId> center_of,
                                    std::span<const std::int32_t> phase_of,
                                    const std::int32_t phase) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  if (visited_.size() != n) {
    visited_.assign(n, 0);
    center_seen_.assign(n, 0);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {
    // Stamp wrap: restart the epoch space with clean arrays.
    std::fill(visited_.begin(), visited_.end(), 0u);
    std::fill(center_seen_.begin(), center_seen_.end(), 0u);
    epoch_ = 1;
  }

  // Proper coloring restricted to this phase. Colors are phases, so the
  // only violations the full validator could find involving phase p are
  // adjacent phase-p vertices in different clusters — and every phase-p
  // vertex is in `joiners`, so this checks all of them.
  for (const VertexId v : joiners) {
    const auto vi = static_cast<std::size_t>(v);
    for (const VertexId u : g.neighbors(v)) {
      const auto ui = static_cast<std::size_t>(u);
      if (phase_of[ui] == phase && center_of[ui] != center_of[vi]) {
        return false;
      }
    }
  }

  // Connectivity: one BFS per cluster, rooted at the cluster's first
  // joiner and confined to same-(phase, center) vertices. A later
  // unvisited joiner whose center was already seen starts a second
  // component of the same cluster — disconnected.
  for (const VertexId root : joiners) {
    const auto ri = static_cast<std::size_t>(root);
    if (visited_[ri] == epoch_) continue;
    const VertexId center = center_of[ri];
    const auto ci = static_cast<std::size_t>(center);
    if (center_seen_[ci] == epoch_) return false;
    center_seen_[ci] = epoch_;
    queue_.clear();
    queue_.push_back(root);
    visited_[ri] = epoch_;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      for (const VertexId u : g.neighbors(queue_[head])) {
        const auto ui = static_cast<std::size_t>(u);
        if (visited_[ui] == epoch_) continue;
        if (phase_of[ui] != phase || center_of[ui] != center) continue;
        visited_[ui] = epoch_;
        queue_.push_back(u);
      }
    }
  }
  return true;
}

}  // namespace dsnd
