// The Miller–Peng–Xu (SPAA'13) padded partition — the PRAM technique the
// paper adapts. One-shot partition (no phases/colors): every vertex u
// samples delta_u ~ EXP(beta) and each vertex y joins the cluster of
//   argmax_u { delta_u - d(u, y) },
// computed here as an exact shifted multi-source Dijkstra. Guarantees
// (verified by bench E6 / the property tests): clusters are connected
// with strong diameter O(log n / beta) w.h.p., and each edge is cut
// (endpoints in different clusters) with probability O(beta).
#pragma once

#include <cstdint>

#include "decomposition/partition.hpp"
#include "graph/graph.hpp"

namespace dsnd {

struct MpxOptions {
  double beta = 0.2;
  std::uint64_t seed = 1;
};

struct MpxResult {
  /// All clusters carry color 0: MPX yields a partition, not a colored
  /// decomposition. Use the decomposition validators' shape queries only.
  Clustering clustering;
  std::int64_t cut_edges = 0;
  double cut_fraction = 0.0;
  double max_shift = 0.0;  // largest sampled delta_u
};

MpxResult mpx_partition(const Graph& g, const MpxOptions& options);

}  // namespace dsnd
