// Phase-boundary checkpointing for the distributed carving protocol.
//
// The paper's Las Vegas structure is phase-local: a failed attempt only
// invalidates the phase that sampled it, never the prefix of phases that
// already carved and validated their blocks. PR 7's verify-and-recover
// loop ignored that — any failed validation threw the whole run away and
// replayed every phase on a fresh salt. This subsystem makes recovery
// phase-granular:
//
//   PhaseCheckpoint   a snapshot of the protocol's deterministic state
//                     at a phase boundary (alive/cluster/center arrays,
//                     the compacted live list, and the round-plan cursor
//                     plus accounting scalars). Captured into RETAINED
//                     buffers, so a warm context checkpoints with zero
//                     steady-state allocation.
//   PhaseValidator    the incremental twin of validate_decomposition_fast:
//                     validates ONLY the clusters finalized this phase
//                     (proper coloring + connectivity). Sound because the
//                     full check decomposes exactly by phase — colors are
//                     phases, so cross-phase adjacency can never violate
//                     the coloring, and connectivity is per cluster. Runs
//                     on the ENGINE graph: both properties are invariant
//                     under the name bijection a cache layout applies, so
//                     no translation to original ids is needed (the final
//                     whole-run validation against the original graph
//                     still gates every kOk — this is an early-exit, not
//                     a replacement).
//   RecoveryArena     everything above plus the per-worker joiner lists,
//                     owned by CarveContext so the buffers live exactly
//                     as long as the engine/protocol pair they serve.
//
// The recovery policy built on top (carving_protocol.cpp): on a failed
// phase validation or any named fault-induced failure, roll back to the
// last validated checkpoint and replay only the suffix phases on the
// a = 2 salt channel (stream_seed(seed, 2, rollback) — disjoint from the
// a = 0 per-phase and a = 1 whole-run channels), falling back to the
// whole-run retry when the rollback budget is exhausted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

/// The carving protocol's deterministic state at a phase boundary. Every
/// buffer is retained across captures (assign into existing capacity),
/// so steady-state checkpointing allocates nothing once warm.
struct PhaseCheckpoint {
  std::vector<char> alive;                 // per engine vertex
  std::vector<VertexId> live;              // compacted live list
  std::vector<VertexId> chosen_center;     // ORIGINAL ids (entries carry names)
  std::vector<std::int32_t> chosen_phase;  // per engine vertex
  /// The phase a restored run resumes at; < 1 means no checkpoint (a
  /// rollback to phase 0 would just be a whole-run retry).
  std::int32_t next_phase = -1;
  std::int32_t retries_total = 0;
  double max_sampled_radius = 0.0;
  /// Accumulator seeds for the restored run's fold (carved vertices and
  /// the phases_used high-water mark of the validated prefix).
  VertexId carved = 0;
  std::int32_t phases_used = 0;

  bool restorable() const { return next_phase >= 1; }
  void invalidate() { next_phase = -1; }

  void capture(std::span<const char> alive_now,
               std::span<const VertexId> live_now,
               std::span<const VertexId> centers_now,
               std::span<const std::int32_t> phases_now,
               std::int32_t next_phase_now, std::int32_t retries_total_now,
               double max_sampled_radius_now, VertexId carved_now,
               std::int32_t phases_used_now);
};

/// Incremental per-phase validation: proper phase coloring and cluster
/// connectivity restricted to the vertices that joined one phase. Epoch-
/// stamped scratch arrays make repeated calls O(phase work), allocation-
/// free once warm.
class PhaseValidator {
 public:
  /// Validates the clusters finalized in `phase`. `joiners` are the
  /// ENGINE ids that joined this phase, in ascending order; `center_of`
  /// holds each vertex's chosen center (original ids — any consistent
  /// labeling works, the checks only compare for equality) and
  /// `phase_of` its chosen phase. Returns false iff some joiner has a
  /// same-phase neighbor in a different cluster (improper coloring) or
  /// some cluster of this phase is disconnected.
  bool validate_phase(const Graph& g, std::span<const VertexId> joiners,
                      std::span<const VertexId> center_of,
                      std::span<const std::int32_t> phase_of,
                      std::int32_t phase);

 private:
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> visited_;      // per engine vertex
  std::vector<std::uint32_t> center_seen_;  // per original center id
  std::vector<VertexId> queue_;             // BFS worklist
};

/// Checkpoint/rollback state retained by a CarveContext: the last
/// validated checkpoint, the incremental validator's scratch, and the
/// per-worker joiner lists the protocol fills at each deciding step
/// (plain vectors, NOT PerWorker<T> — reset there would drop capacity).
struct RecoveryArena {
  PhaseCheckpoint checkpoint;
  PhaseValidator validator;
  /// joiners[w]: the vertices worker w's shard joined this phase, in
  /// execution (= ascending vertex id) order.
  std::vector<std::vector<VertexId>> joiners;
  /// Concatenation scratch: the phase's joiners in worker order, which
  /// is ascending engine-id order for every thread count.
  std::vector<VertexId> joined;
};

}  // namespace dsnd
