#include "decomposition/carving_protocol.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "decomposition/checkpoint.hpp"
#include "decomposition/validation.hpp"
#include "simulator/engine.hpp"
#include "support/assert.hpp"
#include "support/per_worker.hpp"
#include "support/rng.hpp"

namespace dsnd {

namespace {

constexpr std::uint64_t kTagEntry = 1;
constexpr std::uint64_t kTagLeave = 2;

std::uint64_t pack_double(double x) { return std::bit_cast<std::uint64_t>(x); }
double unpack_double(std::uint64_t w) { return std::bit_cast<double>(w); }

bool same_entry(const CarveEntry& a, const CarveEntry& b) {
  return a.center == b.center && a.dist == b.dist && a.radius == b.radius;
}

class CarvingProtocol final : public Protocol {
 public:
  /// `names` maps engine vertex ids to the ORIGINAL ids the algorithm is
  /// keyed on (radius streams, tie-breaks, the emitted clustering);
  /// empty = identity. A cache-aware relabeling (graph/relabel.hpp)
  /// passes its to_old map here, which is what makes relabeled runs
  /// bit-identical to unrelabeled ones.
  CarvingProtocol(const CarveParams& params,
                  std::span<const VertexId> names)
      : params_(params), names_(names) {}

  /// Rebinds the run parameters so one protocol object (and its warmed
  /// per-vertex arrays) serves many runs — the verify-and-recover loop's
  /// salted attempts and every CarveContext warm re-run go through here.
  void set_params(const CarveParams& params) { params_ = params; }

  /// Attaches (or detaches, with nullptr) the phase-boundary recovery
  /// arena. With an arena the protocol records each phase's joiners,
  /// validates every finalized phase incrementally, and captures a
  /// checkpoint at each validated boundary; an invalid phase ends the
  /// run early with recovery_invalid_phase() set instead of joining bad
  /// clusters into the output.
  void enable_recovery(RecoveryArena* arena) {
    arena_ = arena;
    restore_armed_ = false;
  }

  /// Makes the NEXT begin() restore from the arena's checkpoint instead
  /// of starting fresh: the validated prefix phases are reinstated and
  /// the run resumes at checkpoint.next_phase (one-shot; cleared by
  /// begin()). Requires an enabled arena with a restorable checkpoint.
  void arm_restore() { restore_armed_ = true; }

  /// True when the last run stopped because a finalized phase failed
  /// incremental validation (a fault-corrupted phase caught at its
  /// boundary rather than at whole-run validation).
  bool recovery_invalid_phase() const { return invalid_phase_; }

  void begin(const Graph& g) override {
    const auto n = static_cast<std::size_t>(g.num_vertices());
    DSND_REQUIRE(names_.empty() || names_.size() == n,
                 "vertex-name map must cover the graph");
    graph_ = &g;
    alive_.assign(n, 1);
    best_.assign(n, CarveEntry{});
    second_.assign(n, CarveEntry{});
    sent_best_.assign(n, CarveEntry{});
    sent_second_.assign(n, CarveEntry{});
    chosen_center_.assign(n, -1);
    chosen_phase_.assign(n, -1);
    radii_.resize(n);
    unit_scratch_.resize(n);
    live_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      live_[v] = static_cast<VertexId>(v);
    }
    live_dirty_ = false;
    phase_ = 0;
    step_ = 0;
    retry_ = 0;
    retries_total_ = 0;
    abort_attempt_ = false;
    accepted_overflow_ = false;
    sampled_overflow_ = false;
    max_sampled_radius_ = 0.0;
    invalid_phase_ = false;
    restored_carved_ = 0;
    restored_phases_used_ = 0;
    if (arena_ != nullptr) {
      if (arena_->joiners.empty()) arena_->joiners.resize(1);
      for (std::vector<VertexId>& per_worker : arena_->joiners) {
        per_worker.clear();
      }
      arena_->joined.clear();
      if (restore_armed_) {
        // Rollback: overwrite the freshly initialized per-vertex arrays
        // with the last validated checkpoint and resume at its phase.
        // Nothing else needs restoring — best_/second_/sent_* are
        // rewritten at the attempt's step 0 and never read for carved
        // vertices, and round 0 runs EVERY vertex in scheduled mode, so
        // no wake-calendar snapshot is needed: carved vertices return
        // early via alive_, live ones re-arm their own wake chain.
        const PhaseCheckpoint& cp = arena_->checkpoint;
        DSND_CHECK(cp.restorable() && cp.alive.size() == n,
                   "restore armed without a matching checkpoint");
        std::copy(cp.alive.begin(), cp.alive.end(), alive_.begin());
        std::copy(cp.chosen_center.begin(), cp.chosen_center.end(),
                  chosen_center_.begin());
        std::copy(cp.chosen_phase.begin(), cp.chosen_phase.end(),
                  chosen_phase_.begin());
        live_.assign(cp.live.begin(), cp.live.end());
        phase_ = cp.next_phase;
        retries_total_ = cp.retries_total;
        max_sampled_radius_ = cp.max_sampled_radius;
        restored_carved_ = cp.carved;
        restored_phases_used_ = cp.phases_used;
      }
    }
    restore_armed_ = false;
    workers_ = 1;
    accum_.reset(1);
    accum_[0].carved = restored_carved_;
    accum_[0].phases_used = restored_phases_used_;
    chunk_stats_.assign(1, RadiusBatchStats{});
  }

  void begin_workers(unsigned workers) override {
    workers_ = workers == 0 ? 1 : workers;
    accum_.reset(workers);
    // The restored prefix's totals ride in worker slot 0, which exists
    // for every worker count — the fold stays shard-count invariant.
    accum_[0].carved = restored_carved_;
    accum_[0].phases_used = restored_phases_used_;
    chunk_stats_.assign(workers_, RadiusBatchStats{});
    if (arena_ != nullptr && arena_->joiners.size() < workers_) {
      arena_->joiners.resize(workers_);
    }
  }

  // The shared round plan. The engine's global round counter no longer
  // maps statically onto (phase, step): an attempt whose sampling round
  // raised Lemma 1's overflow bit is replayed, shifting every later
  // phase by one phase length. This hook — serial, between rounds —
  // advances the plan and is the simulation's stand-in for the CONGEST
  // aggregation of the overflow bit: real deployments would piggyback it
  // on the ceil(k)-round phase broadcast (Ghaffari–Portmann-style
  // detect-and-retry), which is why an aborted attempt is billed one
  // full phase of rounds rather than restarting the moment the bit is
  // known.
  void on_round_begin(std::size_t round, RoundPool& pool) override {
    if (round > 0) {
      if (step_ == 0) {
        // The sampling round just ran: fix this attempt's fate from the
        // overflow bit the batched sampler folded, before any joining
        // can happen.
        abort_attempt_ = sampled_overflow_ &&
                         params_.overflow_policy == OverflowPolicy::kRetry &&
                         retry_ < params_.max_retries_per_phase;
        if (sampled_overflow_ && !abort_attempt_) {
          // Truncated samples are being accepted (kTruncate, or a blown
          // retry budget): the output loses its validity certificate.
          accepted_overflow_ = true;
        }
        step_ = 1;
        return;
      }
      if (step_ < params_.phase_rounds) {
        ++step_;
        return;
      }
      // The deciding step just ran: start the next attempt — a salted
      // replay of the same phase if this one was aborted, phase t+1
      // otherwise.
      if (abort_attempt_) {
        ++retry_;
        ++retries_total_;
      } else {
        // Joiners left the live set; compact it lazily at the next
        // sampling pass (a replayed attempt keeps the set unchanged).
        live_dirty_ = true;
        if (arena_ != nullptr && !finalize_phase_boundary()) {
          // The finalized phase failed incremental validation: a fault
          // corrupted its join decisions. Stop the run here — finished()
          // now fires and the recovery loop rolls back to the last
          // validated checkpoint instead of carving on top of a bad
          // phase. The round about to run is a deterministic no-op.
          invalid_phase_ = true;
          return;
        }
        ++phase_;
        retry_ = 0;
      }
      step_ = 0;
      abort_attempt_ = false;
    }
    // The round about to run is an attempt's sampling step (round 0
    // included): batch-fill the live radii chunk-parallel on the parked
    // pool. Every value comes from the same per-(seed, phase, name,
    // retry) stream the scalar sampler draws, and the max/overflow fold
    // over chunks is order-independent, so the round's outputs are
    // bit-identical to per-vertex sampling for every worker count.
    if (step_ == 0) sample_attempt(pool);
  }

  void on_round(VertexId v, std::size_t /*round*/,
                std::span<const MessageView> inbox, Outbox& out) override {
    // The engine checks finished() before the pre-round hook, so the
    // round in which the hook flags an invalid phase still executes:
    // make it a no-op so the run's metrics stay deterministic.
    if (invalid_phase_) return;
    const auto vi = static_cast<std::size_t>(v);
    if (!alive_[vi]) return;
    Accum& accum = accum_[out.worker()];

    if (step_ == 0) {
      // Instrumentation only: the worker remembers the deepest phase any
      // of its vertices reached; the fold takes the max.
      accum.phases_used = std::max(accum.phases_used, phase_ + 1);
      // The radius was batch-sampled by on_round_begin (sample_attempt);
      // the vertex just reads its slot.
      const double r = radii_[vi];
      best_[vi] = CarveEntry{r, 0, name(v)};
      second_[vi] = CarveEntry{};
      sent_best_[vi] = CarveEntry{};
      sent_second_[vi] = CarveEntry{};
      send_changed(v, out);
      // The quiet broadcast steps run on inbox arrivals only; the
      // deciding step must run even with an empty inbox. The wake chain
      // survives a replay unchanged: an aborted attempt's deciding step
      // re-arms the next attempt exactly like a surviving vertex does.
      out.wake_self_in(static_cast<std::size_t>(params_.phase_rounds));
      return;
    }

    if (abort_attempt_) {
      // This attempt is already condemned (the overflow bit is global
      // knowledge by now); drop its broadcast on the floor and, at the
      // deciding step, re-arm for the salted replay instead of joining.
      if (step_ == params_.phase_rounds) out.wake_self_in(1);
      return;
    }

    for (const MessageView& msg : inbox) {
      if (msg.words.empty() || msg.words[0] != kTagEntry) continue;
      DSND_CHECK(msg.words.size() == 4, "malformed entry message");
      CarveEntry entry;
      entry.center = static_cast<VertexId>(msg.words[1]);
      entry.radius = unpack_double(msg.words[2]);
      entry.dist = static_cast<std::int32_t>(msg.words[3]);
      merge(vi, entry);
    }

    if (step_ < params_.phase_rounds) {
      send_changed(v, out);
      return;
    }

    // Deciding step.
    if (phase_join_decision(best_[vi], second_[vi], params_.margin)) {
      chosen_center_[vi] = best_[vi].center;
      chosen_phase_[vi] = phase_;
      alive_[vi] = 0;
      ++accum.carved;
      if (arena_ != nullptr) {
        // Record the joiner for the boundary validation. Per-worker
        // lists in shard execution (= ascending vertex id) order, so the
        // worker-order concatenation is ascending for any thread count.
        arena_->joiners[out.worker()].push_back(v);
      }
      out.send_to_all_neighbors({kTagLeave});
    } else {
      // Survivors sample again at the next attempt's step 0.
      out.wake_self_in(1);
    }
  }

  bool finished() const override {
    return invalid_phase_ || remaining() == 0;
  }

  CarveResult build_result() const {
    CarveResult result;
    const auto n = static_cast<std::size_t>(graph_->num_vertices());
    const std::int32_t phases_used = accum_.fold(
        0, [](std::int32_t acc, const Accum& a) {
          return std::max(acc, a.phases_used);
        });
    result.clustering = Clustering(graph_->num_vertices());
    result.target_phases = static_cast<std::int32_t>(params_.betas.size());
    result.phases_used = phases_used;
    result.exhausted_within_target =
        remaining() == 0 && phases_used <= result.target_phases;
    result.radius_overflow = accepted_overflow_;
    result.max_sampled_radius = max_sampled_radius_;
    const auto phase_len =
        static_cast<std::int64_t>(params_.phase_rounds) + 1;
    result.retries = retries_total_;
    result.extra_rounds =
        static_cast<std::int64_t>(retries_total_) * phase_len;
    result.rounds = static_cast<std::int64_t>(phases_used) * phase_len +
                    result.extra_rounds;

    result.carved_per_phase.assign(
        static_cast<std::size_t>(phases_used), 0);
    // Clusters in the same deterministic order as carve_decomposition:
    // by phase, then by member ORIGINAL id at first appearance. The
    // members are walked in original-id order (via the inverse name map
    // when a relabeling is active), so a relabeled run builds the exact
    // same clustering object. O(n + phases) total.
    std::vector<VertexId> by_name;
    if (!names_.empty()) {
      by_name.resize(n);
      for (std::size_t v = 0; v < n; ++v) {
        by_name[static_cast<std::size_t>(names_[v])] =
            static_cast<VertexId>(v);
      }
    }
    std::vector<std::vector<VertexId>> members_per_phase(
        static_cast<std::size_t>(phases_used));
    for (std::size_t o = 0; o < n; ++o) {
      const std::size_t v =
          names_.empty() ? o : static_cast<std::size_t>(by_name[o]);
      if (chosen_phase_[v] >= 0) {
        members_per_phase[static_cast<std::size_t>(chosen_phase_[v])]
            .push_back(static_cast<VertexId>(o));
      }
    }
    // chosen_center_ already holds original ids (entries carry names).
    std::vector<ClusterId> cluster_of_center(n, kNoCluster);
    for (std::int32_t phase = 0; phase < phases_used; ++phase) {
      for (const VertexId o : members_per_phase[static_cast<std::size_t>(
               phase)]) {
        ++result.carved_per_phase[static_cast<std::size_t>(phase)];
        const std::size_t v =
            names_.empty() ? static_cast<std::size_t>(o)
                           : static_cast<std::size_t>(
                                 by_name[static_cast<std::size_t>(o)]);
        const auto center = static_cast<std::size_t>(chosen_center_[v]);
        if (cluster_of_center[center] == kNoCluster ||
            result.clustering.color_of(cluster_of_center[center]) !=
                phase) {
          cluster_of_center[center] = result.clustering.add_cluster(
              static_cast<VertexId>(center), phase);
        }
        result.clustering.assign(o, cluster_of_center[center]);
      }
    }
    return result;
  }

  VertexId remaining() const {
    const VertexId carved = accum_.fold(
        VertexId{0},
        [](VertexId acc, const Accum& a) { return acc + a.carved; });
    return graph_->num_vertices() - carved;
  }

 private:
  /// Per-worker aggregate slice; all fields monotone under the fold, so
  /// totals are independent of which worker ran which vertex. (The
  /// overflow bit and radius max moved out: they are folded serially by
  /// the batched sampler in on_round_begin, which owns sampling now.)
  struct Accum {
    VertexId carved = 0;
    std::int32_t phases_used = 0;
  };

  VertexId name(VertexId v) const {
    return names_.empty() ? v : names_[static_cast<std::size_t>(v)];
  }

  /// Drops carved vertices from the live list when it is stale.
  void compact_live() {
    if (!live_dirty_) return;
    live_.erase(
        std::remove_if(live_.begin(), live_.end(),
                       [&](VertexId v) {
                         return alive_[static_cast<std::size_t>(v)] == 0;
                       }),
        live_.end());
    live_dirty_ = false;
  }

  /// Runs at the boundary of a completed (non-aborted) phase, before the
  /// plan advances: validates the phase's clusters incrementally and, on
  /// success, captures the post-phase state as the rollback checkpoint.
  /// Returns false when the phase is invalid (the caller stops the run).
  /// Serial — called from the pre-round hook only.
  bool finalize_phase_boundary() {
    arena_->joined.clear();
    for (std::vector<VertexId>& per_worker : arena_->joiners) {
      arena_->joined.insert(arena_->joined.end(), per_worker.begin(),
                            per_worker.end());
      per_worker.clear();
    }
    if (!arena_->joined.empty() &&
        !arena_->validator.validate_phase(*graph_, arena_->joined,
                                          chosen_center_, chosen_phase_,
                                          phase_)) {
      return false;
    }
    if (!accepted_overflow_) {
      // Checkpoint the validated prefix. An overflow-tainted run is not
      // checkpointed: restoring it would silently launder the voided
      // validity certificate into a later attempt.
      compact_live();
      const VertexId carved = accum_.fold(
          VertexId{0},
          [](VertexId acc, const Accum& a) { return acc + a.carved; });
      const std::int32_t phases_used = accum_.fold(
          0, [](std::int32_t acc, const Accum& a) {
            return std::max(acc, a.phases_used);
          });
      arena_->checkpoint.capture(alive_, live_, chosen_center_,
                                 chosen_phase_, phase_ + 1, retries_total_,
                                 max_sampled_radius_, carved, phases_used);
    }
    return true;
  }

  /// Fills radii_ for every live vertex for attempt (phase_, retry_) in
  /// one chunk-parallel batched pass and folds the Lemma 1 overflow bit
  /// and the radius max. Runs on the serial pre-round hook, so the live
  /// list (compacted here after a phase advance — alive_ flips happened
  /// under the previous round's barrier) and the per-chunk stats need no
  /// synchronization.
  void sample_attempt(RoundPool& pool) {
    compact_live();
    const double beta =
        phase_ < static_cast<std::int32_t>(params_.betas.size())
            ? params_.betas[static_cast<std::size_t>(phase_)]
            : params_.betas.back();
    for (RadiusBatchStats& stats : chunk_stats_) stats = RadiusBatchStats{};
    const std::span<const VertexId> live(live_);
    const std::span<double> scratch(unit_scratch_);
    pool.for_chunks(live_.size(), [&](std::size_t chunk_begin,
                                      std::size_t chunk_end, unsigned w) {
      chunk_stats_[w] = carve_radius_sample_batch(
          params_.seed, phase_, beta, retry_,
          live.subspan(chunk_begin, chunk_end - chunk_begin), names_,
          scratch.subspan(chunk_begin, chunk_end - chunk_begin), radii_,
          params_.radius_overflow_at);
    });
    RadiusBatchStats stats;
    for (const RadiusBatchStats& chunk : chunk_stats_) stats.merge(chunk);
    sampled_overflow_ = stats.overflow;
    max_sampled_radius_ = std::max(max_sampled_radius_, stats.max_radius);
  }

  void merge(std::size_t vi, const CarveEntry& entry) {
    CarveEntry& best = best_[vi];
    CarveEntry& second = second_[vi];
    if (best.valid() && best.center == entry.center) {
      if (entry.beats(best)) best = entry;
      return;
    }
    if (second.valid() && second.center == entry.center) {
      if (entry.beats(second)) {
        second = entry;
        if (second.beats(best)) std::swap(best, second);
      }
      return;
    }
    if (entry.beats(best)) {
      second = best;
      best = entry;
    } else if (entry.beats(second)) {
      second = entry;
    }
  }

  /// Forwards each of the current top-2 entries that (a) still has
  /// broadcast budget and (b) was not already transmitted by this vertex
  /// (receivers merge idempotently, so one transmission suffices).
  void send_changed(VertexId v, Outbox& out) {
    const auto vi = static_cast<std::size_t>(v);
    for (const CarveEntry* entry : {&best_[vi], &second_[vi]}) {
      if (!entry->valid()) continue;
      if (same_entry(*entry, sent_best_[vi]) ||
          same_entry(*entry, sent_second_[vi])) {
        continue;
      }
      const std::int32_t next_dist = entry->dist + 1;
      const bool in_range =
          static_cast<double>(next_dist) <= std::floor(entry->radius);
      if (in_range) {
        // Dead neighbors discard silently; a vertex does not learn
        // which neighbor left, only that someone did.
        out.send_to_all_neighbors(
            {kTagEntry, static_cast<std::uint64_t>(entry->center),
             pack_double(entry->radius),
             static_cast<std::uint64_t>(next_dist)});
      }
    }
    // Mirror the whole top-2 so an entry (transmitted, or skipped as out
    // of range) is never reconsidered while it stays in the top-2. The
    // mirror must hold both slots at once: remembering only the last two
    // *transmissions* can evict a still-current entry and trigger a
    // redundant rebroadcast on a later quiet step, which would also make
    // message counts depend on which quiet rounds the vertex runs in.
    sent_best_[vi] = best_[vi];
    sent_second_[vi] = second_[vi];
  }

  CarveParams params_;  // rebound between runs via set_params
  const std::span<const VertexId> names_;
  const Graph* graph_ = nullptr;
  // Shared round plan, advanced only by the serial on_round_begin hook
  // and read-only during rounds (so every worker sees one consistent
  // (phase, step, retry, abort) view per round).
  std::int32_t phase_ = 0;
  std::int32_t step_ = 0;
  std::int32_t retry_ = 0;
  std::int32_t retries_total_ = 0;
  bool abort_attempt_ = false;
  bool accepted_overflow_ = false;
  // Fold of the batched sampling passes (serial state: sampling happens
  // in the pre-round hook).
  bool sampled_overflow_ = false;
  double max_sampled_radius_ = 0.0;
  bool live_dirty_ = false;
  // Phase-boundary recovery (null = disabled): the arena is owned by the
  // CarveContext so its buffers outlive and warm across runs.
  RecoveryArena* arena_ = nullptr;
  bool restore_armed_ = false;
  bool invalid_phase_ = false;
  // Totals of the restored prefix, folded into worker slot 0's accum so
  // build_result()/remaining() see the whole run, not just the suffix.
  VertexId restored_carved_ = 0;
  std::int32_t restored_phases_used_ = 0;
  unsigned workers_ = 1;
  std::vector<char> alive_;
  std::vector<double> radii_;
  std::vector<double> unit_scratch_;
  std::vector<VertexId> live_;
  std::vector<RadiusBatchStats> chunk_stats_;
  std::vector<CarveEntry> best_;
  std::vector<CarveEntry> second_;
  std::vector<CarveEntry> sent_best_;
  std::vector<CarveEntry> sent_second_;
  std::vector<VertexId> chosen_center_;
  std::vector<std::int32_t> chosen_phase_;
  PerWorker<Accum> accum_;
};

/// One engine run of the protocol with `params`. The shared core behind
/// the cold Graph overload and the warm CarveContext path: rebinds the
/// protocol's parameters, derives the safety round cap, and names the
/// outcome. `round_cap` (0 = none) additionally bounds the run — the
/// schedule-level budget a reusable engine applies per run instead of
/// baking it into EngineOptions::max_rounds.
DistributedCarveResult run_carve_attempt(SyncEngine& engine,
                                         CarvingProtocol& protocol,
                                         const CarveParams& params,
                                         std::size_t round_cap) {
  const Graph& g = engine.graph();
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  DSND_REQUIRE(!params.betas.empty(), "carve schedule must be nonempty");
  DSND_REQUIRE(params.phase_rounds >= 1, "need at least one broadcast round");
  DSND_REQUIRE(params.max_retries_per_phase >= 0,
               "retry budget must be nonnegative");
  DSND_REQUIRE(params.margin == 1.0,
               "the distributed protocol implements the paper's margin of 1");
  DSND_REQUIRE(params.forward_policy == ForwardPolicy::kTop2,
               "the distributed protocol implements top-2 forwarding only");
  DSND_REQUIRE(params.run_to_completion,
               "the distributed protocol always carves to completion");

  protocol.set_params(params);
  // Safety cap only (the run stops at exhaustion): every phase may
  // additionally be replayed up to max_retries_per_phase times under the
  // Las Vegas recarve loop, so the attempt budget scales with it.
  const std::size_t attempts_per_phase =
      1 + static_cast<std::size_t>(std::max(params.max_retries_per_phase, 0));
  std::size_t max_rounds =
      (params.betas.size() * 8 + static_cast<std::size_t>(g.num_vertices()) +
       64) *
      attempts_per_phase *
      (static_cast<std::size_t>(params.phase_rounds) + 1);
  if (round_cap != 0) max_rounds = std::min(max_rounds, round_cap);
  DistributedCarveResult result;
  result.sim = engine.run(protocol, max_rounds);
  if (protocol.remaining() != 0) {
    // A reliable run cannot legitimately fall short — that is a bug in
    // this library, so the internal-invariant check stays. Under a lossy
    // transport it is an expected outcome (dropped traffic stalled the
    // carve, or the round budget named the hang), reported as a status
    // for the verify-and-recover loop to act on.
    DSND_CHECK(engine.transport().lossy(),
               "distributed carving failed to exhaust the graph");
    result.carve = protocol.build_result();
    // An invalid-phase stop ends the engine run via finished() (status
    // kFinished) with the graph not exhausted; name it kRejected — the
    // same verdict whole-run validation would have reached, just caught
    // at the phase boundary.
    result.carve.status =
        protocol.recovery_invalid_phase()
            ? CarveStatus::kRejected
            : (result.sim.status == RunStatus::kQuiescent
                   ? CarveStatus::kStalled
                   : CarveStatus::kRoundBudgetExhausted);
  } else {
    result.carve = protocol.build_result();
  }
  result.carve.faults = result.sim.faults;
  return result;
}

/// Shared driver behind every run_schedule_distributed overload, running
/// on a (possibly reused) engine + protocol pair. `original_graph` is
/// what the emitted clustering is keyed to and what faulted attempts are
/// validated against (the protocol's name map translates; identity for
/// unrelabeled runs).
///
/// Reliable transports take the single-attempt fast path unchanged.
/// Lossy transports get the verify-and-recover loop, now phase-granular:
/// every attempt that claims success is checked with
/// validate_decomposition_fast; a failed attempt (rejected clustering,
/// invalid phase caught at its boundary, or a named engine failure)
/// first ROLLS BACK to the last validated phase-boundary checkpoint and
/// replays only the suffix phases on a rollback-salted seed —
/// stream_seed(seed, 2, rollback), the a = 2 channel — up to
/// schedule.max_rollbacks times, then falls back to whole-run retries on
/// the a = 1 channel — stream_seed(seed, 1, attempt) — up to
/// schedule.max_run_retries times (both disjoint from the a = 0 channel
/// PR 5's per-phase resamples use). The result is the never-silently-
/// invalid contract: kOk means externally validated, anything else is a
/// named failure with its fault accounting attached. Every recovery run
/// reuses the engine's pool and arenas outright — rollbacks restore from
/// the context-retained checkpoint with zero steady-state allocation.
DistributedRun run_schedule_distributed_with(SyncEngine& engine,
                                             CarvingProtocol& protocol,
                                             const Graph& original_graph,
                                             const CarveSchedule& schedule,
                                             std::uint64_t seed,
                                             RecoveryArena* arena) {
  const bool lossy = engine.transport().lossy();
  // The schedule-derived named-failure budget applies only when the
  // caller left EngineOptions::max_rounds at 0 (same precedence the
  // pre-context code implemented by rewriting the options).
  const std::size_t schedule_cap =
      engine.options().max_rounds == 0
          ? schedule.round_budget(engine.graph().num_vertices())
          : 0;

  const std::int32_t run_budget =
      lossy ? std::max(schedule.max_run_retries, 0) : 0;
  const std::int32_t rollback_budget =
      lossy && arena != nullptr ? std::max(schedule.max_rollbacks, 0) : 0;
  protocol.enable_recovery(rollback_budget > 0 ? arena : nullptr);
  if (rollback_budget > 0) arena->checkpoint.invalidate();

  DistributedRun run;
  FaultCounters total_faults;
  std::int32_t attempt = 0;    // whole-run retries spent (a = 1)
  std::int32_t rollbacks = 0;  // checkpoint rollbacks spent (a = 2)
  std::int64_t replayed = 0;   // phases re-executed by recovery runs
  std::int32_t restore_base = 0;
  bool recovery_run = false;
  std::uint64_t run_seed = seed;
  for (;;) {
    DistributedCarveResult result = run_carve_attempt(
        engine, protocol, schedule.params(run_seed), schedule_cap);
    total_faults += result.sim.faults;
    if (recovery_run) {
      // Recovery cost in phases: a rollback bills only the suffix past
      // its restored checkpoint, a whole-run retry bills every phase it
      // ran (restore_base 0) — the A/B metric the benches report.
      replayed += std::max<std::int64_t>(
          0, result.carve.phases_used - restore_base);
    }
    run.sim = result.sim;
    run.run.carve = std::move(result.carve);
    run.run.carve.run_retries = attempt;
    run.run.carve.rollbacks = rollbacks;
    run.run.carve.replayed_phases = replayed;
    if (!lossy) break;
    if (run.run.carve.status == CarveStatus::kOk) {
      if (run.run.carve.radius_overflow) {
        // A blown per-phase retry budget accepted truncated samples: the
        // validity certificate is void, treat like a failed validation.
        run.run.carve.status = CarveStatus::kRejected;
      } else {
        const FastDecompositionReport report = validate_decomposition_fast(
            original_graph, run.run.carve.clustering);
        if (report.complete && report.proper_phase_coloring &&
            report.all_clusters_connected) {
          break;  // validated under faults: genuinely kOk
        }
        run.run.carve.status = CarveStatus::kRejected;
      }
    }
    // Recovery: prefer the checkpoint (replay the failed suffix only).
    // The checkpoint survives across attempts — last-validated-wins is
    // sound because a validated prefix stays valid regardless of which
    // seed lineage produced it.
    if (rollbacks < rollback_budget && arena->checkpoint.restorable()) {
      ++rollbacks;
      protocol.arm_restore();
      restore_base = arena->checkpoint.next_phase;
      recovery_run = true;
      run_seed = stream_seed(seed, 2, static_cast<std::uint64_t>(rollbacks));
      continue;
    }
    if (attempt < run_budget) {
      ++attempt;
      restore_base = 0;
      recovery_run = true;
      run_seed = stream_seed(seed, 1, static_cast<std::uint64_t>(attempt));
      continue;
    }
    break;  // both budgets exhausted: named failure stands
  }
  run.run.carve.faults = total_faults;
  run.run.carve.rejoins = total_faults.rejoined;
  run.run.bounds = schedule.bounds;
  run.run.k = schedule.k;
  run.run.c = schedule.c;
  return run;
}

}  // namespace

// ---------------------------------------------------------------------------
// CarveContext
// ---------------------------------------------------------------------------

struct CarveContext::Impl {
  // Reconstructed original graph for lossy layout runs (validation is
  // keyed to original ids); otherwise original_graph borrows the input.
  std::optional<Graph> original_storage;
  const Graph* original_graph = nullptr;
  SyncEngine engine;
  CarvingProtocol protocol;
  // Checkpoint/rollback buffers, retained so warm runs checkpoint and
  // restore with zero steady-state allocation.
  RecoveryArena arena;

  Impl(const Graph& engine_graph, const EngineOptions& options,
       std::span<const VertexId> names)
      : engine(engine_graph, options), protocol(CarveParams{}, names) {}
};

CarveContext::CarveContext(const Graph& g, const EngineOptions& options)
    : impl_(std::make_unique<Impl>(g, options,
                                   std::span<const VertexId>{})) {
  impl_->original_graph = &g;
}

CarveContext::CarveContext(const LayoutGraph& lg, const EngineOptions& options)
    : impl_(std::make_unique<Impl>(lg.graph, options, lg.layout.to_old)) {
  if (impl_->engine.transport().lossy()) {
    // Faulted attempts are validated against the ORIGINAL graph (the
    // clustering is keyed to original ids). LayoutGraph does not carry
    // it, so reconstruct it by undoing the relabeling — paid once per
    // context, and only on the lossy path.
    impl_->original_storage.emplace(
        apply_layout(lg.graph, lg.layout.inverse()));
    impl_->original_graph = &*impl_->original_storage;
  } else {
    impl_->original_graph = &lg.graph;
  }
}

CarveContext::~CarveContext() = default;

SyncEngine& CarveContext::engine() { return impl_->engine; }
const SyncEngine& CarveContext::engine() const { return impl_->engine; }

DistributedCarveResult carve_decomposition_distributed(
    CarveContext& context, const CarveParams& params) {
  // Single-attempt runs have no recovery loop to act on checkpoints;
  // detach any arena a prior schedule run left enabled on the shared
  // protocol so this run's behavior does not depend on context history.
  context.impl_->protocol.enable_recovery(nullptr);
  return run_carve_attempt(context.impl_->engine, context.impl_->protocol,
                           params, /*round_cap=*/0);
}

DistributedRun run_schedule_distributed(CarveContext& context,
                                        const CarveSchedule& schedule,
                                        std::uint64_t seed) {
  return run_schedule_distributed_with(
      context.impl_->engine, context.impl_->protocol,
      *context.impl_->original_graph, schedule, seed, &context.impl_->arena);
}

// ---------------------------------------------------------------------------
// Context-free overloads (cold path: one engine per call)
// ---------------------------------------------------------------------------

DistributedCarveResult carve_decomposition_distributed(
    const Graph& g, const CarveParams& params,
    const EngineOptions& engine_options,
    std::span<const VertexId> vertex_names) {
  SyncEngine engine(g, engine_options);
  CarvingProtocol protocol(params, vertex_names);
  return run_carve_attempt(engine, protocol, params, /*round_cap=*/0);
}

DistributedRun run_schedule_distributed(const Graph& g,
                                        const CarveSchedule& schedule,
                                        std::uint64_t seed,
                                        const EngineOptions& engine_options) {
  CarveContext context(g, engine_options);
  return run_schedule_distributed(context, schedule, seed);
}

DistributedRun run_schedule_distributed(const LayoutGraph& lg,
                                        const CarveSchedule& schedule,
                                        std::uint64_t seed,
                                        const EngineOptions& engine_options) {
  CarveContext context(lg, engine_options);
  return run_schedule_distributed(context, schedule, seed);
}

}  // namespace dsnd
