#include "decomposition/supergraph.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace dsnd {

Graph build_supergraph(const Graph& g, const Clustering& clustering) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  DSND_REQUIRE(clustering.is_complete(),
               "supergraph requires a complete partition");
  std::vector<Edge> edges;
  g.for_each_edge([&](VertexId u, VertexId v) {
    const ClusterId cu = clustering.cluster_of(u);
    const ClusterId cv = clustering.cluster_of(v);
    if (cu != cv) {
      edges.push_back({std::min(cu, cv), std::max(cu, cv)});
    }
  });
  return Graph::from_edges(clustering.num_clusters(), std::move(edges),
                           /*normalize=*/true);
}

bool phase_coloring_is_proper(const Graph& g, const Clustering& clustering) {
  DSND_REQUIRE(clustering.num_vertices() == g.num_vertices(),
               "clustering does not match graph");
  bool proper = true;
  g.for_each_edge([&](VertexId u, VertexId v) {
    const ClusterId cu = clustering.cluster_of(u);
    const ClusterId cv = clustering.cluster_of(v);
    if (cu == kNoCluster || cv == kNoCluster || cu == cv) return;
    if (clustering.color_of(cu) == clustering.color_of(cv)) proper = false;
  });
  return proper;
}

std::vector<std::int32_t> greedy_coloring(const Graph& g) {
  std::vector<std::int32_t> color(static_cast<std::size_t>(g.num_vertices()),
                                  -1);
  std::vector<char> used;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    used.assign(static_cast<std::size_t>(g.degree(v)) + 2, 0);
    for (VertexId w : g.neighbors(v)) {
      const std::int32_t cw = color[static_cast<std::size_t>(w)];
      if (cw >= 0 && cw < static_cast<std::int32_t>(used.size())) {
        used[static_cast<std::size_t>(cw)] = 1;
      }
    }
    std::int32_t c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color[static_cast<std::size_t>(v)] = c;
  }
  return color;
}

std::int32_t greedy_supergraph_colors(const Graph& g,
                                      const Clustering& clustering) {
  const Graph supergraph = build_supergraph(g, clustering);
  const auto colors = greedy_coloring(supergraph);
  std::int32_t max_color = -1;
  for (std::int32_t c : colors) max_color = std::max(max_color, c);
  return max_color + 1;
}

}  // namespace dsnd
