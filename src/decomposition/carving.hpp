// Shared machinery for shifted-exponential block carving (Section 2 of
// the paper). All three theorems instantiate the same per-phase process
// with different beta schedules:
//
//   phase t on the surviving graph G_t:
//     every live vertex v samples r_v ~ EXP(beta_t);
//     v's value is broadcast ⌊r_v⌋ hops through G_t, so a vertex y learns
//       m_i = r_{v_i} - d_{G_t}(y, v_i) for every v_i whose broadcast
//       reaches it (including itself, giving m >= 0 always);
//     y joins the block W_t iff m_1 - m_2 > 1 (m_2 := 0 when only one
//       broadcast arrived), choosing the argmax center v_1;
//     W_t is removed: G_{t+1} = G_t \ W_t.
//
// Clusters are the per-(phase, center) groups; Claim 3 of the paper makes
// them connected with strong diameter <= 2k-2 provided no sampled radius
// reached k+1 (Lemma 1's event). The carver runs the broadcast as exactly
// ceil(k) rounds of top-2 relaxation — the same fixed point the CONGEST
// protocol computes — so the centralized and distributed implementations
// agree bit-for-bit on the same seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "decomposition/partition.hpp"
#include "graph/graph.hpp"
#include "simulator/metrics.hpp"

namespace dsnd {

/// How a carving run ended. Everything but kOk is a NAMED failure: under
/// a lossy transport the contract is "a validated decomposition or a
/// named status, never a silently wrong answer" (the PR 5 Las Vegas
/// stance, generalized from radius overflow to transport faults).
/// Reliable runs always report kOk — anything else throws instead, as a
/// reliable run cannot legitimately fail.
enum class CarveStatus {
  /// The run exhausted the graph; on a faulted run the clustering also
  /// passed validate_decomposition_fast.
  kOk,
  /// The engine's round budget ran out before the graph was exhausted
  /// (the named replacement for a no-progress hang under loss).
  kRoundBudgetExhausted,
  /// The engine went quiescent with unclustered vertices left — faults
  /// broke the protocol's wake chain (should not happen: self-wakes are
  /// transport-immune; kept as a named outcome rather than an abort).
  kStalled,
  /// Every attempt that completed produced a clustering that failed
  /// validation (or accepted a radius overflow), and the run-retry
  /// budget is exhausted.
  kRejected,
};

const char* carve_status_name(CarveStatus status);

/// One (center, shifted value) candidate tracked during a phase.
struct CarveEntry {
  double radius = -1.0;   // r_v sampled at the center
  std::int32_t dist = 0;  // hops travelled from the center so far
  VertexId center = -1;

  double value() const { return radius - static_cast<double>(dist); }

  /// Ordering used everywhere: larger shifted value wins; ties (measure
  /// zero with continuous radii, but possible in adversarial tests) break
  /// toward the smaller center id so all nodes agree.
  bool beats(const CarveEntry& other) const;

  bool valid() const { return center >= 0; }
};

/// What each vertex forwards during the broadcast. The paper's CONGEST
/// observation is that the top-2 suffices for exact decisions; kTop1 is
/// an ablation showing that forwarding only the best value yields stale
/// second-place estimates and wrong clusterings.
enum class ForwardPolicy { kTop2, kTop1 };

/// What to do when Lemma 1's bad event fires during a phase (some live
/// vertex samples r_v >= radius_overflow_at, so the ceil(k)-round
/// broadcast would truncate it and Claim 3's connectivity certificate is
/// void).
///
///   kRetry (default): abort the phase before joining, resample every
///     live vertex with a fresh per-retry salt, and re-run — the
///     Elkin–Neiman whp guarantee becomes a Las Vegas one (valid output
///     unconditionally, expected O(1) extra phases). Each retry costs
///     one extra phase of simulated rounds (phase_rounds + 1), billed in
///     CarveResult::extra_rounds.
///   kTruncate: the pre-PR-5 behavior, kept as the ablation escape
///     hatch: radii are silently truncated to the broadcast budget, the
///     join rule runs anyway, and the run merely reports
///     radius_overflow — the output may contain disconnected clusters.
enum class OverflowPolicy { kRetry, kTruncate };

/// Default per-phase resample budget under OverflowPolicy::kRetry — the
/// single source for every options struct and schedule that exposes the
/// knob. Each retry fails with probability <= 2/c (Lemma 1), so blowing
/// 16 in a row is astronomically unlikely in the theorem regimes.
inline constexpr std::int32_t kDefaultMaxRetriesPerPhase = 16;

/// Parameters of a full carving run.
struct CarveParams {
  /// beta for phase t (0-based); called once per phase.
  std::vector<double> betas;
  /// Broadcast rounds per phase: ceil(k). Radii are truncated to this many
  /// hops, which only matters when Lemma 1's low-probability event occurs.
  std::int32_t phase_rounds = 1;
  /// Join margin; the paper's rule is margin = 1. Exposed for the E9
  /// ablation (margin 0 mimics a Linial–Saks-style non-strict rule).
  double margin = 1.0;
  /// E9 ablation knob; the distributed protocol supports kTop2 only.
  ForwardPolicy forward_policy = ForwardPolicy::kTop2;
  /// Radius threshold of Lemma 1's bad event: some r_v >= radius_overflow_at
  /// (the paper's k+1). overflow_policy decides what a run does about it.
  double radius_overflow_at = 2.0;
  /// Recovery discipline for Lemma 1's event (see OverflowPolicy).
  OverflowPolicy overflow_policy = OverflowPolicy::kRetry;
  /// Retry budget per phase under kRetry; when it is blown anyway the
  /// phase falls back to truncated samples and the run reports
  /// radius_overflow.
  std::int32_t max_retries_per_phase = kDefaultMaxRetriesPerPhase;
  /// If true, keep carving with the last beta after the schedule is
  /// exhausted until every vertex is clustered (so the output is always a
  /// complete partition); the theorem's success event is
  /// phases_used <= betas.size(), reported separately.
  bool run_to_completion = true;
  std::uint64_t seed = 1;
};

struct CarveResult {
  Clustering clustering;
  /// Phases actually executed (== colors used, since phase = color).
  std::int32_t phases_used = 0;
  /// Scheduled phases (the theorem's lambda).
  std::int32_t target_phases = 0;
  /// True iff the graph was exhausted within target_phases.
  bool exhausted_within_target = false;
  /// True iff a phase ACCEPTED samples containing a radius >=
  /// radius_overflow_at — only possible under OverflowPolicy::kTruncate
  /// or a blown retry budget. This is the "output may be invalid" flag:
  /// under kRetry with an intact budget it is always false and the
  /// clustering is valid unconditionally (the Las Vegas guarantee).
  bool radius_overflow = false;
  /// Largest radius sampled across ALL attempts, including the discarded
  /// ones — so logs show the Lemma 1 event that actually fired even when
  /// a retry recovered from it.
  double max_sampled_radius = 0.0;
  /// Lemma 1 recoveries: total resample retries across all phases.
  std::int32_t retries = 0;
  /// Rounds spent on aborted attempts: retries * (phase_rounds + 1). The
  /// price of the Las Vegas guarantee, reported separately so the
  /// theorems' round bounds stay comparable (measured rounds should meet
  /// bounds.rounds + extra_rounds).
  std::int64_t extra_rounds = 0;
  /// Vertices carved in each executed phase.
  std::vector<VertexId> carved_per_phase;
  /// Simulated distributed rounds: (phases_used + retries) *
  /// (phase_rounds + 1); each attempt spends phase_rounds broadcasting
  /// plus one round announcing membership (or, for an aborted attempt,
  /// aggregating the overflow bit) so neighbors learn the surviving
  /// graph.
  std::int64_t rounds = 0;
  /// How the run ended (see CarveStatus). Centralized runs and reliable
  /// distributed runs always report kOk.
  CarveStatus status = CarveStatus::kOk;
  /// Whole-run restarts spent by the verify-and-recover loop of
  /// run_schedule_distributed under a lossy transport (attempt i > 0
  /// reseeds via stream_seed(seed, 1, i)). Always 0 on reliable runs;
  /// distinct from `retries`, which counts PR 5's per-phase resamples
  /// within one run.
  std::int32_t run_retries = 0;
  /// Checkpoint rollbacks spent by the recovery loop: failed runs that
  /// restored the last validated phase-boundary checkpoint and replayed
  /// only the suffix phases on the a = 2 salt channel
  /// (stream_seed(seed, 2, rollback)). Preferred over whole-run retries;
  /// see CarveSchedule::max_rollbacks. Always 0 on reliable runs.
  std::int32_t rollbacks = 0;
  /// Phases re-executed by recovery runs: each rollback bills the phases
  /// past its restored checkpoint, each whole-run retry bills every phase
  /// it ran. The A/B cost metric — on the same fault plan, rollback
  /// recovery replays strictly fewer phases than whole-run retry.
  std::int64_t replayed_phases = 0;
  /// Crash-recovery rejoin events across every attempt (vertices whose
  /// CrashSpan rejoin round was reached; mirrors faults.rejoined).
  std::uint64_t rejoins = 0;
  /// Transport fault events aggregated across every attempt of the run
  /// (all zeros on a reliable transport).
  FaultCounters faults;
};

/// Samples r_v for vertex v in phase t: EXP(beta) via the per-(seed,
/// phase, vertex) stream. Exposed so the distributed protocol and tests
/// draw identical values. `retry` is the per-phase resample index of the
/// Las Vegas recarve loop: retry 0 reproduces the historical stream;
/// retry r > 0 mixes a fresh salt into the seed so aborted attempts
/// never correlate with their replacements.
double carve_radius_sample(std::uint64_t seed, std::int32_t phase,
                           VertexId v, double beta, std::int32_t retry = 0);

/// What a batched sampling pass observed: the fold both backends feed
/// into CarveResult::max_sampled_radius and the Lemma 1 overflow event.
/// Combining per-chunk stats (max / OR) is order-independent, so
/// chunk-parallel batches report identical stats for every chunking.
struct RadiusBatchStats {
  double max_radius = 0.0;
  bool overflow = false;  // some sampled radius >= overflow_at

  void merge(const RadiusBatchStats& other) {
    max_radius = std::max(max_radius, other.max_radius);
    overflow = overflow || other.overflow;
  }
};

/// Batched twin of carve_radius_sample: fills radii[v] for every v in
/// `vertices` (radii is indexed by vertex id; entries of vertices not
/// listed are untouched) and returns the max/overflow fold. Each value
/// is drawn from the IDENTICAL per-(seed, phase, name, retry) stream the
/// scalar sampler uses — `names` maps vertex ids to the stream key
/// (empty = identity; layout runs pass the original ids) — so the
/// batched and scalar paths are bit-for-bit equal (pinned by test).
/// Two passes: stream seeding + the uniform draw into `unit_scratch`
/// (which must hold at least vertices.size() doubles), then the
/// log1p transform over the dense scratch — the same inverse-CDF call
/// as the scalar path, element for element, so vectorizing the first
/// pass can never change a bit of the second.
RadiusBatchStats carve_radius_sample_batch(
    std::uint64_t seed, std::int32_t phase, double beta, std::int32_t retry,
    std::span<const VertexId> vertices, std::span<const VertexId> names,
    std::span<double> unit_scratch, std::span<double> radii,
    double overflow_at);

/// Runs one phase over the vertices with alive[v] != 0. Returns for every
/// vertex its top-2 entries after `phase_rounds` rounds of truncated
/// broadcast (entries of dead vertices are invalid). Used by
/// carve_decomposition and, with the same semantics, by the tests that
/// cross-check the relaxation against ground-truth BFS.
struct PhaseState {
  std::vector<CarveEntry> best;    // per vertex
  std::vector<CarveEntry> second;  // per vertex
  double max_radius = 0.0;
};

PhaseState run_phase_broadcast(
    const Graph& g, const std::vector<char>& alive,
    const std::vector<double>& radii, std::int32_t phase_rounds,
    ForwardPolicy policy = ForwardPolicy::kTop2);

/// Join rule applied to a vertex's phase state (the m1 - m2 > margin test).
bool phase_join_decision(const CarveEntry& best, const CarveEntry& second,
                         double margin);

/// Full carving run over a beta schedule; the core of Theorems 1-3.
CarveResult carve_decomposition(const Graph& g, const CarveParams& params);

}  // namespace dsnd
