// The three theorems as genuine message-passing protocols on the
// synchronous simulator, in the CONGEST spirit of Section 2's closing
// remark: every message carries one (center, radius, distance) entry —
// 4 words — because clustering decisions depend only on each vertex's
// two largest shifted values, and a value that is not in the top-2
// anywhere along a shortest path can never enter the top-2 downstream.
//
// Each phase occupies phase_rounds + 1 simulated rounds:
//   step 0:            live vertices sample r_v ~ EXP(beta_t) from the
//                      shared (seed, phase, vertex) stream and broadcast
//                      their own entry one hop (if ⌊r_v⌋ >= 1);
//   steps 1..L-1:      merge incoming entries, forward top-2 improvements
//                      one hop farther while dist + 1 <= ⌊r⌋;
//   step L:            final merge, join rule m1 - m2 > 1; joiners
//                      announce departure so neighbors learn G_{t+1}.
//
// Every wrapper is a thin instantiation of run_schedule_distributed()
// (carving_protocol.hpp) with its theorem's schedule factory — the same
// CarveSchedule its centralized counterpart executes, so on the same
// seed the clusterings are bit-identical (asserted by the parity tests).
#pragma once

#include "decomposition/carve_schedule.hpp"
#include "decomposition/carving_protocol.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/high_radius.hpp"
#include "decomposition/multistage.hpp"
#include "graph/graph.hpp"
#include "simulator/metrics.hpp"

namespace dsnd {

/// Theorem 1 distributed; options.margin must be 1. engine_options tunes
/// the simulator (scheduling, threads) without changing the clustering.
DistributedRun elkin_neiman_distributed(
    const Graph& g, const ElkinNeimanOptions& options,
    const EngineOptions& engine_options = {});

/// Theorem 2 (multistage beta schedule) distributed.
DistributedRun multistage_distributed(
    const Graph& g, const MultistageOptions& options,
    const EngineOptions& engine_options = {});

/// Theorem 3 (high radius regime) distributed.
DistributedRun high_radius_distributed(
    const Graph& g, const HighRadiusOptions& options,
    const EngineOptions& engine_options = {});

/// Warm-path twins: the same three theorems on a reusable CarveContext
/// (carving_protocol.hpp), so repeated runs — different seeds, different
/// theorems, the verify-and-recover retries — share one engine whose
/// worker pool stays parked between runs. Bit-identical to the Graph
/// overloads above on the same inputs (pinned by test_warm_engine).
DistributedRun elkin_neiman_distributed(CarveContext& context,
                                        const ElkinNeimanOptions& options);
DistributedRun multistage_distributed(CarveContext& context,
                                      const MultistageOptions& options);
DistributedRun high_radius_distributed(CarveContext& context,
                                       const HighRadiusOptions& options);

/// Upper bound on words per message the protocol may emit: one entry per
/// message — [tag, center, radius, dist] — and at most two such messages
/// per edge per round (the top-2). Exported so tests and the CONGEST
/// bench can assert O(1)-word messages.
inline constexpr std::size_t kMaxProtocolMessageWords =
    kCarveProtocolMaxWords;

}  // namespace dsnd
