#include "decomposition/high_radius.hpp"

#include <cmath>
#include <string>

#include "service/decomposition_service.hpp"
#include "support/assert.hpp"

namespace dsnd {

double high_radius_k(VertexId n, std::int32_t lambda, double c) {
  DSND_REQUIRE(n >= 1, "graph must be nonempty");
  DSND_REQUIRE(lambda >= 1, "lambda must be positive");
  DSND_REQUIRE(c > 0.0, "c must be positive");
  const double cn = c * static_cast<double>(n);
  return std::pow(cn, 1.0 / static_cast<double>(lambda)) * std::log(cn);
}

CarveSchedule theorem3_schedule(VertexId n, std::int32_t lambda, double c) {
  const double k = high_radius_k(n, lambda, c);
  const double cn = c * static_cast<double>(n);
  // beta = ln(cn)/k = (cn)^{-1/lambda}: per-phase join probability
  // e^{-beta} is a constant close to 1, so lambda phases suffice.
  const double beta = std::log(cn) / k;

  CarveSchedule schedule;
  schedule.name = "theorem3(lambda=" + std::to_string(lambda) + ")";
  schedule.betas.assign(static_cast<std::size_t>(lambda), beta);
  schedule.phase_rounds = static_cast<std::int32_t>(std::ceil(k));
  schedule.radius_overflow_at = k + 1.0;
  schedule.k = k;
  schedule.c = c;
  schedule.bounds.strong_diameter = 2.0 * k;  // paper: 2 (cn)^{1/λ} ln(cn)
  schedule.bounds.colors = static_cast<double>(lambda);
  schedule.bounds.rounds = static_cast<double>(lambda) * k;
  schedule.bounds.success_probability = 1.0 - 3.0 / c;
  return schedule;
}

DecompositionRun high_radius_decomposition(const Graph& g,
                                           const HighRadiusOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  return DecompositionService::run_once_centralized(
      g,
      with_overflow_policy(
          theorem3_schedule(g.num_vertices(), options.lambda, options.c),
          options.overflow_policy, options.max_retries_per_phase),
      options.seed, options.run_to_completion, /*margin=*/1.0);
}

}  // namespace dsnd
