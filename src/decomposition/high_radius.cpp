#include "decomposition/high_radius.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace dsnd {

double high_radius_k(VertexId n, std::int32_t lambda, double c) {
  DSND_REQUIRE(n >= 1, "graph must be nonempty");
  DSND_REQUIRE(lambda >= 1, "lambda must be positive");
  DSND_REQUIRE(c > 0.0, "c must be positive");
  const double cn = c * static_cast<double>(n);
  return std::pow(cn, 1.0 / static_cast<double>(lambda)) * std::log(cn);
}

DecompositionRun high_radius_decomposition(const Graph& g,
                                           const HighRadiusOptions& options) {
  DSND_REQUIRE(g.num_vertices() >= 1, "graph must be nonempty");
  const VertexId n = g.num_vertices();
  const double k = high_radius_k(n, options.lambda, options.c);
  const double cn = options.c * static_cast<double>(n);
  // beta = ln(cn)/k = (cn)^{-1/lambda}: per-phase join probability
  // e^{-beta} is a constant close to 1, so lambda phases suffice.
  const double beta = std::log(cn) / k;

  CarveParams params;
  params.betas.assign(static_cast<std::size_t>(options.lambda), beta);
  params.phase_rounds = static_cast<std::int32_t>(std::ceil(k));
  params.margin = 1.0;
  params.radius_overflow_at = k + 1.0;
  params.run_to_completion = options.run_to_completion;
  params.seed = options.seed;

  DecompositionRun run;
  run.carve = carve_decomposition(g, params);
  run.k = k;
  run.c = options.c;
  run.bounds.strong_diameter = 2.0 * k;  // paper states 2 (cn)^{1/λ} ln(cn)
  run.bounds.colors = static_cast<double>(options.lambda);
  run.bounds.rounds = static_cast<double>(options.lambda) * k;
  run.bounds.success_probability = 1.0 - 3.0 / options.c;
  return run;
}

}  // namespace dsnd
