#include "service/result_cache.hpp"

#include <bit>

namespace dsnd {

namespace {

std::uint64_t mix_word(std::uint64_t h, std::uint64_t word) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + word;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_double(std::uint64_t h, double value) {
  return mix_word(h, std::bit_cast<std::uint64_t>(value));
}

}  // namespace

std::uint64_t schedule_signature(const CarveSchedule& schedule) {
  std::uint64_t h = 0x7363686564756c65ULL;  // "schedule"
  for (const char c : schedule.name) {
    h = mix_word(h, static_cast<std::uint64_t>(c));
  }
  h = mix_word(h, schedule.betas.size());
  for (const double beta : schedule.betas) h = mix_double(h, beta);
  h = mix_word(h, static_cast<std::uint64_t>(schedule.phase_rounds));
  h = mix_double(h, schedule.radius_overflow_at);
  h = mix_word(h, static_cast<std::uint64_t>(schedule.overflow_policy));
  h = mix_word(h,
               static_cast<std::uint64_t>(schedule.max_retries_per_phase));
  h = mix_word(h, static_cast<std::uint64_t>(schedule.max_run_retries));
  h = mix_word(h, static_cast<std::uint64_t>(schedule.max_rollbacks));
  h = mix_double(h, schedule.k);
  h = mix_double(h, schedule.c);
  h = mix_double(h, schedule.bounds.strong_diameter);
  h = mix_double(h, schedule.bounds.colors);
  h = mix_double(h, schedule.bounds.rounds);
  h = mix_double(h, schedule.bounds.success_probability);
  return h;
}

std::size_t ResultCache::KeyHash::operator()(
    const ResultCacheKey& key) const {
  std::uint64_t h = mix_word(key.graph_fingerprint, key.schedule);
  h = mix_word(h, key.seed);
  h = mix_word(h, static_cast<std::uint64_t>(key.deliverable));
  h = mix_word(h, static_cast<std::uint64_t>(key.backend));
  h = mix_word(h, static_cast<std::uint64_t>(key.cover_radius));
  h = mix_word(h, key.run_to_completion ? 1 : 0);
  h = mix_word(h, key.margin_bits);
  return static_cast<std::size_t>(h);
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const ServiceResult> ResultCache::find(
    const ResultCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return it->second->result;
}

void ResultCache::insert(const ResultCacheKey& key,
                         std::shared_ptr<const ServiceResult> result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent submitters can race to fill the same miss; the results
    // are bit-identical by contract, so keeping either is correct.
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ResultCacheStats snapshot = stats_;
  snapshot.entries = lru_.size();
  return snapshot;
}

}  // namespace dsnd
