// Decomposition-as-a-service: the long-lived front end the ROADMAP's
// "millions of users" north star asks for, built as a scheduler + cache
// on top of PR 8's warm CarveContexts (exactly the refactor PR 8 teed
// up — no engine changes here).
//
// Request lifecycle:
//
//   submit(request)
//     -> registry lookup (graph_id -> Graph + fingerprint)
//     -> cache probe        key = (fingerprint, schedule signature,
//                                  seed, deliverable, backend, knobs)
//        hit  -> shared_ptr to the cached result, zero recarve
//        miss -> execute:
//                  distributed -> ContextPool::acquire(fingerprint):
//                                 the graph's warm context (same-graph
//                                 requests serialize on it; distinct
//                                 graphs run in parallel)
//                  centralized -> run_schedule (the reference backend;
//                                 carries the margin/run_to_completion
//                                 ablation knobs)
//                  cover       -> carve G^{2W+1} centralized (same
//                                 clustering as distributed, by the
//                                 backend parity contract), expand W
//                                 hops via expand_clusters_to_cover
//             -> deliverable post-pass (mis/coloring/spanner over the
//                clustering)
//             -> validate_decomposition_fast gate (never-silently-
//                invalid: a reliable-transport run that fails external
//                validation is reported "INVALID", never cached)
//             -> cache insert (validated kOk results only)
//
// Results are bit-identical to the standalone carve entry points for
// every (graph, schedule, seed), every thread count, every submission
// order, and every warm/cold state — that is the existing engine
// contract, which makes caching and warm scheduling sound in the first
// place. The six theorem entry points in decomposition/ are thin
// wrappers over submissions to an ephemeral borrowing service, so every
// caller in the tree goes through this path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/coloring.hpp"
#include "apps/mis.hpp"
#include "apps/spanner.hpp"
#include "decomposition/carve_schedule.hpp"
#include "decomposition/carving_protocol.hpp"
#include "decomposition/covers.hpp"
#include "service/context_pool.hpp"
#include "service/result_cache.hpp"
#include "simulator/engine.hpp"

namespace dsnd {

/// What the caller wants computed from the carve.
enum class Deliverable : std::int32_t {
  kDecomposition = 0,
  kMis = 1,
  kColoring = 2,
  kSpanner = 3,
  kCover = 4,
};

const char* deliverable_name(Deliverable deliverable);
/// Inverse of deliverable_name; throws on unknown names (dsnd_serve's
/// request parser).
Deliverable deliverable_by_name(const std::string& name);

/// Which execution backend carves. Bit-identical per seed (the PR 3
/// parity contract), so this only selects cost/feature tradeoffs: the
/// distributed backend runs warm on the pooled context and reports sim
/// metrics; the centralized backend supports the margin /
/// run_to_completion ablation knobs.
enum class ServiceBackend : std::int32_t {
  kDistributed = 0,
  kCentralized = 1,
};

struct ServiceRequest {
  std::string graph_id;
  CarveSchedule schedule;
  std::uint64_t seed = 1;
  Deliverable deliverable = Deliverable::kDecomposition;
  ServiceBackend backend = ServiceBackend::kDistributed;
  /// kCover only: the cover radius W. The schedule is carved on
  /// G^{2W+1} (same vertex count, so schedules derived from n apply).
  std::int32_t cover_radius = 2;
  /// Centralized backend only (the E9 ablation knobs); the distributed
  /// protocol requires the defaults.
  bool run_to_completion = true;
  double margin = 1.0;
};

/// The immutable result a response points at (shared: cache hits alias
/// the original). run.sim is all-zero for centralized-backend requests.
struct ServiceResult {
  DistributedRun run;
  std::optional<MisResult> mis;
  std::optional<ColoringResult> coloring;
  std::optional<SpannerResult> spanner;
  std::optional<NeighborhoodCover> cover;
};

struct ServiceResponse {
  std::shared_ptr<const ServiceResult> result;
  bool cache_hit = false;
  /// False only when the validation gate failed (status "INVALID") —
  /// with validation disabled the response is trusted and valid=true.
  bool valid = true;
  /// "ok", a named CarveStatus, or "INVALID".
  std::string status = "ok";
  double wall_ms = 0.0;
};

struct ServiceOptions {
  /// Forwarded to every pooled context and centralized run; a borrowed
  /// transport must outlive the service.
  EngineOptions engine;
  /// Result-cache entries to retain (LRU); 0 disables caching.
  std::size_t cache_capacity = 64;
  /// Gate every executed response through validate_decomposition_fast.
  /// The theorem wrappers turn this off: their callers validate
  /// themselves, and ablation requests (margin < 1, kTruncate, no
  /// run_to_completion) legitimately fail the gate.
  bool validate_responses = true;
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t contexts_created = 0;
  std::uint64_t warm_acquires = 0;
  std::uint64_t invalid_responses = 0;
};

class DecompositionService {
 public:
  explicit DecompositionService(const ServiceOptions& options = {});
  ~DecompositionService();

  DecompositionService(const DecompositionService&) = delete;
  DecompositionService& operator=(const DecompositionService&) = delete;

  /// Registers an owned graph under graph_id (replacing any previous
  /// registration of that id; the retired registration stays alive —
  /// shared ownership — until every in-flight submit and warm context
  /// built on it lets go, so replacement is race-free). Returns its
  /// fingerprint.
  std::uint64_t register_graph(const std::string& graph_id, Graph graph);
  /// Borrowing twin for callers that already own the graph (the theorem
  /// wrappers): no copy; the graph must outlive the service — not just
  /// the registration, since warm contexts may keep referencing it
  /// after the id is re-registered.
  std::uint64_t register_graph_view(const std::string& graph_id,
                                    const Graph& graph);

  bool has_graph(const std::string& graph_id) const;
  /// Fingerprint of a registered graph; throws if unknown.
  std::uint64_t graph_fingerprint(const std::string& graph_id) const;

  /// Executes (or serves from cache) one request. Blocking and
  /// thread-safe: any number of threads may submit concurrently;
  /// requests sharing a graph serialize on its warm context, distinct
  /// graphs run in parallel. Throws std::invalid_argument for an
  /// unknown graph_id or an inapplicable knob combination.
  ServiceResponse submit(const ServiceRequest& request);

  /// Submits a batch, scheduling same-graph runs onto one context in
  /// submission order and distinct graphs onto parallel workers.
  /// Responses are returned in request order. A request that fails
  /// (unknown graph_id, inapplicable knobs) makes the whole call throw
  /// that request's exception — the first such in request order, after
  /// the remaining work finishes — matching serial submission instead
  /// of letting it escape a worker thread.
  std::vector<ServiceResponse> submit_batch(
      const std::vector<ServiceRequest>& requests);

  ServiceStats stats() const;

  /// One-shot submission paths for the theorem entry-point wrappers in
  /// decomposition/: an ephemeral borrowing service (cache off,
  /// validation off — the wrappers' callers validate themselves, and
  /// ablation knobs may legitimately fail the gate) executes a single
  /// request and returns the run. Bit-identical to the pre-service
  /// entry points by construction: the service path runs the same
  /// run_schedule / CarveContext machinery.
  static DecompositionRun run_once_centralized(const Graph& g,
                                               const CarveSchedule& schedule,
                                               std::uint64_t seed,
                                               bool run_to_completion,
                                               double margin);
  static DistributedRun run_once_distributed(
      const Graph& g, const CarveSchedule& schedule, std::uint64_t seed,
      const EngineOptions& engine_options);

 private:
  struct RegisteredGraph {
    std::optional<Graph> storage;  // empty for register_graph_view
    const Graph* graph = nullptr;
    std::uint64_t fingerprint = 0;
  };

  std::shared_ptr<const RegisteredGraph> lookup(
      const std::string& graph_id) const;
  std::shared_ptr<const ServiceResult> execute(
      const ServiceRequest& request,
      const std::shared_ptr<const RegisteredGraph>& registered,
      bool& valid, std::string& status);

  ServiceOptions options_;
  ContextPool pool_;
  ResultCache cache_;

  mutable std::mutex registry_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const RegisteredGraph>>
      graphs_;

  mutable std::mutex stats_mutex_;
  std::uint64_t requests_ = 0;
  std::uint64_t invalid_responses_ = 0;
};

}  // namespace dsnd
