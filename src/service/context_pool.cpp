#include "service/context_pool.hpp"

namespace dsnd {

ContextPool::ContextPool(const EngineOptions& engine) : engine_(engine) {}

ContextPool::Lease ContextPool::acquire(const std::string& graph_id,
                                        const Graph& graph) {
  Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto& entry = slots_[graph_id];
    if (!entry) entry = std::make_unique<Slot>();
    slot = entry.get();
  }
  // Blocks until same-graph predecessors finish — the serialize-on-one-
  // warm-context policy. Slots are never erased, so the pointer stays
  // valid without the registry lock.
  std::unique_lock<std::mutex> slot_lock(slot->mutex);
  const bool created = slot->context == nullptr;
  if (created) {
    slot->context = std::make_unique<CarveContext>(graph, engine_);
  }
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    if (created) {
      ++stats_.contexts_created;
    } else {
      ++stats_.warm_acquires;
    }
  }
  return Lease(std::move(slot_lock), slot->context.get(), created);
}

ContextPoolStats ContextPool::stats() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return stats_;
}

}  // namespace dsnd
