#include "service/context_pool.hpp"

namespace dsnd {

ContextPool::ContextPool(const EngineOptions& engine) : engine_(engine) {}

ContextPool::Lease ContextPool::acquire(
    std::uint64_t fingerprint, const Graph& graph,
    std::shared_ptr<const void> keep_alive) {
  Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto& entry = slots_[fingerprint];
    if (!entry) entry = std::make_unique<Slot>();
    slot = entry.get();
  }
  // Blocks until same-graph predecessors finish — the serialize-on-one-
  // warm-context policy. Slots are never erased, so the pointer stays
  // valid without the registry lock.
  std::unique_lock<std::mutex> slot_lock(slot->mutex);
  const bool created = slot->context == nullptr;
  if (created) {
    slot->context = std::make_unique<CarveContext>(graph, engine_);
    // Pins the registration whose graph the context references; a warm
    // acquire under the same fingerprint may come from a different (but
    // structurally identical) registration, and this keeps the original
    // alive for it.
    slot->keep_alive = std::move(keep_alive);
  }
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    if (created) {
      ++stats_.contexts_created;
    } else {
      ++stats_.warm_acquires;
    }
  }
  return Lease(std::move(slot_lock), slot->context.get(), created);
}

ContextPoolStats ContextPool::stats() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return stats_;
}

}  // namespace dsnd
