// Warm CarveContext pool for the DecompositionService.
//
// One slot per distinct graph *fingerprint*, each holding a lazily
// constructed CarveContext (engine + parked worker pool + retained
// protocol arrays, see carving_protocol.hpp) behind its own mutex.
// acquire() blocks until the slot is free, so requests sharing a graph
// serialize onto the same warm context — the first request pays
// construction, every later one runs warm — while requests for distinct
// graphs run fully in parallel on their own slots. Warm ≡ cold is a
// pinned bit-identity contract, so this scheduling policy is invisible
// in the results; it only moves wall time.
//
// Keying by fingerprint (the same structural hash the result cache
// trusts) rather than graph_id means re-registering an id under new
// contents maps to a fresh slot instead of silently reusing a context
// built on the retired graph. Each slot additionally pins a keep-alive
// handle to the registration that built its context, so the referenced
// graph cannot be destroyed out from under a warm context by a later
// re-registration. Slots are never erased; the pool's footprint is
// bounded by the number of distinct graphs it has ever carved.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "decomposition/carving_protocol.hpp"
#include "simulator/engine.hpp"

namespace dsnd {

struct ContextPoolStats {
  /// Cold acquisitions: a slot's context was constructed for the call.
  std::uint64_t contexts_created = 0;
  /// Warm acquisitions: the slot already held a context and reused it.
  std::uint64_t warm_acquires = 0;
};

class ContextPool {
 public:
  /// engine is copied; a borrowed transport inside it must outlive the
  /// pool (the same rule CarveContext itself imposes).
  explicit ContextPool(const EngineOptions& engine);

  /// RAII lease: holds the slot's lock for its lifetime. Movable so
  /// acquire() can return it; not copyable.
  class Lease {
   public:
    CarveContext& context() { return *context_; }
    /// True when this acquisition constructed the context (cold).
    bool created() const { return created_; }

   private:
    friend class ContextPool;
    Lease(std::unique_lock<std::mutex> lock, CarveContext* context,
          bool created)
        : lock_(std::move(lock)), context_(context), created_(created) {}

    std::unique_lock<std::mutex> lock_;
    CarveContext* context_;
    bool created_;
  };

  /// Blocks until the fingerprint's slot is free, constructing the
  /// context on first use. keep_alive is retained by the slot for as
  /// long as it holds a context, pinning whatever owns the graph (the
  /// service passes its RegisteredGraph) so the reference the context
  /// captured cannot dangle after a re-registration.
  Lease acquire(std::uint64_t fingerprint, const Graph& graph,
                std::shared_ptr<const void> keep_alive);

  ContextPoolStats stats() const;

 private:
  struct Slot {
    std::mutex mutex;
    std::unique_ptr<CarveContext> context;
    std::shared_ptr<const void> keep_alive;
  };

  EngineOptions engine_;
  mutable std::mutex registry_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Slot>> slots_;
  ContextPoolStats stats_;
};

}  // namespace dsnd
