// Seed-keyed result cache for the DecompositionService.
//
// A cache entry is one completed, validated service result, keyed by
// everything that determines it bit for bit: the graph's structural
// fingerprint, a signature hash over every CarveSchedule field, the
// carve seed, the deliverable, the backend, and the run-time knobs
// (cover radius, run_to_completion, margin). Because runs are pure
// functions of that tuple — the bit-identity contract the whole tree is
// built on — a hit can be served as a shared_ptr to the original result
// with no recarve and no copy.
//
// Thread-safe (one mutex; entries are immutable once inserted) with LRU
// eviction and hit/miss/eviction accounting, which the service surfaces
// in its stats and the --service-smoke JSON.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "decomposition/carve_schedule.hpp"

namespace dsnd {

struct ServiceResult;  // decomposition_service.hpp

/// Hash over every field of a CarveSchedule (name, betas, budgets,
/// bounds, ...): two schedules with the same signature run the same
/// carve. Doubles are hashed by bit pattern, so the signature is exact,
/// not approximate.
std::uint64_t schedule_signature(const CarveSchedule& schedule);

/// The full cache key. margin_bits is the raw bit pattern of the margin
/// knob (exact, like the schedule signature).
struct ResultCacheKey {
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t schedule = 0;  // schedule_signature()
  std::uint64_t seed = 0;
  std::int32_t deliverable = 0;
  std::int32_t backend = 0;
  std::int32_t cover_radius = 0;
  bool run_to_completion = true;
  std::uint64_t margin_bits = 0;

  friend bool operator==(const ResultCacheKey&,
                         const ResultCacheKey&) = default;
};

struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
};

class ResultCache {
 public:
  /// capacity = max retained entries; 0 disables the cache entirely
  /// (every find() is a miss, insert() is a no-op).
  explicit ResultCache(std::size_t capacity);

  /// Returns the cached result (promoting it to most-recently-used) or
  /// nullptr. Counts one hit or one miss.
  std::shared_ptr<const ServiceResult> find(const ResultCacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when over capacity. Callers only insert validated results —
  /// the cache never has to distinguish good entries from bad ones.
  void insert(const ResultCacheKey& key,
              std::shared_ptr<const ServiceResult> result);

  ResultCacheStats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const ResultCacheKey& key) const;
  };
  struct Entry {
    ResultCacheKey key;
    std::shared_ptr<const ServiceResult> result;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Most-recently-used at the front; the map points into the list.
  std::list<Entry> lru_;
  std::unordered_map<ResultCacheKey, std::list<Entry>::iterator, KeyHash>
      index_;
  ResultCacheStats stats_;
};

}  // namespace dsnd
