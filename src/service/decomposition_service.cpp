#include "service/decomposition_service.hpp"

#include <algorithm>
#include <bit>
#include <thread>
#include <utility>

#include "decomposition/validation.hpp"
#include "graph/power.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace dsnd {

const char* deliverable_name(Deliverable deliverable) {
  switch (deliverable) {
    case Deliverable::kDecomposition:
      return "decomposition";
    case Deliverable::kMis:
      return "mis";
    case Deliverable::kColoring:
      return "coloring";
    case Deliverable::kSpanner:
      return "spanner";
    case Deliverable::kCover:
      return "cover";
  }
  DSND_CHECK(false, "unreachable deliverable");
  return "?";
}

Deliverable deliverable_by_name(const std::string& name) {
  for (const Deliverable d :
       {Deliverable::kDecomposition, Deliverable::kMis,
        Deliverable::kColoring, Deliverable::kSpanner, Deliverable::kCover}) {
    if (name == deliverable_name(d)) return d;
  }
  DSND_REQUIRE(false, "unknown deliverable: " + name);
  return Deliverable::kDecomposition;  // unreachable
}

DecompositionService::DecompositionService(const ServiceOptions& options)
    : options_(options),
      pool_(options.engine),
      cache_(options.cache_capacity) {}

DecompositionService::~DecompositionService() = default;

std::uint64_t DecompositionService::register_graph(
    const std::string& graph_id, Graph graph) {
  auto registered = std::make_shared<RegisteredGraph>();
  registered->storage = std::move(graph);
  registered->graph = &*registered->storage;
  registered->fingerprint = registered->graph->fingerprint();
  const std::uint64_t fingerprint = registered->fingerprint;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  graphs_[graph_id] = std::move(registered);
  return fingerprint;
}

std::uint64_t DecompositionService::register_graph_view(
    const std::string& graph_id, const Graph& graph) {
  auto registered = std::make_shared<RegisteredGraph>();
  registered->graph = &graph;
  registered->fingerprint = graph.fingerprint();
  const std::uint64_t fingerprint = registered->fingerprint;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  graphs_[graph_id] = std::move(registered);
  return fingerprint;
}

bool DecompositionService::has_graph(const std::string& graph_id) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return graphs_.contains(graph_id);
}

std::uint64_t DecompositionService::graph_fingerprint(
    const std::string& graph_id) const {
  return lookup(graph_id)->fingerprint;
}

std::shared_ptr<const DecompositionService::RegisteredGraph>
DecompositionService::lookup(const std::string& graph_id) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = graphs_.find(graph_id);
  DSND_REQUIRE(it != graphs_.end(),
               "unknown graph_id: " + graph_id +
                   " (register_graph it first)");
  // Shared ownership: a concurrent re-registration of the id swaps the
  // map entry but retires the old registration only after every caller
  // holding this pointer has drained.
  return it->second;
}

std::shared_ptr<const ServiceResult> DecompositionService::execute(
    const ServiceRequest& request,
    const std::shared_ptr<const RegisteredGraph>& registered,
    bool& valid, std::string& status) {
  const Graph& g = *registered->graph;
  auto result = std::make_shared<ServiceResult>();
  // The graph the base clustering lives on (G^{2W+1} for covers).
  const Graph* carved_graph = &g;
  std::optional<Graph> power_storage;

  if (request.deliverable == Deliverable::kCover) {
    // Covers carve the power graph. Its topology differs from the
    // registered graph, so the pooled context does not apply; the
    // centralized backend produces the identical clustering (the PR 3
    // parity contract) without a throwaway engine build.
    power_storage.emplace(graph_power(g, 2 * request.cover_radius + 1));
    carved_graph = &*power_storage;
    result->run.run = run_schedule(*carved_graph, request.schedule,
                                   request.seed, request.run_to_completion,
                                   request.margin);
  } else if (request.backend == ServiceBackend::kCentralized) {
    result->run.run = run_schedule(g, request.schedule, request.seed,
                                   request.run_to_completion,
                                   request.margin);
  } else {
    DSND_REQUIRE(request.run_to_completion && request.margin == 1.0,
                 "the distributed backend implements the paper's exact "
                 "rules; use ServiceBackend::kCentralized for the "
                 "margin/run_to_completion ablations");
    ContextPool::Lease lease =
        pool_.acquire(registered->fingerprint, g, registered);
    result->run =
        run_schedule_distributed(lease.context(), request.schedule,
                                 request.seed);
  }

  status = carve_status_name(result->run.run.carve.status);
  if (options_.validate_responses) {
    const FastDecompositionReport report = validate_decomposition_fast(
        *carved_graph, result->run.run.clustering());
    const bool clustering_ok = report.complete &&
                               report.proper_phase_coloring &&
                               report.all_clusters_connected;
    if (result->run.run.carve.status == CarveStatus::kOk &&
        !clustering_ok) {
      // The never-silently-invalid contract: a run that claimed ok but
      // fails external validation is flagged, never served as good and
      // never cached. (Named failures keep their status string.)
      valid = false;
      status = "INVALID";
      return result;
    }
  }
  valid = true;

  const Clustering& clustering = result->run.run.clustering();
  switch (request.deliverable) {
    case Deliverable::kDecomposition:
      break;
    case Deliverable::kMis:
      result->mis = mis_by_decomposition(g, clustering);
      break;
    case Deliverable::kColoring:
      result->coloring = coloring_by_decomposition(g, clustering);
      break;
    case Deliverable::kSpanner:
      result->spanner = spanner_by_decomposition(g, clustering);
      break;
    case Deliverable::kCover: {
      NeighborhoodCover cover;
      cover.radius = request.cover_radius;
      cover.base = result->run.run;
      cover.num_colors = clustering.num_colors();
      cover.clusters =
          expand_clusters_to_cover(g, clustering, request.cover_radius);
      result->cover = std::move(cover);
      break;
    }
  }
  return result;
}

ServiceResponse DecompositionService::submit(const ServiceRequest& request) {
  Timer timer;
  const std::shared_ptr<const RegisteredGraph> registered =
      lookup(request.graph_id);

  const bool is_cover = request.deliverable == Deliverable::kCover;
  if (is_cover) {
    DSND_REQUIRE(request.cover_radius >= 1, "cover radius must be positive");
    // Covers always carve centralized (see execute), but a distributed-
    // backend cover request still promises the paper's exact rules, so
    // the ablation knobs are rejected exactly as on the non-cover
    // distributed path instead of being silently accepted.
    DSND_REQUIRE(request.backend == ServiceBackend::kCentralized ||
                     (request.run_to_completion && request.margin == 1.0),
                 "the distributed backend implements the paper's exact "
                 "rules; use ServiceBackend::kCentralized for the "
                 "margin/run_to_completion ablations");
  }

  ResultCacheKey key;
  key.graph_fingerprint = registered->fingerprint;
  key.schedule = schedule_signature(request.schedule);
  key.seed = request.seed;
  key.deliverable = static_cast<std::int32_t>(request.deliverable);
  // The backend does not determine a cover result (covers always carve
  // centralized), so it is normalized out of the key: identical cover
  // requests under either backend share one cache entry.
  key.backend = static_cast<std::int32_t>(
      is_cover ? ServiceBackend::kCentralized : request.backend);
  key.cover_radius = is_cover ? request.cover_radius : 0;
  key.run_to_completion = request.run_to_completion;
  key.margin_bits = std::bit_cast<std::uint64_t>(request.margin);

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++requests_;
  }

  ServiceResponse response;
  if (auto cached = cache_.find(key)) {
    response.result = std::move(cached);
    response.cache_hit = true;
    response.status =
        carve_status_name(response.result->run.run.carve.status);
    response.wall_ms = timer.elapsed_millis();
    return response;
  }

  response.result =
      execute(request, registered, response.valid, response.status);
  if (response.valid &&
      response.result->run.run.carve.status == CarveStatus::kOk) {
    cache_.insert(key, response.result);
  }
  if (!response.valid) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++invalid_responses_;
  }
  response.wall_ms = timer.elapsed_millis();
  return response;
}

std::vector<ServiceResponse> DecompositionService::submit_batch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<ServiceResponse> responses(requests.size());
  // Group indices by graph_id, preserving submission order within each
  // group: one worker per distinct graph drains its group sequentially
  // (same-graph requests share one warm context anyway), distinct
  // graphs run in parallel.
  std::vector<std::pair<std::string, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& e) {
      return e.first == requests[i].graph_id;
    });
    if (it == groups.end()) {
      groups.emplace_back(requests[i].graph_id,
                          std::vector<std::size_t>{i});
    } else {
      it->second.push_back(i);
    }
  }
  if (groups.size() <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      responses[i] = submit(requests[i]);
    }
    return responses;
  }
  std::vector<std::exception_ptr> errors(requests.size());
  std::vector<std::thread> workers;
  workers.reserve(groups.size());
  for (const auto& [graph_id, indices] : groups) {
    workers.emplace_back([this, &requests, &responses, &errors, &indices] {
      for (const std::size_t i : indices) {
        try {
          responses[i] = submit(requests[i]);
        } catch (...) {
          // Captured, not propagated: an exception escaping a worker
          // thread would std::terminate the whole process, turning one
          // bad request in a batch into a fatal event that the same
          // request submitted serially survives.
          errors[i] = std::current_exception();
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return responses;
}

DecompositionRun DecompositionService::run_once_centralized(
    const Graph& g, const CarveSchedule& schedule, std::uint64_t seed,
    bool run_to_completion, double margin) {
  ServiceOptions options;
  options.cache_capacity = 0;
  options.validate_responses = false;
  DecompositionService service(options);
  service.register_graph_view("g", g);
  ServiceRequest request;
  request.graph_id = "g";
  request.schedule = schedule;
  request.seed = seed;
  request.backend = ServiceBackend::kCentralized;
  request.run_to_completion = run_to_completion;
  request.margin = margin;
  return service.submit(request).result->run.run;
}

DistributedRun DecompositionService::run_once_distributed(
    const Graph& g, const CarveSchedule& schedule, std::uint64_t seed,
    const EngineOptions& engine_options) {
  ServiceOptions options;
  options.engine = engine_options;
  options.cache_capacity = 0;
  options.validate_responses = false;
  DecompositionService service(options);
  service.register_graph_view("g", g);
  ServiceRequest request;
  request.graph_id = "g";
  request.schedule = schedule;
  request.seed = seed;
  request.backend = ServiceBackend::kDistributed;
  return service.submit(request).result->run;
}

ServiceStats DecompositionService::stats() const {
  ServiceStats stats;
  const ResultCacheStats cache = cache_.stats();
  const ContextPoolStats pool = pool_.stats();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats.requests = requests_;
  stats.invalid_responses = invalid_responses_;
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_evictions = cache.evictions;
  stats.cache_entries = cache.entries;
  stats.contexts_created = pool.contexts_created;
  stats.warm_acquires = pool.warm_acquires;
  return stats;
}

}  // namespace dsnd
