#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "support/assert.hpp"

namespace dsnd {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  g.for_each_edge(
      [&out](VertexId u, VertexId v) { out << u << ' ' << v << '\n'; });
}

Graph read_edge_list(std::istream& in) {
  VertexId n = 0;
  std::int64_t m = 0;
  if (!(in >> n >> m)) {
    throw std::runtime_error("edge list: missing header");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    Edge e;
    if (!(in >> e.u >> e.v)) {
      throw std::runtime_error("edge list: truncated edge section");
    }
    edges.push_back(e);
  }
  return Graph::from_edges(n, std::move(edges));
}

void write_dimacs(std::ostream& out, const Graph& g) {
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  g.for_each_edge([&out](VertexId u, VertexId v) {
    out << "e " << (u + 1) << ' ' << (v + 1) << '\n';
  });
}

Graph read_dimacs(std::istream& in) {
  VertexId n = 0;
  std::int64_t m = 0;
  std::vector<Edge> edges;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'p') {
      std::string format;
      if (!(fields >> format >> n >> m) || format != "edge") {
        throw std::runtime_error("dimacs: malformed problem line");
      }
      have_header = true;
    } else if (tag == 'e') {
      Edge e;
      if (!(fields >> e.u >> e.v)) {
        throw std::runtime_error("dimacs: malformed edge line");
      }
      --e.u;
      --e.v;
      edges.push_back(e);
    } else {
      throw std::runtime_error("dimacs: unknown line tag");
    }
  }
  if (!have_header) throw std::runtime_error("dimacs: missing problem line");
  if (static_cast<std::int64_t>(edges.size()) != m) {
    throw std::runtime_error("dimacs: edge count mismatch");
  }
  return Graph::from_edges(n, std::move(edges));
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_edge_list(out, g);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_edge_list(in);
}

}  // namespace dsnd
