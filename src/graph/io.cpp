#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace dsnd {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error(message);
}

/// "edge 3 of 7" / "line 12" context strings keep every reader error
/// actionable without the caller re-parsing the file.
std::string edge_context(std::int64_t index, std::int64_t total) {
  return "edge " + std::to_string(index + 1) + " of " +
         std::to_string(total);
}

void check_endpoint_range(VertexId endpoint, VertexId n,
                          const std::string& where,
                          const std::string& format) {
  if (endpoint < 0 || endpoint >= n) {
    fail(format + ": " + where + ": endpoint " + std::to_string(endpoint) +
         " out of range [0, " + std::to_string(n) + ")");
  }
}

}  // namespace

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  g.for_each_edge(
      [&out](VertexId u, VertexId v) { out << u << ' ' << v << '\n'; });
}

Graph read_edge_list(std::istream& in) {
  VertexId n = 0;
  std::int64_t m = 0;
  if (!(in >> n >> m)) {
    fail("edge list: missing or malformed \"n m\" header");
  }
  if (n < 0) fail("edge list: negative vertex count in header");
  if (m < 0) fail("edge list: negative edge count in header");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    Edge e;
    if (!(in >> e.u >> e.v)) {
      fail("edge list: truncated edge section (" + edge_context(i, m) +
           " missing or malformed)");
    }
    check_endpoint_range(e.u, n, edge_context(i, m), "edge list");
    check_endpoint_range(e.v, n, edge_context(i, m), "edge list");
    if (e.u == e.v) {
      fail("edge list: " + edge_context(i, m) + ": self-loop at vertex " +
           std::to_string(e.u));
    }
    edges.push_back(e);
  }
  try {
    return Graph::from_edges(n, std::move(edges));
  } catch (const std::invalid_argument& error) {
    fail(std::string("edge list: ") + error.what());
  }
}

void write_dimacs(std::ostream& out, const Graph& g) {
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  g.for_each_edge([&out](VertexId u, VertexId v) {
    out << "e " << (u + 1) << ' ' << (v + 1) << '\n';
  });
}

Graph read_dimacs(std::istream& in) {
  VertexId n = 0;
  std::int64_t m = 0;
  std::vector<Edge> edges;
  std::string line;
  bool have_header = false;
  std::int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'p') {
      std::string format;
      if (!(fields >> format >> n >> m) || format != "edge" || n < 0 ||
          m < 0) {
        fail("dimacs: line " + std::to_string(line_number) +
             ": malformed problem line");
      }
      have_header = true;
    } else if (tag == 'e') {
      if (!have_header) {
        fail("dimacs: line " + std::to_string(line_number) +
             ": edge before the problem line");
      }
      Edge e;
      if (!(fields >> e.u >> e.v)) {
        fail("dimacs: line " + std::to_string(line_number) +
             ": malformed edge line");
      }
      --e.u;
      --e.v;
      const std::string where = "line " + std::to_string(line_number);
      check_endpoint_range(e.u, n, where, "dimacs");
      check_endpoint_range(e.v, n, where, "dimacs");
      edges.push_back(e);
    } else {
      fail("dimacs: line " + std::to_string(line_number) +
           ": unknown line tag '" + std::string(1, tag) + "'");
    }
  }
  if (!have_header) fail("dimacs: missing problem line");
  if (static_cast<std::int64_t>(edges.size()) != m) {
    fail("dimacs: header promises " + std::to_string(m) + " edges, found " +
         std::to_string(edges.size()));
  }
  try {
    return Graph::from_edges(n, std::move(edges));
  } catch (const std::invalid_argument& error) {
    fail(std::string("dimacs: ") + error.what());
  }
}

void write_metis(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    for (const VertexId w : g.neighbors(v)) {
      if (!first) out << ' ';
      out << (w + 1);  // METIS vertices are 1-indexed
      first = false;
    }
    out << '\n';
  }
}

Graph read_metis(std::istream& in) {
  std::string line;
  std::int64_t line_number = 0;
  auto next_content_line = [&](const char* expect) {
    while (std::getline(in, line)) {
      ++line_number;
      if (!line.empty() && line[0] == '%') continue;  // comment
      return true;
    }
    fail(std::string("metis: truncated file (") + expect + " missing)");
  };

  next_content_line("header");
  VertexId n = 0;
  std::int64_t m = 0;
  {
    std::istringstream header(line);
    if (!(header >> n >> m) || n < 0 || m < 0) {
      fail("metis: line " + std::to_string(line_number) +
           ": malformed \"n m\" header");
    }
    std::string extra;
    if (header >> extra) {
      fail("metis: line " + std::to_string(line_number) +
           ": unsupported header flags \"" + extra +
           "\" (only unweighted graphs)");
    }
  }

  // Adjacency rows exactly as written (1-indexed in the file).
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<VertexId> adjacency;
  adjacency.reserve(static_cast<std::size_t>(2 * m));
  for (VertexId v = 0; v < n; ++v) {
    next_content_line(("adjacency row for vertex " + std::to_string(v))
                          .c_str());
    std::istringstream row(line);
    std::int64_t neighbor = 0;
    while (row >> neighbor) {
      const std::string where = "line " + std::to_string(line_number);
      if (neighbor < 1 || neighbor > n) {
        fail("metis: " + where + ": neighbor " + std::to_string(neighbor) +
             " out of range [1, " + std::to_string(n) + "]");
      }
      const auto w = static_cast<VertexId>(neighbor - 1);
      if (w == v) {
        fail("metis: " + where + ": self-loop at vertex " +
             std::to_string(v));
      }
      adjacency.push_back(w);
    }
    if (!row.eof()) {
      fail("metis: line " + std::to_string(line_number) +
           ": malformed adjacency entry");
    }
    offsets[static_cast<std::size_t>(v) + 1] =
        static_cast<std::int64_t>(adjacency.size());
  }
  if (static_cast<std::int64_t>(adjacency.size()) != 2 * m) {
    fail("metis: header promises " + std::to_string(m) +
         " undirected edges (" + std::to_string(2 * m) +
         " adjacency entries), found " + std::to_string(adjacency.size()));
  }

  // METIS rows may be unsorted; sort them, then reject duplicates and
  // verify symmetry (v in row u requires u in row v) with binary search.
  for (VertexId v = 0; v < n; ++v) {
    const auto begin =
        adjacency.begin() +
        static_cast<std::ptrdiff_t>(offsets[static_cast<std::size_t>(v)]);
    const auto end = adjacency.begin() +
                     static_cast<std::ptrdiff_t>(
                         offsets[static_cast<std::size_t>(v) + 1]);
    std::sort(begin, end);
    const auto dup = std::adjacent_find(begin, end);
    if (dup != end) {
      fail("metis: duplicate edge {" + std::to_string(v) + ", " +
           std::to_string(*dup) + "} in the row of vertex " +
           std::to_string(v));
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    for (std::int64_t i = offsets[static_cast<std::size_t>(v)];
         i < offsets[static_cast<std::size_t>(v) + 1]; ++i) {
      const VertexId w = adjacency[static_cast<std::size_t>(i)];
      const auto begin =
          adjacency.begin() +
          static_cast<std::ptrdiff_t>(offsets[static_cast<std::size_t>(w)]);
      const auto end = adjacency.begin() +
                       static_cast<std::ptrdiff_t>(
                           offsets[static_cast<std::size_t>(w) + 1]);
      if (!std::binary_search(begin, end, v)) {
        fail("metis: asymmetric adjacency: vertex " + std::to_string(w) +
             " appears in the row of " + std::to_string(v) +
             " but not vice versa");
      }
    }
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

namespace {

std::ifstream open_for_reading(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open for reading: " + path);
  return in;
}

void write_file(const std::string& path,
                void (*writer)(std::ostream&, const Graph&),
                const Graph& g) {
  std::ofstream out(path);
  if (!out) fail("cannot open for writing: " + path);
  writer(out, g);
  if (!out) fail("write failed: " + path);
}

bool has_extension(const std::string& path, const std::string& ext) {
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

}  // namespace

void save_edge_list(const std::string& path, const Graph& g) {
  write_file(path, write_edge_list, g);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in = open_for_reading(path);
  return read_edge_list(in);
}

void save_metis(const std::string& path, const Graph& g) {
  write_file(path, write_metis, g);
}

Graph load_metis(const std::string& path) {
  std::ifstream in = open_for_reading(path);
  return read_metis(in);
}

Graph load_graph(const std::string& path) {
  std::ifstream in = open_for_reading(path);
  if (has_extension(path, ".graph") || has_extension(path, ".metis")) {
    return read_metis(in);
  }
  if (has_extension(path, ".dimacs") || has_extension(path, ".col")) {
    return read_dimacs(in);
  }
  return read_edge_list(in);
}

}  // namespace dsnd
