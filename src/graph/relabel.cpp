#include "graph/relabel.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace dsnd {

Permutation Permutation::identity(VertexId n) {
  DSND_REQUIRE(n >= 0, "vertex count must be nonnegative");
  Permutation p;
  p.to_new.resize(static_cast<std::size_t>(n));
  std::iota(p.to_new.begin(), p.to_new.end(), 0);
  p.to_old = p.to_new;
  return p;
}

Permutation Permutation::from_to_new(std::vector<VertexId> to_new) {
  const auto n = static_cast<VertexId>(to_new.size());
  Permutation p;
  p.to_old.assign(to_new.size(), -1);
  for (std::size_t old_id = 0; old_id < to_new.size(); ++old_id) {
    const VertexId new_id = to_new[old_id];
    DSND_REQUIRE(new_id >= 0 && new_id < n,
                 "permutation entry out of range");
    DSND_REQUIRE(p.to_old[static_cast<std::size_t>(new_id)] == -1,
                 "permutation entry repeated");
    p.to_old[static_cast<std::size_t>(new_id)] =
        static_cast<VertexId>(old_id);
  }
  p.to_new = std::move(to_new);
  return p;
}

Permutation bfs_layout(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  Permutation p;
  p.to_new.assign(n, -1);
  p.to_old.reserve(n);
  std::vector<VertexId> queue;
  queue.reserve(n);
  for (VertexId root = 0; root < g.num_vertices(); ++root) {
    if (p.to_new[static_cast<std::size_t>(root)] != -1) continue;
    p.to_new[static_cast<std::size_t>(root)] =
        static_cast<VertexId>(p.to_old.size());
    p.to_old.push_back(root);
    queue.clear();
    queue.push_back(root);
    // The visit list doubles as the queue: p.to_old grows as vertices
    // are discovered, and `queue` mirrors the current component's tail.
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (const VertexId w : g.neighbors(v)) {
        if (p.to_new[static_cast<std::size_t>(w)] != -1) continue;
        p.to_new[static_cast<std::size_t>(w)] =
            static_cast<VertexId>(p.to_old.size());
        p.to_old.push_back(w);
        queue.push_back(w);
      }
    }
  }
  return p;
}

Permutation grid_bucket_layout(std::span<const double> x,
                               std::span<const double> y,
                               std::int32_t cells_per_side) {
  DSND_REQUIRE(x.size() == y.size(), "coordinate arrays must match");
  DSND_REQUIRE(cells_per_side >= 1, "need at least one cell per side");
  const std::size_t n = x.size();
  const auto side = static_cast<std::size_t>(cells_per_side);
  auto cell_coord = [cells_per_side](double value) {
    const auto c = static_cast<std::int32_t>(
        value * static_cast<double>(cells_per_side));
    return static_cast<std::size_t>(
        std::clamp<std::int32_t>(c, 0, cells_per_side - 1));
  };
  // Counting sort by row-major cell; point order within a cell.
  std::vector<std::size_t> cell_start(side * side + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++cell_start[cell_coord(y[i]) * side + cell_coord(x[i]) + 1];
  }
  for (std::size_t c = 0; c + 1 < cell_start.size(); ++c) {
    cell_start[c + 1] += cell_start[c];
  }
  Permutation p;
  p.to_new.resize(n);
  p.to_old.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot =
        cell_start[cell_coord(y[i]) * side + cell_coord(x[i])]++;
    p.to_new[i] = static_cast<VertexId>(slot);
    p.to_old[slot] = static_cast<VertexId>(i);
  }
  return p;
}

Graph apply_layout(const Graph& g, const Permutation& layout) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  DSND_REQUIRE(layout.to_new.size() == n && layout.to_old.size() == n,
               "layout size must match the graph");
  std::vector<std::int64_t> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offsets[v + 1] =
        offsets[v] +
        g.degree(layout.to_old[v]);
  }
  std::vector<VertexId> adjacency(static_cast<std::size_t>(offsets[n]));
  for (std::size_t v = 0; v < n; ++v) {
    auto out = adjacency.begin() + offsets[v];
    for (const VertexId w : g.neighbors(layout.to_old[v])) {
      *out++ = layout.to_new[static_cast<std::size_t>(w)];
    }
    std::sort(adjacency.begin() + offsets[v],
              adjacency.begin() + offsets[v + 1]);
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

LayoutGraph make_layout_graph(const Graph& g, Permutation layout) {
  LayoutGraph result;
  result.graph = apply_layout(g, layout);
  result.layout = std::move(layout);
  return result;
}

}  // namespace dsnd
