// Cache-aware vertex relabeling.
//
// The decomposition engines walk adjacency rows and per-vertex state
// arrays indexed by vertex id, so the memory-access pattern of a run is
// the graph's labeling. Generators hand out labels in generation order
// (RGG: point order, i.e. random), which scatters neighbors across the
// arrays; a locality-preserving relabeling packs topologically close
// vertices into close ids and makes the same run markedly
// cache-friendlier at the million-vertex scale.
//
// Everything is expressed through a `Permutation` (old<->new bijection):
// `apply_layout` rebuilds the graph under new ids, and the carving entry
// points (carving_protocol.hpp) accept the layout so radii, tie-breaks,
// and the returned clustering all stay keyed to the ORIGINAL ids —
// a relabeled run is bit-identical to an unrelabeled one (asserted by
// tests/test_relabel.cpp).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

/// A bijection on [0, n): the relabeling in both directions.
struct Permutation {
  std::vector<VertexId> to_new;  // to_new[old id] = new id
  std::vector<VertexId> to_old;  // to_old[new id] = old id

  VertexId size() const { return static_cast<VertexId>(to_new.size()); }

  /// The identity layout on n vertices.
  static Permutation identity(VertexId n);

  /// Builds from the old->new map; throws unless it is a bijection.
  static Permutation from_to_new(std::vector<VertexId> to_new);

  /// The reverse relabeling (swaps the two directions).
  Permutation inverse() const { return Permutation{to_old, to_new}; }
};

/// BFS visit order from vertex 0 (remaining components in id order):
/// neighbors land within a BFS-frontier width of each other. The right
/// default for meshes, rings, and other bounded-growth graphs.
Permutation bfs_layout(const Graph& g);

/// Geometric bucket order: vertices sorted by grid cell (row-major over
/// a cells_per_side x cells_per_side grid on the unit square, point
/// order within a cell). The natural layout for random geometric graphs
/// — neighbors are within one cell row of each other. Coordinates must
/// lie in [0, 1]; cells_per_side >= 1.
Permutation grid_bucket_layout(std::span<const double> x,
                               std::span<const double> y,
                               std::int32_t cells_per_side);

/// Rebuilds g with every vertex v renamed to layout.to_new[v]. O(n + m).
Graph apply_layout(const Graph& g, const Permutation& layout);

/// A relabeled graph bundled with the layout that produced it — what the
/// layout-aware runners (run_schedule_distributed overload) consume to
/// translate results back to original ids.
struct LayoutGraph {
  Graph graph;         // relabeled: vertex layout.to_new[v] is old v
  Permutation layout;
};

/// apply_layout + bundle.
LayoutGraph make_layout_graph(const Graph& g, Permutation layout);

/// Maps a per-vertex array indexed by NEW ids back to original ids.
template <typename T>
std::vector<T> unpermute(const std::vector<T>& by_new_id,
                         const Permutation& layout) {
  std::vector<T> by_old_id(by_new_id.size());
  for (std::size_t v = 0; v < by_new_id.size(); ++v) {
    by_old_id[static_cast<std::size_t>(
        layout.to_old[v])] = by_new_id[v];
  }
  return by_old_id;
}

}  // namespace dsnd
