#include "graph/power.hpp"

#include <queue>
#include <vector>

#include "support/assert.hpp"

namespace dsnd {

Graph graph_power(const Graph& g, std::int32_t t) {
  DSND_REQUIRE(t >= 1, "power must be at least 1");
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<Edge> edges;
  std::vector<std::int32_t> dist(n, -1);
  std::vector<VertexId> touched;
  std::queue<VertexId> frontier;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Depth-limited BFS from v; only emit edges to higher ids so each
    // pair appears once.
    dist[static_cast<std::size_t>(v)] = 0;
    touched.push_back(v);
    frontier.push(v);
    while (!frontier.empty()) {
      const VertexId u = frontier.front();
      frontier.pop();
      const std::int32_t du = dist[static_cast<std::size_t>(u)];
      if (u > v) edges.push_back({v, u});
      if (du == t) continue;
      for (VertexId w : g.neighbors(u)) {
        if (dist[static_cast<std::size_t>(w)] != -1) continue;
        dist[static_cast<std::size_t>(w)] = du + 1;
        touched.push_back(w);
        frontier.push(w);
      }
    }
    for (const VertexId u : touched) dist[static_cast<std::size_t>(u)] = -1;
    touched.clear();
  }
  return Graph::from_edges(g.num_vertices(), std::move(edges));
}

}  // namespace dsnd
