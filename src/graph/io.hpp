// Plain-text graph serialization: a simple edge-list format, DIMACS, and
// the METIS adjacency format. Lets users run the library on their own
// graphs (SNAP/METIS-style files) and lets tests round-trip generator
// output. All readers are strict: malformed input — truncated files,
// out-of-range endpoints, self-loops, duplicate or asymmetric adjacency
// rows — raises std::runtime_error with a message naming the offending
// line or edge, never a crash or a silently wrong graph.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dsnd {

/// Edge-list format: first line "n m", then one "u v" line per edge
/// (0-indexed, each undirected edge listed once).
void write_edge_list(std::ostream& out, const Graph& g);
Graph read_edge_list(std::istream& in);

/// DIMACS format: "p edge n m" header, then "e u v" lines (1-indexed).
void write_dimacs(std::ostream& out, const Graph& g);
Graph read_dimacs(std::istream& in);

/// METIS adjacency format: "n m" header, then line i (1-indexed) lists
/// the neighbors of vertex i; '%' lines are comments. Every undirected
/// edge appears in both endpoint rows, and the reader verifies that
/// symmetry (an edge-list file cannot be asymmetric, a METIS file can).
void write_metis(std::ostream& out, const Graph& g);
Graph read_metis(std::istream& in);

/// File helpers; throw std::runtime_error on I/O failure.
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);
void save_metis(const std::string& path, const Graph& g);
Graph load_metis(const std::string& path);

/// Loads a graph picking the format from the file extension:
/// ".graph" / ".metis" -> METIS, ".dimacs" / ".col" -> DIMACS,
/// anything else -> edge list.
Graph load_graph(const std::string& path);

}  // namespace dsnd
