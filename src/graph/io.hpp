// Plain-text graph serialization: a simple edge-list format and DIMACS.
// Lets users run the library on their own graphs and lets tests round-trip
// generator output.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dsnd {

/// Edge-list format: first line "n m", then one "u v" line per edge.
void write_edge_list(std::ostream& out, const Graph& g);
Graph read_edge_list(std::istream& in);

/// DIMACS format: "p edge n m" header, then "e u v" lines (1-indexed).
void write_dimacs(std::ostream& out, const Graph& g);
Graph read_dimacs(std::istream& in);

/// File helpers; throw std::runtime_error on I/O failure.
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

}  // namespace dsnd
