#include "graph/traversal.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace dsnd {

namespace {

// Shared BFS loop with an optional vertex filter.
template <typename Admit>
std::vector<std::int32_t> bfs_impl(const Graph& g,
                                   std::span<const VertexId> sources,
                                   Admit admit) {
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_vertices()),
                                 kUnreachable);
  std::queue<VertexId> frontier;
  for (VertexId s : sources) {
    DSND_REQUIRE(s >= 0 && s < g.num_vertices(), "source out of range");
    DSND_REQUIRE(admit(s), "source excluded by filter");
    if (dist[static_cast<std::size_t>(s)] == kUnreachable) {
      dist[static_cast<std::size_t>(s)] = 0;
      frontier.push(s);
    }
  }
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop();
    const std::int32_t next = dist[static_cast<std::size_t>(u)] + 1;
    for (VertexId w : g.neighbors(u)) {
      if (!admit(w)) continue;
      if (dist[static_cast<std::size_t>(w)] != kUnreachable) continue;
      dist[static_cast<std::size_t>(w)] = next;
      frontier.push(w);
    }
  }
  return dist;
}

}  // namespace

std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source) {
  const VertexId sources[] = {source};
  return bfs_impl(g, sources, [](VertexId) { return true; });
}

std::vector<std::int32_t> bfs_distances_filtered(
    const Graph& g, VertexId source, const std::vector<char>& alive) {
  DSND_REQUIRE(alive.size() == static_cast<std::size_t>(g.num_vertices()),
               "alive mask size mismatch");
  const VertexId sources[] = {source};
  return bfs_impl(g, sources, [&alive](VertexId v) {
    return alive[static_cast<std::size_t>(v)] != 0;
  });
}

std::vector<std::int32_t> multi_source_bfs(const Graph& g,
                                           std::span<const VertexId> sources) {
  return bfs_impl(g, sources, [](VertexId) { return true; });
}

std::vector<VertexId> shortest_path(const Graph& g, VertexId u, VertexId v) {
  DSND_REQUIRE(u >= 0 && u < g.num_vertices(), "u out of range");
  DSND_REQUIRE(v >= 0 && v < g.num_vertices(), "v out of range");
  // BFS from v so the parent chase from u walks forward.
  const auto dist = bfs_distances(g, v);
  if (dist[static_cast<std::size_t>(u)] == kUnreachable) return {};
  std::vector<VertexId> path;
  path.push_back(u);
  VertexId cur = u;
  while (cur != v) {
    for (VertexId w : g.neighbors(cur)) {
      if (dist[static_cast<std::size_t>(w)] ==
          dist[static_cast<std::size_t>(cur)] - 1) {
        cur = w;
        path.push_back(cur);
        break;
      }
    }
  }
  return path;
}

std::vector<std::vector<VertexId>> Components::groups() const {
  std::vector<std::vector<VertexId>> result(
      static_cast<std::size_t>(count));
  for (std::size_t v = 0; v < component_of.size(); ++v) {
    result[static_cast<std::size_t>(component_of[v])].push_back(
        static_cast<VertexId>(v));
  }
  return result;
}

Components connected_components(const Graph& g) {
  Components components;
  components.component_of.assign(
      static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<VertexId> frontier;
  for (VertexId start = 0; start < g.num_vertices(); ++start) {
    if (components.component_of[static_cast<std::size_t>(start)] != -1) {
      continue;
    }
    const std::int32_t label = components.count++;
    components.component_of[static_cast<std::size_t>(start)] = label;
    frontier.push(start);
    while (!frontier.empty()) {
      const VertexId u = frontier.front();
      frontier.pop();
      for (VertexId w : g.neighbors(u)) {
        if (components.component_of[static_cast<std::size_t>(w)] == -1) {
          components.component_of[static_cast<std::size_t>(w)] = label;
          frontier.push(w);
        }
      }
    }
  }
  return components;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() <= 1) return true;
  return connected_components(g).count == 1;
}

std::int32_t eccentricity(const Graph& g, VertexId v) {
  const auto dist = bfs_distances(g, v);
  std::int32_t ecc = 0;
  for (std::int32_t d : dist) ecc = std::max(ecc, d);
  return ecc;
}

std::int32_t exact_diameter(const Graph& g) {
  std::int32_t diameter = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    diameter = std::max(diameter, eccentricity(g, v));
  }
  return diameter;
}

std::int32_t two_sweep_diameter_lower_bound(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  const auto first = bfs_distances(g, 0);
  VertexId far = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (first[static_cast<std::size_t>(v)] >
        first[static_cast<std::size_t>(far)]) {
      far = v;
    }
  }
  return eccentricity(g, far);
}

std::vector<std::vector<std::int32_t>> all_pairs_distances(const Graph& g) {
  std::vector<std::vector<std::int32_t>> result;
  result.reserve(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    result.push_back(bfs_distances(g, v));
  }
  return result;
}

}  // namespace dsnd
