#include "graph/validator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dsnd {

const char* to_string(GraphIssueKind kind) {
  switch (kind) {
    case GraphIssueKind::kBadOffsets: return "bad-offsets";
    case GraphIssueKind::kOutOfRange: return "out-of-range";
    case GraphIssueKind::kSelfLoop: return "self-loop";
    case GraphIssueKind::kUnsortedRow: return "unsorted-row";
    case GraphIssueKind::kDuplicateEdge: return "duplicate-edge";
    case GraphIssueKind::kAsymmetric: return "asymmetric";
  }
  return "unknown";
}

bool GraphCheckReport::has(GraphIssueKind kind) const {
  for (const GraphIssue& issue : issues) {
    if (issue.kind == kind) return true;
  }
  return false;
}

namespace {

/// Collects issues up to the cap while counting all of them.
struct IssueSink {
  GraphCheckReport& report;
  int max_issues;

  void add(GraphIssueKind kind, std::string message) {
    ++report.total_issues;
    if (static_cast<int>(report.issues.size()) < max_issues) {
      report.issues.push_back({kind, std::move(message)});
    }
  }
};

DegreeStats stats_from_degrees(std::vector<VertexId> degrees,
                               std::int64_t entries) {
  DegreeStats stats;
  if (degrees.empty()) return stats;
  const auto n = degrees.size();
  stats.mean_degree =
      static_cast<double>(entries) / static_cast<double>(n);

  VertexId max_degree = 0;
  for (const VertexId d : degrees) max_degree = std::max(max_degree, d);
  // One log2 bucket per bit of max degree (histogram[0] = isolated).
  int buckets = 1;
  while ((static_cast<std::int64_t>(1) << buckets) <= max_degree) ++buckets;
  stats.histogram.assign(static_cast<std::size_t>(buckets) + 1, 0);

  double log_sum = 0.0;
  std::int64_t tail = 0;
  constexpr VertexId kTailMin = 4;  // MLE cutoff; 3.5 = kTailMin - 0.5
  for (const VertexId d : degrees) {
    if (d == 0) {
      ++stats.isolated_vertices;
      ++stats.histogram[0];
      continue;
    }
    int bucket = 1;
    while ((static_cast<VertexId>(1) << bucket) <= d) ++bucket;
    ++stats.histogram[static_cast<std::size_t>(bucket)];
    if (d >= kTailMin) {
      log_sum += std::log(static_cast<double>(d) / 3.5);
      ++tail;
    }
  }
  if (tail >= 16 && log_sum > 0.0) {
    stats.powerlaw_alpha = 1.0 + static_cast<double>(tail) / log_sum;
  }

  std::sort(degrees.begin(), degrees.end());
  stats.min_degree = degrees.front();
  stats.max_degree = degrees.back();
  auto percentile = [&](double q) {
    const auto idx = std::min(
        n - 1, static_cast<std::size_t>(q * static_cast<double>(n)));
    return degrees[idx];
  };
  stats.p90_degree = percentile(0.90);
  stats.p99_degree = percentile(0.99);
  return stats;
}

}  // namespace

DegreeStats degree_stats(const Graph& g) {
  std::vector<VertexId> degrees(
      static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees[static_cast<std::size_t>(v)] = g.degree(v);
  }
  return stats_from_degrees(std::move(degrees), 2 * g.num_edges());
}

GraphCheckReport check_csr(std::span<const std::int64_t> offsets,
                           std::span<const VertexId> adjacency,
                           int max_issues) {
  GraphCheckReport report;
  IssueSink sink{report, max_issues};
  report.num_directed_entries = static_cast<std::int64_t>(adjacency.size());

  // Offset structure first — rows are only scanned where the bracketing
  // offsets are usable, so one corrupt offset cannot cascade.
  if (offsets.empty()) {
    sink.add(GraphIssueKind::kBadOffsets,
             "offsets array is empty (need n+1 entries)");
    return report;
  }
  const auto n = static_cast<VertexId>(offsets.size() - 1);
  report.num_vertices = n;
  if (offsets.front() != 0) {
    sink.add(GraphIssueKind::kBadOffsets,
             "offsets[0] = " + std::to_string(offsets.front()) +
                 ", expected 0");
  }
  if (offsets.back() != static_cast<std::int64_t>(adjacency.size())) {
    sink.add(GraphIssueKind::kBadOffsets,
             "offsets[n] = " + std::to_string(offsets.back()) +
                 ", expected the adjacency size " +
                 std::to_string(adjacency.size()));
  }
  const auto entries = static_cast<std::int64_t>(adjacency.size());
  std::vector<bool> row_usable(static_cast<std::size_t>(n), false);
  for (VertexId v = 0; v < n; ++v) {
    const std::int64_t begin = offsets[static_cast<std::size_t>(v)];
    const std::int64_t end = offsets[static_cast<std::size_t>(v) + 1];
    if (begin > end) {
      sink.add(GraphIssueKind::kBadOffsets,
               "offsets not monotone at vertex " + std::to_string(v) +
                   " (" + std::to_string(begin) + " > " +
                   std::to_string(end) + ")");
    } else if (begin < 0 || end > entries) {
      sink.add(GraphIssueKind::kBadOffsets,
               "row of vertex " + std::to_string(v) +
                   " reaches outside the adjacency array");
    } else {
      row_usable[static_cast<std::size_t>(v)] = true;
    }
  }

  // Row-local checks: range, self-loops, ordering, duplicates.
  std::vector<VertexId> degrees(static_cast<std::size_t>(n), 0);
  std::vector<bool> row_sorted(static_cast<std::size_t>(n), true);
  for (VertexId v = 0; v < n; ++v) {
    if (!row_usable[static_cast<std::size_t>(v)]) continue;
    const std::int64_t begin = offsets[static_cast<std::size_t>(v)];
    const std::int64_t end = offsets[static_cast<std::size_t>(v) + 1];
    degrees[static_cast<std::size_t>(v)] =
        static_cast<VertexId>(end - begin);
    VertexId prev = -1;
    bool prev_valid = false;
    for (std::int64_t i = begin; i < end; ++i) {
      const VertexId w = adjacency[static_cast<std::size_t>(i)];
      if (w < 0 || w >= n) {
        sink.add(GraphIssueKind::kOutOfRange,
                 "row of vertex " + std::to_string(v) + ": neighbor " +
                     std::to_string(w) + " out of range [0, " +
                     std::to_string(n) + ")");
        prev_valid = false;
        continue;
      }
      if (w == v) {
        sink.add(GraphIssueKind::kSelfLoop,
                 "self-loop at vertex " + std::to_string(v));
      }
      if (prev_valid) {
        if (w == prev) {
          sink.add(GraphIssueKind::kDuplicateEdge,
                   "duplicate edge {" + std::to_string(v) + ", " +
                       std::to_string(w) + "} in the row of vertex " +
                       std::to_string(v));
        } else if (w < prev) {
          sink.add(GraphIssueKind::kUnsortedRow,
                   "row of vertex " + std::to_string(v) +
                       " not sorted: " + std::to_string(w) + " after " +
                       std::to_string(prev));
          row_sorted[static_cast<std::size_t>(v)] = false;
        }
      }
      prev = w;
      prev_valid = true;
    }
  }

  // Symmetry: every entry needs its reverse — binary search in sorted
  // rows (the common case, O(m log deg) total), linear scan in rows
  // already flagged as unsorted so the verdict stays exact.
  for (VertexId v = 0; v < n; ++v) {
    if (!row_usable[static_cast<std::size_t>(v)]) continue;
    for (std::int64_t i = offsets[static_cast<std::size_t>(v)];
         i < offsets[static_cast<std::size_t>(v) + 1]; ++i) {
      const VertexId w = adjacency[static_cast<std::size_t>(i)];
      if (w < 0 || w >= n || w == v) continue;  // already reported
      if (!row_usable[static_cast<std::size_t>(w)]) continue;
      const auto begin = adjacency.begin() +
                         static_cast<std::ptrdiff_t>(
                             offsets[static_cast<std::size_t>(w)]);
      const auto end = adjacency.begin() +
                       static_cast<std::ptrdiff_t>(
                           offsets[static_cast<std::size_t>(w) + 1]);
      const bool found = row_sorted[static_cast<std::size_t>(w)]
                             ? std::binary_search(begin, end, v)
                             : std::find(begin, end, v) != end;
      if (!found) {
        sink.add(GraphIssueKind::kAsymmetric,
                 "vertex " + std::to_string(w) + " appears in the row of " +
                     std::to_string(v) + " but not vice versa");
      }
    }
  }

  report.degrees = stats_from_degrees(std::move(degrees), entries);
  return report;
}

GraphCheckReport check_graph(const Graph& g, int max_issues) {
  return check_csr(g.csr_offsets(), g.csr_adjacency(), max_issues);
}

std::string format_report(const GraphCheckReport& report) {
  std::ostringstream out;
  out << "graph check: n=" << report.num_vertices
      << " directed_entries=" << report.num_directed_entries << " -> "
      << (report.ok() ? "ok" : "INVALID") << '\n';
  for (const GraphIssue& issue : report.issues) {
    out << "  [" << to_string(issue.kind) << "] " << issue.message << '\n';
  }
  if (report.total_issues >
      static_cast<std::int64_t>(report.issues.size())) {
    out << "  ... and "
        << report.total_issues -
               static_cast<std::int64_t>(report.issues.size())
        << " more issues\n";
  }
  const DegreeStats& d = report.degrees;
  out << "degrees: min=" << d.min_degree << " mean=" << d.mean_degree
      << " p90=" << d.p90_degree << " p99=" << d.p99_degree
      << " max=" << d.max_degree << " isolated=" << d.isolated_vertices;
  if (d.powerlaw_alpha > 0.0) {
    out << " powerlaw_alpha=" << d.powerlaw_alpha;
  }
  out << '\n';
  return out.str();
}

}  // namespace dsnd
