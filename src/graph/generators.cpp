#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace dsnd {

Graph make_path(VertexId n) {
  DSND_REQUIRE(n >= 1, "path needs at least one vertex");
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return std::move(builder).build();
}

Graph make_cycle(VertexId n) {
  DSND_REQUIRE(n >= 3, "cycle needs at least three vertices");
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) builder.add_edge(v, (v + 1) % n);
  return std::move(builder).build();
}

Graph make_grid2d(VertexId rows, VertexId cols) {
  DSND_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(builder).build();
}

Graph make_torus2d(VertexId rows, VertexId cols) {
  DSND_REQUIRE(rows >= 3 && cols >= 3, "torus dimensions must be >= 3");
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      builder.add_edge(id(r, c), id(r, (c + 1) % cols));
      builder.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return std::move(builder).build();
}

Graph make_grid3d(VertexId x, VertexId y, VertexId z) {
  DSND_REQUIRE(x >= 1 && y >= 1 && z >= 1, "grid dimensions must be positive");
  GraphBuilder builder(x * y * z);
  auto id = [y, z](VertexId a, VertexId b, VertexId c) {
    return (a * y + b) * z + c;
  };
  for (VertexId a = 0; a < x; ++a) {
    for (VertexId b = 0; b < y; ++b) {
      for (VertexId c = 0; c < z; ++c) {
        if (a + 1 < x) builder.add_edge(id(a, b, c), id(a + 1, b, c));
        if (b + 1 < y) builder.add_edge(id(a, b, c), id(a, b + 1, c));
        if (c + 1 < z) builder.add_edge(id(a, b, c), id(a, b, c + 1));
      }
    }
  }
  return std::move(builder).build();
}

Graph make_complete(VertexId n) {
  DSND_REQUIRE(n >= 1, "complete graph needs at least one vertex");
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

Graph make_star(VertexId n) {
  DSND_REQUIRE(n >= 1, "star needs at least one vertex");
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) builder.add_edge(0, v);
  return std::move(builder).build();
}

Graph make_complete_bipartite(VertexId a, VertexId b) {
  DSND_REQUIRE(a >= 1 && b >= 1, "bipartite sides must be nonempty");
  GraphBuilder builder(a + b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) builder.add_edge(u, a + v);
  }
  return std::move(builder).build();
}

Graph make_balanced_tree(VertexId branching, VertexId height) {
  DSND_REQUIRE(branching >= 1, "branching factor must be positive");
  DSND_REQUIRE(height >= 0, "height must be nonnegative");
  // Number of vertices: 1 + b + b^2 + ... + b^height.
  std::int64_t n = 0;
  std::int64_t layer = 1;
  for (VertexId h = 0; h <= height; ++h) {
    n += layer;
    layer *= branching;
    DSND_REQUIRE(n < (1LL << 31), "balanced tree too large");
  }
  GraphBuilder builder(static_cast<VertexId>(n));
  for (VertexId v = 1; v < static_cast<VertexId>(n); ++v) {
    builder.add_edge(v, (v - 1) / branching);
  }
  return std::move(builder).build();
}

Graph make_hypercube(int dim) {
  DSND_REQUIRE(dim >= 0 && dim <= 24, "hypercube dimension out of range");
  const VertexId n = static_cast<VertexId>(1) << dim;
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    for (int bit = 0; bit < dim; ++bit) {
      const VertexId w = v ^ (static_cast<VertexId>(1) << bit);
      if (v < w) builder.add_edge(v, w);
    }
  }
  return std::move(builder).build();
}

Graph make_ring_of_cliques(VertexId num_cliques, VertexId clique_size) {
  DSND_REQUIRE(num_cliques >= 3, "ring needs at least three cliques");
  DSND_REQUIRE(clique_size >= 1, "clique size must be positive");
  GraphBuilder builder(num_cliques * clique_size);
  auto id = [clique_size](VertexId clique, VertexId member) {
    return clique * clique_size + member;
  };
  for (VertexId q = 0; q < num_cliques; ++q) {
    for (VertexId i = 0; i < clique_size; ++i) {
      for (VertexId j = i + 1; j < clique_size; ++j) {
        builder.add_edge(id(q, i), id(q, j));
      }
    }
    builder.add_edge(id(q, clique_size - 1), id((q + 1) % num_cliques, 0));
  }
  return std::move(builder).build();
}

Graph make_barbell(VertexId clique_size, VertexId path_len) {
  DSND_REQUIRE(clique_size >= 2, "barbell cliques need >= 2 vertices");
  DSND_REQUIRE(path_len >= 1, "barbell path needs >= 1 edge");
  const VertexId n = 2 * clique_size + (path_len - 1);
  GraphBuilder builder(n);
  for (VertexId i = 0; i < clique_size; ++i) {
    for (VertexId j = i + 1; j < clique_size; ++j) {
      builder.add_edge(i, j);
      builder.add_edge(clique_size + (path_len - 1) + i,
                       clique_size + (path_len - 1) + j);
    }
  }
  // Path from vertex clique_size-1 through the middle vertices to the
  // first vertex of the second clique.
  VertexId prev = clique_size - 1;
  for (VertexId s = 0; s < path_len - 1; ++s) {
    builder.add_edge(prev, clique_size + s);
    prev = clique_size + s;
  }
  builder.add_edge(prev, clique_size + (path_len - 1));
  return std::move(builder).build();
}

Graph make_lollipop(VertexId clique_size, VertexId path_len) {
  DSND_REQUIRE(clique_size >= 2, "lollipop clique needs >= 2 vertices");
  DSND_REQUIRE(path_len >= 1, "lollipop path needs >= 1 edge");
  GraphBuilder builder(clique_size + path_len);
  for (VertexId i = 0; i < clique_size; ++i) {
    for (VertexId j = i + 1; j < clique_size; ++j) builder.add_edge(i, j);
  }
  VertexId prev = clique_size - 1;
  for (VertexId s = 0; s < path_len; ++s) {
    builder.add_edge(prev, clique_size + s);
    prev = clique_size + s;
  }
  return std::move(builder).build();
}

Graph make_gnp(VertexId n, double p, std::uint64_t seed) {
  DSND_REQUIRE(n >= 1, "G(n,p) needs at least one vertex");
  DSND_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  Xoshiro256ss rng(stream_seed(seed, 0x676e70ULL, static_cast<std::uint64_t>(n)));
  GraphBuilder builder(n);
  if (p == 0.0) return std::move(builder).build();
  if (p == 1.0) return make_complete(n);
  // Skip-sampling (Batagelj–Brandes): geometric jumps over non-edges makes
  // sparse generation O(n + m) instead of O(n^2).
  const double log_q = std::log1p(-p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  while (v < n) {
    const double u = uniform_unit(rng);
    w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-u) / log_q));
    while (w >= v && v < n) {
      w -= v;
      ++v;
    }
    if (v < n) {
      builder.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  }
  return std::move(builder).build();
}

Graph make_gnm(VertexId n, std::int64_t m, std::uint64_t seed) {
  DSND_REQUIRE(n >= 1, "G(n,m) needs at least one vertex");
  const std::int64_t max_edges =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  DSND_REQUIRE(m >= 0 && m <= max_edges, "edge count out of range");
  Xoshiro256ss rng(stream_seed(seed, 0x676e6dULL, static_cast<std::uint64_t>(n)));
  std::set<Edge> chosen;
  while (static_cast<std::int64_t>(chosen.size()) < m) {
    auto u = static_cast<VertexId>(
        uniform_below(rng, static_cast<std::uint64_t>(n)));
    auto v = static_cast<VertexId>(
        uniform_below(rng, static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.insert({u, v});
  }
  GraphBuilder builder(n);
  for (const Edge& e : chosen) builder.add_edge(e.u, e.v);
  return std::move(builder).build();
}

Graph make_random_tree(VertexId n, std::uint64_t seed) {
  DSND_REQUIRE(n >= 1, "tree needs at least one vertex");
  Xoshiro256ss rng(stream_seed(seed, 0x74726565ULL,
                               static_cast<std::uint64_t>(n)));
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) {
    const auto parent = static_cast<VertexId>(
        uniform_below(rng, static_cast<std::uint64_t>(v)));
    builder.add_edge(v, parent);
  }
  return std::move(builder).build();
}

Graph make_random_regular(VertexId n, VertexId d, std::uint64_t seed) {
  DSND_REQUIRE(n >= 1 && d >= 0 && d < n, "need 0 <= d < n");
  DSND_REQUIRE((static_cast<std::int64_t>(n) * d) % 2 == 0,
               "n*d must be even for a d-regular graph");
  Xoshiro256ss rng(stream_seed(seed, 0x72656775ULL,
                               static_cast<std::uint64_t>(n)));
  // Pairing model: stubs = d copies of each vertex, shuffle, pair up; retry
  // on self-loops or duplicates. Retry count is O(1) expected for d << n.
  std::vector<VertexId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (int attempt = 0; attempt < 1000; ++attempt) {
    stubs.clear();
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId i = 0; i < d; ++i) stubs.push_back(v);
    }
    // Fisher–Yates shuffle with our deterministic generator.
    for (std::size_t i = stubs.size(); i > 1; --i) {
      const std::size_t j = uniform_below(rng, i);
      std::swap(stubs[i - 1], stubs[j]);
    }
    std::set<Edge> edges;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      VertexId u = stubs[i];
      VertexId v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!edges.insert({u, v}).second) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    GraphBuilder builder(n);
    for (const Edge& e : edges) builder.add_edge(e.u, e.v);
    return std::move(builder).build();
  }
  DSND_CHECK(false, "random regular pairing failed to converge");
}

Graph make_watts_strogatz(VertexId n, VertexId k, double beta,
                          std::uint64_t seed) {
  DSND_REQUIRE(n >= 3, "small world needs at least three vertices");
  DSND_REQUIRE(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n");
  DSND_REQUIRE(beta >= 0.0 && beta <= 1.0, "rewire probability in [0, 1]");
  Xoshiro256ss rng(stream_seed(seed, 0x7773ULL, static_cast<std::uint64_t>(n)));
  std::set<Edge> edges;
  auto canonical = [](VertexId u, VertexId v) {
    return u < v ? Edge{u, v} : Edge{v, u};
  };
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId j = 1; j <= k; ++j) {
      edges.insert(canonical(v, (v + j) % n));
    }
  }
  // Rewire each lattice edge's far endpoint with probability beta.
  std::vector<Edge> lattice(edges.begin(), edges.end());
  for (const Edge& e : lattice) {
    if (uniform_unit(rng) >= beta) continue;
    edges.erase(e);
    // Pick a new partner for e.u avoiding self-loops and duplicates; fall
    // back to keeping the edge if the vertex is saturated.
    bool rewired = false;
    for (int tries = 0; tries < 64; ++tries) {
      const auto w = static_cast<VertexId>(
          uniform_below(rng, static_cast<std::uint64_t>(n)));
      if (w == e.u) continue;
      const Edge candidate = canonical(e.u, w);
      if (edges.contains(candidate)) continue;
      edges.insert(candidate);
      rewired = true;
      break;
    }
    if (!rewired) edges.insert(e);
  }
  GraphBuilder builder(n);
  for (const Edge& e : edges) builder.add_edge(e.u, e.v);
  return std::move(builder).build();
}

Graph make_barabasi_albert(VertexId n, VertexId m, std::uint64_t seed) {
  DSND_REQUIRE(m >= 1, "attachment count must be positive");
  DSND_REQUIRE(n > m, "need more vertices than attachment count");
  Xoshiro256ss rng(stream_seed(seed, 0x6261ULL, static_cast<std::uint64_t>(n)));
  GraphBuilder builder(n);
  // Preferential attachment via the repeated-endpoints trick: sampling a
  // uniform entry of `targets` is proportional to degree.
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < m; ++v) {
    builder.add_edge(v, m);  // seed star so early vertices have degree >= 1
    targets.push_back(v);
    targets.push_back(m);
  }
  for (VertexId v = m + 1; v < n; ++v) {
    std::set<VertexId> chosen;
    while (static_cast<VertexId>(chosen.size()) < m) {
      const std::size_t idx = uniform_below(rng, targets.size());
      chosen.insert(targets[idx]);
    }
    for (VertexId t : chosen) {
      builder.add_edge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return std::move(builder).build();
}

Graph make_rgg(VertexId n, double radius, std::uint64_t seed) {
  DSND_REQUIRE(n >= 1, "rgg needs at least one vertex");
  DSND_REQUIRE(radius > 0.0 && radius <= 1.0, "rgg radius must be in (0, 1]");
  const auto count = static_cast<std::size_t>(n);
  Xoshiro256ss rng(stream_seed(seed, 0x52474701ULL,
                               static_cast<std::uint64_t>(n)));
  std::vector<double> x(count);
  std::vector<double> y(count);
  for (std::size_t i = 0; i < count; ++i) {
    x[i] = uniform_unit(rng);
    y[i] = uniform_unit(rng);
  }

  // Bucket the points into a grid of cells with side >= radius; every
  // partner of a point then lies in its 3x3 cell block.
  const auto side = static_cast<std::int32_t>(
      std::max(1.0, std::floor(1.0 / radius)));
  const auto cells = static_cast<std::size_t>(side) *
                     static_cast<std::size_t>(side);
  auto cell_coord = [side](double value) {
    return std::min<std::int32_t>(
        side - 1, static_cast<std::int32_t>(value *
                                            static_cast<double>(side)));
  };
  std::vector<std::size_t> cell_start(cells + 1, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const auto cell = static_cast<std::size_t>(cell_coord(y[i])) *
                          static_cast<std::size_t>(side) +
                      static_cast<std::size_t>(cell_coord(x[i]));
    ++cell_start[cell + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) cell_start[c + 1] += cell_start[c];
  std::vector<VertexId> members(count);
  {
    std::vector<std::size_t> fill(cell_start.begin(), cell_start.end() - 1);
    for (std::size_t i = 0; i < count; ++i) {
      const auto cell = static_cast<std::size_t>(cell_coord(y[i])) *
                            static_cast<std::size_t>(side) +
                        static_cast<std::size_t>(cell_coord(x[i]));
      members[fill[cell]++] = static_cast<VertexId>(i);
    }
  }

  const double r2 = radius * radius;
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < count; ++i) {
    const std::int32_t cx = cell_coord(x[i]);
    const std::int32_t cy = cell_coord(y[i]);
    for (std::int32_t gy = std::max(cy - 1, 0);
         gy <= std::min(cy + 1, side - 1); ++gy) {
      for (std::int32_t gx = std::max(cx - 1, 0);
           gx <= std::min(cx + 1, side - 1); ++gx) {
        const auto cell = static_cast<std::size_t>(gy) *
                              static_cast<std::size_t>(side) +
                          static_cast<std::size_t>(gx);
        for (std::size_t slot = cell_start[cell];
             slot < cell_start[cell + 1]; ++slot) {
          const auto j = static_cast<std::size_t>(members[slot]);
          if (j <= i) continue;  // each pair once
          const double dx = x[i] - x[j];
          const double dy = y[i] - y[j];
          if (dx * dx + dy * dy <= r2) {
            builder.add_edge(static_cast<VertexId>(i),
                             static_cast<VertexId>(j));
          }
        }
      }
    }
  }
  return std::move(builder).build();
}

namespace {

VertexId isqrt(VertexId n) {
  auto r = static_cast<VertexId>(std::sqrt(static_cast<double>(n)));
  while ((r + 1) * (r + 1) <= n) ++r;
  while (r * r > n) --r;
  return r;
}

const std::vector<GraphFamily>& families_impl() {
  static const std::vector<GraphFamily> kFamilies = {
      {"path", [](VertexId n, std::uint64_t) { return make_path(n); }},
      {"cycle",
       [](VertexId n, std::uint64_t) { return make_cycle(std::max<VertexId>(n, 3)); }},
      {"grid",
       [](VertexId n, std::uint64_t) {
         const VertexId side = std::max<VertexId>(isqrt(n), 2);
         return make_grid2d(side, side);
       }},
      {"balanced-tree",
       [](VertexId n, std::uint64_t) {
         // Binary tree with ~n vertices.
         VertexId height = 1;
         while (((static_cast<std::int64_t>(1) << (height + 2)) - 1) <= n) {
           ++height;
         }
         return make_balanced_tree(2, height);
       }},
      {"random-tree",
       [](VertexId n, std::uint64_t seed) { return make_random_tree(n, seed); }},
      {"gnp-sparse",
       [](VertexId n, std::uint64_t seed) {
         // Expected average degree ~6.
         return make_gnp(n, std::min(1.0, 6.0 / std::max<VertexId>(n - 1, 1)),
                         seed);
       }},
      {"gnp-dense",
       [](VertexId n, std::uint64_t seed) {
         // Expected average degree ~ n/8 (dense but not complete).
         return make_gnp(n, 0.125, seed);
       }},
      {"random-regular",
       [](VertexId n, std::uint64_t seed) {
         const VertexId even_n = n % 2 == 0 ? n : n + 1;
         return make_random_regular(even_n, 4, seed);
       }},
      {"hypercube",
       [](VertexId n, std::uint64_t) {
         int dim = 1;
         while ((static_cast<VertexId>(1) << (dim + 1)) <= n) ++dim;
         return make_hypercube(dim);
       }},
      {"ring-of-cliques",
       [](VertexId n, std::uint64_t) {
         const VertexId clique = 8;
         const VertexId rings = std::max<VertexId>(n / clique, 3);
         return make_ring_of_cliques(rings, clique);
       }},
      {"small-world",
       [](VertexId n, std::uint64_t seed) {
         return make_watts_strogatz(std::max<VertexId>(n, 8), 3, 0.1, seed);
       }},
      {"rgg",
       [](VertexId n, std::uint64_t seed) {
         // Radius for expected average degree ~8.
         const double radius =
             std::sqrt(8.0 / (3.14159265358979323846 *
                              static_cast<double>(std::max<VertexId>(n, 2))));
         return make_rgg(n, std::min(1.0, radius), seed);
       }},
  };
  return kFamilies;
}

}  // namespace

const std::vector<GraphFamily>& standard_families() { return families_impl(); }

const GraphFamily& family_by_name(const std::string& name) {
  for (const GraphFamily& family : families_impl()) {
    if (family.name == name) return family;
  }
  DSND_REQUIRE(false, "unknown graph family: " + name);
  // Unreachable; DSND_REQUIRE throws.
  throw std::invalid_argument("unreachable");
}

}  // namespace dsnd
