#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace dsnd {

namespace {

// Stream tags for the chunk-parallel generators (distinct from the
// legacy whole-graph stream tags, so the scheme change is explicit in
// the derivation, not just in the draw order).
constexpr std::uint64_t kGnpRowTag = 0x676e7001ULL;   // per-row streams
constexpr std::uint64_t kRggPointTag = 0x52474702ULL;  // per-point streams
constexpr std::uint64_t kHypPointTag = 0x48595003ULL;  // per-point streams
constexpr std::uint64_t kKronEdgeTag = 0x4b524f04ULL;  // per-sample streams
constexpr std::uint64_t kBaEdgeTag = 0x42414505ULL;    // per-slot streams

constexpr double kPi = 3.14159265358979323846;

unsigned resolve_threads(unsigned threads, std::size_t items) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const auto cap = static_cast<unsigned>(
      std::min<std::size_t>(items == 0 ? 1 : items, 256));
  return std::min(threads, cap);
}

/// Runs fn(chunk_index, begin, end) over a contiguous partition of
/// [0, items) — inline when one thread suffices. The partition only
/// distributes work; each unit draws from its own stream, so results
/// never depend on the chunking.
template <typename Fn>
void parallel_chunks(std::size_t items, unsigned threads, Fn&& fn) {
  if (threads <= 1 || items < 2) {
    fn(0u, std::size_t{0}, items);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const std::size_t chunk = (items + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    const std::size_t begin = std::min(items, t * chunk);
    const std::size_t end = std::min(items, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  for (std::thread& thread : pool) thread.join();
}

/// Counting-CSR assembly over per-chunk edge lists (shared by make_gnp
/// and make_rgg_geometric): degree count, prefix sum, and a cursor
/// scatter of both directions walking chunks in order. make_gnp's
/// row-major edge streams leave every row sorted by construction
/// (lower neighbors in increasing w during the row's own step, upper
/// neighbors in increasing row afterwards — lower < row < upper), so it
/// skips the per-row sort; cell-scan-order streams (rgg) request it.
Graph csr_from_chunk_edges(std::size_t count,
                           const std::vector<std::vector<Edge>>& chunk_edges,
                           bool sort_rows, unsigned workers) {
  std::vector<std::int64_t> offsets(count + 1, 0);
  for (const auto& edges : chunk_edges) {
    for (const Edge& e : edges) {
      ++offsets[static_cast<std::size_t>(e.u) + 1];
      ++offsets[static_cast<std::size_t>(e.v) + 1];
    }
  }
  for (std::size_t v = 0; v < count; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> adjacency(
      static_cast<std::size_t>(offsets[count]));
  std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& edges : chunk_edges) {
    for (const Edge& e : edges) {
      adjacency[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(e.v)]++)] = e.u;
      adjacency[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(e.u)]++)] = e.v;
    }
  }
  if (sort_rows) {
    parallel_chunks(count, workers,
                    [&](unsigned, std::size_t begin, std::size_t end) {
                      for (std::size_t v = begin; v < end; ++v) {
                        std::sort(adjacency.begin() + offsets[v],
                                  adjacency.begin() + offsets[v + 1]);
                      }
                    });
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

/// Deterministic dedup + symmetric CSR over canonicalized (u < v,
/// loop-free) edge samples, shared by the sample-then-dedup generators
/// (kronecker, barabasi_albert). Counting-scatter the samples into
/// per-u half rows (walking chunks in order, so the multiset is
/// chunk-count invariant), sort + unique each row, then scatter the
/// distinct edges row-major: row u receives lower neighbors (from
/// earlier rows, increasing) before its own upper neighbors
/// (increasing), so every row comes out sorted without a second sort.
/// O(samples + m log deg).
Graph symmetric_csr_from_canonical_samples(
    std::size_t count, const std::vector<std::vector<Edge>>& chunk_edges,
    unsigned workers) {
  std::vector<std::int64_t> half_start(count + 1, 0);
  for (const auto& edges : chunk_edges) {
    for (const Edge& e : edges) {
      ++half_start[static_cast<std::size_t>(e.u) + 1];
    }
  }
  for (std::size_t u = 0; u < count; ++u) half_start[u + 1] += half_start[u];
  std::vector<VertexId> half_adj(
      static_cast<std::size_t>(half_start[count]));
  {
    std::vector<std::int64_t> fill(half_start.begin(), half_start.end() - 1);
    for (const auto& edges : chunk_edges) {
      for (const Edge& e : edges) {
        half_adj[static_cast<std::size_t>(
            fill[static_cast<std::size_t>(e.u)]++)] = e.v;
      }
    }
  }
  std::vector<std::int64_t> half_len(count, 0);
  parallel_chunks(count, workers,
                  [&](unsigned, std::size_t begin, std::size_t end) {
                    for (std::size_t u = begin; u < end; ++u) {
                      const auto row_begin =
                          half_adj.begin() +
                          static_cast<std::ptrdiff_t>(half_start[u]);
                      const auto row_end =
                          half_adj.begin() +
                          static_cast<std::ptrdiff_t>(half_start[u + 1]);
                      std::sort(row_begin, row_end);
                      half_len[u] = std::unique(row_begin, row_end) -
                                    row_begin;
                    }
                  });

  std::vector<std::int64_t> offsets(count + 1, 0);
  for (std::size_t u = 0; u < count; ++u) {
    offsets[u + 1] += half_len[u];
    for (std::int64_t i = half_start[u]; i < half_start[u] + half_len[u];
         ++i) {
      ++offsets[static_cast<std::size_t>(
                    half_adj[static_cast<std::size_t>(i)]) +
                1];
    }
  }
  for (std::size_t u = 0; u < count; ++u) offsets[u + 1] += offsets[u];
  std::vector<VertexId> adjacency(
      static_cast<std::size_t>(offsets[count]));
  {
    std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t u = 0; u < count; ++u) {
      for (std::int64_t i = half_start[u]; i < half_start[u] + half_len[u];
           ++i) {
        const VertexId v = half_adj[static_cast<std::size_t>(i)];
        adjacency[static_cast<std::size_t>(
            cursor[u]++)] = v;
        adjacency[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(v)]++)] =
            static_cast<VertexId>(u);
      }
    }
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

}  // namespace

Graph make_path(VertexId n) {
  DSND_REQUIRE(n >= 1, "path needs at least one vertex");
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return std::move(builder).build();
}

Graph make_cycle(VertexId n, unsigned threads) {
  DSND_REQUIRE(n >= 3, "cycle needs at least three vertices");
  const auto count = static_cast<std::size_t>(n);
  std::vector<std::int64_t> offsets(count + 1);
  for (std::size_t v = 0; v <= count; ++v) {
    offsets[v] = static_cast<std::int64_t>(2 * v);
  }
  std::vector<VertexId> adjacency(2 * count);
  parallel_chunks(count, resolve_threads(threads, count),
                  [&](unsigned, std::size_t begin, std::size_t end) {
                    for (std::size_t v = begin; v < end; ++v) {
                      // Sorted row: {v-1, v+1} with wraparound endpoints.
                      const auto vid = static_cast<VertexId>(v);
                      VertexId lo = vid == 0 ? 1 : vid - 1;
                      VertexId hi = v + 1 == count ? 0 : vid + 1;
                      if (vid == 0) {
                        lo = 1;
                        hi = static_cast<VertexId>(count - 1);
                      }
                      if (lo > hi) std::swap(lo, hi);
                      adjacency[2 * v] = lo;
                      adjacency[2 * v + 1] = hi;
                    }
                  });
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

Graph make_grid2d(VertexId rows, VertexId cols) {
  DSND_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(builder).build();
}

Graph make_torus2d(VertexId rows, VertexId cols) {
  DSND_REQUIRE(rows >= 3 && cols >= 3, "torus dimensions must be >= 3");
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      builder.add_edge(id(r, c), id(r, (c + 1) % cols));
      builder.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return std::move(builder).build();
}

Graph make_grid3d(VertexId x, VertexId y, VertexId z) {
  DSND_REQUIRE(x >= 1 && y >= 1 && z >= 1, "grid dimensions must be positive");
  GraphBuilder builder(x * y * z);
  auto id = [y, z](VertexId a, VertexId b, VertexId c) {
    return (a * y + b) * z + c;
  };
  for (VertexId a = 0; a < x; ++a) {
    for (VertexId b = 0; b < y; ++b) {
      for (VertexId c = 0; c < z; ++c) {
        if (a + 1 < x) builder.add_edge(id(a, b, c), id(a + 1, b, c));
        if (b + 1 < y) builder.add_edge(id(a, b, c), id(a, b + 1, c));
        if (c + 1 < z) builder.add_edge(id(a, b, c), id(a, b, c + 1));
      }
    }
  }
  return std::move(builder).build();
}

Graph make_complete(VertexId n) {
  DSND_REQUIRE(n >= 1, "complete graph needs at least one vertex");
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

Graph make_star(VertexId n) {
  DSND_REQUIRE(n >= 1, "star needs at least one vertex");
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) builder.add_edge(0, v);
  return std::move(builder).build();
}

Graph make_complete_bipartite(VertexId a, VertexId b) {
  DSND_REQUIRE(a >= 1 && b >= 1, "bipartite sides must be nonempty");
  GraphBuilder builder(a + b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) builder.add_edge(u, a + v);
  }
  return std::move(builder).build();
}

Graph make_balanced_tree(VertexId branching, VertexId height) {
  DSND_REQUIRE(branching >= 1, "branching factor must be positive");
  DSND_REQUIRE(height >= 0, "height must be nonnegative");
  // Number of vertices: 1 + b + b^2 + ... + b^height.
  std::int64_t n = 0;
  std::int64_t layer = 1;
  for (VertexId h = 0; h <= height; ++h) {
    n += layer;
    layer *= branching;
    DSND_REQUIRE(n < (1LL << 31), "balanced tree too large");
  }
  GraphBuilder builder(static_cast<VertexId>(n));
  for (VertexId v = 1; v < static_cast<VertexId>(n); ++v) {
    builder.add_edge(v, (v - 1) / branching);
  }
  return std::move(builder).build();
}

Graph make_hypercube(int dim) {
  DSND_REQUIRE(dim >= 0 && dim <= 24, "hypercube dimension out of range");
  const VertexId n = static_cast<VertexId>(1) << dim;
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    for (int bit = 0; bit < dim; ++bit) {
      const VertexId w = v ^ (static_cast<VertexId>(1) << bit);
      if (v < w) builder.add_edge(v, w);
    }
  }
  return std::move(builder).build();
}

Graph make_ring_of_cliques(VertexId num_cliques, VertexId clique_size) {
  DSND_REQUIRE(num_cliques >= 3, "ring needs at least three cliques");
  DSND_REQUIRE(clique_size >= 1, "clique size must be positive");
  GraphBuilder builder(num_cliques * clique_size);
  auto id = [clique_size](VertexId clique, VertexId member) {
    return clique * clique_size + member;
  };
  for (VertexId q = 0; q < num_cliques; ++q) {
    for (VertexId i = 0; i < clique_size; ++i) {
      for (VertexId j = i + 1; j < clique_size; ++j) {
        builder.add_edge(id(q, i), id(q, j));
      }
    }
    builder.add_edge(id(q, clique_size - 1), id((q + 1) % num_cliques, 0));
  }
  return std::move(builder).build();
}

Graph make_barbell(VertexId clique_size, VertexId path_len) {
  DSND_REQUIRE(clique_size >= 2, "barbell cliques need >= 2 vertices");
  DSND_REQUIRE(path_len >= 1, "barbell path needs >= 1 edge");
  const VertexId n = 2 * clique_size + (path_len - 1);
  GraphBuilder builder(n);
  for (VertexId i = 0; i < clique_size; ++i) {
    for (VertexId j = i + 1; j < clique_size; ++j) {
      builder.add_edge(i, j);
      builder.add_edge(clique_size + (path_len - 1) + i,
                       clique_size + (path_len - 1) + j);
    }
  }
  // Path from vertex clique_size-1 through the middle vertices to the
  // first vertex of the second clique.
  VertexId prev = clique_size - 1;
  for (VertexId s = 0; s < path_len - 1; ++s) {
    builder.add_edge(prev, clique_size + s);
    prev = clique_size + s;
  }
  builder.add_edge(prev, clique_size + (path_len - 1));
  return std::move(builder).build();
}

Graph make_lollipop(VertexId clique_size, VertexId path_len) {
  DSND_REQUIRE(clique_size >= 2, "lollipop clique needs >= 2 vertices");
  DSND_REQUIRE(path_len >= 1, "lollipop path needs >= 1 edge");
  GraphBuilder builder(clique_size + path_len);
  for (VertexId i = 0; i < clique_size; ++i) {
    for (VertexId j = i + 1; j < clique_size; ++j) builder.add_edge(i, j);
  }
  VertexId prev = clique_size - 1;
  for (VertexId s = 0; s < path_len; ++s) {
    builder.add_edge(prev, clique_size + s);
    prev = clique_size + s;
  }
  return std::move(builder).build();
}

Graph make_gnp(VertexId n, double p, std::uint64_t seed, unsigned threads) {
  DSND_REQUIRE(n >= 1, "G(n,p) needs at least one vertex");
  DSND_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  const auto count = static_cast<std::size_t>(n);
  if (p == 0.0) {
    return Graph::from_csr(std::vector<std::int64_t>(count + 1, 0), {});
  }
  if (p == 1.0) return make_complete(n);

  // Row streams: row v skip-samples its lower neighbors {w < v} from
  // stream_seed(seed, kGnpRowTag, v) with Batagelj–Brandes geometric
  // jumps — O(1 + deg) draws per row, and rows are mutually independent,
  // which is exactly G(n,p). Rows are processed in contiguous chunks;
  // later rows have more candidates, so chunk boundaries follow
  // n*sqrt(t/T) to balance the quadratic work mass.
  const double log_q = std::log1p(-p);
  const unsigned workers = resolve_threads(threads, count);
  std::vector<std::vector<Edge>> chunk_edges(workers);
  std::vector<std::size_t> bounds(workers + 1);
  for (unsigned t = 0; t <= workers; ++t) {
    bounds[t] = std::min(count, static_cast<std::size_t>(
        static_cast<double>(count) *
        std::sqrt(static_cast<double>(t) / workers)));
  }
  bounds[workers] = count;
  parallel_chunks(workers, workers,
                  [&](unsigned, std::size_t cb, std::size_t ce) {
    for (std::size_t t = cb; t < ce; ++t) {
      std::vector<Edge>& edges = chunk_edges[t];
      for (std::size_t v = std::max<std::size_t>(bounds[t], 1);
           v < bounds[t + 1]; ++v) {
        Xoshiro256ss rng(stream_seed(seed, kGnpRowTag,
                                     static_cast<std::uint64_t>(v)));
        std::int64_t w = -1;
        for (;;) {
          const double u = uniform_unit(rng);
          // The jump is computed in double and compared before the
          // integer cast: for tiny p a single jump can exceed any
          // integer range, which simply means "row exhausted".
          const double next = static_cast<double>(w) + 1.0 +
                              std::floor(std::log1p(-u) / log_q);
          if (!(next < static_cast<double>(v))) break;
          w = static_cast<std::int64_t>(next);
          edges.push_back(Edge{static_cast<VertexId>(w),
                               static_cast<VertexId>(v)});
        }
      }
    }
  });

  return csr_from_chunk_edges(count, chunk_edges, /*sort_rows=*/false,
                              workers);
}

Graph make_gnm(VertexId n, std::int64_t m, std::uint64_t seed) {
  DSND_REQUIRE(n >= 1, "G(n,m) needs at least one vertex");
  const std::int64_t max_edges =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  DSND_REQUIRE(m >= 0 && m <= max_edges, "edge count out of range");
  Xoshiro256ss rng(stream_seed(seed, 0x676e6dULL, static_cast<std::uint64_t>(n)));
  std::set<Edge> chosen;
  while (static_cast<std::int64_t>(chosen.size()) < m) {
    auto u = static_cast<VertexId>(
        uniform_below(rng, static_cast<std::uint64_t>(n)));
    auto v = static_cast<VertexId>(
        uniform_below(rng, static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.insert({u, v});
  }
  GraphBuilder builder(n);
  for (const Edge& e : chosen) builder.add_edge(e.u, e.v);
  return std::move(builder).build();
}

Graph make_random_tree(VertexId n, std::uint64_t seed) {
  DSND_REQUIRE(n >= 1, "tree needs at least one vertex");
  Xoshiro256ss rng(stream_seed(seed, 0x74726565ULL,
                               static_cast<std::uint64_t>(n)));
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) {
    const auto parent = static_cast<VertexId>(
        uniform_below(rng, static_cast<std::uint64_t>(v)));
    builder.add_edge(v, parent);
  }
  return std::move(builder).build();
}

Graph make_random_regular(VertexId n, VertexId d, std::uint64_t seed) {
  DSND_REQUIRE(n >= 1 && d >= 0 && d < n, "need 0 <= d < n");
  DSND_REQUIRE((static_cast<std::int64_t>(n) * d) % 2 == 0,
               "n*d must be even for a d-regular graph");
  Xoshiro256ss rng(stream_seed(seed, 0x72656775ULL,
                               static_cast<std::uint64_t>(n)));
  // Pairing model: stubs = d copies of each vertex, shuffle, pair up; retry
  // on self-loops or duplicates. Retry count is O(1) expected for d << n.
  std::vector<VertexId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (int attempt = 0; attempt < 1000; ++attempt) {
    stubs.clear();
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId i = 0; i < d; ++i) stubs.push_back(v);
    }
    // Fisher–Yates shuffle with our deterministic generator.
    for (std::size_t i = stubs.size(); i > 1; --i) {
      const std::size_t j = uniform_below(rng, i);
      std::swap(stubs[i - 1], stubs[j]);
    }
    std::set<Edge> edges;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      VertexId u = stubs[i];
      VertexId v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!edges.insert({u, v}).second) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    GraphBuilder builder(n);
    for (const Edge& e : edges) builder.add_edge(e.u, e.v);
    return std::move(builder).build();
  }
  DSND_CHECK(false, "random regular pairing failed to converge");
}

Graph make_watts_strogatz(VertexId n, VertexId k, double beta,
                          std::uint64_t seed) {
  DSND_REQUIRE(n >= 3, "small world needs at least three vertices");
  DSND_REQUIRE(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n");
  DSND_REQUIRE(beta >= 0.0 && beta <= 1.0, "rewire probability in [0, 1]");
  Xoshiro256ss rng(stream_seed(seed, 0x7773ULL, static_cast<std::uint64_t>(n)));
  std::set<Edge> edges;
  auto canonical = [](VertexId u, VertexId v) {
    return u < v ? Edge{u, v} : Edge{v, u};
  };
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId j = 1; j <= k; ++j) {
      edges.insert(canonical(v, (v + j) % n));
    }
  }
  // Rewire each lattice edge's far endpoint with probability beta.
  std::vector<Edge> lattice(edges.begin(), edges.end());
  for (const Edge& e : lattice) {
    if (uniform_unit(rng) >= beta) continue;
    edges.erase(e);
    // Pick a new partner for e.u avoiding self-loops and duplicates; fall
    // back to keeping the edge if the vertex is saturated.
    bool rewired = false;
    for (int tries = 0; tries < 64; ++tries) {
      const auto w = static_cast<VertexId>(
          uniform_below(rng, static_cast<std::uint64_t>(n)));
      if (w == e.u) continue;
      const Edge candidate = canonical(e.u, w);
      if (edges.contains(candidate)) continue;
      edges.insert(candidate);
      rewired = true;
      break;
    }
    if (!rewired) edges.insert(e);
  }
  GraphBuilder builder(n);
  for (const Edge& e : edges) builder.add_edge(e.u, e.v);
  return std::move(builder).build();
}

Graph make_barabasi_albert(VertexId n, VertexId m, std::uint64_t seed,
                           unsigned threads) {
  DSND_REQUIRE(m >= 1, "attachment count must be positive");
  DSND_REQUIRE(n > m, "need more vertices than attachment count");
  const auto slots =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(m);
  const unsigned workers = resolve_threads(threads, slots);

  // Batagelj–Brandes writes an endpoint array M of length 2nm where
  // M[2i] = i/m (edge slot i's source) and M[2i+1] = M[r_i] with r_i
  // uniform in [0, 2i+1): copying a uniform position of the prefix is
  // the repeated-endpoints trick, so targets land degree-proportional.
  // r_i depends only on the slot index, so M[pos] resolves on demand by
  // chasing odd positions through their own streams (Sanders–Schulz's
  // communication-free formulation): no shared array, and the output is
  // bit-identical for every thread/chunk count. The chase terminates
  // because each draw strictly decreases the position.
  auto resolve = [seed, m](std::uint64_t position) {
    while ((position & 1) != 0) {
      Xoshiro256ss rng(stream_seed(seed, kBaEdgeTag, position >> 1));
      position = uniform_below(rng, position);
    }
    return static_cast<VertexId>((position >> 1) /
                                 static_cast<std::uint64_t>(m));
  };

  // Self-attachment draws and duplicate (u, v) picks are dropped by the
  // dedup, matching the usual simple-graph reading — except on a
  // vertex's FIRST slot, where a self-draw deterministically falls back
  // to the previous vertex. That guarantees every vertex u >= 1 keeps
  // an edge to an earlier vertex, so the graph is connected exactly
  // like the classic sequential construction (vertex 0 has no earlier
  // vertex; its draws all self-attach and are dropped, but vertex 1's
  // first slot always wires it in). The fallback is a pure function of
  // the slot index, so the chunk/thread bit-identity contract holds.
  std::vector<std::vector<Edge>> chunk_edges(workers);
  parallel_chunks(
      slots, workers, [&](unsigned worker, std::size_t begin,
                          std::size_t end) {
        std::vector<Edge>& edges = chunk_edges[worker];
        for (std::size_t i = begin; i < end; ++i) {
          auto u = static_cast<VertexId>(i / static_cast<std::size_t>(m));
          VertexId v = resolve(2 * static_cast<std::uint64_t>(i) + 1);
          if (u == v) {
            const bool first_slot = i % static_cast<std::size_t>(m) == 0;
            if (!first_slot || u == 0) continue;
            v = u - 1;
          }
          edges.push_back(u < v ? Edge{u, v} : Edge{v, u});
        }
      });
  return symmetric_csr_from_canonical_samples(static_cast<std::size_t>(n),
                                              chunk_edges, workers);
}

GeometricGraph make_rgg_geometric(VertexId n, double radius,
                                  std::uint64_t seed, unsigned threads) {
  DSND_REQUIRE(n >= 1, "rgg needs at least one vertex");
  DSND_REQUIRE(radius > 0.0 && radius <= 1.0, "rgg radius must be in (0, 1]");
  const auto count = static_cast<std::size_t>(n);
  const unsigned workers = resolve_threads(threads, count);

  // Point i's coordinates from its own stream (x drawn before y):
  // chunk-parallel and chunk-count invariant.
  GeometricGraph result;
  result.x.resize(count);
  result.y.resize(count);
  std::vector<double>& x = result.x;
  std::vector<double>& y = result.y;
  parallel_chunks(count, workers,
                  [&](unsigned, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      Xoshiro256ss rng(stream_seed(
                          seed, kRggPointTag,
                          static_cast<std::uint64_t>(i)));
                      x[i] = uniform_unit(rng);
                      y[i] = uniform_unit(rng);
                    }
                  });

  // Bucket the points into a grid of cells with side >= radius; every
  // partner of a point then lies in its 3x3 cell block.
  const auto side = static_cast<std::int32_t>(
      std::max(1.0, std::floor(1.0 / radius)));
  const auto cells = static_cast<std::size_t>(side) *
                     static_cast<std::size_t>(side);
  auto cell_coord = [side](double value) {
    return std::min<std::int32_t>(
        side - 1, static_cast<std::int32_t>(value *
                                            static_cast<double>(side)));
  };
  std::vector<std::size_t> cell_start(cells + 1, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const auto cell = static_cast<std::size_t>(cell_coord(y[i])) *
                          static_cast<std::size_t>(side) +
                      static_cast<std::size_t>(cell_coord(x[i]));
    ++cell_start[cell + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) cell_start[c + 1] += cell_start[c];
  std::vector<VertexId> members(count);
  {
    std::vector<std::size_t> fill(cell_start.begin(), cell_start.end() - 1);
    for (std::size_t i = 0; i < count; ++i) {
      const auto cell = static_cast<std::size_t>(cell_coord(y[i])) *
                            static_cast<std::size_t>(side) +
                        static_cast<std::size_t>(cell_coord(x[i]));
      members[fill[cell]++] = static_cast<VertexId>(i);
    }
  }

  // Edge enumeration in point chunks: chunk c finds the partners j > i of
  // its own points i, so every pair is found exactly once and the union
  // over chunks never depends on the chunking.
  const double r2 = radius * radius;
  std::vector<std::vector<Edge>> chunk_edges(workers);
  parallel_chunks(count, workers,
                  [&](unsigned worker, std::size_t begin, std::size_t end) {
    std::vector<Edge>& edges = chunk_edges[worker];
    for (std::size_t i = begin; i < end; ++i) {
      const std::int32_t cx = cell_coord(x[i]);
      const std::int32_t cy = cell_coord(y[i]);
      for (std::int32_t gy = std::max(cy - 1, 0);
           gy <= std::min(cy + 1, side - 1); ++gy) {
        for (std::int32_t gx = std::max(cx - 1, 0);
             gx <= std::min(cx + 1, side - 1); ++gx) {
          const auto cell = static_cast<std::size_t>(gy) *
                                static_cast<std::size_t>(side) +
                            static_cast<std::size_t>(gx);
          for (std::size_t slot = cell_start[cell];
               slot < cell_start[cell + 1]; ++slot) {
            const auto j = static_cast<std::size_t>(members[slot]);
            if (j <= i) continue;  // each pair once
            const double dx = x[i] - x[j];
            const double dy = y[i] - y[j];
            if (dx * dx + dy * dy <= r2) {
              edges.push_back(Edge{static_cast<VertexId>(i),
                                   static_cast<VertexId>(j)});
            }
          }
        }
      }
    }
  });

  // Rows receive cell-scan-order entries, so the assembly sorts each
  // (tiny, avg degree ~ n*pi*r^2) row.
  result.graph =
      csr_from_chunk_edges(count, chunk_edges, /*sort_rows=*/true, workers);
  return result;
}

Graph make_rgg(VertexId n, double radius, std::uint64_t seed,
               unsigned threads) {
  return make_rgg_geometric(n, radius, seed, threads).graph;
}

namespace {

/// Largest angular separation at which a point at radius r can reach any
/// point at radius >= band_lo within hyperbolic distance R. The
/// threshold angle shrinks as either radius grows, so evaluating it at a
/// band's inner radius gives a window that covers the whole band.
double band_max_angle(double cosh_r, double sinh_r, double band_lo,
                      double cosh_disk) {
  if (band_lo <= 0.0 || sinh_r == 0.0) return kPi;  // center reaches all
  const double rhs = (cosh_r * std::cosh(band_lo) - cosh_disk) /
                     (sinh_r * std::sinh(band_lo));
  if (rhs <= -1.0) return kPi;
  if (rhs >= 1.0) return 0.0;
  return std::acos(rhs);
}

}  // namespace

HyperbolicGraph make_hyperbolic_geometric(VertexId n, double avg_degree,
                                          double gamma, std::uint64_t seed,
                                          unsigned threads) {
  DSND_REQUIRE(n >= 2, "hyperbolic graph needs at least two vertices");
  DSND_REQUIRE(gamma > 2.0, "power-law exponent must exceed 2");
  DSND_REQUIRE(avg_degree > 0.0, "target average degree must be positive");
  const double alpha = (gamma - 1.0) / 2.0;
  // Disk radius from the Gugelmann–Panagiotou–Peter asymptotics:
  // n = nu * e^{R/2} with mean degree -> 2 alpha^2 nu / (pi (alpha-1/2)^2).
  const double nu = avg_degree * kPi * (alpha - 0.5) * (alpha - 0.5) /
                    (2.0 * alpha * alpha);
  const double disk = 2.0 * std::log(static_cast<double>(n) / nu);
  DSND_REQUIRE(disk > 0.0,
               "n too small for the requested average degree / exponent");

  const auto count = static_cast<std::size_t>(n);
  const unsigned workers = resolve_threads(threads, count);

  // Coordinates: point i's stream draws r (inverse-CDF of the
  // sinh(alpha r) density) before theta. cosh/sinh are precomputed once
  // per point — the distance test needs them for every candidate pair.
  HyperbolicGraph result;
  result.disk_radius = disk;
  result.radius.resize(count);
  result.angle.resize(count);
  std::vector<double> cosh_r(count);
  std::vector<double> sinh_r(count);
  const double cosh_alpha_disk = std::cosh(alpha * disk);
  parallel_chunks(count, workers,
                  [&](unsigned, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      Xoshiro256ss rng(stream_seed(
                          seed, kHypPointTag,
                          static_cast<std::uint64_t>(i)));
                      const double u1 = uniform_unit(rng);
                      const double r =
                          std::acosh(1.0 + u1 * (cosh_alpha_disk - 1.0)) /
                          alpha;
                      result.radius[i] = r;
                      result.angle[i] = 2.0 * kPi * uniform_unit(rng);
                      cosh_r[i] = std::cosh(r);
                      sinh_r[i] = std::sinh(r);
                    }
                  });

  // Annulus bucketing: unit-width radial bands, each sorted by angle, so
  // a point's candidates in a band are one (or two, with wraparound)
  // binary-searched angular slices. Deep bands hold exponentially few
  // points, so the conservative per-band windows stay near-linear.
  const auto bands = static_cast<std::size_t>(
      std::max(1.0, std::ceil(disk)));
  auto band_of = [bands](double r) {
    return std::min(bands - 1, static_cast<std::size_t>(
                                   std::max(0.0, std::floor(r))));
  };
  std::vector<std::size_t> band_start(bands + 1, 0);
  for (std::size_t i = 0; i < count; ++i) {
    ++band_start[band_of(result.radius[i]) + 1];
  }
  for (std::size_t b = 0; b < bands; ++b) band_start[b + 1] += band_start[b];
  // (angle, vertex) pairs, sorted within each band; the vertex tiebreak
  // makes the order — and thus the scan — independent of the fill order.
  std::vector<std::pair<double, VertexId>> members(count);
  {
    std::vector<std::size_t> fill(band_start.begin(), band_start.end() - 1);
    for (std::size_t i = 0; i < count; ++i) {
      members[fill[band_of(result.radius[i])]++] = {result.angle[i],
                                                    static_cast<VertexId>(i)};
    }
  }
  parallel_chunks(bands, workers,
                  [&](unsigned, std::size_t begin, std::size_t end) {
                    for (std::size_t b = begin; b < end; ++b) {
                      std::sort(members.begin() +
                                    static_cast<std::ptrdiff_t>(band_start[b]),
                                members.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        band_start[b + 1]));
                    }
                  });

  // Edge scan in point chunks: point i emits exactly the pairs (i, j)
  // with j > i, so the union over chunks never depends on the chunking.
  const double cosh_disk = std::cosh(disk);
  std::vector<std::vector<Edge>> chunk_edges(workers);
  parallel_chunks(count, workers,
                  [&](unsigned worker, std::size_t begin, std::size_t end) {
    std::vector<Edge>& edges = chunk_edges[worker];
    for (std::size_t i = begin; i < end; ++i) {
      const double theta = result.angle[i];
      for (std::size_t b = 0; b < bands; ++b) {
        const double window = band_max_angle(
            cosh_r[i], sinh_r[i], static_cast<double>(b), cosh_disk);
        const auto lo = members.begin() +
                        static_cast<std::ptrdiff_t>(band_start[b]);
        const auto hi = members.begin() +
                        static_cast<std::ptrdiff_t>(band_start[b + 1]);
        auto scan = [&](double from, double to) {
          auto it = std::lower_bound(
              lo, hi, std::pair<double, VertexId>{from, -1});
          for (; it != hi && it->first <= to; ++it) {
            const auto j = static_cast<std::size_t>(it->second);
            if (j <= i) continue;  // each pair once
            const double cosh_d =
                cosh_r[i] * cosh_r[j] -
                sinh_r[i] * sinh_r[j] * std::cos(theta - it->first);
            if (cosh_d <= cosh_disk) {
              edges.push_back(Edge{static_cast<VertexId>(i),
                                   static_cast<VertexId>(j)});
            }
          }
        };
        if (window >= kPi) {
          scan(0.0, 2.0 * kPi);
        } else {
          const double from = theta - window;
          const double to = theta + window;
          if (from < 0.0) {
            scan(from + 2.0 * kPi, 2.0 * kPi);
            scan(0.0, to);
          } else if (to >= 2.0 * kPi) {
            scan(from, 2.0 * kPi);
            scan(0.0, to - 2.0 * kPi);
          } else {
            scan(from, to);
          }
        }
      }
    }
  });

  // Band-scan order is not row order, so the assembly sorts each row.
  result.graph =
      csr_from_chunk_edges(count, chunk_edges, /*sort_rows=*/true, workers);
  return result;
}

Graph make_hyperbolic(VertexId n, double avg_degree, double gamma,
                      std::uint64_t seed, unsigned threads) {
  return make_hyperbolic_geometric(n, avg_degree, gamma, seed, threads).graph;
}

Graph make_kronecker(int scale, std::int64_t edge_factor,
                     std::uint64_t seed, unsigned threads) {
  DSND_REQUIRE(scale >= 1 && scale <= 30, "kronecker scale out of range");
  DSND_REQUIRE(edge_factor >= 1, "edge factor must be positive");
  const VertexId n = static_cast<VertexId>(1) << scale;
  const auto count = static_cast<std::size_t>(n);
  const auto samples =
      static_cast<std::size_t>(edge_factor) * count;
  const unsigned workers = resolve_threads(threads, samples);

  // Graph500 initiator probabilities (A, B, C; D is the remainder).
  constexpr double kA = 0.57;
  constexpr double kB = 0.19;
  constexpr double kC = 0.19;

  // Sample pass: directed sample e recursively picks one of the four
  // quadrants per bit level from its own stream, top bit first. Samples
  // are canonicalized to u < v; self-loops are dropped here, duplicate
  // samples survive until the dedup pass below.
  std::vector<std::vector<Edge>> chunk_edges(workers);
  parallel_chunks(samples, workers,
                  [&](unsigned worker, std::size_t begin, std::size_t end) {
    std::vector<Edge>& edges = chunk_edges[worker];
    for (std::size_t e = begin; e < end; ++e) {
      Xoshiro256ss rng(stream_seed(seed, kKronEdgeTag,
                                   static_cast<std::uint64_t>(e)));
      VertexId u = 0;
      VertexId v = 0;
      for (int bit = 0; bit < scale; ++bit) {
        const double x = uniform_unit(rng);
        u = static_cast<VertexId>(u << 1);
        v = static_cast<VertexId>(v << 1);
        if (x < kA) {
          // top-left: both bits 0
        } else if (x < kA + kB) {
          v = static_cast<VertexId>(v | 1);
        } else if (x < kA + kB + kC) {
          u = static_cast<VertexId>(u | 1);
        } else {
          u = static_cast<VertexId>(u | 1);
          v = static_cast<VertexId>(v | 1);
        }
      }
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      edges.push_back(Edge{u, v});
    }
  });

  return symmetric_csr_from_canonical_samples(count, chunk_edges, workers);
}

namespace {

VertexId isqrt(VertexId n) {
  auto r = static_cast<VertexId>(std::sqrt(static_cast<double>(n)));
  while ((r + 1) * (r + 1) <= n) ++r;
  while (r * r > n) --r;
  return r;
}

const std::vector<GraphFamily>& families_impl() {
  static const std::vector<GraphFamily> kFamilies = {
      {"path", [](VertexId n, std::uint64_t) { return make_path(n); }},
      {"cycle",
       [](VertexId n, std::uint64_t) { return make_cycle(std::max<VertexId>(n, 3)); }},
      {"grid",
       [](VertexId n, std::uint64_t) {
         const VertexId side = std::max<VertexId>(isqrt(n), 2);
         return make_grid2d(side, side);
       }},
      {"balanced-tree",
       [](VertexId n, std::uint64_t) {
         // Binary tree with ~n vertices.
         VertexId height = 1;
         while (((static_cast<std::int64_t>(1) << (height + 2)) - 1) <= n) {
           ++height;
         }
         return make_balanced_tree(2, height);
       }},
      {"random-tree",
       [](VertexId n, std::uint64_t seed) { return make_random_tree(n, seed); }},
      {"gnp-sparse",
       [](VertexId n, std::uint64_t seed) {
         // Expected average degree ~6.
         return make_gnp(n, std::min(1.0, 6.0 / std::max<VertexId>(n - 1, 1)),
                         seed);
       }},
      {"gnp-dense",
       [](VertexId n, std::uint64_t seed) {
         // Expected average degree ~ n/8 (dense but not complete).
         return make_gnp(n, 0.125, seed);
       }},
      {"random-regular",
       [](VertexId n, std::uint64_t seed) {
         const VertexId even_n = n % 2 == 0 ? n : n + 1;
         return make_random_regular(even_n, 4, seed);
       }},
      {"hypercube",
       [](VertexId n, std::uint64_t) {
         int dim = 1;
         while ((static_cast<VertexId>(1) << (dim + 1)) <= n) ++dim;
         return make_hypercube(dim);
       }},
      {"ring-of-cliques",
       [](VertexId n, std::uint64_t) {
         const VertexId clique = 8;
         const VertexId rings = std::max<VertexId>(n / clique, 3);
         return make_ring_of_cliques(rings, clique);
       }},
      {"small-world",
       [](VertexId n, std::uint64_t seed) {
         return make_watts_strogatz(std::max<VertexId>(n, 8), 3, 0.1, seed);
       }},
      {"rgg",
       [](VertexId n, std::uint64_t seed) {
         // Radius for expected average degree ~8.
         const double radius =
             std::sqrt(8.0 / (3.14159265358979323846 *
                              static_cast<double>(std::max<VertexId>(n, 2))));
         return make_rgg(n, std::min(1.0, radius), seed);
       }},
      {"hyperbolic",
       [](VertexId n, std::uint64_t seed) {
         // Power-law exponent 2.8, target average degree ~8.
         return make_hyperbolic(std::max<VertexId>(n, 64), 8.0, 2.8, seed);
       }},
      {"kronecker",
       [](VertexId n, std::uint64_t seed) {
         // n rounded down to a power of two, edge factor 8.
         int scale = 1;
         while ((static_cast<VertexId>(1) << (scale + 1)) <=
                std::max<VertexId>(n, 2)) {
           ++scale;
         }
         return make_kronecker(scale, 8, seed);
       }},
      {"ba",
       [](VertexId n, std::uint64_t seed) {
         // Attachment count 4: average degree just under 8.
         return make_barabasi_albert(std::max<VertexId>(n, 8), 4, seed);
       }},
  };
  return kFamilies;
}

}  // namespace

const std::vector<GraphFamily>& standard_families() { return families_impl(); }

const GraphFamily& family_by_name(const std::string& name) {
  for (const GraphFamily& family : families_impl()) {
    if (family.name == name) return family;
  }
  DSND_REQUIRE(false, "unknown graph family: " + name);
  // Unreachable; DSND_REQUIRE throws.
  throw std::invalid_argument("unreachable");
}

}  // namespace dsnd
