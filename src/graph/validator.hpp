// Standalone graph validator (chkgraph-style): checks a CSR — or a
// built Graph — against the library's structural contract (well-formed
// offsets, in-range sorted duplicate-free rows, no self-loops, symmetric
// adjacency) and summarizes the degree distribution. Unlike the checks
// inside Graph::from_csr, which throw on the first violation, the
// validator collects every distinct problem with a named kind and a
// human-readable location, which is what makes it usable as an
// ingestion gate for external graph files (tools/chkgraph.cpp is the
// CLI wrapper) and as a test oracle for seeded corruptions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

enum class GraphIssueKind {
  kBadOffsets,     // offsets empty / non-monotone / wrong terminator
  kOutOfRange,     // adjacency entry outside [0, n)
  kSelfLoop,       // v in its own row
  kUnsortedRow,    // row not strictly increasing (ordering violation)
  kDuplicateEdge,  // equal consecutive entries in a row
  kAsymmetric,     // v in row u without u in row v
};

/// Stable lowercase name ("self-loop", "asymmetric", ...) used in
/// reports and grepped by the CI ingestion smoke.
const char* to_string(GraphIssueKind kind);

struct GraphIssue {
  GraphIssueKind kind;
  std::string message;  // names the offending vertex / row / offset
};

/// Degree-distribution summary — the stats the scale-free benches record
/// next to carve quality so power-law regimes are visible in the data.
struct DegreeStats {
  VertexId min_degree = 0;
  VertexId max_degree = 0;
  double mean_degree = 0.0;
  VertexId p90_degree = 0;  // 90th / 99th degree percentiles
  VertexId p99_degree = 0;
  std::int64_t isolated_vertices = 0;
  /// histogram[0] counts degree 0; histogram[b >= 1] counts degrees in
  /// [2^(b-1), 2^b) — log-binned, so power-law tails read as a straight
  /// line of slowly decaying bucket counts.
  std::vector<std::int64_t> histogram;
  /// Continuous MLE power-law exponent alpha fitted to degrees >= 4
  /// (alpha = 1 + k / sum ln(d / 3.5)); 0 when fewer than 16 vertices
  /// qualify. For a true power law with exponent gamma this estimates
  /// gamma; for gnp-style light tails it comes out implausibly large.
  double powerlaw_alpha = 0.0;
};

DegreeStats degree_stats(const Graph& g);

struct GraphCheckReport {
  VertexId num_vertices = 0;
  std::int64_t num_directed_entries = 0;
  /// Distinct problems found, capped at the check's max_issues (the
  /// total_issues counter keeps counting past the cap).
  std::vector<GraphIssue> issues;
  std::int64_t total_issues = 0;
  DegreeStats degrees;  // meaningful only when the offsets are usable

  bool ok() const { return total_issues == 0; }
  bool has(GraphIssueKind kind) const;
};

/// Validates raw CSR arrays. Never throws on malformed input — that is
/// the point: corrupted offsets/adjacency come back as named issues.
GraphCheckReport check_csr(std::span<const std::int64_t> offsets,
                           std::span<const VertexId> adjacency,
                           int max_issues = 32);

/// check_csr over a built Graph (the class invariants make structural
/// issues impossible, so this mostly contributes the degree summary and
/// a defense-in-depth symmetry pass).
GraphCheckReport check_graph(const Graph& g, int max_issues = 32);

/// Multi-line human-readable rendering: verdict, issue list, degree
/// summary. What tools/chkgraph prints.
std::string format_report(const GraphCheckReport& report);

}  // namespace dsnd
