// Cheap whole-graph properties used in reports and preconditions.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace dsnd {

VertexId max_degree(const Graph& g);
double average_degree(const Graph& g);

/// True if the vertex set can be 2-colored (no odd cycle).
bool is_bipartite(const Graph& g);

/// Number of triangles (3-cycles); O(m * max_degree) — small graphs only.
std::int64_t triangle_count(const Graph& g);

/// One-line human-readable summary: n, m, degree stats, components.
std::string describe(const Graph& g);

}  // namespace dsnd
