// Cheap whole-graph properties used in reports and preconditions.
//
// These are O(n + m) (or clearly-marked worse) observational helpers: the
// benches use them to describe the graph families they sweep, the
// examples print describe() so users see what they decomposed, and tests
// use is_bipartite/triangle_count as structural preconditions. Nothing
// here feeds the decomposition algorithms themselves — the algorithmic
// primitives (BFS, components, diameter) live in graph/traversal.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace dsnd {

VertexId max_degree(const Graph& g);
double average_degree(const Graph& g);

/// True if the vertex set can be 2-colored (no odd cycle).
bool is_bipartite(const Graph& g);

/// Number of triangles (3-cycles); O(m * max_degree) — small graphs only.
std::int64_t triangle_count(const Graph& g);

/// One-line human-readable summary: n, m, degree stats, components.
std::string describe(const Graph& g);

}  // namespace dsnd
