#include "graph/subgraph.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace dsnd {

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const VertexId> vertices) {
  InducedSubgraph result;
  result.to_parent.assign(vertices.begin(), vertices.end());
  std::sort(result.to_parent.begin(), result.to_parent.end());
  DSND_REQUIRE(std::adjacent_find(result.to_parent.begin(),
                                  result.to_parent.end()) ==
                   result.to_parent.end(),
               "duplicate vertex in induced subgraph selection");

  std::vector<VertexId> to_sub(static_cast<std::size_t>(g.num_vertices()),
                               -1);
  for (std::size_t i = 0; i < result.to_parent.size(); ++i) {
    const VertexId parent = result.to_parent[i];
    DSND_REQUIRE(parent >= 0 && parent < g.num_vertices(),
                 "vertex out of range");
    to_sub[static_cast<std::size_t>(parent)] = static_cast<VertexId>(i);
  }

  std::vector<Edge> edges;
  for (std::size_t i = 0; i < result.to_parent.size(); ++i) {
    const VertexId parent = result.to_parent[i];
    for (VertexId w : g.neighbors(parent)) {
      const VertexId sub_w = to_sub[static_cast<std::size_t>(w)];
      if (sub_w != -1 && static_cast<VertexId>(i) < sub_w) {
        edges.push_back({static_cast<VertexId>(i), sub_w});
      }
    }
  }
  result.graph = Graph::from_edges(
      static_cast<VertexId>(result.to_parent.size()), std::move(edges));
  return result;
}

}  // namespace dsnd
