#include "graph/graph.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace dsnd {

Graph Graph::from_edges(VertexId n, std::vector<Edge> edges, bool normalize) {
  DSND_REQUIRE(n >= 0, "vertex count must be nonnegative");
  for (auto& e : edges) {
    DSND_REQUIRE(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
                 "edge endpoint out of range");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end());
  if (normalize) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  } else {
    DSND_REQUIRE(std::adjacent_find(edges.begin(), edges.end()) == edges.end(),
                 "duplicate edge in edge list");
    DSND_REQUIRE(std::none_of(edges.begin(), edges.end(),
                              [](const Edge& e) { return e.u == e.v; }),
                 "self-loop in edge list");
  }

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    ++g.offsets_[static_cast<std::size_t>(e.u) + 1];
    ++g.offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(static_cast<std::size_t>(edges.size()) * 2);
  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adjacency_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.u)]++)] = e.v;
    g.adjacency_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.v)]++)] = e.u;
  }
  // Rows come out sorted because the edge list is sorted by (u, v) and each
  // row receives its entries in increasing order of the other endpoint —
  // except the rows filled via the v side. Sort each row to be safe.
  for (VertexId v = 0; v < n; ++v) {
    auto begin = g.adjacency_.begin() + g.offsets_[static_cast<std::size_t>(v)];
    auto end =
        g.adjacency_.begin() + g.offsets_[static_cast<std::size_t>(v) + 1];
    std::sort(begin, end);
  }
  return g;
}

Graph Graph::from_csr(std::vector<std::int64_t> offsets,
                      std::vector<VertexId> adjacency) {
  DSND_REQUIRE(!offsets.empty(), "offsets must have n+1 entries");
  DSND_REQUIRE(offsets.front() == 0, "offsets must start at 0");
  DSND_REQUIRE(offsets.back() == static_cast<std::int64_t>(adjacency.size()),
               "offsets must end at the adjacency size");
  const auto n = static_cast<VertexId>(offsets.size() - 1);
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    DSND_REQUIRE(offsets[v] <= offsets[v + 1], "offsets must be monotone");
    VertexId prev = -1;
    for (std::int64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const VertexId w = adjacency[static_cast<std::size_t>(i)];
      DSND_REQUIRE(w >= 0 && w < n, "adjacency entry out of range");
      DSND_REQUIRE(w != static_cast<VertexId>(v), "self-loop in CSR row");
      DSND_REQUIRE(w > prev, "CSR rows must be strictly increasing");
      prev = w;
    }
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  check_vertex(u);
  check_vertex(v);
  if (u == v) return false;
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(static_cast<std::size_t>(num_edges()));
  for_each_edge([&](VertexId u, VertexId v) { result.push_back({u, v}); });
  return result;
}

namespace {

/// SplitMix64's finalizer as a running fold: mixes each word into the
/// accumulator with full avalanche, so offset/adjacency permutations
/// land on different fingerprints.
std::uint64_t mix_word(std::uint64_t h, std::uint64_t word) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + word;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t Graph::fingerprint() const {
  std::uint64_t h = mix_word(0x64736e6447726168ULL,  // "dsndGrah"
                             static_cast<std::uint64_t>(num_vertices()));
  h = mix_word(h, static_cast<std::uint64_t>(num_edges()));
  for (const std::int64_t offset : offsets_) {
    h = mix_word(h, static_cast<std::uint64_t>(offset));
  }
  for (const VertexId v : adjacency_) {
    h = mix_word(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

void Graph::check_vertex(VertexId v) const {
  DSND_REQUIRE(v >= 0 && v < num_vertices(), "vertex id out of range");
}

GraphBuilder::GraphBuilder(VertexId n) : n_(n) {
  DSND_REQUIRE(n >= 0, "vertex count must be nonnegative");
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  DSND_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
               "edge endpoint out of range");
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v});
}

Graph GraphBuilder::build() && {
  return Graph::from_edges(n_, std::move(edges_), /*normalize=*/true);
}

}  // namespace dsnd
