#include "graph/properties.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "graph/traversal.hpp"

namespace dsnd {

VertexId max_degree(const Graph& g) {
  VertexId result = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    result = std::max(result, g.degree(v));
  }
  return result;
}

double average_degree(const Graph& g) {
  if (g.num_vertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_vertices());
}

bool is_bipartite(const Graph& g) {
  std::vector<std::int8_t> side(static_cast<std::size_t>(g.num_vertices()),
                                -1);
  std::queue<VertexId> frontier;
  for (VertexId start = 0; start < g.num_vertices(); ++start) {
    if (side[static_cast<std::size_t>(start)] != -1) continue;
    side[static_cast<std::size_t>(start)] = 0;
    frontier.push(start);
    while (!frontier.empty()) {
      const VertexId u = frontier.front();
      frontier.pop();
      for (VertexId w : g.neighbors(u)) {
        if (side[static_cast<std::size_t>(w)] == -1) {
          side[static_cast<std::size_t>(w)] =
              static_cast<std::int8_t>(1 - side[static_cast<std::size_t>(u)]);
          frontier.push(w);
        } else if (side[static_cast<std::size_t>(w)] ==
                   side[static_cast<std::size_t>(u)]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::int64_t triangle_count(const Graph& g) {
  std::int64_t count = 0;
  g.for_each_edge([&](VertexId u, VertexId v) {
    // Count common neighbors w > v so each triangle is counted once via its
    // lexicographically smallest edge.
    for (VertexId w : g.neighbors(u)) {
      if (w > v && g.has_edge(v, w)) ++count;
    }
  });
  return count;
}

std::string describe(const Graph& g) {
  std::ostringstream out;
  out << "n=" << g.num_vertices() << " m=" << g.num_edges()
      << " max_deg=" << max_degree(g) << " avg_deg=" << average_degree(g)
      << " components=" << connected_components(g).count;
  return out.str();
}

}  // namespace dsnd
