// BFS-based primitives: distances, components, eccentricity, diameter.
// These are both algorithm building blocks (the centralized reference
// implementations) and the ground truth for the decomposition validators.
//
// The filtered variant (bfs_distances_filtered) is the workhorse of the
// carving algorithms: each phase runs on the *surviving* graph G_t, which
// is represented as an alive-mask over the original graph rather than a
// rebuilt subgraph, so a phase costs O(n + m) with no copying. The
// unfiltered helpers back the validators (validation.hpp measures strong
// diameter by BFS inside induced subgraphs) and the graph-power
// construction (power.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

/// Distance marker for unreachable vertices.
inline constexpr std::int32_t kUnreachable = -1;

/// Single-source BFS distances; kUnreachable where not connected.
std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source);

/// BFS distances from `source` in the subgraph induced by the vertices for
/// which `alive[v]` is true. `alive[source]` must hold.
std::vector<std::int32_t> bfs_distances_filtered(
    const Graph& g, VertexId source, const std::vector<char>& alive);

/// Multi-source BFS: distance to the nearest source (all sources at 0).
std::vector<std::int32_t> multi_source_bfs(const Graph& g,
                                           std::span<const VertexId> sources);

/// One shortest path from u to v (inclusive); empty if disconnected.
std::vector<VertexId> shortest_path(const Graph& g, VertexId u, VertexId v);

struct Components {
  std::vector<std::int32_t> component_of;  // size n
  std::int32_t count = 0;

  /// Member lists, indexed by component id.
  std::vector<std::vector<VertexId>> groups() const;
};

/// Connected components by BFS sweep.
Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Largest BFS distance from v to any reachable vertex.
std::int32_t eccentricity(const Graph& g, VertexId v);

/// Exact diameter of the largest component via all-source BFS. Intended
/// for validation on small/medium graphs (O(n*m)).
std::int32_t exact_diameter(const Graph& g);

/// Lower bound on the diameter from a double BFS sweep (exact on trees).
std::int32_t two_sweep_diameter_lower_bound(const Graph& g);

/// All-pairs distances via repeated BFS; O(n^2) memory — tests only.
std::vector<std::vector<std::int32_t>> all_pairs_distances(const Graph& g);

}  // namespace dsnd
