// Induced subgraphs with an explicit index mapping back to the parent
// graph. Used by the validators (strong diameter is defined on induced
// subgraphs) and by the local solvers in apps/.
//
// The sub-vertices are renumbered to a compact 0..k-1 range so the
// resulting Graph works with every algorithm in the library unchanged;
// to_parent restores original ids when results are written back (the
// decomposition_solver pipeline extracts each cluster, solves locally on
// the compact graph, then maps the solution through to_parent).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

struct InducedSubgraph {
  Graph graph;                       // vertices renumbered 0..k-1
  std::vector<VertexId> to_parent;   // sub id -> parent id (sorted)

  VertexId parent_of(VertexId sub) const { return to_parent.at(
      static_cast<std::size_t>(sub)); }
};

/// Subgraph induced by `vertices` (duplicates rejected).
InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const VertexId> vertices);

}  // namespace dsnd
