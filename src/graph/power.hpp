// Graph powers: G^t connects u != v iff d_G(u, v) <= t. Needed by the
// neighborhood-cover construction (decomposition/covers.hpp), which runs
// the decomposition on G^{2W+1}: same-colored clusters of G^{2W+1} are
// more than 2W+1 apart in G, so expanding each by W hops keeps them
// disjoint while swallowing every ball B(v, W) — the cover property.
// The power graph is materialized explicitly (not queried lazily)
// because the carving algorithms want adjacency lists.
#pragma once

#include "graph/graph.hpp"

namespace dsnd {

/// Builds G^t by a depth-limited BFS from every vertex; O(n * m) for
/// small t, O(n^2) memory in the worst case — intended for the
/// simulation scales of this library.
Graph graph_power(const Graph& g, std::int32_t t);

}  // namespace dsnd
