// Graph family generators used by tests, examples, and the experiment
// harnesses. The paper's guarantees are distribution-free, so the suite
// spans sparse/dense random graphs, bounded-degree lattices, trees,
// expanders (random regular), small-world graphs, and adversarial shapes
// (barbell, ring of cliques) that stress cluster carving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

// --- Deterministic families ---------------------------------------------

/// Path on n vertices: 0-1-2-...-(n-1).
Graph make_path(VertexId n);

/// Cycle on n >= 3 vertices.
Graph make_cycle(VertexId n);

/// rows x cols grid; vertex (r, c) has index r*cols + c.
Graph make_grid2d(VertexId rows, VertexId cols);

/// 2D torus (grid with wraparound); rows, cols >= 3.
Graph make_torus2d(VertexId rows, VertexId cols);

/// x*y*z lattice.
Graph make_grid3d(VertexId x, VertexId y, VertexId z);

/// Complete graph K_n.
Graph make_complete(VertexId n);

/// Star with one hub (vertex 0) and n-1 leaves.
Graph make_star(VertexId n);

/// Complete bipartite graph K_{a,b}; the first a vertices form one side.
Graph make_complete_bipartite(VertexId a, VertexId b);

/// Balanced tree with the given branching factor and height (root = 0).
Graph make_balanced_tree(VertexId branching, VertexId height);

/// Hypercube on 2^dim vertices; vertices adjacent iff ids differ in 1 bit.
Graph make_hypercube(int dim);

/// num_cliques cliques of clique_size vertices arranged in a ring, with one
/// edge between consecutive cliques. Stresses the "two scales" case: tiny
/// intra-cluster distances, large inter-cluster distances.
Graph make_ring_of_cliques(VertexId num_cliques, VertexId clique_size);

/// Two cliques of size clique_size joined by a path of path_len edges.
Graph make_barbell(VertexId clique_size, VertexId path_len);

/// Clique of clique_size with a path of path_len hanging off it.
Graph make_lollipop(VertexId clique_size, VertexId path_len);

// --- Random families ------------------------------------------------------

/// Erdős–Rényi G(n, p): each pair independently an edge with probability p.
Graph make_gnp(VertexId n, double p, std::uint64_t seed);

/// Erdős–Rényi G(n, m): m distinct edges chosen uniformly.
Graph make_gnm(VertexId n, std::int64_t m, std::uint64_t seed);

/// Uniform random labelled tree (Prüfer-free attachment construction:
/// vertex i attaches to a uniform vertex in [0, i)).
Graph make_random_tree(VertexId n, std::uint64_t seed);

/// Random d-regular graph via the pairing model (retry until simple).
/// Requires n*d even and d < n.
Graph make_random_regular(VertexId n, VertexId d, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta.
Graph make_watts_strogatz(VertexId n, VertexId k, double beta,
                          std::uint64_t seed);

/// Barabási–Albert preferential attachment; each new vertex attaches m
/// edges. Requires m >= 1 and n > m.
Graph make_barabasi_albert(VertexId n, VertexId m, std::uint64_t seed);

/// Random geometric graph: n points uniform in the unit square, an edge
/// whenever two points lie within euclidean distance radius (0, 1].
/// Grid-bucketed construction (cells of side >= radius, candidates from
/// the 3x3 block): expected O(n + m) work, so million-vertex instances
/// are cheap. Expected average degree ~ n * pi * radius^2.
Graph make_rgg(VertexId n, double radius, std::uint64_t seed);

// --- Named registry --------------------------------------------------------

/// A named generator producing a graph of roughly n vertices; used by the
/// parameterized tests and the experiment harnesses to sweep families.
struct GraphFamily {
  std::string name;
  Graph (*make)(VertexId n, std::uint64_t seed);
};

/// The standard sweep: path, cycle, grid, tree, random tree, gnp-sparse,
/// gnp-dense, random-regular, hypercube, ring-of-cliques, small-world,
/// rgg.
const std::vector<GraphFamily>& standard_families();

/// Look up a family by name; throws std::invalid_argument if unknown.
const GraphFamily& family_by_name(const std::string& name);

}  // namespace dsnd
