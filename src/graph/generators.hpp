// Graph family generators used by tests, examples, and the experiment
// harnesses. The paper's guarantees are distribution-free, so the suite
// spans sparse/dense random graphs, bounded-degree lattices, trees,
// expanders (random regular), small-world graphs, and adversarial shapes
// (barbell, ring of cliques) that stress cluster carving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dsnd {

// --- Deterministic families ---------------------------------------------

// Chunk-parallel generators (make_cycle, make_gnp, make_rgg) take a
// `threads` argument (default 1; 0 = hardware concurrency) and build the
// CSR directly via Graph::from_csr — no edge-list sort. Randomness is
// stream-split KaGen-style: every unit of work (a G(n,p) row, an RGG
// point) draws from its own stream_seed-derived generator, so the output
// is a function of (parameters, seed) alone — bit-identical for every
// thread/chunk count (asserted by tests/test_generators.cpp).

/// Path on n vertices: 0-1-2-...-(n-1).
Graph make_path(VertexId n);

/// Cycle on n >= 3 vertices. Chunk-parallel analytic CSR construction:
/// no edge list is ever materialized, so 10M-vertex rings are cheap.
Graph make_cycle(VertexId n, unsigned threads = 1);

/// rows x cols grid; vertex (r, c) has index r*cols + c.
Graph make_grid2d(VertexId rows, VertexId cols);

/// 2D torus (grid with wraparound); rows, cols >= 3.
Graph make_torus2d(VertexId rows, VertexId cols);

/// x*y*z lattice.
Graph make_grid3d(VertexId x, VertexId y, VertexId z);

/// Complete graph K_n.
Graph make_complete(VertexId n);

/// Star with one hub (vertex 0) and n-1 leaves.
Graph make_star(VertexId n);

/// Complete bipartite graph K_{a,b}; the first a vertices form one side.
Graph make_complete_bipartite(VertexId a, VertexId b);

/// Balanced tree with the given branching factor and height (root = 0).
Graph make_balanced_tree(VertexId branching, VertexId height);

/// Hypercube on 2^dim vertices; vertices adjacent iff ids differ in 1 bit.
Graph make_hypercube(int dim);

/// num_cliques cliques of clique_size vertices arranged in a ring, with one
/// edge between consecutive cliques. Stresses the "two scales" case: tiny
/// intra-cluster distances, large inter-cluster distances.
Graph make_ring_of_cliques(VertexId num_cliques, VertexId clique_size);

/// Two cliques of size clique_size joined by a path of path_len edges.
Graph make_barbell(VertexId clique_size, VertexId path_len);

/// Clique of clique_size with a path of path_len hanging off it.
Graph make_lollipop(VertexId clique_size, VertexId path_len);

// --- Random families ------------------------------------------------------

/// Erdős–Rényi G(n, p): each pair independently an edge with probability p.
/// Stream splitting: row v's lower neighbors {w < v} are skip-sampled
/// (Batagelj–Brandes geometric jumps) from the row's own stream
/// stream_seed(seed, tag, v), so rows can be generated in parallel chunks
/// and the graph never depends on the chunking. The CSR is assembled with
/// a counting scatter whose row-major order leaves every row sorted —
/// total work O(n + m), no comparison sort.
Graph make_gnp(VertexId n, double p, std::uint64_t seed,
               unsigned threads = 1);

/// Erdős–Rényi G(n, m): m distinct edges chosen uniformly.
Graph make_gnm(VertexId n, std::int64_t m, std::uint64_t seed);

/// Uniform random labelled tree (Prüfer-free attachment construction:
/// vertex i attaches to a uniform vertex in [0, i)).
Graph make_random_tree(VertexId n, std::uint64_t seed);

/// Random d-regular graph via the pairing model (retry until simple).
/// Requires n*d even and d < n.
Graph make_random_regular(VertexId n, VertexId d, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta.
Graph make_watts_strogatz(VertexId n, VertexId k, double beta,
                          std::uint64_t seed);

/// Barabási–Albert preferential attachment; each new vertex attaches m
/// edges (fewer after self-loop/duplicate dedup, as in the standard
/// simple-graph reading, except that a vertex's first attachment falls
/// back deterministically to its predecessor on a self-draw — so every
/// vertex keeps an edge to an earlier one and the graph is always
/// connected, like the classic sequential construction). Requires
/// m >= 1 and n > m.
/// Batagelj–Brandes endpoint-copying resolved per edge slot from its
/// own stream (Sanders–Schulz), so generation follows the chunk-parallel
/// stream-split contract: bit-identical for every thread/chunk count.
Graph make_barabasi_albert(VertexId n, VertexId m, std::uint64_t seed,
                           unsigned threads = 1);

/// A graph whose vertices carry unit-square coordinates — what the
/// geometric generators return so callers can derive locality layouts
/// (see grid_bucket_layout in graph/relabel.hpp).
struct GeometricGraph {
  Graph graph;
  std::vector<double> x;  // per-vertex coordinates in [0, 1)
  std::vector<double> y;
};

/// Random geometric graph: n points uniform in the unit square, an edge
/// whenever two points lie within euclidean distance radius (0, 1].
/// Grid-bucketed construction (cells of side >= radius, candidates from
/// the 3x3 block): expected O(n + m) work, so million-vertex instances
/// are cheap. Expected average degree ~ n * pi * radius^2.
/// Stream splitting: point i's coordinates come from its own stream
/// stream_seed(seed, tag, i), and edges are enumerated in chunks of
/// points, so generation parallelizes without changing the output.
GeometricGraph make_rgg_geometric(VertexId n, double radius,
                                  std::uint64_t seed, unsigned threads = 1);

/// make_rgg_geometric without the coordinates.
Graph make_rgg(VertexId n, double radius, std::uint64_t seed,
               unsigned threads = 1);

// --- Scale-free families --------------------------------------------------
//
// Both generators below follow the chunk-parallel stream-split contract:
// every unit of work (a hyperbolic point, a Kronecker edge sample) draws
// from its own stream_seed-derived generator and the CSR is assembled via
// Graph::from_csr, so the output is bit-identical for every thread/chunk
// count (pinned by tests/test_scale_free.cpp).

/// A graph whose vertices carry native hyperbolic-disk coordinates —
/// the scale-free analogue of GeometricGraph.
struct HyperbolicGraph {
  Graph graph;
  std::vector<double> radius;  // radial coordinate in [0, disk_radius]
  std::vector<double> angle;   // angular coordinate in [0, 2*pi)
  double disk_radius = 0.0;    // R, the disk (= connection) radius
};

/// Random hyperbolic graph (threshold model, Krioukov et al.): n points
/// in a hyperbolic disk of radius R, radial density ~ sinh(alpha*r) with
/// alpha = (gamma - 1) / 2, uniform angles; an edge whenever the
/// hyperbolic distance is <= R. Degrees follow a power law with exponent
/// `gamma` (> 2) and expected average degree ~ avg_degree (the disk
/// radius is chosen from the Gugelmann–Panagiotou–Peter asymptotics, so
/// the realized mean drifts for small n). KaGen-style annulus bucketing:
/// points are bucketed into unit-width radial bands sorted by angle, and
/// each point scans only the angular window of each band that can
/// possibly reach it — near-linear expected work instead of the naive
/// O(n^2) pair scan. Point i's coordinates come from its own stream
/// (r drawn before theta), so generation is chunk-count invariant.
HyperbolicGraph make_hyperbolic_geometric(VertexId n, double avg_degree,
                                          double gamma, std::uint64_t seed,
                                          unsigned threads = 1);

/// make_hyperbolic_geometric without the coordinates.
Graph make_hyperbolic(VertexId n, double avg_degree, double gamma,
                      std::uint64_t seed, unsigned threads = 1);

/// Stochastic Kronecker graph in the Graph500 parameterization (R-MAT
/// with initiator [[0.57, 0.19], [0.19, 0.05]]): n = 2^scale vertices,
/// edge_factor * n directed edge samples, each placed by `scale`
/// independent quadrant draws. Sample e draws from its own stream, so
/// generation is chunk-count invariant. Self-loops are dropped and
/// parallel samples merged deterministically (the usual Graph500
/// simplification), so the simple-edge count comes out slightly below
/// edge_factor * n. Vertex ids are the natural bit-strings (hubs at low
/// ids) — no Graph500 vertex shuffle, which keeps runs reproducible and
/// lets benches relabel explicitly if they want to defeat id locality.
Graph make_kronecker(int scale, std::int64_t edge_factor,
                     std::uint64_t seed, unsigned threads = 1);

// --- Named registry --------------------------------------------------------

/// A named generator producing a graph of roughly n vertices; used by the
/// parameterized tests and the experiment harnesses to sweep families.
struct GraphFamily {
  std::string name;
  Graph (*make)(VertexId n, std::uint64_t seed);
};

/// The standard sweep: path, cycle, grid, tree, random tree, gnp-sparse,
/// gnp-dense, random-regular, hypercube, ring-of-cliques, small-world,
/// rgg, hyperbolic, kronecker.
const std::vector<GraphFamily>& standard_families();

/// Look up a family by name; throws std::invalid_argument if unknown.
const GraphFamily& family_by_name(const std::string& name);

}  // namespace dsnd
