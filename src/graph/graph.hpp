// Immutable undirected graph in compressed sparse row (CSR) form.
//
// All decomposition algorithms operate on this structure. Graphs are
// simple (no self-loops, no parallel edges) and unweighted, matching the
// paper's model. Vertices are dense integers [0, n); in the distributed
// interpretation vertex i hosts the processor with identity i+1.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dsnd {

using VertexId = std::int32_t;

/// An undirected edge with endpoints in canonical (u < v) order.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  /// The empty graph on zero vertices.
  Graph() = default;

  /// Builds a graph on n vertices from an edge list. Self-loops and
  /// duplicate edges (in either orientation) are rejected unless
  /// normalize is true, in which case they are dropped/merged.
  static Graph from_edges(VertexId n, std::vector<Edge> edges,
                          bool normalize = false);

  /// Adopts a prebuilt CSR verbatim — the O(n + m) path the chunk-parallel
  /// generators use to skip the edge-list sort entirely. offsets must have
  /// n+1 monotone entries ending at adjacency.size(); every row must be
  /// strictly increasing (sorted, no duplicates) with in-range entries and
  /// no self-loops — all of which is checked. The caller guarantees
  /// symmetry (v in row u iff u in row v); that invariant is not re-checked
  /// here because the generators produce both directions from one edge set.
  static Graph from_csr(std::vector<std::int64_t> offsets,
                        std::vector<VertexId> adjacency);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  std::int64_t num_edges() const {
    return offsets_.empty() ? 0 : static_cast<std::int64_t>(adjacency_.size()) / 2;
  }

  VertexId degree(VertexId v) const {
    check_vertex(v);
    return static_cast<VertexId>(offsets_[static_cast<std::size_t>(v) + 1] -
                                 offsets_[static_cast<std::size_t>(v)]);
  }

  /// Neighbors of v in increasing order.
  std::span<const VertexId> neighbors(VertexId v) const {
    check_vertex(v);
    const auto begin = offsets_[static_cast<std::size_t>(v)];
    const auto end = offsets_[static_cast<std::size_t>(v) + 1];
    return {adjacency_.data() + begin, static_cast<std::size_t>(end - begin)};
  }

  /// O(log degree) adjacency test via binary search in the sorted row.
  bool has_edge(VertexId u, VertexId v) const;

  /// All edges in canonical order (u < v), sorted lexicographically.
  std::vector<Edge> edges() const;

  /// The raw CSR arrays (offsets size n+1, adjacency size 2m). Read-only
  /// views for serialization and the standalone graph validator; the
  /// class invariants guarantee they are well-formed.
  std::span<const std::int64_t> csr_offsets() const { return offsets_; }
  std::span<const VertexId> csr_adjacency() const { return adjacency_; }

  /// Cheap structural hash over the CSR: a SplitMix64-style fold of
  /// (n, m, offsets, adjacency) in O(n + m). Two graphs with the same
  /// fingerprint are the same topology for all practical purposes (the
  /// service result cache keys on it; chkgraph and the bench JSON emit
  /// it so records identify their instance). Not cryptographic.
  std::uint64_t fingerprint() const;

  /// Invokes fn(u, v) once per edge with u < v.
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    for (VertexId u = 0; u < num_vertices(); ++u) {
      for (VertexId v : neighbors(u)) {
        if (u < v) fn(u, v);
      }
    }
  }

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  void check_vertex(VertexId v) const;

  std::vector<std::int64_t> offsets_;  // size n+1
  std::vector<VertexId> adjacency_;    // size 2m, rows sorted
};

/// Incremental edge-list builder; deduplicates and drops self-loops at
/// build() time, so generators can add edges without bookkeeping.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId n);

  VertexId num_vertices() const { return n_; }

  /// Records an undirected edge; self-loops are ignored, duplicates merged.
  void add_edge(VertexId u, VertexId v);

  Graph build() &&;

 private:
  VertexId n_;
  std::vector<Edge> edges_;
};

}  // namespace dsnd
