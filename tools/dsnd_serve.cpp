// dsnd_serve — the DecompositionService as a line-oriented daemon.
//
// Reads one command per line from stdin, answers one JSON object per
// line on stdout, and keeps graphs registered and carve contexts warm
// between requests — the process-boundary face of the service layer
// (src/service/). A malformed or failing command answers {"ok":0,...}
// and the daemon keeps serving; it never exits on bad input.
//
//   graph <id> family <name> n <N> [seed <S>]
//       generate a standard-family instance and register it
//   graph <id> file <path>
//       load an edgelist/metis/dimacs file and register it
//   carve <id> theorem <1|2|3> [k <K>] [lambda <L>] [c <C>] [seed <S>]
//         [deliverable decomposition|mis|coloring|spanner|cover]
//         [radius <W>] [backend distributed|centralized]
//       submit one request; repeated identical requests hit the cache
//   stats
//       the service's cache/context-pool/validation accounting
//   quit
//       exit 0 (EOF does the same)
//
// Flags: --threads N (engine workers, default 1), --cache N (result
// cache capacity, default 64), --help.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "decomposition/high_radius.hpp"
#include "decomposition/multistage.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "service/decomposition_service.hpp"

namespace {

using namespace dsnd;

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        // Every remaining control character must be \u-escaped too, or
        // an exception message / file path echoed into an error
        // response breaks the one-JSON-object-per-line protocol.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string hex16(std::uint64_t value) {
  std::ostringstream hex;
  hex << std::hex << value;
  std::string digits = hex.str();
  digits.insert(0, 16 - digits.size(), '0');
  return digits;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

/// The optional `key value` pairs after a command's fixed prefix.
class KeyValues {
 public:
  KeyValues(const std::vector<std::string>& tokens, std::size_t begin) {
    if ((tokens.size() - begin) % 2 != 0) {
      throw std::invalid_argument("expected key/value pairs after command");
    }
    for (std::size_t i = begin; i < tokens.size(); i += 2) {
      pairs_[tokens[i]] = tokens[i + 1];
    }
  }

  std::string get(const std::string& key, const std::string& fallback) {
    auto it = pairs_.find(key);
    if (it == pairs_.end()) return fallback;
    consumed_.push_back(key);
    return it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) {
    auto it = pairs_.find(key);
    if (it == pairs_.end()) return fallback;
    consumed_.push_back(key);
    return std::stoll(it->second);
  }

  double get_double(const std::string& key, double fallback) {
    auto it = pairs_.find(key);
    if (it == pairs_.end()) return fallback;
    consumed_.push_back(key);
    return std::stod(it->second);
  }

  /// Unknown keys are command errors, not silently ignored knobs.
  void require_all_consumed() const {
    for (const auto& [key, value] : pairs_) {
      bool used = false;
      for (const std::string& c : consumed_) used |= c == key;
      if (!used) throw std::invalid_argument("unknown option: " + key);
    }
  }

 private:
  std::unordered_map<std::string, std::string> pairs_;
  std::vector<std::string> consumed_;
};

class Server {
 public:
  Server(unsigned threads, std::size_t cache_capacity) {
    ServiceOptions options;
    options.engine.threads = threads;
    options.cache_capacity = cache_capacity;
    service_.emplace(options);
  }

  /// Handles one command line; returns the one-line JSON response.
  std::string handle(const std::string& line) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) return "";
    try {
      if (tokens[0] == "graph") return handle_graph(tokens);
      if (tokens[0] == "carve") return handle_carve(tokens);
      if (tokens[0] == "stats") return handle_stats();
      throw std::invalid_argument("unknown command: " + tokens[0] +
                                  " (expected graph/carve/stats/quit)");
    } catch (const std::exception& e) {
      return std::string("{\"ok\":0,\"error\":\"") + json_escape(e.what()) +
             "\"}";
    }
  }

 private:
  std::string handle_graph(const std::vector<std::string>& tokens) {
    if (tokens.size() < 4) {
      throw std::invalid_argument(
          "usage: graph <id> family <name> n <N> [seed <S>] | "
          "graph <id> file <path>");
    }
    const std::string& id = tokens[1];
    Graph graph;
    if (tokens[2] == "file") {
      graph = load_graph(tokens[3]);
    } else if (tokens[2] == "family") {
      const std::string family = tokens[3];
      KeyValues kv(tokens, 4);
      const auto n = static_cast<VertexId>(kv.get_int("n", 1000));
      const auto seed = static_cast<std::uint64_t>(kv.get_int("seed", 1));
      kv.require_all_consumed();
      graph = family_by_name(family).make(n, seed);
    } else {
      throw std::invalid_argument("expected 'family' or 'file', got " +
                                  tokens[2]);
    }
    const auto n = graph.num_vertices();
    const auto m = graph.num_edges();
    // The service owns the storage: on re-registration of an id it
    // retires the old graph only once no in-flight request or warm
    // context references it, so `graph <id> ...` is always safe to
    // re-issue. The daemon only remembers the size (schedules are
    // derived from n).
    const std::uint64_t fingerprint =
        service_->register_graph(id, std::move(graph));
    graph_sizes_[id] = n;
    std::ostringstream out;
    out << "{\"ok\":1,\"graph\":\"" << json_escape(id) << "\",\"n\":" << n
        << ",\"m\":" << m << ",\"fingerprint\":\"" << hex16(fingerprint)
        << "\"}";
    return out.str();
  }

  std::string handle_carve(const std::vector<std::string>& tokens) {
    if (tokens.size() < 4 || tokens[2] != "theorem") {
      throw std::invalid_argument(
          "usage: carve <id> theorem <1|2|3> [k K] [lambda L] [c C] "
          "[seed S] [deliverable D] [radius W] [backend B]");
    }
    const std::string& id = tokens[1];
    const auto it = graph_sizes_.find(id);
    if (it == graph_sizes_.end()) {
      throw std::invalid_argument("unknown graph: " + id);
    }
    const VertexId n = it->second;
    const int theorem = std::stoi(tokens[3]);
    KeyValues kv(tokens, 4);

    ServiceRequest request;
    request.graph_id = id;
    if (theorem == 1) {
      request.schedule = theorem1_schedule(
          n, static_cast<std::int32_t>(kv.get_int("k", 0)),
          kv.get_double("c", 4.0));
    } else if (theorem == 2) {
      request.schedule = theorem2_schedule(
          n, static_cast<std::int32_t>(kv.get_int("k", 0)),
          kv.get_double("c", 6.0));
    } else if (theorem == 3) {
      request.schedule = theorem3_schedule(
          n, static_cast<std::int32_t>(kv.get_int("lambda", 3)),
          kv.get_double("c", 4.0));
    } else {
      throw std::invalid_argument("theorem must be 1, 2, or 3");
    }
    request.seed = static_cast<std::uint64_t>(kv.get_int("seed", 1));
    request.deliverable =
        deliverable_by_name(kv.get("deliverable", "decomposition"));
    request.cover_radius =
        static_cast<std::int32_t>(kv.get_int("radius", 2));
    const std::string backend = kv.get("backend", "distributed");
    if (backend == "centralized") {
      request.backend = ServiceBackend::kCentralized;
    } else if (backend != "distributed") {
      throw std::invalid_argument("unknown backend: " + backend);
    }
    kv.require_all_consumed();

    const ServiceResponse response = service_->submit(request);
    const ServiceResult& result = *response.result;
    const Clustering& clustering = result.run.run.clustering();
    std::ostringstream out;
    out << "{\"ok\":" << (response.valid ? 1 : 0) << ",\"graph\":\""
        << json_escape(id) << "\",\"schedule\":\""
        << json_escape(request.schedule.name)
        << "\",\"seed\":" << request.seed << ",\"deliverable\":\""
        << deliverable_name(request.deliverable) << "\",\"status\":\""
        << json_escape(response.status)
        << "\",\"cache_hit\":" << (response.cache_hit ? 1 : 0)
        << ",\"wall_ms\":" << response.wall_ms
        << ",\"clusters\":" << clustering.num_clusters()
        << ",\"colors\":" << clustering.num_colors()
        << ",\"rounds\":" << result.run.sim.rounds
        << ",\"messages\":" << result.run.sim.messages;
    if (result.mis) {
      std::int64_t size = 0;
      for (const char bit : result.mis->in_mis) size += bit != 0;
      out << ",\"mis_size\":" << size;
    }
    if (result.coloring) {
      out << ",\"colors_used\":" << result.coloring->colors_used;
    }
    if (result.spanner) {
      out << ",\"spanner_edges\":" << result.spanner->edges
          << ",\"stretch\":" << result.spanner->stretch;
    }
    if (result.cover) {
      out << ",\"cover_clusters\":" << result.cover->clusters.size()
          << ",\"cover_colors\":" << result.cover->num_colors
          << ",\"cover_radius\":" << result.cover->radius;
    }
    out << "}";
    return out.str();
  }

  std::string handle_stats() const {
    const ServiceStats stats = service_->stats();
    std::ostringstream out;
    out << "{\"ok\":1,\"requests\":" << stats.requests
        << ",\"cache_hits\":" << stats.cache_hits
        << ",\"cache_misses\":" << stats.cache_misses
        << ",\"cache_evictions\":" << stats.cache_evictions
        << ",\"cache_entries\":" << stats.cache_entries
        << ",\"contexts_created\":" << stats.contexts_created
        << ",\"warm_acquires\":" << stats.warm_acquires
        << ",\"invalid_responses\":" << stats.invalid_responses
        << ",\"graphs\":" << graph_sizes_.size() << "}";
    return out.str();
  }

  std::unordered_map<std::string, VertexId> graph_sizes_;
  std::optional<DecompositionService> service_;
};

void print_usage(std::ostream& out) {
  out << "usage: dsnd_serve [--threads N] [--cache N]\n"
         "line-oriented decomposition service on stdin/stdout; "
         "commands:\n"
         "  graph <id> family <name> n <N> [seed <S>]\n"
         "  graph <id> file <path>\n"
         "  carve <id> theorem <1|2|3> [k K] [lambda L] [c C] [seed S]\n"
         "        [deliverable decomposition|mis|coloring|spanner|cover]\n"
         "        [radius W] [backend distributed|centralized]\n"
         "  stats\n"
         "  quit\n";
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 1;
  std::size_t cache = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--cache" && i + 1 < argc) {
      cache = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::cerr << "dsnd_serve: unknown argument '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }

  Server server(threads, cache);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (tokenize(line) == std::vector<std::string>{"quit"}) break;
    const std::string response = server.handle(line);
    if (!response.empty()) std::cout << response << std::endl;
  }
  return 0;
}
