// chkgraph — standalone graph-file validator (KaGen chkgraph-style).
//
//   chkgraph [--format edgelist|metis|dimacs] <path>
//
// Parses the file LENIENTLY (unlike the strict library readers in
// graph/io.hpp, which throw on the first problem): structurally readable
// input is always brought into raw CSR form, out-of-range endpoints and
// self-loops included, and the full issue list comes from the library
// validator (graph/validator.hpp) — symmetry, self-loops, duplicates,
// CSR well-formedness — followed by the degree-distribution summary.
// Exit status: 0 = valid, 1 = issues found, 2 = unreadable/unparseable.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/validator.hpp"

namespace {

using dsnd::VertexId;

struct RawCsr {
  std::vector<std::int64_t> offsets;
  std::vector<VertexId> adjacency;
};

[[noreturn]] void parse_fail(const std::string& message) {
  std::cerr << "chkgraph: " << message << '\n';
  std::exit(2);
}

/// Scatters parsed (u, v) pairs into a CSR keeping every value the file
/// contained: entries whose ROW index is out of range cannot be stored
/// and abort the parse, but out-of-range VALUES (and self-loops and
/// duplicates) are preserved for the validator to flag.
RawCsr csr_from_pairs(std::int64_t n,
                      const std::vector<std::pair<std::int64_t,
                                                  std::int64_t>>& pairs) {
  for (const auto& [u, v] : pairs) {
    if (u < 0 || u >= n) {
      parse_fail("edge endpoint " + std::to_string(u) +
                 " cannot index a row of a " + std::to_string(n) +
                 "-vertex graph");
    }
  }
  RawCsr csr;
  csr.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : pairs) {
    ++csr.offsets[static_cast<std::size_t>(u) + 1];
    if (v >= 0 && v < n) ++csr.offsets[static_cast<std::size_t>(v) + 1];
  }
  for (std::int64_t i = 0; i < n; ++i) {
    csr.offsets[static_cast<std::size_t>(i) + 1] +=
        csr.offsets[static_cast<std::size_t>(i)];
  }
  csr.adjacency.resize(
      static_cast<std::size_t>(csr.offsets[static_cast<std::size_t>(n)]));
  std::vector<std::int64_t> fill(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const auto& [u, v] : pairs) {
    csr.adjacency[static_cast<std::size_t>(
        fill[static_cast<std::size_t>(u)]++)] = static_cast<VertexId>(v);
    if (v >= 0 && v < n) {
      csr.adjacency[static_cast<std::size_t>(
          fill[static_cast<std::size_t>(v)]++)] = static_cast<VertexId>(u);
    }
  }
  // Edge-list files carry no row order, so sort rows; duplicates,
  // self-loops, and asymmetry survive sorting for the validator.
  for (std::int64_t v = 0; v < n; ++v) {
    std::sort(csr.adjacency.begin() +
                  static_cast<std::ptrdiff_t>(
                      csr.offsets[static_cast<std::size_t>(v)]),
              csr.adjacency.begin() +
                  static_cast<std::ptrdiff_t>(
                      csr.offsets[static_cast<std::size_t>(v) + 1]));
  }
  return csr;
}

RawCsr parse_edge_list(std::istream& in) {
  std::int64_t n = 0;
  std::int64_t m = 0;
  if (!(in >> n >> m) || n < 0 || m < 0) {
    parse_fail("missing or malformed \"n m\" edge-list header");
  }
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  pairs.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t u = 0;
    std::int64_t v = 0;
    if (!(in >> u >> v)) {
      parse_fail("truncated edge section: edge " + std::to_string(i + 1) +
                 " of " + std::to_string(m) + " missing or malformed");
    }
    pairs.emplace_back(u, v);
  }
  return csr_from_pairs(n, pairs);
}

RawCsr parse_dimacs(std::istream& in) {
  std::int64_t n = 0;
  std::int64_t m = 0;
  bool have_header = false;
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'p') {
      std::string format;
      if (!(fields >> format >> n >> m) || n < 0) {
        parse_fail("line " + std::to_string(line_number) +
                   ": malformed problem line");
      }
      have_header = true;
    } else if (tag == 'e') {
      std::int64_t u = 0;
      std::int64_t v = 0;
      if (!have_header || !(fields >> u >> v)) {
        parse_fail("line " + std::to_string(line_number) +
                   ": malformed edge line");
      }
      pairs.emplace_back(u - 1, v - 1);
    } else {
      parse_fail("line " + std::to_string(line_number) +
                 ": unknown line tag");
    }
  }
  if (!have_header) parse_fail("missing dimacs problem line");
  if (static_cast<std::int64_t>(pairs.size()) != m) {
    std::cerr << "chkgraph: note: header promises " << m
              << " edges, file has " << pairs.size() << '\n';
  }
  return csr_from_pairs(n, pairs);
}

RawCsr parse_metis(std::istream& in) {
  std::string line;
  std::int64_t line_number = 0;
  auto next_content_line = [&](const std::string& expect) {
    while (std::getline(in, line)) {
      ++line_number;
      if (!line.empty() && line[0] == '%') continue;
      return;
    }
    parse_fail("truncated file: " + expect + " missing");
  };
  next_content_line("header");
  std::int64_t n = 0;
  std::int64_t m = 0;
  {
    std::istringstream header(line);
    if (!(header >> n >> m) || n < 0 || m < 0) {
      parse_fail("line " + std::to_string(line_number) +
                 ": malformed \"n m\" metis header");
    }
  }
  RawCsr csr;
  csr.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  csr.adjacency.reserve(static_cast<std::size_t>(2 * m));
  for (std::int64_t v = 0; v < n; ++v) {
    next_content_line("adjacency row for vertex " + std::to_string(v));
    std::istringstream row(line);
    std::int64_t neighbor = 0;
    while (row >> neighbor) {
      // 1-indexed in the file; keep out-of-range values for the checker.
      csr.adjacency.push_back(static_cast<VertexId>(neighbor - 1));
    }
    if (!row.eof()) {
      parse_fail("line " + std::to_string(line_number) +
                 ": malformed adjacency entry");
    }
    csr.offsets[static_cast<std::size_t>(v) + 1] =
        static_cast<std::int64_t>(csr.adjacency.size());
  }
  if (static_cast<std::int64_t>(csr.adjacency.size()) != 2 * m) {
    std::cerr << "chkgraph: note: header promises " << 2 * m
              << " adjacency entries, file has " << csr.adjacency.size()
              << '\n';
  }
  // METIS rows carry no required order either; sort them like the
  // edge-list path so only real corruption reaches the issue list.
  for (std::int64_t v = 0; v < n; ++v) {
    std::sort(csr.adjacency.begin() +
                  static_cast<std::ptrdiff_t>(
                      csr.offsets[static_cast<std::size_t>(v)]),
              csr.adjacency.begin() +
                  static_cast<std::ptrdiff_t>(
                      csr.offsets[static_cast<std::size_t>(v) + 1]));
  }
  return csr;
}

std::string format_from_path(const std::string& path) {
  auto ends_with = [&path](const char* ext) {
    const std::size_t len = std::strlen(ext);
    return path.size() >= len &&
           path.compare(path.size() - len, len, ext) == 0;
  };
  if (ends_with(".graph") || ends_with(".metis")) return "metis";
  if (ends_with(".dimacs") || ends_with(".col")) return "dimacs";
  return "edgelist";
}

}  // namespace

int main(int argc, char** argv) {
  std::string format;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: chkgraph [--format edgelist|metis|dimacs] "
                   "<path>\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      parse_fail("unknown flag " + arg);
    } else {
      path = arg;
    }
  }
  if (path.empty()) parse_fail("usage: chkgraph [--format ...] <path>");
  if (format.empty()) format = format_from_path(path);

  std::ifstream in(path);
  if (!in) parse_fail("cannot open " + path);
  RawCsr csr;
  if (format == "metis") {
    csr = parse_metis(in);
  } else if (format == "dimacs") {
    csr = parse_dimacs(in);
  } else if (format == "edgelist") {
    csr = parse_edge_list(in);
  } else {
    parse_fail("unknown format " + format +
               " (expected edgelist, metis, or dimacs)");
  }

  const dsnd::GraphCheckReport report =
      dsnd::check_csr(csr.offsets, csr.adjacency);
  std::cout << path << ": " << dsnd::format_report(report);
  if (report.ok()) {
    // Valid CSR only: Graph::from_csr asserts the invariants the
    // validator just confirmed. The fingerprint is what the service
    // layer keys its result cache on, so callers can predict cache
    // behavior from the file alone.
    const dsnd::Graph g = dsnd::Graph::from_csr(std::move(csr.offsets),
                                                std::move(csr.adjacency));
    std::ostringstream hex;
    hex << std::hex << g.fingerprint();
    std::string digits = hex.str();
    digits.insert(0, 16 - digits.size(), '0');
    std::cout << "fingerprint: " << digits << '\n';
  }
  return report.ok() ? 0 : 1;
}
