// E6 — the imported technique: Miller–Peng–Xu padded partitions. For a
// beta sweep the table reports the cut-edge fraction (theory: O(beta))
// and the largest strong cluster diameter (theory: O(log n / beta)
// w.h.p.), plus cluster connectivity, which must be 100%.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/mpx.hpp"
#include "decomposition/padding.hpp"
#include "support/stats.hpp"

int main() {
  using namespace dsnd;
  bench::print_header(
      "E6 / MPX13 padded partition",
      "claim: cut fraction O(beta); strong diameter O(log n / beta); "
      "clusters connected");

  const int seeds = 6 * bench::scale();
  Table table({"family", "n", "beta", "cut_frac", "cut/beta", "D_max",
               "D*beta/ln(n)", "pad>=2", "1-2beta", "connected"});
  for (const std::string& family : bench::default_families()) {
    for (const VertexId n : {1024, 4096}) {
      for (const double beta : {0.05, 0.1, 0.2, 0.4, 0.8}) {
        Summary cut, diameter, pad2;
        bool all_connected = true;
        for (int s = 0; s < seeds; ++s) {
          const Graph g = family_by_name(family).make(
              n, static_cast<std::uint64_t>(s) + 1);
          const MpxResult result = mpx_partition(
              g, {.beta = beta,
                  .seed = static_cast<std::uint64_t>(s) * 2654435761 + 13});
          cut.add(result.cut_fraction);
          const DecompositionReport report = validate_decomposition(
              g, result.clustering, /*compute_weak=*/false);
          if (!report.all_clusters_connected) all_connected = false;
          if (report.max_strong_diameter != kInfiniteDiameter) {
            diameter.add(report.max_strong_diameter);
          }
          // Padding survival at t = 2: the MPX "padded" property
          // Pr[pad(v) >= t] >= 1 - O(beta * t).
          const PaddingReport padding =
              analyze_padding(g, result.clustering);
          pad2.add(padding.survival.size() >= 2 ? padding.survival[1]
                                                : 1.0);
        }
        const double ln = std::log(static_cast<double>(n));
        table.row()
            .cell(family)
            .cell(static_cast<std::int64_t>(n))
            .cell(beta, 2)
            .cell(cut.mean(), 3)
            .cell(cut.mean() / beta, 2)
            .cell(diameter.max(), 0)
            .cell(diameter.max() * beta / ln, 2)
            .cell(pad2.mean(), 2)
            .cell(std::max(0.0, 1.0 - 2.0 * beta), 2)
            .cell(all_connected ? "100%" : "VIOLATED");
      }
    }
  }
  table.print(std::cout);
  std::cout << "\ncut/beta and D*beta/ln(n) should stay bounded by small "
               "constants across the sweep, and the measured fraction of "
               "vertices with padding >= 2 should sit near or above the "
               "1 - O(beta t) prediction — the three MPX claims.\n";
  return 0;
}
