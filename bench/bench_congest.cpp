// E8 — the CONGEST claim at the end of Section 2: the protocol works
// with O(1)-word messages because each round a vertex forwards only its
// current top-2 shifted values. The table reports, for the actual
// message-passing execution on the simulator: the maximum message width
// observed (words), total messages/words, messages per round, and the
// equivalence check against the centralized reference.
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/elkin_neiman_distributed.hpp"
#include "decomposition/linial_saks_distributed.hpp"
#include "support/stats.hpp"

namespace {

using namespace dsnd;

/// Second table: message volume of the shifted-exponential protocol
/// (top-2 per vertex) vs the min-id Linial–Saks protocol (Pareto
/// frontier, up to k entries per vertex) — one concrete CONGEST
/// advantage of the paper's technique. Also exercises the Theorem 2/3
/// schedules end-to-end as distributed protocols.
void protocol_comparison(int seeds) {
  bench::print_header(
      "E8b / protocol message volume: Elkin–Neiman vs Linial–Saks",
      "EN forwards <= 2 entries per vertex per round; LS93's min-id rule "
      "needs a Pareto frontier of up to k entries");
  Table table({"protocol", "n", "k", "rounds", "words", "words/round",
               "max_msg_words"});
  const VertexId n = 256;
  const std::int32_t k = 5;
  Summary en_rounds, en_words, ls_rounds, ls_words;
  std::size_t en_width = 0, ls_width = 0;
  for (int s = 0; s < seeds; ++s) {
    const Graph g = make_gnp(n, 8.0 / (n - 1),
                             static_cast<std::uint64_t>(s) + 1);
    ElkinNeimanOptions en;
    en.k = k;
    en.seed = static_cast<std::uint64_t>(s) * 961748941 + 3;
    const DistributedRun en_run = elkin_neiman_distributed(g, en);
    en_rounds.add(static_cast<double>(en_run.sim.rounds));
    en_words.add(static_cast<double>(en_run.sim.words));
    en_width = std::max(en_width, en_run.sim.max_message_words);

    LinialSaksOptions ls;
    ls.k = k;
    ls.seed = en.seed;
    const DistributedLsRun ls_run = linial_saks_distributed(g, ls);
    ls_rounds.add(static_cast<double>(ls_run.sim.rounds));
    ls_words.add(static_cast<double>(ls_run.sim.words));
    ls_width = std::max(ls_width, ls_run.sim.max_message_words);
  }
  table.row()
      .cell("Elkin–Neiman")
      .cell(static_cast<std::int64_t>(n))
      .cell(k)
      .cell(en_rounds.mean(), 0)
      .cell(en_words.mean(), 0)
      .cell(en_words.mean() / en_rounds.mean(), 0)
      .cell(static_cast<std::uint64_t>(en_width));
  table.row()
      .cell("Linial–Saks")
      .cell(static_cast<std::int64_t>(n))
      .cell(k)
      .cell(ls_rounds.mean(), 0)
      .cell(ls_words.mean(), 0)
      .cell(ls_words.mean() / ls_rounds.mean(), 0)
      .cell(static_cast<std::uint64_t>(ls_width));
  table.print(std::cout);

  bench::print_header(
      "E8c / Theorems 2 and 3 as distributed protocols",
      "the same CONGEST protocol under the multistage and high-radius "
      "schedules, cross-checked against the centralized references");
  Table t23({"schedule", "n", "phases", "sim_rounds", "max_msg_words",
             "identical"});
  {
    const Graph g = make_gnp(192, 6.0 / 191.0, 5);
    MultistageOptions t2;
    t2.k = 4;
    t2.seed = 77;
    const DistributedRun dist = multistage_distributed(g, t2);
    const DecompositionRun central = multistage_decomposition(g, t2);
    bool identical = true;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (dist.run.clustering().cluster_of(v) !=
          central.clustering().cluster_of(v)) {
        identical = false;
      }
    }
    t23.row()
        .cell("Theorem 2 (multistage)")
        .cell(static_cast<std::int64_t>(g.num_vertices()))
        .cell(dist.run.carve.phases_used)
        .cell(static_cast<std::uint64_t>(dist.sim.rounds))
        .cell(static_cast<std::uint64_t>(dist.sim.max_message_words))
        .cell(identical ? "yes" : "NO");
  }
  {
    const Graph g = make_gnp(192, 6.0 / 191.0, 5);
    HighRadiusOptions t3;
    t3.lambda = 3;
    t3.seed = 77;
    const DistributedRun dist = high_radius_distributed(g, t3);
    const DecompositionRun central = high_radius_decomposition(g, t3);
    bool identical = true;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (dist.run.clustering().cluster_of(v) !=
          central.clustering().cluster_of(v)) {
        identical = false;
      }
    }
    t23.row()
        .cell("Theorem 3 (high radius)")
        .cell(static_cast<std::int64_t>(g.num_vertices()))
        .cell(dist.run.carve.phases_used)
        .cell(static_cast<std::uint64_t>(dist.sim.rounds))
        .cell(static_cast<std::uint64_t>(dist.sim.max_message_words))
        .cell(identical ? "yes" : "NO");
  }
  t23.print(std::cout);
}

/// Third table: wall-clock of the full distributed run at n = 100k on
/// three families — the arena engine's headline numbers (tracked over
/// time in BENCH_engine.json; regenerate with `--json`). The ring is the
/// active-scheduling showcase: in most rounds almost every vertex is
/// quiet, so activations stay far below n * rounds.
void engine_wall_clock(bench::JsonWriter& json) {
  bench::print_header(
      "E8d / arena engine wall-clock at n = 100k",
      "wall time of the full distributed Theorem 1 run (graph "
      "construction excluded); activations = on_round calls the "
      "active-vertex scheduler actually made (vs n * rounds without it)");
  Table table({"schedule", "family", "n", "m", "threads", "rounds",
               "messages", "words", "activations", "wall_ms", "validate_ms",
               "valid"});
  const VertexId n = 100000;
  const bench::EngineCaseOptions t1{1, 0, /*validate=*/true};
  bench::engine_scaling_case("gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1),
                             table, json, t1);
  bench::engine_scaling_case("ring", make_cycle(n), table, json, t1);
  bench::engine_scaling_case("rgg-deg8", family_by_name("rgg").make(n, 1),
                             table, json, t1);
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsnd;
  bench::JsonWriter json = bench::JsonWriter::from_args(argc, argv);
  bench::print_header(
      "E8 / CONGEST accounting of the distributed protocol",
      "claim: every message is O(1) words (here <= 4: tag, center, "
      "radius, distance); outputs identical to the centralized "
      "reference");

  const int seeds = 3 * bench::scale();
  Table table({"family", "n", "k", "rounds", "messages", "words",
               "max_msg_words", "msgs/round/edge", "identical"});
  for (const std::string& family : bench::default_families()) {
    for (const VertexId n : {128, 256, 512}) {
      const std::int32_t k = 4;
      Summary rounds, messages, words, per_round_edge;
      std::size_t max_width = 0;
      bool identical = true;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = family_by_name(family).make(
            n, static_cast<std::uint64_t>(s) + 1);
        ElkinNeimanOptions options;
        options.k = k;
        options.seed = static_cast<std::uint64_t>(s) * 1299709 + 41;
        const DistributedRun dist = elkin_neiman_distributed(g, options);
        const DecompositionRun central =
            elkin_neiman_decomposition(g, options);
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          if (dist.run.clustering().cluster_of(v) !=
              central.clustering().cluster_of(v)) {
            identical = false;
          }
        }
        rounds.add(static_cast<double>(dist.sim.rounds));
        messages.add(static_cast<double>(dist.sim.messages));
        words.add(static_cast<double>(dist.sim.words));
        max_width = std::max(max_width, dist.sim.max_message_words);
        if (dist.sim.rounds > 0 && g.num_edges() > 0) {
          per_round_edge.add(static_cast<double>(dist.sim.messages) /
                             static_cast<double>(dist.sim.rounds) /
                             static_cast<double>(g.num_edges()));
        }
      }
      table.row()
          .cell(family)
          .cell(static_cast<std::int64_t>(n))
          .cell(k)
          .cell(rounds.mean(), 0)
          .cell(messages.mean(), 0)
          .cell(words.mean(), 0)
          .cell(static_cast<std::uint64_t>(max_width))
          .cell(per_round_edge.mean(), 2)
          .cell(identical ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << "\nmax_msg_words must never exceed "
            << kMaxProtocolMessageWords
            << "; with change-based forwarding, msgs/round/edge stays far "
               "below the 4 (two directions x top-2) worst case.\n";

  protocol_comparison(4 * bench::scale());
  engine_wall_clock(json);
  return 0;
}
