// E11 (extension) — sparse spanners from decompositions and covers, the
// [DMP+05] application direction cited in the paper's introduction.
//
// (a) decomposition spanner: per-cluster BFS trees + one edge per
//     adjacent cluster pair; stretch <= 4k-3.
// (b) cover spanner: BFS trees of a (W=1, chi)-neighborhood cover;
//     stretch <= 6k-4 with < chi * n edges — O(log n) stretch with
//     O(n log n) edges in the headline regime.
#include <iostream>

#include "apps/spanner.hpp"
#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "support/stats.hpp"

int main() {
  using namespace dsnd;
  bench::print_header(
      "E11 / spanners via decomposition and covers",
      "claim: stretch O(k) with strong sparsification on dense graphs; "
      "cover spanner keeps < chi * n edges");

  const int seeds = 4 * bench::scale();
  const std::int32_t k = 4;
  Table table({"family", "n", "m", "construction", "edges", "edges/m",
               "stretch", "bound", "check"});
  struct Cell {
    std::string family;
    VertexId n;
    double p;
  };
  bench::RetryStats stats;
  for (const Cell& cell : {Cell{"gnp-sparse", 512, 6.0 / 511.0},
                           Cell{"gnp-mid", 512, 24.0 / 511.0},
                           Cell{"gnp-dense", 512, 0.25}}) {
    Summary dec_edges, dec_stretch, cov_edges, cov_stretch, graph_edges;
    bool dec_ok = true, cov_ok = true;
    for (int s = 0; s < seeds; ++s) {
      const Graph g =
          make_gnp(cell.n, cell.p, static_cast<std::uint64_t>(s) + 1);
      graph_edges.add(static_cast<double>(g.num_edges()));
      ElkinNeimanOptions options;
      options.k = k;
      options.seed = static_cast<std::uint64_t>(s) * 7368787 + 19;
      const DecompositionRun run = elkin_neiman_decomposition(g, options);
      stats.observe(run.carve);
      if (!bench::accepted_truncated_samples(run.carve)) {
        const SpannerResult spanner =
            spanner_by_decomposition(g, run.clustering());
        dec_edges.add(static_cast<double>(spanner.edges));
        dec_stretch.add(spanner.stretch);
        if (spanner.stretch == kInfiniteDiameter ||
            spanner.stretch > 4 * k - 3) {
          dec_ok = false;
        }
      }

      CoverOptions cover_options;
      cover_options.radius = 1;
      cover_options.k = k;
      cover_options.seed = options.seed;
      const NeighborhoodCover cover =
          build_neighborhood_cover(g, cover_options);
      stats.observe(cover.base.carve);
      if (!bench::accepted_truncated_samples(cover.base.carve)) {
        const SpannerResult spanner = spanner_from_cover(g, cover);
        cov_edges.add(static_cast<double>(spanner.edges));
        cov_stretch.add(spanner.stretch);
        if (spanner.stretch == kInfiniteDiameter ||
            spanner.stretch > 3 * (2 * k - 2) + 2) {
          cov_ok = false;
        }
      }
    }
    table.row()
        .cell(cell.family)
        .cell(static_cast<std::int64_t>(cell.n))
        .cell(graph_edges.mean(), 0)
        .cell("decomposition")
        .cell(dec_edges.mean(), 0)
        .cell(dec_edges.mean() / graph_edges.mean(), 2)
        .cell(dec_stretch.mean(), 1)
        .cell(4 * k - 3)
        .cell(dec_ok ? "ok" : "VIOLATED");
    table.row()
        .cell(cell.family)
        .cell(static_cast<std::int64_t>(cell.n))
        .cell(graph_edges.mean(), 0)
        .cell("cover (W=1)")
        .cell(cov_edges.mean(), 0)
        .cell(cov_edges.mean() / graph_edges.mean(), 2)
        .cell(cov_stretch.mean(), 1)
        .cell(3 * (2 * k - 2) + 2)
        .cell(cov_ok ? "ok" : "VIOLATED");
  }
  table.print(std::cout);
  stats.print_line(std::cout);
  std::cout << "\nedges/m shrinks as graphs densify (a spanner's job); "
               "stretch stays under its O(k) bound throughout.\n";
  return 0;
}
