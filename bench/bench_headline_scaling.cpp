// E4 — The headline result: with k = ceil(ln n), a strong
// (O(log n), O(log n)) network decomposition computed in O(log^2 n)
// rounds. Sweeping n over powers of two and fitting the measured
// quantities against ln n (diameter, colors) and ln^2 n (rounds) checks
// the asymptotic *shape*: near-linear fits (r^2 close to 1) with modest
// constants.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "support/stats.hpp"

namespace {

using namespace dsnd;

/// E4c — the distributed engine at scale: wall-clock of the full CONGEST
/// runs on the arena engine, all three theorem schedules through the one
/// carving core. `--engine-smoke` runs only this section with the large
/// instances (the CI perf-smoke entry point, and how BENCH_engine.json
/// "after" records are produced with --json); the default bench run
/// keeps the quicker sizes. Every case batch-validates its output with
/// validate_decomposition_fast — at 1M vertices the O(n + m) validator
/// is what makes checking the run (not just timing it) affordable.
void engine_scaling(dsnd::bench::JsonWriter& json, bool smoke) {
  bench::print_header(
      "E4c / distributed engine scaling (Theorems 1-3)",
      "wall time of the full message-passing execution; the arena "
      "engine's zero-allocation rounds and active-vertex scheduling are "
      "what make the 100k-1M instances routine; every clustering is "
      "checked by the O(n+m) batch validator (validate_ms)");
  Table table({"schedule", "family", "n", "m", "rounds", "messages",
               "words", "activations", "wall_ms", "validate_ms", "valid"});
  const bench::EngineCaseOptions t1{1, 0, /*validate=*/true};
  std::vector<VertexId> sizes = smoke ? std::vector<VertexId>{100000}
                                      : std::vector<VertexId>{10000, 100000};
  for (const VertexId n : sizes) {
    bench::engine_scaling_case("gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1),
                               table, json, t1);
    bench::engine_scaling_case("ring", make_cycle(n), table, json, t1);
    bench::engine_scaling_case("rgg-deg8", family_by_name("rgg").make(n, 1),
                               table, json, t1);
  }
  // Theorems 2 and 3 as engine workloads (the budgeted CI cases): the
  // multistage schedule at the same 100k gnp instance, and the
  // high-radius schedule — long phases, few colors — at a size where its
  // ceil(k)-round phases stay inside the smoke budget.
  {
    const VertexId n = smoke ? 100000 : 10000;
    bench::engine_scaling_case("gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1),
                               table, json,
                               bench::EngineCaseOptions{2, 0, true});
  }
  {
    const VertexId n = smoke ? 20000 : 5000;
    bench::engine_scaling_case("gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1),
                               table, json,
                               bench::EngineCaseOptions{3, 3, true});
  }
  if (smoke || bench::scale() >= 2) {
    // The million-vertex instances: a ring (worst case for per-round
    // sweeps — long quiet phases) and an RGG (KaGen-style geometric
    // instance). The fast-validation pass over these runs is the
    // acceptance gate for validate_decomposition_fast at engine scale.
    bench::engine_scaling_case("ring", make_cycle(1000000), table, json,
                               t1);
    bench::engine_scaling_case("rgg-deg8",
                               family_by_name("rgg").make(1000000, 1),
                               table, json, t1);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsnd;
  bench::JsonWriter json = bench::JsonWriter::from_args(argc, argv);
  if (bench::has_flag(argc, argv, "--engine-smoke")) {
    engine_scaling(json, /*smoke=*/true);
    return 0;
  }
  bench::print_header(
      "E4 / headline scaling (k = ceil(ln n))",
      "claim: strong (O(log n), O(log n)) decomposition in O(log^2 n) "
      "rounds");

  const int seeds = 4 * bench::scale();
  Table table({"family", "n", "ln n", "D_max", "colors", "rounds",
               "rounds/ln^2(n)"});
  for (const std::string& family : {std::string("gnp-sparse"),
                                    std::string("grid")}) {
    std::vector<double> log_n, diameter_series, color_series, round_series;
    for (const VertexId n : {256, 512, 1024, 2048, 4096, 8192}) {
      Summary diameters, colors, rounds;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = family_by_name(family).make(
            n, static_cast<std::uint64_t>(s) + 1);
        ElkinNeimanOptions options;  // k = 0 -> ceil(ln n)
        options.seed = static_cast<std::uint64_t>(s) * 6700417 + 11;
        const DecompositionRun run = elkin_neiman_decomposition(g, options);
        colors.add(run.carve.phases_used);
        rounds.add(static_cast<double>(run.carve.rounds));
        if (!run.carve.radius_overflow) {
          const DecompositionReport report = validate_decomposition(
              g, run.clustering(), /*compute_weak=*/false);
          if (report.max_strong_diameter != kInfiniteDiameter) {
            diameters.add(report.max_strong_diameter);
          }
        }
      }
      const double ln = std::log(static_cast<double>(n));
      log_n.push_back(ln);
      diameter_series.push_back(diameters.max());
      color_series.push_back(colors.mean());
      round_series.push_back(rounds.mean());
      table.row()
          .cell(family)
          .cell(static_cast<std::int64_t>(n))
          .cell(ln, 2)
          .cell(diameters.max(), 0)
          .cell(colors.mean(), 1)
          .cell(rounds.mean(), 0)
          .cell(rounds.mean() / (ln * ln), 2);
    }
    // Shape fits: D vs ln n, colors vs ln n, rounds vs ln^2 n.
    std::vector<double> log_n_sq;
    for (const double x : log_n) log_n_sq.push_back(x * x);
    const LinearFit d_fit = fit_linear(log_n, diameter_series);
    const LinearFit c_fit = fit_linear(log_n, color_series);
    const LinearFit r_fit = fit_linear(log_n_sq, round_series);
    std::cout << family << ": D ~ " << format_double(d_fit.slope, 2)
              << "*ln(n) (r2=" << format_double(d_fit.r_squared, 3)
              << "), colors ~ " << format_double(c_fit.slope, 2)
              << "*ln(n) (r2=" << format_double(c_fit.r_squared, 3)
              << "), rounds ~ " << format_double(r_fit.slope, 2)
              << "*ln^2(n) (r2=" << format_double(r_fit.r_squared, 3)
              << ")\n";
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nThe rounds/ln^2(n) column should hover around a constant "
               "— the O(log^2 n) claim.\n";

  engine_scaling(json, /*smoke=*/false);
  return 0;
}
