// E4 — The headline result: with k = ceil(ln n), a strong
// (O(log n), O(log n)) network decomposition computed in O(log^2 n)
// rounds. Sweeping n over powers of two and fitting the measured
// quantities against ln n (diameter, colors) and ln^2 n (rounds) checks
// the asymptotic *shape*: near-linear fits (r^2 close to 1) with modest
// constants.
#include <cmath>
#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/io.hpp"
#include "service/decomposition_service.hpp"
#include "support/stats.hpp"

namespace {

using namespace dsnd;

/// The radius giving expected average degree ~8 for the rgg family at n.
double rgg_radius(VertexId n) {
  return std::min(1.0, std::sqrt(8.0 / (3.14159265358979323846 *
                                        static_cast<double>(
                                            std::max<VertexId>(n, 2)))));
}

/// E4c — the distributed engine at scale: wall-clock of the full CONGEST
/// runs on the sharded engine, all three theorem schedules through the
/// one carving core. `--engine-smoke` runs only this section with the
/// large instances (the CI perf-smoke entry point, and how
/// BENCH_engine.json records are produced with --json); `--threads N`
/// runs the cases with N engine workers and `--no-large` skips the
/// million-vertex instances (the budgeted 2-thread CI step uses both);
/// `--repeat N` measures the warm path (see main()).
/// The default bench run keeps the quicker sizes. Every case
/// batch-validates its output with validate_decomposition_fast — at 1M
/// vertices the O(n + m) validator is what makes checking the run (not
/// just timing it) affordable.
/// `--overflow-smoke` — the Las Vegas recarve loop under CI: a tiny
/// Theorem 1 engine case whose Lemma 1 threshold is lowered far below
/// k + 1, so the overflow event (and hence at least one phase replay)
/// fires on every run. The emitted JSON must show valid rows with a
/// nonzero `retries` field — the perf-smoke job greps for both, which
/// pins the end-to-end property this bench once disproved at 10M
/// vertices: overflow is recovered, not reported.
void overflow_smoke(dsnd::bench::JsonWriter& json, unsigned threads) {
  bench::print_header(
      "E4e / overflow-forced recarve smoke",
      "radius_overflow_at lowered so Lemma 1 fires every run; the "
      "recarve loop must keep every clustering valid and bill the "
      "retries");
  Table table({"schedule", "family", "n", "m", "threads", "rounds",
               "messages", "words", "activations", "wall_ms", "validate_ms",
               "valid"});
  bench::EngineCaseOptions options{1, 0, /*validate=*/true};
  options.threads = threads;
  // n = 20000, k = ceil(ln n) = 10, beta = ln(4n)/k ~ 1.13. A threshold
  // of 8.5 puts n * Pr[r >= 8.5] ~ 1.4, so an early-phase sampling
  // attempt overflows with probability ~3/4 (retries near-certain
  // across the three rows below) while each retry still succeeds with
  // probability ~1/4 — and the raised per-phase budget makes falling
  // back to accepted overflow samples (0.74^65) astronomically
  // unlikely, so validity is guaranteed by construction rather than by
  // seed luck: radii below k + 1 = 11 never truncate, and radii above
  // are always resampled away. Rows are fully seeded (graph seed 1,
  // carve seed 42), so the retry counts are reproducible.
  options.radius_overflow_at = 8.5;
  options.max_retries_per_phase = 64;
  const VertexId n = 20000;
  bench::engine_scaling_case("gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1),
                             table, json, options);
  bench::engine_scaling_case("ring", make_cycle(n), table, json, options);
  bench::engine_scaling_case("rgg-deg8", family_by_name("rgg").make(n, 1),
                             table, json, options);
  table.print(std::cout);
}

/// Returns the number of warm-run contract failures when `repeat > 1`
/// (a warm run slower than its cold twin, or — worse — diverging from
/// it), so the CI `--repeat` step can fail on a warm regression straight
/// from the exit code, no JSON math in the workflow.
int engine_scaling(dsnd::bench::JsonWriter& json, bool smoke,
                   unsigned threads, bool no_large, int repeat) {
  bench::print_header(
      "E4c / distributed engine scaling (Theorems 1-3)",
      "wall time of the full message-passing execution; the sharded "
      "engine's zero-allocation rounds and active-vertex scheduling are "
      "what make the 100k-1M instances routine; every clustering is "
      "checked by the O(n+m) batch validator (validate_ms)");
  Table table({"schedule", "family", "n", "m", "threads", "rounds",
               "messages", "words", "activations", "wall_ms", "validate_ms",
               "valid"});
  int failures = 0;
  const auto run_row = [&](const std::string& family, const Graph& g,
                           bench::EngineCaseOptions options) {
    bench::EngineCaseOutcome outcome;
    options.threads = threads;
    options.repeat = repeat;
    options.outcome = &outcome;
    bench::engine_scaling_case(family, g, table, json, options);
    if (repeat > 1 &&
        (outcome.warm_mismatch || outcome.warm_ms > outcome.cold_ms)) {
      std::cout << "WARM-RUN REGRESSION: " << family << " n="
                << g.num_vertices() << " cold_ms=" << outcome.cold_ms
                << " warm_ms=" << outcome.warm_ms
                << (outcome.warm_mismatch ? " (WARM/COLD MISMATCH)" : "")
                << "\n";
      ++failures;
    }
  };
  bench::EngineCaseOptions t1{1, 0, /*validate=*/true};
  std::vector<VertexId> sizes = smoke ? std::vector<VertexId>{100000}
                                      : std::vector<VertexId>{10000, 100000};
  for (const VertexId n : sizes) {
    run_row("gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1), t1);
    run_row("ring", make_cycle(n), t1);
    run_row("rgg-deg8", family_by_name("rgg").make(n, 1), t1);
  }
  // Theorems 2 and 3 as engine workloads (the budgeted CI cases): the
  // multistage schedule at the same 100k gnp instance, and the
  // high-radius schedule — long phases, few colors — at a size where its
  // ceil(k)-round phases stay inside the smoke budget.
  {
    const VertexId n = smoke ? 100000 : 10000;
    run_row("gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1),
            bench::EngineCaseOptions{2, 0, true});
  }
  {
    const VertexId n = smoke ? 20000 : 5000;
    run_row("gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1),
            bench::EngineCaseOptions{3, 3, true});
  }
  if ((smoke || bench::scale() >= 2) && !no_large) {
    // The million-vertex instances: a ring (worst case for per-round
    // sweeps — long quiet phases) and an RGG (KaGen-style geometric
    // instance). The fast-validation pass over these runs is the
    // acceptance gate for validate_decomposition_fast at engine scale.
    run_row("ring", make_cycle(1000000), t1);
    run_row("rgg-deg8", family_by_name("rgg").make(1000000, 1), t1);
  }
  if (repeat > 1) {
    // Barrier-elision A/B: the same ring case with the quiet-round fast
    // path disabled. The clustering and every count are identical by
    // contract (only wall time may move); the row lands in the JSON with
    // "elide_quiet_rounds": 0 so BENCH files carry both sides.
    bench::EngineCaseOptions ab{1, 0, /*validate=*/true};
    ab.elide_quiet_rounds = false;
    run_row("ring", make_cycle(no_large ? 100000 : 1000000), ab);
  }
  table.print(std::cout);
  return failures;
}

/// E4d — the pr4 headline: thread scaling of the sharded engine at
/// n = 1M (threads 1/2/4/8, rgg additionally under its grid-bucket
/// layout) and the first n = 10M rows, construction time included in
/// the JSON. `bench_headline_scaling --threads-sweep [--json <path>]`.
void threads_sweep(dsnd::bench::JsonWriter& json, bool with_ten_million) {
  bench::print_header(
      "E4d / sharded engine thread scaling (Theorem 1)",
      "same schedule, same clustering (bit-identical for every thread "
      "count and layout) — only the wall clock may move; rgg rows run "
      "on the grid-bucket cache layout, construction chunk-parallel");
  Table table({"schedule", "family", "n", "m", "threads", "rounds",
               "messages", "words", "activations", "wall_ms", "validate_ms",
               "valid"});
  const std::vector<unsigned> thread_counts{1, 2, 4, 8};

  for (const VertexId n : with_ten_million
                              ? std::vector<VertexId>{1000000, 10000000}
                              : std::vector<VertexId>{1000000}) {
    // Seed 42 everywhere except n=10M, where it hits Lemma 1's
    // radius-overflow event (max r = 18.78 >= k+1 = 18 at k = 17).
    // Before PR 5 that run truncated the broadcast and was rightly
    // flagged INVALID (the historical pr4 record); the recarve loop now
    // recovers it — `--recarve-10m` replays exactly that case and is
    // where the resolved BENCH_engine.json row comes from. Seed 43 is
    // kept here so the sweep's timings stay comparable across phases.
    const std::uint64_t carve_seed = n >= 10000000 ? 43 : 42;
    const unsigned gen_threads = 0;  // generator: hardware concurrency
    Timer construct;
    const Graph ring = make_cycle(n, gen_threads);
    const double ring_ms = construct.elapsed_millis();
    for (const unsigned threads : n >= 10000000
                                      ? std::vector<unsigned>{1, 8}
                                      : thread_counts) {
      bench::EngineCaseOptions options{1, 0, /*validate=*/true};
      options.threads = threads;
      options.construct_ms = ring_ms;
      options.seed = carve_seed;
      bench::engine_scaling_case("ring", ring, table, json, options);
    }

    construct.reset();
    const GeometricGraph rgg =
        make_rgg_geometric(n, rgg_radius(n), 1, gen_threads);
    const double rgg_ms = construct.elapsed_millis();
    construct.reset();
    const LayoutGraph layout = make_layout_graph(
        rgg.graph,
        grid_bucket_layout(rgg.x, rgg.y,
                           static_cast<std::int32_t>(std::max(
                               1.0, std::floor(1.0 / rgg_radius(n))))));
    const double relabel_ms = construct.elapsed_millis();
    std::cout << "rgg n=" << n << ": construct " << format_double(rgg_ms, 1)
              << " ms, grid-bucket relabel " << format_double(relabel_ms, 1)
              << " ms\n";
    for (const unsigned threads : n >= 10000000
                                      ? std::vector<unsigned>{1, 8}
                                      : thread_counts) {
      bench::EngineCaseOptions options{1, 0, /*validate=*/true};
      options.threads = threads;
      options.construct_ms = rgg_ms;
      options.seed = carve_seed;
      options.layout = &layout;
      options.layout_name = "grid-bucket";
      bench::engine_scaling_case("rgg-deg8", rgg.graph, table, json,
                                 options);
      if (threads == 1) {
        // One unrelabeled row per size so the layout's own effect on the
        // wall clock is visible next to the thread scaling.
        bench::EngineCaseOptions plain{1, 0, /*validate=*/true};
        plain.threads = threads;
        plain.construct_ms = rgg_ms;
        plain.seed = carve_seed;
        bench::engine_scaling_case("rgg-deg8", rgg.graph, table, json,
                                   plain);
      }
    }
  }
  table.print(std::cout);
}

/// E4f — scale-free instances as engine workloads (`--scale-free`):
/// threshold random hyperbolic graphs (power-law degrees, gamma = 2.8)
/// and Graph500-style Kronecker graphs, carved by the Theorem 1
/// schedule and batch-validated like every other row. The JSON records
/// carry the degree-distribution summary (deg_* fields, powerlaw_alpha)
/// so carve quality on heavy-tailed instances can be read next to how
/// heavy the tail actually was. `--no-large` keeps only the 100k-class
/// instances (the budgeted CI variant); the full run reaches n >= 1M.
void scale_free(dsnd::bench::JsonWriter& json, unsigned threads,
                bool no_large) {
  bench::print_header(
      "E4f / scale-free engine scaling (hyperbolic + Kronecker)",
      "power-law instances from the chunk-parallel generators; hub "
      "vertices stress the per-shard delivery paths that rgg/gnp rows "
      "never do; every clustering checked by the O(n+m) batch validator");
  Table table({"schedule", "family", "n", "m", "threads", "rounds",
               "messages", "words", "activations", "wall_ms", "validate_ms",
               "valid"});
  const unsigned gen_threads = 0;  // generator: hardware concurrency
  bench::EngineCaseOptions options{1, 0, /*validate=*/true};
  options.threads = threads;
  options.degree_stats = true;

  for (const VertexId n : no_large
                              ? std::vector<VertexId>{100000}
                              : std::vector<VertexId>{100000, 1000000}) {
    Timer construct;
    const Graph h = make_hyperbolic(n, 8.0, 2.8, 1, gen_threads);
    options.construct_ms = construct.elapsed_millis();
    bench::engine_scaling_case("hyperbolic-deg8", h, table, json, options);
  }
  // Kronecker scale 17 -> n = 131072, scale 20 -> n = 1048576.
  for (const int scale :
       no_large ? std::vector<int>{17} : std::vector<int>{17, 20}) {
    Timer construct;
    const Graph k = make_kronecker(scale, 8, 1, gen_threads);
    options.construct_ms = construct.elapsed_millis();
    bench::engine_scaling_case("kronecker-ef8", k, table, json, options);
  }
  table.print(std::cout);
}

/// E4g — the external-graph path end to end (`--ingest-smoke`): for
/// each scale-free family, generate -> write to disk (METIS for the
/// hyperbolic instance, edge list for the Kronecker one) -> read back
/// through the strict loaders -> require bit-identical CSR -> gate
/// through the standalone validator -> run a small validated carve.
/// The written files are left in the working directory so the CI job
/// can additionally point tools/chkgraph at them; the JSON rows are
/// INVALID-greppable like every other smoke. Returns nonzero when any
/// round-trip or validator gate fails.
int ingest_smoke(dsnd::bench::JsonWriter& json, unsigned threads) {
  bench::print_header(
      "E4g / ingestion + validator smoke",
      "round-trips the scale-free families through the on-disk formats, "
      "gates them through the standalone validator, then carves the "
      "reloaded graphs");
  Table table({"schedule", "family", "n", "m", "threads", "rounds",
               "messages", "words", "activations", "wall_ms", "validate_ms",
               "valid"});
  bench::EngineCaseOptions options{1, 0, /*validate=*/true};
  options.threads = threads;
  options.degree_stats = true;
  int failures = 0;

  struct IngestCase {
    std::string family;
    Graph graph;
    std::string path;
  };
  const IngestCase cases[] = {
      {"hyperbolic-deg8", make_hyperbolic(20000, 8.0, 2.8, 5, 0),
       "ingest_hyperbolic.graph"},
      {"kronecker-ef8", make_kronecker(14, 8, 5, 0),
       "ingest_kronecker.el"},
  };
  for (const IngestCase& c : cases) {
    if (c.path.ends_with(".graph")) {
      save_metis(c.path, c.graph);
    } else {
      save_edge_list(c.path, c.graph);
    }
    const Graph loaded = load_graph(c.path);
    if (loaded != c.graph) {
      std::cout << c.path << ": ROUND-TRIP MISMATCH (INVALID)\n";
      ++failures;
      continue;
    }
    const GraphCheckReport report = check_graph(loaded);
    std::cout << c.path << " (round-trip ok): " << format_report(report);
    if (!report.ok()) {
      ++failures;
      continue;
    }
    bench::engine_scaling_case(c.family, loaded, table, json, options);
  }
  table.print(std::cout);
  return failures;
}

/// E4h — closing the pr4 ledger (`--recarve-10m`): re-runs the rgg
/// n = 10M, carve-seed-42, grid-bucket case whose Lemma 1 radius
/// overflow produced the one INVALID record in BENCH_engine.json's pr4
/// phase. Under the PR 5 Las Vegas recarve loop the identical case must
/// now come back valid with a nonzero retries field; the emitted record
/// is the resolved row the pr6 phase stores next to the historical one.
void recarve_ten_million(dsnd::bench::JsonWriter& json) {
  bench::print_header(
      "E4h / 10M seed-42 recarve",
      "the pr4 radius-overflow case, replayed under the default retry "
      "policy: expect valid output and retries > 0");
  Table table({"schedule", "family", "n", "m", "threads", "rounds",
               "messages", "words", "activations", "wall_ms", "validate_ms",
               "valid"});
  const VertexId n = 10000000;
  Timer construct;
  const GeometricGraph rgg = make_rgg_geometric(n, rgg_radius(n), 1, 0);
  const double rgg_ms = construct.elapsed_millis();
  const LayoutGraph layout = make_layout_graph(
      rgg.graph,
      grid_bucket_layout(rgg.x, rgg.y,
                         static_cast<std::int32_t>(std::max(
                             1.0, std::floor(1.0 / rgg_radius(n))))));
  bench::EngineCaseOptions options{1, 0, /*validate=*/true};
  options.threads = 1;
  options.construct_ms = rgg_ms;
  options.seed = 42;
  options.layout = &layout;
  options.layout_name = "grid-bucket";
  bench::engine_scaling_case("rgg-deg8", rgg.graph, table, json, options);
  table.print(std::cout);
}

/// E4i — chaos transport smoke (`--chaos`): the Theorem 1 schedule at
/// n = 20000 run through a FaultyTransport, sweeping drop rates across
/// three families plus one mixed-fault row (drop + duplicate + bounded
/// delay + reorder + a crash-stop span), then the recovery-cost A/B
/// pairs (whole-run retry vs checkpoint rollback on identical plans
/// with a crash-recovery span). The never-silently-invalid contract, at
/// bench scale: every row must end "ok" (validated, possibly after
/// rollbacks and salted whole-run retries) or as a named failure whose
/// fault counters show why. "INVALID" — a row claiming ok whose
/// clustering fails external validation — is the one greppable outcome;
/// returns how many such rows occurred so the CI step fails on any.
int chaos_smoke(dsnd::bench::JsonWriter& json, unsigned threads) {
  bench::print_header(
      "E4i / chaos transport smoke (Theorem 1 under injected faults)",
      "deterministic fault injection through the pluggable transport; "
      "the verify-and-recover loop must end every row validated or "
      "named-failed with nonzero counters — never silently invalid");
  Table table({"schedule", "family", "n", "m", "threads", "rounds",
               "messages", "words", "activations", "wall_ms", "validate_ms",
               "valid"});
  const VertexId n = 20000;
  struct ChaosCase {
    std::string family;
    Graph graph;
  };
  const ChaosCase cases[] = {
      {"gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1)},
      {"ring", make_cycle(n)},
      {"hyperbolic-deg8", make_hyperbolic(n, 8.0, 2.8, 1, 0)},
  };
  int rows = 0, ok_rows = 0, named_rows = 0, invalid_rows = 0;
  std::int64_t run_retries = 0, rollbacks = 0;
  std::uint64_t injected = 0, rejoins = 0;
  const auto run_case = [&](const std::string& family, const Graph& g,
                            const FaultPlan& plan,
                            std::int32_t max_rollbacks =
                                -1) -> bench::EngineCaseOutcome {
    bench::EngineCaseOptions options{1, 0, /*validate=*/true};
    options.threads = threads;
    options.faults = &plan;
    options.max_rollbacks = max_rollbacks;
    bench::EngineCaseOutcome outcome;
    options.outcome = &outcome;
    outcome.cold_ms =
        bench::engine_scaling_case(family, g, table, json, options);
    ++rows;
    run_retries += outcome.run_retries;
    rollbacks += outcome.rollbacks;
    injected += outcome.faults.total();
    rejoins += outcome.rejoins;
    if (outcome.valid == "ok") {
      ++ok_rows;
    } else if (outcome.valid == "INVALID") {
      ++invalid_rows;
    } else {
      ++named_rows;
    }
    return outcome;
  };
  // The light tiers (1e-5, 1e-4: tens to hundreds of dropped messages
  // per attempt) recover via a rollback or a salted whole-run retry;
  // 1e-3 (thousands of drops per attempt) is where checkpoint rollback
  // starts rescuing runs the retry budget alone could not; from 1e-2 up
  // no early phase ever validates — no checkpoint exists — and the rows
  // document the named-failure side of the contract instead.
  for (const ChaosCase& c : cases) {
    for (const double drop : {0.00001, 0.0001, 0.001, 0.01, 0.1}) {
      FaultPlan plan;
      plan.seed = 1009;
      plan.drop_rate = drop;
      run_case(c.family, c.graph, plan);
    }
  }
  // The mixed-fault row: every fault class at once. The crash span
  // silences 20 vertices from round 30 on — they can still carve
  // themselves into singleton clusters, so the run remains winnable.
  {
    FaultPlan plan;
    plan.seed = 2027;
    plan.drop_rate = 0.01;
    plan.duplicate_rate = 0.01;
    plan.delay_rate = 0.01;
    plan.max_delay_rounds = 2;
    plan.reorder_rate = 0.05;
    plan.crashes.push_back(CrashSpan{n - 20, n, std::uint64_t{30}});
    run_case(cases[0].family, cases[0].graph, plan);
  }
  // E4i-b — recovery-cost A/B: the same seeded fault plans (drops plus a
  // crash-RECOVERY span) run twice, whole-run-retry only (max_rollbacks
  // = 0, the pre-checkpoint loop) vs checkpoint rollback (the schedule
  // default). Where both arms recover, the rollback arm must replay
  // strictly fewer phases — it restores the validated prefix instead of
  // re-running it. Smaller n so failures recover instead of exhausting
  // both budgets.
  const VertexId ab_n = 2000;
  const Graph ab_graph = make_gnp(ab_n, 8.0 / (ab_n - 1), 3);
  double retry_ms = 0.0, rollback_ms = 0.0;
  std::int64_t retry_replayed = 0, rollback_replayed = 0;
  for (const double drop : {0.002, 0.005, 0.01}) {
    FaultPlan plan;
    plan.seed = 4099 + static_cast<std::uint64_t>(drop * 1e6);
    plan.drop_rate = drop;
    plan.crashes.push_back(
        CrashSpan{ab_n - 50, ab_n, std::uint64_t{10}, std::uint64_t{25}});
    const bench::EngineCaseOutcome retry =
        run_case("gnp-deg8/retry", ab_graph, plan, /*max_rollbacks=*/0);
    const bench::EngineCaseOutcome rollback =
        run_case("gnp-deg8/rollback", ab_graph, plan);
    retry_ms += retry.cold_ms;
    rollback_ms += rollback.cold_ms;
    retry_replayed += retry.replayed_phases;
    rollback_replayed += rollback.replayed_phases;
  }
  table.print(std::cout);
  std::cout << "\nchaos validity: " << ok_rows << "/" << rows
            << " rows validated ok, " << named_rows
            << " named failures (flagged with counters), " << invalid_rows
            << " silent-invalid; whole-run retries=" << run_retries
            << " rollbacks=" << rollbacks << " rejoined=" << rejoins
            << " injected_faults=" << injected << "\n";
  std::cout << "recovery A/B (same fault plans): whole-run retry replayed "
            << retry_replayed << " phases in " << retry_ms
            << " ms, checkpoint rollback replayed " << rollback_replayed
            << " phases in " << rollback_ms << " ms\n";
  return invalid_rows;
}

/// E4j — the DecompositionService end to end (`--service-smoke`): one
/// service over three registered graphs, a mixed batch of deliverables
/// submitted concurrently three times — cold (contexts built), warm
/// (new seeds on the warm contexts), cached (the warm keys again, zero
/// recarves). Every fresh distributed response is checked bit-identical
/// against the standalone run_schedule_distributed on the same
/// (schedule, seed) — a mismatch prints INVALID (CI grep bait) — and
/// the cached pass must serve every row from the cache. The emitted
/// JSON carries per-row latencies, per-phase cold/warm/cached means,
/// and the service's cache/context-pool accounting (the pr10
/// BENCH_engine.json rows). Returns the number of contract failures.
int service_smoke(dsnd::bench::JsonWriter& json, unsigned threads) {
  bench::print_header(
      "E4j / decomposition service smoke",
      "mixed concurrent batches through one DecompositionService: "
      "cold/warm/cached phases, standalone-parity checks on every fresh "
      "distributed response, cache + context-pool accounting");
  Table table({"phase", "graph", "deliverable", "seed", "wall_ms",
               "cache", "status", "parity"});

  // Sized for CI: the app deliverables (round-based MIS/coloring
  // simulations) dominate, so the big instances stay at 5k vertices.
  const VertexId n = 5000;
  struct Entry {
    std::string id;
    Graph graph;
  };
  std::vector<Entry> graphs;
  graphs.push_back({"gnp-deg8", make_gnp(n, 8.0 / (n - 1), 1)});
  graphs.push_back({"hyperbolic-deg8", make_hyperbolic(n, 8.0, 2.8, 1, 0)});
  graphs.push_back({"ring-2k", make_cycle(2000)});

  ServiceOptions service_options;
  service_options.engine.threads = threads;
  DecompositionService service(service_options);
  for (const Entry& e : graphs) service.register_graph_view(e.id, e.graph);

  // Per graph: the app deliverables on the big instances, decomposition
  // plus a W=1 cover on the small ring (covers carve G^3, so they stay
  // cheap). Seeds differ per deliverable so every row is its own carve.
  const auto requests_for = [&](std::uint64_t seed_base) {
    std::vector<ServiceRequest> requests;
    for (const Entry& e : graphs) {
      const bool small = e.graph.num_vertices() < n;
      for (const Deliverable d :
           small ? std::vector<Deliverable>{Deliverable::kDecomposition,
                                            Deliverable::kCover}
                 : std::vector<Deliverable>{
                       Deliverable::kDecomposition, Deliverable::kMis,
                       Deliverable::kColoring, Deliverable::kSpanner}) {
        ServiceRequest request;
        request.graph_id = e.id;
        request.schedule =
            theorem1_schedule(e.graph.num_vertices(), 0, 4.0);
        request.deliverable = d;
        request.seed = seed_base + static_cast<std::uint64_t>(d) + 1;
        if (d == Deliverable::kCover) request.cover_radius = 1;
        requests.push_back(request);
      }
    }
    return requests;
  };

  const auto matches_standalone = [&](const Graph& g,
                                      const ServiceRequest& request,
                                      const ServiceResult& result) {
    const DistributedRun expected = run_schedule_distributed(
        g, request.schedule, request.seed, service_options.engine);
    const DistributedRun& got = result.run;
    if (expected.sim.rounds != got.sim.rounds ||
        expected.sim.messages != got.sim.messages ||
        expected.sim.words != got.sim.words ||
        expected.run.carve.phases_used != got.run.carve.phases_used) {
      return false;
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (expected.run.clustering().cluster_of(v) !=
          got.run.clustering().cluster_of(v)) {
        return false;
      }
    }
    return true;
  };

  int failures = 0;
  const auto run_phase = [&](const std::string& phase,
                             std::uint64_t seed_base, bool expect_hits) {
    const std::vector<ServiceRequest> requests = requests_for(seed_base);
    Timer batch_timer;
    const std::vector<ServiceResponse> responses =
        service.submit_batch(requests);
    const double batch_ms = batch_timer.elapsed_millis();
    double total_ms = 0.0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const ServiceRequest& request = requests[i];
      const ServiceResponse& response = responses[i];
      total_ms += response.wall_ms;
      std::string parity = "-";
      if (!response.cache_hit &&
          request.deliverable != Deliverable::kCover) {
        const auto entry = std::find_if(
            graphs.begin(), graphs.end(),
            [&](const Entry& e) { return e.id == request.graph_id; });
        parity = matches_standalone(entry->graph, request, *response.result)
                     ? "ok"
                     : "INVALID";
      }
      const bool row_failed = response.status != "ok" ||
                              parity == "INVALID" ||
                              response.cache_hit != expect_hits;
      if (row_failed) ++failures;
      table.row()
          .cell(phase)
          .cell(request.graph_id)
          .cell(deliverable_name(request.deliverable))
          .cell(request.seed)
          .cell(response.wall_ms, 2)
          .cell(response.cache_hit == expect_hits
                    ? (response.cache_hit ? "hit" : "miss")
                    : (response.cache_hit ? "hit (UNEXPECTED)"
                                          : "miss (INVALID)"))
          .cell(response.status)
          .cell(parity);
      json.record()
          .field("section", "service_smoke")
          .field("phase", phase)
          .field("graph", request.graph_id)
          .field("deliverable", deliverable_name(request.deliverable))
          .field("seed", request.seed)
          .field("wall_ms", response.wall_ms)
          .field("cache_hit", std::uint64_t{response.cache_hit})
          .field("status", response.status)
          .field("parity", parity);
    }
    json.record()
        .field("section", "service_phase")
        .field("phase", phase)
        .field("requests", static_cast<std::uint64_t>(requests.size()))
        .field("batch_ms", batch_ms)
        .field("mean_ms", total_ms / static_cast<double>(requests.size()));
    std::cout << phase << " batch: " << requests.size() << " requests in "
              << format_double(batch_ms, 1) << " ms (mean per-request "
              << format_double(total_ms /
                                   static_cast<double>(requests.size()),
                               2)
              << " ms)\n";
  };

  run_phase("cold", 100, /*expect_hits=*/false);
  run_phase("warm", 200, /*expect_hits=*/false);
  run_phase("cached", 200, /*expect_hits=*/true);
  table.print(std::cout);

  const ServiceStats stats = service.stats();
  // One warm context per registered graph, reused across phases; the
  // cached phase must have produced one hit per warm-phase row.
  if (stats.contexts_created != graphs.size()) {
    std::cout << "CONTEXT POOL INVALID: " << stats.contexts_created
              << " contexts for " << graphs.size() << " graphs\n";
    ++failures;
  }
  if (stats.cache_hits == 0 || stats.invalid_responses != 0) ++failures;
  std::cout << "\nservice stats: requests=" << stats.requests
            << " cache_hits=" << stats.cache_hits
            << " cache_misses=" << stats.cache_misses
            << " cache_evictions=" << stats.cache_evictions
            << " cache_entries=" << stats.cache_entries
            << " contexts_created=" << stats.contexts_created
            << " warm_acquires=" << stats.warm_acquires
            << " invalid_responses=" << stats.invalid_responses << "\n";
  json.record()
      .field("section", "service_stats")
      .field("requests", stats.requests)
      .field("cache_hits", stats.cache_hits)
      .field("cache_misses", stats.cache_misses)
      .field("cache_evictions", stats.cache_evictions)
      .field("cache_entries", stats.cache_entries)
      .field("contexts_created", stats.contexts_created)
      .field("warm_acquires", stats.warm_acquires)
      .field("invalid_responses", stats.invalid_responses)
      .field("threads", static_cast<std::uint64_t>(threads));
  return failures;
}

void print_usage(std::ostream& out) {
  out << "usage: bench_headline_scaling [mode] [flags]\n"
         "modes (default: the E4 shape-fit suite, then engine scaling):\n"
         "  --engine-smoke    E4c engine scaling, large instances only\n"
         "                    (the CI perf-smoke entry point)\n"
         "  --overflow-smoke  E4e forced Lemma-1 recarve loop\n"
         "  --threads-sweep   E4d thread scaling at 1M (10M too unless\n"
         "                    --no-large)\n"
         "  --scale-free      E4f hyperbolic + Kronecker engine workloads\n"
         "  --ingest-smoke    E4g on-disk round-trip -> validator -> carve\n"
         "  --recarve-10m     E4h the pr4 10M radius-overflow case, replayed\n"
         "  --chaos           E4i fault-injection smoke + recovery-cost A/B\n"
         "  --service-smoke   E4j DecompositionService: concurrent mixed\n"
         "                    batches, cold/warm/cached rows, cache stats\n"
         "flags:\n"
         "  --threads N       engine workers per case (default 1)\n"
         "  --repeat N        N >= 2: warm re-runs on one context (E4c)\n"
         "  --no-large        skip the million-vertex instances\n"
         "  --json PATH       also write results as a JSON record array\n"
         "  --help            this text\n";
}

/// Rejects unknown arguments instead of silently running the default
/// suite: prints the usage block and returns false. Value-taking flags
/// consume their operand.
bool args_ok(int argc, char** argv) {
  static const char* kModes[] = {
      "--engine-smoke", "--overflow-smoke", "--threads-sweep",
      "--scale-free",   "--ingest-smoke",   "--recarve-10m",
      "--chaos",        "--service-smoke",  "--no-large",
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg == "--threads" || arg == "--repeat") {
      if (i + 1 >= argc) {
        std::cerr << "bench_headline_scaling: " << arg
                  << " needs a value\n";
        return false;
      }
      ++i;
      continue;
    }
    bool known = false;
    for (const char* mode : kModes) known |= arg == mode;
    if (!known) {
      std::cerr << "bench_headline_scaling: unknown argument '" << arg
                << "'\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsnd;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(std::cout);
      return 0;
    }
  }
  if (!args_ok(argc, argv)) {
    print_usage(std::cerr);
    return 2;
  }
  bench::JsonWriter json = bench::JsonWriter::from_args(argc, argv);
  const auto threads = static_cast<unsigned>(
      bench::int_flag(argc, argv, "--threads", 1));
  // --repeat N (N >= 2): run every engine case N times on one reusable
  // CarveContext and record cold_ms / warm_ms / warm_speedup; the bench
  // exits nonzero if any warm run is slower than its cold twin or
  // diverges from it.
  const int repeat = bench::int_flag(argc, argv, "--repeat", 1);
  if (bench::has_flag(argc, argv, "--engine-smoke")) {
    return engine_scaling(json, /*smoke=*/true, threads,
                          bench::has_flag(argc, argv, "--no-large"), repeat);
  }
  if (bench::has_flag(argc, argv, "--overflow-smoke")) {
    overflow_smoke(json, threads);
    return 0;
  }
  if (bench::has_flag(argc, argv, "--threads-sweep")) {
    threads_sweep(json,
                  /*with_ten_million=*/!bench::has_flag(argc, argv,
                                                        "--no-large"));
    return 0;
  }
  if (bench::has_flag(argc, argv, "--scale-free")) {
    scale_free(json, threads, bench::has_flag(argc, argv, "--no-large"));
    return 0;
  }
  if (bench::has_flag(argc, argv, "--ingest-smoke")) {
    return ingest_smoke(json, threads);
  }
  if (bench::has_flag(argc, argv, "--recarve-10m")) {
    recarve_ten_million(json);
    return 0;
  }
  if (bench::has_flag(argc, argv, "--chaos")) {
    return chaos_smoke(json, threads);
  }
  if (bench::has_flag(argc, argv, "--service-smoke")) {
    return service_smoke(json, threads);
  }
  bench::print_header(
      "E4 / headline scaling (k = ceil(ln n))",
      "claim: strong (O(log n), O(log n)) decomposition in O(log^2 n) "
      "rounds");

  const int seeds = 4 * bench::scale();
  Table table({"family", "n", "ln n", "D_max", "colors", "rounds",
               "rounds/ln^2(n)"});
  for (const std::string& family : {std::string("gnp-sparse"),
                                    std::string("grid")}) {
    std::vector<double> log_n, diameter_series, color_series, round_series;
    for (const VertexId n : {256, 512, 1024, 2048, 4096, 8192}) {
      Summary diameters, colors, rounds;
      bench::RetryStats stats;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = family_by_name(family).make(
            n, static_cast<std::uint64_t>(s) + 1);
        ElkinNeimanOptions options;  // k = 0 -> ceil(ln n)
        options.seed = static_cast<std::uint64_t>(s) * 6700417 + 11;
        const DecompositionRun run = elkin_neiman_decomposition(g, options);
        colors.add(run.carve.phases_used);
        rounds.add(static_cast<double>(run.carve.rounds));
        stats.observe(run.carve);
        if (!bench::accepted_truncated_samples(run.carve)) {
          const DecompositionReport report = validate_decomposition(
              g, run.clustering(), /*compute_weak=*/false);
          if (report.max_strong_diameter != kInfiniteDiameter) {
            diameters.add(report.max_strong_diameter);
          }
        }
      }
      if (stats.retries > 0 || stats.truncated_runs > 0) {
        std::cout << family << " n=" << n << ": ";
        stats.print_line(std::cout);
      }
      const double ln = std::log(static_cast<double>(n));
      log_n.push_back(ln);
      diameter_series.push_back(diameters.max());
      color_series.push_back(colors.mean());
      round_series.push_back(rounds.mean());
      table.row()
          .cell(family)
          .cell(static_cast<std::int64_t>(n))
          .cell(ln, 2)
          .cell(diameters.max(), 0)
          .cell(colors.mean(), 1)
          .cell(rounds.mean(), 0)
          .cell(rounds.mean() / (ln * ln), 2);
    }
    // Shape fits: D vs ln n, colors vs ln n, rounds vs ln^2 n.
    std::vector<double> log_n_sq;
    for (const double x : log_n) log_n_sq.push_back(x * x);
    const LinearFit d_fit = fit_linear(log_n, diameter_series);
    const LinearFit c_fit = fit_linear(log_n, color_series);
    const LinearFit r_fit = fit_linear(log_n_sq, round_series);
    std::cout << family << ": D ~ " << format_double(d_fit.slope, 2)
              << "*ln(n) (r2=" << format_double(d_fit.r_squared, 3)
              << "), colors ~ " << format_double(c_fit.slope, 2)
              << "*ln(n) (r2=" << format_double(c_fit.r_squared, 3)
              << "), rounds ~ " << format_double(r_fit.slope, 2)
              << "*ln^2(n) (r2=" << format_double(r_fit.r_squared, 3)
              << ")\n";
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nThe rounds/ln^2(n) column should hover around a constant "
               "— the O(log^2 n) claim.\n";

  return engine_scaling(json, /*smoke=*/false, threads, /*no_large=*/false,
                        repeat);
}
