// E4 — The headline result: with k = ceil(ln n), a strong
// (O(log n), O(log n)) network decomposition computed in O(log^2 n)
// rounds. Sweeping n over powers of two and fitting the measured
// quantities against ln n (diameter, colors) and ln^2 n (rounds) checks
// the asymptotic *shape*: near-linear fits (r^2 close to 1) with modest
// constants.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "support/stats.hpp"

int main() {
  using namespace dsnd;
  bench::print_header(
      "E4 / headline scaling (k = ceil(ln n))",
      "claim: strong (O(log n), O(log n)) decomposition in O(log^2 n) "
      "rounds");

  const int seeds = 4 * bench::scale();
  Table table({"family", "n", "ln n", "D_max", "colors", "rounds",
               "rounds/ln^2(n)"});
  for (const std::string& family : {std::string("gnp-sparse"),
                                    std::string("grid")}) {
    std::vector<double> log_n, diameter_series, color_series, round_series;
    for (const VertexId n : {256, 512, 1024, 2048, 4096, 8192}) {
      Summary diameters, colors, rounds;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = family_by_name(family).make(
            n, static_cast<std::uint64_t>(s) + 1);
        ElkinNeimanOptions options;  // k = 0 -> ceil(ln n)
        options.seed = static_cast<std::uint64_t>(s) * 6700417 + 11;
        const DecompositionRun run = elkin_neiman_decomposition(g, options);
        colors.add(run.carve.phases_used);
        rounds.add(static_cast<double>(run.carve.rounds));
        if (!run.carve.radius_overflow) {
          const DecompositionReport report = validate_decomposition(
              g, run.clustering(), /*compute_weak=*/false);
          if (report.max_strong_diameter != kInfiniteDiameter) {
            diameters.add(report.max_strong_diameter);
          }
        }
      }
      const double ln = std::log(static_cast<double>(n));
      log_n.push_back(ln);
      diameter_series.push_back(diameters.max());
      color_series.push_back(colors.mean());
      round_series.push_back(rounds.mean());
      table.row()
          .cell(family)
          .cell(static_cast<std::int64_t>(n))
          .cell(ln, 2)
          .cell(diameters.max(), 0)
          .cell(colors.mean(), 1)
          .cell(rounds.mean(), 0)
          .cell(rounds.mean() / (ln * ln), 2);
    }
    // Shape fits: D vs ln n, colors vs ln n, rounds vs ln^2 n.
    std::vector<double> log_n_sq;
    for (const double x : log_n) log_n_sq.push_back(x * x);
    const LinearFit d_fit = fit_linear(log_n, diameter_series);
    const LinearFit c_fit = fit_linear(log_n, color_series);
    const LinearFit r_fit = fit_linear(log_n_sq, round_series);
    std::cout << family << ": D ~ " << format_double(d_fit.slope, 2)
              << "*ln(n) (r2=" << format_double(d_fit.r_squared, 3)
              << "), colors ~ " << format_double(c_fit.slope, 2)
              << "*ln(n) (r2=" << format_double(c_fit.r_squared, 3)
              << "), rounds ~ " << format_double(r_fit.slope, 2)
              << "*ln^2(n) (r2=" << format_double(r_fit.r_squared, 3)
              << ")\n";
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nThe rounds/ln^2(n) column should hover around a constant "
               "— the O(log^2 n) claim.\n";
  return 0;
}
