// E1 — Theorem 1: strong (2k-2, (cn)^{1/k} ln(cn)) network decomposition
// in k (cn)^{1/k} ln(cn) rounds with probability >= 1 - 3/c.
//
// For each (family, n, k) cell the table reports, over many seeds:
//   D_max      largest measured strong cluster diameter (no-overflow runs)
//   D_bound    2k - 2
//   colors     mean phases used until the graph was exhausted
//   col_bound  ceil((cn)^{1/k} ln(cn))  (the theorem's lambda)
//   rounds     mean simulated rounds (phases * (k+1))
//   rnd_bound  k * lambda
//   success    fraction of runs exhausted within lambda phases (>= 1-3/c)
//   overflow   fraction of runs where Lemma 1's event fired (<= 2/c); the
//              Las Vegas recarve loop recovers every such run, so D_max
//              now covers them too
//   retries    total phase resamples the recovery cost across the seeds
//   extra_rnds simulated rounds spent on the aborted attempts
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "support/stats.hpp"

namespace {

using namespace dsnd;

void run_cell(Table& table, const std::string& family, VertexId n,
              std::int32_t k, double c, int seeds) {
  Summary diameters, colors, rounds;
  int successes = 0;
  int diameter_runs = 0;
  bool bound_violated = false;
  bench::RetryStats stats;
  for (int s = 0; s < seeds; ++s) {
    const Graph g = family_by_name(family).make(
        n, static_cast<std::uint64_t>(s) + 1);
    ElkinNeimanOptions options;
    options.k = k;
    options.c = c;
    options.seed = static_cast<std::uint64_t>(s) * 7919 + 17;
    const DecompositionRun run = elkin_neiman_decomposition(g, options);
    colors.add(run.carve.phases_used);
    rounds.add(static_cast<double>(run.carve.rounds));
    if (run.carve.exhausted_within_target) ++successes;
    stats.observe(run.carve);
    // The honest round claim: on the success event, measured rounds stay
    // within the whp bound plus the billed Las Vegas recovery cost (the
    // + phases_used slack is the per-phase membership-announcement round
    // the k * lambda bound does not count).
    if (run.carve.exhausted_within_target &&
        static_cast<double>(run.carve.rounds) >
            run.bounds.rounds_with_retries(run.carve.extra_rounds) +
                static_cast<double>(run.carve.phases_used)) {
      bound_violated = true;
    }
    if (!bench::accepted_truncated_samples(run.carve)) {
      const DecompositionReport report = validate_decomposition(
          g, run.clustering(), /*compute_weak=*/false);
      ++diameter_runs;
      diameters.add(report.max_strong_diameter);
      if (report.max_strong_diameter == kInfiniteDiameter ||
          report.max_strong_diameter > 2 * k - 2 ||
          !report.proper_phase_coloring) {
        bound_violated = true;
      }
    }
  }
  const std::int32_t lambda = elkin_neiman_target_phases(n, k, c);
  table.row()
      .cell(family)
      .cell(static_cast<std::int64_t>(n))
      .cell(k)
      .cell(diameter_runs > 0 ? format_double(diameters.max(), 0) : "-")
      .cell(2 * k - 2)
      .cell(colors.mean(), 1)
      .cell(lambda)
      .cell(rounds.mean(), 0)
      .cell(static_cast<std::int64_t>(k) * lambda)
      .cell(static_cast<double>(successes) / seeds, 2)
      .cell(static_cast<double>(stats.event_runs) / seeds, 2)
      .cell(static_cast<std::int64_t>(stats.retries))
      .cell(static_cast<std::int64_t>(stats.extra_rounds))
      .cell(bound_violated ? "VIOLATED" : "ok");
}

}  // namespace

int main() {
  using namespace dsnd;
  const double c = 4.0;
  bench::print_header(
      "E1 / Theorem 1 (Elkin–Neiman strong decomposition)",
      "claim: strong diameter <= 2k-2, colors <= (cn)^{1/k} ln(cn), "
      "rounds <= k(cn)^{1/k} ln(cn), success prob >= 1 - 3/c  (c = 4)");

  Table table({"family", "n", "k", "D_max", "D_bound", "colors",
               "col_bound", "rounds", "rnd_bound", "success", "overflow",
               "retries", "extra_rnds", "check"});
  const int base_seeds = 8 * bench::scale();
  for (const std::string& family : bench::default_families()) {
    for (const VertexId n : {256, 1024, 4096}) {
      const int seeds = n >= 4096 ? std::max(base_seeds / 4, 2) : base_seeds;
      for (const std::int32_t k : {2, 3, 5}) {
        run_cell(table, family, n, k, c, seeds);
      }
      run_cell(table, family, n, resolve_k(n, 0), c, seeds);  // k = ln n
    }
  }
  table.print(std::cout);
  std::cout << "\n'check' is ok when every non-truncated run satisfied "
               "the strong-diameter bound and proper coloring (with the "
               "Las Vegas recarve loop that is every run).\n";
  return 0;
}
