// E5 — Elkin–Neiman vs Linial–Saks, the paper's raison d'être. Both are
// run on the same graphs with the same k. LS93 guarantees only the WEAK
// diameter: its clusters routinely come out disconnected (infinite
// strong diameter). EN matches the weak-diameter behaviour while keeping
// every cluster connected with strong diameter <= 2k-2.
//
// Columns: per algorithm, max weak diameter / max strong diameter over
// all runs ("inf" if any cluster was disconnected), the fraction of
// clusters that were disconnected, mean colors, and mean rounds.
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/linial_saks.hpp"
#include "support/stats.hpp"

namespace {

using namespace dsnd;

struct SideStats {
  std::int32_t weak_max = 0;
  std::int32_t strong_max = 0;  // kInfiniteDiameter-aware
  std::int64_t clusters = 0;
  std::int64_t disconnected = 0;
  Summary colors;
  Summary rounds;

  void fold(const DecompositionReport& report, const CarveResult& carve) {
    if (report.max_weak_diameter == kInfiniteDiameter ||
        weak_max == kInfiniteDiameter) {
      weak_max = kInfiniteDiameter;
    } else {
      weak_max = std::max(weak_max, report.max_weak_diameter);
    }
    if (report.max_strong_diameter == kInfiniteDiameter ||
        strong_max == kInfiniteDiameter) {
      strong_max = kInfiniteDiameter;
    } else {
      strong_max = std::max(strong_max, report.max_strong_diameter);
    }
    clusters += report.num_clusters;
    disconnected += report.disconnected_clusters;
    colors.add(carve.phases_used);
    rounds.add(static_cast<double>(carve.rounds));
  }
};

}  // namespace

int main() {
  using namespace dsnd;
  bench::print_header(
      "E5 / Elkin–Neiman vs Linial–Saks",
      "claim: same weak-diameter quality and comparable colors/rounds, "
      "but EN bounds the STRONG diameter by 2k-2 where LS93 does not");

  const int seeds = 8 * bench::scale();
  bench::RetryStats stats;
  Table table({"family", "n", "k", "algo", "weak_max", "strong_max",
               "disc_clusters", "colors", "rounds"});
  // The default sweep plus the scale-free families: heavy-tailed
  // instances are where LS93's disconnected clusters concentrate around
  // hubs, so the EN-vs-LS contrast is starkest there.
  std::vector<std::string> families = bench::default_families();
  families.emplace_back("hyperbolic");
  families.emplace_back("kronecker");
  for (const std::string& family : families) {
    for (const VertexId n : {256, 1024}) {
      for (const std::int32_t k : {3, 4, 6}) {
        SideStats en, ls;
        for (int s = 0; s < seeds; ++s) {
          const Graph g = family_by_name(family).make(
              n, static_cast<std::uint64_t>(s) + 1);
          const std::uint64_t seed =
              static_cast<std::uint64_t>(s) * 39916801 + 5;

          ElkinNeimanOptions en_options;
          en_options.k = k;
          en_options.seed = seed;
          const DecompositionRun en_run =
              elkin_neiman_decomposition(g, en_options);
          stats.observe(en_run.carve);
          if (!bench::accepted_truncated_samples(en_run.carve)) {
            en.fold(validate_decomposition(g, en_run.clustering()),
                    en_run.carve);
          }

          LinialSaksOptions ls_options;
          ls_options.k = k;
          ls_options.seed = seed;
          const DecompositionRun ls_run =
              linial_saks_decomposition(g, ls_options);
          ls.fold(validate_decomposition(g, ls_run.clustering()),
                  ls_run.carve);
        }
        for (const auto& [name, side] :
             {std::pair<const char*, const SideStats*>{"EN", &en},
              {"LS93", &ls}}) {
          table.row()
              .cell(family)
              .cell(static_cast<std::int64_t>(n))
              .cell(k)
              .cell(name)
              .cell(bench::diameter_cell(side->weak_max))
              .cell(bench::diameter_cell(side->strong_max))
              .cell(format_double(
                  side->clusters == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(side->disconnected) /
                            static_cast<double>(side->clusters),
                  1) + "%")
              .cell(side->colors.mean(), 1)
              .cell(side->rounds.mean(), 0);
        }
      }
    }
  }
  table.print(std::cout);
  stats.print_line(std::cout);
  std::cout << "\nEN strong_max stays <= 2k-2 (no-overflow runs); LS93 "
               "strong_max is typically inf (disconnected clusters) while "
               "its weak_max also respects 2k-2.\n";
  return 0;
}
