// E13 (extension) — probabilistic tree embeddings (HSTs) built from the
// library's padded partitions, the [Bar96] lineage the paper discusses.
// Tree distances dominate graph distances by construction; the table
// tracks the empirical expected stretch against the Bartal-style
// O(log^2 n) shape.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/hst.hpp"
#include "support/stats.hpp"

int main() {
  using namespace dsnd;
  bench::print_header(
      "E13 / HST tree embeddings from padded partitions",
      "claim: d_T >= d_G always; expected stretch O(log^2 n)");

  const int seeds = 3 * bench::scale();
  Table table({"family", "n", "mean_stretch", "max_stretch",
               "stretch/ln^2(n)", "dominating"});
  for (const std::string& family : bench::default_families()) {
    for (const VertexId n : {128, 256, 512, 1024}) {
      Summary mean_stretch, max_stretch;
      bool dominating = true;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = family_by_name(family).make(
            n, static_cast<std::uint64_t>(s) + 1);
        const HstTree tree = build_hst(
            g, {.c = 4.0,
                .seed = static_cast<std::uint64_t>(s) * 275604541 + 9});
        const StretchReport report = measure_hst_stretch(
            g, tree, 300, static_cast<std::uint64_t>(s) + 100);
        mean_stretch.add(report.mean);
        max_stretch.add(report.max);
        if (!report.dominating) dominating = false;
      }
      const double ln = std::log(static_cast<double>(n));
      table.row()
          .cell(family)
          .cell(static_cast<std::int64_t>(n))
          .cell(mean_stretch.mean(), 2)
          .cell(max_stretch.max(), 1)
          .cell(mean_stretch.mean() / (ln * ln), 3)
          .cell(dominating ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << "\nstretch/ln^2(n) should stay bounded (and typically "
               "decrease) as n grows — the O(log^2 n) expected-stretch "
               "shape.\n";
  return 0;
}
