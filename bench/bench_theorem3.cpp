// E3 — Theorem 3 (Section 2.2, high radius regime): fixing the color
// budget at lambda <= ln n yields a strong (2(cn)^{1/lambda} ln(cn),
// lambda) decomposition in lambda (cn)^{1/lambda} ln(cn) rounds with
// probability >= 1 - 3/c — the inverse tradeoff of Theorem 1.
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/high_radius.hpp"
#include "support/stats.hpp"

int main() {
  using namespace dsnd;
  const double c = 4.0;
  bench::print_header(
      "E3 / Theorem 3 (high radius regime)",
      "claim: strong (2(cn)^{1/lambda} ln(cn), lambda) decomposition; "
      "success prob >= 1 - 3/c  (c = 4)");

  Table table({"family", "n", "lambda", "colors_max", "D_max", "D_bound",
               "retries", "success", "check"});
  const int seeds = 6 * bench::scale();
  for (const std::string& family : bench::default_families()) {
    for (const VertexId n : {256, 1024}) {
      for (const std::int32_t lambda : {1, 2, 3, 4, 6}) {
        Summary colors;
        Summary diameters;
        bench::RetryStats stats;
        int successes = 0;
        int diameter_runs = 0;
        bool violated = false;
        double colors_max = 0;
        // Promised bounds from the run itself (see bench_theorem2).
        TheoremBounds bounds;
        for (int s = 0; s < seeds; ++s) {
          const Graph g = family_by_name(family).make(
              n, static_cast<std::uint64_t>(s) + 1);
          HighRadiusOptions options;
          options.lambda = lambda;
          options.c = c;
          options.seed = static_cast<std::uint64_t>(s) * 15485863 + 7;
          const DecompositionRun run = high_radius_decomposition(g, options);
          bounds = run.bounds;
          colors.add(run.carve.phases_used);
          colors_max = std::max(colors_max,
                                static_cast<double>(run.carve.phases_used));
          if (run.carve.exhausted_within_target) ++successes;
          stats.observe(run.carve);
          if (!bench::accepted_truncated_samples(run.carve)) {
            const DecompositionReport report = validate_decomposition(
                g, run.clustering(), /*compute_weak=*/false);
            ++diameter_runs;
            diameters.add(report.max_strong_diameter);
            if (report.max_strong_diameter == kInfiniteDiameter ||
                static_cast<double>(report.max_strong_diameter) >
                    run.bounds.strong_diameter) {
              violated = true;
            }
          }
        }
        table.row()
            .cell(family)
            .cell(static_cast<std::int64_t>(n))
            .cell(lambda)
            .cell(colors_max, 0)
            .cell(diameter_runs > 0 ? format_double(diameters.max(), 0)
                                    : "-")
            .cell(bounds.strong_diameter, 0)
            .cell(static_cast<std::int64_t>(stats.retries))
            .cell(static_cast<double>(successes) / seeds, 2)
            .cell(violated ? "VIOLATED" : "ok");
      }
    }
  }
  table.print(std::cout);
  std::cout << "\ncolors_max should be <= lambda on success runs; D_max "
               "stays far below the (loose) worst-case bound because real "
               "graphs have small diameter.\n";
  return 0;
}
