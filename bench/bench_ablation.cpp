// E9 — ablations of the design choices DESIGN.md calls out.
//
// (a) Join margin. The paper's rule joins on m1 - m2 > 1. Weakening the
//     margin (0.5, 0) speeds up carving (fewer colors) but progressively
//     destroys the guarantees: first the strong-diameter bound, then
//     Lemma 4 (same-phase cluster independence / proper coloring).
// (b) Failure parameter c. Lemma 1 bounds the radius-overflow event by
//     2/c and Corollary 7 the non-exhaustion event by 1/c; the sweep
//     shows both empirical rates tracking their bounds.
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "support/stats.hpp"

namespace {

using namespace dsnd;

void margin_ablation(int seeds) {
  bench::print_header("E9a / join-margin ablation",
                      "paper margin = 1; smaller margins trade guarantees "
                      "for fewer colors");
  Table table({"margin", "colors", "proper_coloring", "connected",
               "strong<=2k-2", "D_max"});
  const std::int32_t k = 4;
  for (const double margin : {1.0, 0.5, 0.0}) {
    Summary colors;
    int proper = 0, connected = 0, within = 0, runs = 0;
    std::int32_t d_max = 0;
    bool any_inf = false;
    for (int s = 0; s < seeds; ++s) {
      const Graph g = make_gnp(512, 6.0 / 511.0,
                               static_cast<std::uint64_t>(s) + 1);
      ElkinNeimanOptions options;
      options.k = k;
      options.margin = margin;
      // kTruncate: condition on the no-overflow event as the paper's
      // analysis does, instead of letting the recarve loop resample.
      options.overflow_policy = OverflowPolicy::kTruncate;
      options.seed = static_cast<std::uint64_t>(s) * 179424673 + 3;
      const DecompositionRun run = elkin_neiman_decomposition(g, options);
      if (run.carve.radius_overflow) continue;  // isolate the margin effect
      ++runs;
      colors.add(run.carve.phases_used);
      const DecompositionReport report = validate_decomposition(
          g, run.clustering(), /*compute_weak=*/false);
      if (report.proper_phase_coloring) ++proper;
      if (report.all_clusters_connected) ++connected;
      if (report.max_strong_diameter != kInfiniteDiameter &&
          report.max_strong_diameter <= 2 * k - 2) {
        ++within;
      }
      if (report.max_strong_diameter == kInfiniteDiameter) {
        any_inf = true;
      } else {
        d_max = std::max(d_max, report.max_strong_diameter);
      }
    }
    auto rate = [&](int count) {
      return format_double(
                 runs == 0 ? 0.0
                           : 100.0 * static_cast<double>(count) / runs, 0) +
             "%";
    };
    table.row()
        .cell(margin, 1)
        .cell(colors.mean(), 1)
        .cell(rate(proper))
        .cell(rate(connected))
        .cell(rate(within))
        .cell(any_inf ? "inf" : std::to_string(d_max));
  }
  table.print(std::cout);
}

void forwarding_ablation(int seeds) {
  bench::print_header(
      "E9c / top-2 vs top-1 forwarding",
      "the CONGEST rule forwards two values because m2 enters every join "
      "decision; top-1 forwarding leaves m2 stale and changes outcomes");
  Table table({"policy", "colors", "clusterings_differ", "proper_coloring",
               "strong<=2k-2"});
  const std::int32_t k = 4;
  Summary top2_colors, top1_colors;
  int differ = 0, top1_proper = 0, top1_within = 0, top2_proper = 0,
      top2_within = 0, runs = 0;
  for (int s = 0; s < seeds; ++s) {
    const Graph g = make_gnp(256, 6.0 / 255.0,
                             static_cast<std::uint64_t>(s) + 1);
    CarveParams params;
    const double beta = elkin_neiman_beta(256, k, 4.0);
    params.betas.assign(
        static_cast<std::size_t>(
            elkin_neiman_target_phases(256, k, 4.0)),
        beta);
    params.phase_rounds = k;
    params.radius_overflow_at = k + 1.0;
    params.overflow_policy = OverflowPolicy::kTruncate;  // condition, not retry
    params.seed = static_cast<std::uint64_t>(s) * 49979687 + 5;
    const CarveResult top2 = carve_decomposition(g, params);
    params.forward_policy = ForwardPolicy::kTop1;
    const CarveResult top1 = carve_decomposition(g, params);
    if (top2.radius_overflow || top1.radius_overflow) continue;
    ++runs;
    top2_colors.add(top2.phases_used);
    top1_colors.add(top1.phases_used);
    bool same = true;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (top2.clustering.cluster_of(v) != top1.clustering.cluster_of(v)) {
        same = false;
      }
    }
    if (!same) ++differ;
    const auto score = [&](const CarveResult& result, int& proper,
                           int& within) {
      const DecompositionReport report = validate_decomposition(
          g, result.clustering, /*compute_weak=*/false);
      if (report.proper_phase_coloring) ++proper;
      if (report.max_strong_diameter != kInfiniteDiameter &&
          report.max_strong_diameter <= 2 * k - 2) {
        ++within;
      }
    };
    score(top2, top2_proper, top2_within);
    score(top1, top1_proper, top1_within);
  }
  auto rate = [&](int count) {
    return format_double(
               runs == 0 ? 0.0 : 100.0 * static_cast<double>(count) / runs,
               0) +
           "%";
  };
  table.row()
      .cell("top-2 (paper)")
      .cell(top2_colors.mean(), 1)
      .cell("-")
      .cell(rate(top2_proper))
      .cell(rate(top2_within));
  table.row()
      .cell("top-1")
      .cell(top1_colors.mean(), 1)
      .cell(rate(differ))
      .cell(rate(top1_proper))
      .cell(rate(top1_within));
  table.print(std::cout);
  std::cout << "\nclusterings_differ counts runs whose top-1 output "
               "deviates from the exact (top-2) clustering.\n";
}

void c_sensitivity(int seeds) {
  bench::print_header("E9b / failure-parameter sweep",
                      "Lemma 1: Pr[overflow] <= 2/c; Corollary 7: "
                      "Pr[not exhausted in lambda phases] <= 1/c");
  Table table({"c", "overflow_rate", "2/c", "miss_rate", "1/c"});
  for (const double c : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    int overflow = 0, miss = 0;
    for (int s = 0; s < seeds; ++s) {
      const Graph g = make_gnp(256, 6.0 / 255.0,
                               static_cast<std::uint64_t>(s) + 1);
      ElkinNeimanOptions options;
      options.k = 4;
      options.c = c;
      // The sweep measures the raw Lemma 1 event rate against its 2/c
      // bound, so disable the recovery that would otherwise hide it.
      options.overflow_policy = OverflowPolicy::kTruncate;
      options.seed = static_cast<std::uint64_t>(s) * 32452843 + 9;
      const DecompositionRun run = elkin_neiman_decomposition(g, options);
      if (run.carve.radius_overflow) ++overflow;
      if (!run.carve.exhausted_within_target) ++miss;
    }
    table.row()
        .cell(c, 0)
        .cell(static_cast<double>(overflow) / seeds, 3)
        .cell(2.0 / c, 3)
        .cell(static_cast<double>(miss) / seeds, 3)
        .cell(1.0 / c, 3);
  }
  table.print(std::cout);
  std::cout << "\nEmpirical rates sit well below the union-bound rates, as "
               "expected from a worst-case analysis.\n";
}

}  // namespace

int main() {
  const int seeds = 20 * dsnd::bench::scale();
  margin_ablation(seeds);
  forwarding_ablation(seeds);
  c_sensitivity(seeds * 2);
  return 0;
}
