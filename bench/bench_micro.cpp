// E10 — google-benchmark microbenches for the library's kernels: graph
// generation, BFS, one carving phase, full decompositions (centralized
// and distributed), the MPX partition, Luby's MIS, and validation.
#include <benchmark/benchmark.h>

#include "apps/luby.hpp"
#include "apps/mis.hpp"
#include "decomposition/carving.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/elkin_neiman_distributed.hpp"
#include "decomposition/linial_saks.hpp"
#include "decomposition/mpx.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"

namespace {

using namespace dsnd;

Graph bench_graph(std::int64_t n) {
  return make_gnp(static_cast<VertexId>(n),
                  6.0 / static_cast<double>(n - 1), 42);
}

void BM_GnpGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench_graph(state.range(0)));
  }
}
BENCHMARK(BM_GnpGeneration)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_GridGeneration(benchmark::State& state) {
  const auto side = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_grid2d(side, side));
  }
}
BENCHMARK(BM_GridGeneration)->Arg(32)->Arg(128);

void BM_Bfs(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(g, 0));
  }
}
BENCHMARK(BM_Bfs)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_CarvePhase(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<char> alive(n, 1);
  std::vector<double> radii(n);
  for (std::size_t v = 0; v < n; ++v) {
    radii[v] = carve_radius_sample(7, 0, static_cast<VertexId>(v), 0.8);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_phase_broadcast(g, alive, radii, 8));
  }
}
BENCHMARK(BM_CarvePhase)->Arg(1024)->Arg(8192);

void BM_ElkinNeiman(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  ElkinNeimanOptions options;
  options.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elkin_neiman_decomposition(g, options));
  }
}
BENCHMARK(BM_ElkinNeiman)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ElkinNeimanDistributed(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  ElkinNeimanOptions options;
  options.k = 4;
  options.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elkin_neiman_distributed(g, options));
  }
}
BENCHMARK(BM_ElkinNeimanDistributed)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_LinialSaks(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  LinialSaksOptions options;
  options.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linial_saks_decomposition(g, options));
  }
}
BENCHMARK(BM_LinialSaks)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_MpxPartition(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpx_partition(g, {.beta = 0.2, .seed = 7}));
  }
}
BENCHMARK(BM_MpxPartition)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_LubyMis(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(luby_mis(g, 7));
  }
}
BENCHMARK(BM_LubyMis)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_MisByDecomposition(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  ElkinNeimanOptions options;
  options.seed = 7;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis_by_decomposition(g, run.clustering()));
  }
}
BENCHMARK(BM_MisByDecomposition)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ValidateDecomposition(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  ElkinNeimanOptions options;
  options.seed = 7;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_decomposition(
        g, run.clustering(), /*compute_weak=*/false));
  }
}
BENCHMARK(BM_ValidateDecomposition)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
